"""Smoke-test the flow tuner end to end (the ``make tune-demo`` body).

Generates a small layered circuit, runs the fixed ``resyn2`` baseline,
then tunes the same circuit under a 2-second budget
(:func:`repro.tune.tune`) and asserts the tuner's contract:

* the tuned AND count is **no worse than fixed resyn2** — the search
  warm-starts by replaying the baseline trajectory as committed probes,
  so with the budget covering one replay the tuned result can only
  match or beat it;
* the tuned graph is **CEC-clean** against the input (exact exhaustive
  simulation — the demo circuit keeps few PIs precisely for this);
* the chosen script **normalizes** through the command registry (it
  must be a servable flow, not an internal artifact);
* a second tune of the same circuit through a shared
  :class:`repro.tune.recipes.RecipeBook` gets a **bucket hit** and
  again matches or beats the baseline.

Exit status 0 means every step held; any assertion is a non-zero exit,
which is what lets ``make test`` gate on it.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.circuits.random_aig import layered_random_aig  # noqa: E402
from repro.opt import RESYN2, run_flow  # noqa: E402
from repro.opt.registry import default_registry  # noqa: E402
from repro.tune import RecipeBook, TuneParams, tune  # noqa: E402
from repro.verify.cec import equivalent  # noqa: E402

BUDGET_S = 2.0


def main() -> int:
    g = layered_random_aig(n_pis=12, n_ands=500, seed=42)
    baseline, _report = run_flow(g.clone(), RESYN2)
    print(f"tune-demo: circuit {g.n_ands} ANDs, fixed resyn2 -> {baseline.n_ands}")

    book = RecipeBook()
    result = tune(g, TuneParams(seed=0, budget_s=BUDGET_S, recipes=book))
    print(
        f"tune-demo: tuned -> {result.n_ands} ANDs "
        f"({result.gain_pct:.1f}%) in {result.elapsed_s:.2f}s, "
        f"{result.probes} probes"
    )
    print(f"tune-demo: script: {result.script}")
    assert result.n_ands <= baseline.n_ands, (
        f"tuned {result.n_ands} worse than fixed resyn2 {baseline.n_ands}"
    )
    assert equivalent(g, result.graph), "tuned result is not CEC-equivalent"
    assert result.elapsed_s < BUDGET_S + 1.0, "budget overrun"
    default_registry().normalize_script(result.script)  # must be servable

    again = tune(g, TuneParams(seed=1, budget_s=BUDGET_S, recipes=book))
    assert again.recipe_hit, "second tune missed the recipe bucket"
    assert again.n_ands <= baseline.n_ands
    assert equivalent(g, again.graph)
    print(f"tune-demo: recipe replay [bucket {again.bucket}] -> {again.n_ands} ANDs")
    print("tune-demo: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
