"""Timing-discipline lint (``make lint-timing``).

Instrumented code must never read the wall clock: ``time.time()`` is
subject to NTP steps and DST jumps, so a span or stats field computed
from it can go negative or jump by hours.  Every duration in the
instrumented trees must come from the :mod:`repro.obs` span API or
directly from the monotonic clocks it is built on
(``time.perf_counter`` / ``time.monotonic``).

This lint walks the ASTs of ``src/repro/engine``, ``src/repro/opt``,
``src/repro/serve`` (the whole serving stack, the asyncio service
included) and ``src/repro/resilience`` and fails on any call of
``time.time`` (including ``from time import time`` aliases).
Wall-clock *timestamps* for log records or file names belong in the
exporters and harness, which are deliberately outside the linted trees.

Exit status 0 when clean; prints every offending ``file:line`` before
exiting non-zero.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINTED_TREES = (
    "src/repro/engine",
    "src/repro/opt",
    "src/repro/serve",
    "src/repro/resilience",
    "src/repro/tune",
)


class _WallClockFinder(ast.NodeVisitor):
    """Collects calls that resolve to ``time.time`` in one module."""

    def __init__(self) -> None:
        self.offences: list[int] = []
        self._time_aliases: set[str] = set()  # `import time as t` names
        self._func_aliases: set[str] = set()  # `from time import time [as x]`

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    self._func_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
        ):
            self.offences.append(node.lineno)
        elif isinstance(func, ast.Name) and func.id in self._func_aliases:
            self.offences.append(node.lineno)
        self.generic_visit(node)


def check_tree(root: Path) -> list[str]:
    failures: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(REPO)
        try:
            module = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as error:
            failures.append(f"{rel}:{error.lineno}: does not parse: {error.msg}")
            continue
        finder = _WallClockFinder()
        # Imports may come after uses in odd modules; collect them first.
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                finder.visit_Import(node)
            elif isinstance(node, ast.ImportFrom):
                finder.visit_ImportFrom(node)
        finder.visit(module)
        for line in finder.offences:
            failures.append(
                f"{rel}:{line}: time.time() in instrumented code — use "
                f"obs.span(...) or time.perf_counter()"
            )
    return failures


def main() -> int:
    failures: list[str] = []
    for tree in LINTED_TREES:
        root = REPO / tree
        if not root.is_dir():
            failures.append(f"{tree}: directory missing")
            continue
        failures.extend(check_tree(root))
    for failure in failures:
        print(f"lint-timing: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"lint-timing: no wall-clock timing under {', '.join(LINTED_TREES)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
