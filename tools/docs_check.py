"""Documentation gate (``make docs-check``).

Two checks, both cheap enough to run inside the default test target:

1. **Module docstrings.**  Every ``.py`` file under ``src/repro/engine``,
   ``src/repro/serve``, ``src/repro/obs`` and ``src/repro/resilience``
   — plus the individually
   listed hot-path and API-surface modules (simulation kernels, the rewrite operator, and
   the flow layer: ``opt/flow.py``, ``opt/registry.py``,
   ``opt/session.py``, the ``python -m repro`` entry point) — must
   carry a non-trivial module docstring, so ``pydoc repro.engine`` /
   ``pydoc repro.opt.session`` always render a usable API reference.
   Checked by AST parse — no imports, no side effects.
2. **README examples.**  Every fenced ```` ```python ```` block in
   ``README.md`` is executed (in one shared namespace, top to bottom, so
   later examples may build on earlier ones).  A README that drifts from
   the API fails the build instead of misleading the next reader.
3. **Doc cross-links.**  ``docs/observability.md`` and
   ``docs/robustness.md`` must exist, and ``docs/engine.md`` /
   ``docs/serving.md`` must link to both — those pages document *their*
   instrumentation and failure handling, so a missing link means one of
   the pages went stale.
4. **Serving coverage.**  The serving front is the one subsystem users
   reach without importing the package, so its docs must keep pace:
   ``docs/serving.md`` has to describe the ``python -m repro serve``
   entry point, ``docs/observability.md`` the ``serve_cache_hits_total``
   counter family, ``docs/robustness.md`` the shard respawn path, and
   the README quickstart has to mention ``repro serve``.
5. **Tuning coverage.**  ``docs/tuning.md`` must describe the
   ``python -m repro tune`` entry point, the serve ``quality_budget_s``
   knob and recipe persistence; ``docs/serving.md`` and
   ``docs/flows.md`` must link to it, and ``docs/observability.md``
   must cover the ``tune_*`` counter family.

Exit status 0 on success; prints every failure before exiting non-zero.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCSTRING_TREES = (
    "src/repro/engine",
    "src/repro/serve",
    "src/repro/obs",
    "src/repro/resilience",
    "src/repro/tune",
)
DOCSTRING_FILES = (
    "src/repro/aig/simulate.py",
    "src/repro/opt/flow.py",
    "src/repro/opt/registry.py",
    "src/repro/opt/rewrite.py",
    "src/repro/opt/session.py",
    "src/repro/__main__.py",
)
MIN_DOCSTRING_CHARS = 40  # a sentence, not a placeholder


def _check_one(path: Path, failures: list[str]) -> None:
    rel = path.relative_to(REPO)
    try:
        module = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as error:
        failures.append(f"{rel}: does not parse: {error}")
        return
    doc = ast.get_docstring(module)
    if not doc:
        failures.append(f"{rel}: missing module docstring")
    elif len(doc.strip()) < MIN_DOCSTRING_CHARS:
        failures.append(f"{rel}: module docstring is a stub ({doc.strip()!r})")


def check_module_docstrings() -> list[str]:
    failures: list[str] = []
    for tree in DOCSTRING_TREES:
        root = REPO / tree
        if not root.is_dir():
            failures.append(f"{tree}: directory missing")
            continue
        for path in sorted(root.rglob("*.py")):
            _check_one(path, failures)
    for name in DOCSTRING_FILES:
        path = REPO / name
        if not path.is_file():
            failures.append(f"{name}: file missing")
            continue
        _check_one(path, failures)
    return failures


def check_readme_examples() -> list[str]:
    readme = REPO / "README.md"
    if not readme.is_file():
        return ["README.md: missing"]
    blocks = re.findall(
        r"^```python\n(.*?)^```", readme.read_text(encoding="utf-8"), re.S | re.M
    )
    if not blocks:
        return ["README.md: no ```python blocks to verify"]
    sys.path.insert(0, str(REPO / "src"))
    namespace: dict = {"__name__": "__readme__"}
    failures = []
    for index, source in enumerate(blocks, 1):
        try:
            exec(compile(source, f"README.md#block{index}", "exec"), namespace)
        except Exception as error:
            failures.append(f"README.md: python block {index} failed: {error!r}")
            break  # later blocks may depend on this one; one failure is enough
    return failures


def check_doc_crosslinks() -> list[str]:
    failures: list[str] = []
    for target in ("observability.md", "robustness.md"):
        if not (REPO / "docs" / target).is_file():
            failures.append(f"docs/{target}: missing")
    for name in ("docs/engine.md", "docs/serving.md"):
        path = REPO / name
        if not path.is_file():
            failures.append(f"{name}: missing")
            continue
        text = path.read_text(encoding="utf-8")
        for target in ("observability.md", "robustness.md"):
            if target not in text:
                failures.append(f"{name}: no cross-link to docs/{target}")
    return failures


SERVING_COVERAGE = (
    # (file, required substring, what its absence means)
    ("docs/serving.md", "python -m repro serve", "service entry point undocumented"),
    ("docs/observability.md", "serve_cache_hits_total", "serve counter family undocumented"),
    ("docs/robustness.md", "respawn", "shard respawn path undocumented"),
    ("README.md", "repro serve", "quickstart does not mention the service"),
)


def check_serving_docs() -> list[str]:
    failures: list[str] = []
    for name, needle, meaning in SERVING_COVERAGE:
        path = REPO / name
        if not path.is_file():
            failures.append(f"{name}: missing")
            continue
        if needle not in path.read_text(encoding="utf-8"):
            failures.append(f"{name}: {meaning} (expected {needle!r})")
    return failures


TUNING_COVERAGE = (
    # (file, required substring, what its absence means)
    ("docs/tuning.md", "python -m repro tune", "tuner entry point undocumented"),
    ("docs/tuning.md", "quality_budget_s", "serve quality-budget knob undocumented"),
    ("docs/tuning.md", "recipes", "recipe persistence undocumented"),
    ("docs/serving.md", "tuning.md", "serving docs do not link the tuner"),
    ("docs/flows.md", "tuning.md", "flow docs do not link the tuner"),
    ("docs/observability.md", "tune_probes_total", "tuner counter family undocumented"),
)


def check_tuning_docs() -> list[str]:
    failures: list[str] = []
    for name, needle, meaning in TUNING_COVERAGE:
        path = REPO / name
        if not path.is_file():
            failures.append(f"{name}: missing")
            continue
        if needle not in path.read_text(encoding="utf-8"):
            failures.append(f"{name}: {meaning} (expected {needle!r})")
    return failures


def main() -> int:
    failures = (
        check_module_docstrings()
        + check_readme_examples()
        + check_doc_crosslinks()
        + check_serving_docs()
        + check_tuning_docs()
    )
    for failure in failures:
        print(f"docs-check: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("docs-check: module docstrings + README examples OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
