"""Observability demo (``make trace-demo``).

Runs a parallel-refactor flow on a synthetic circuit with
:mod:`repro.obs` tracing on, then writes and summarizes every export
format the subsystem ships:

* ``benchmarks/results/trace_demo.json`` — Chrome trace-event JSON.
  Open it in ``chrome://tracing`` or https://ui.perfetto.dev to read the
  flow as a timeline: one ``flow.command`` bar per command, with the
  engine pass's snapshot / conflict / wave / evaluate / commit children
  nested below it.
* ``benchmarks/results/trace_demo.jsonl`` — the same spans plus the
  metrics registry as line-delimited JSON (machine-diffable).
* ``benchmarks/results/trace_demo.prom`` — the metrics registry in
  Prometheus text exposition format.

The printed summary shows the span census and the headline counters, so
the demo is useful even without opening a trace viewer.
"""

from __future__ import annotations

import sys
from collections import Counter as TallyCounter
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import obs, run_flow  # noqa: E402
from repro.circuits import layered_random_aig  # noqa: E402

FLOW = "b; pf -w 2; b; prw"


def main() -> int:
    out_dir = REPO / "benchmarks" / "results"
    out_dir.mkdir(parents=True, exist_ok=True)

    g = layered_random_aig(n_pis=12, n_ands=900, seed=7, name="trace-demo")
    obs.reset()
    obs.configure(enabled=True)
    n_before = g.n_ands
    out, report = run_flow(g, FLOW)
    obs.configure(enabled=False)

    chrome_path = out_dir / "trace_demo.json"
    jsonl_path = out_dir / "trace_demo.jsonl"
    prom_path = out_dir / "trace_demo.prom"
    obs.export_trace(str(chrome_path))
    obs.export_trace(str(jsonl_path))
    obs.export_metrics(str(prom_path))

    errors = obs.validate_chrome_trace(obs.chrome_trace(obs.tracer()))
    census = TallyCounter(span.name for span in obs.tracer().spans())

    print(f"flow {FLOW!r}: {n_before} -> {out.n_ands} ANDs "
          f"in {report.total_runtime:.2f}s")
    print(f"spans recorded: {len(obs.tracer())}")
    for name, count in sorted(census.items()):
        print(f"  {name:<20} x{count}")
    registry = obs.metrics()
    print("headline counters:")
    for metric in (
        "engine_waves_total",
        "engine_commits_total",
        "engine_worker_tasks_total",
        "flow_commands_total",
    ):
        print(f"  {metric:<28} {registry.total(metric):.0f}")
    print(f"chrome trace:    {chrome_path.relative_to(REPO)} "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    print(f"jsonl trace:     {jsonl_path.relative_to(REPO)}")
    print(f"prometheus text: {prom_path.relative_to(REPO)}")
    if errors:
        for error in errors:
            print(f"trace-demo: invalid chrome trace: {error}", file=sys.stderr)
        return 1
    print("chrome trace validates: spans well-formed and properly nested")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
