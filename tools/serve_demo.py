"""Smoke-test the serving stack end to end (the ``make serve-demo`` body).

Starts ``python -m repro serve`` on a temporary unix socket, waits for
it to answer ``ping``, submits one generated circuit **twice** — the
first optimize must miss the content-addressed cache, the second must
hit it with byte-identical BENCH text — then checks the hit counter via
``stats``, scrapes ``metrics`` for the ``serve_cache_hits_total``
series, and shuts the service down.  Exit status 0 means every step
held; any assertion or timeout is a non-zero exit, which is what lets
``make test`` gate on it.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.aig import AIG  # noqa: E402
from repro.aig.io_bench import to_text  # noqa: E402
from repro.serve.service import request  # noqa: E402

STARTUP_TIMEOUT_S = 30.0


def demo_circuit(seed: int = 7) -> AIG:
    """A small random AIG with enough structure for 'b; rf' to bite."""
    rng = random.Random(seed)
    g = AIG("serve-demo")
    lits = [g.add_pi() for _ in range(8)]
    for _ in range(120):
        a, b = rng.sample(lits, 2)
        lits.append(g.add_and(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)))
    for lit in lits[-4:]:
        g.add_po(lit)
    return g


def wait_ready(socket_path: str, proc: subprocess.Popen) -> None:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"service exited early with {proc.returncode}")
        if os.path.exists(socket_path):
            try:
                if request(socket_path, {"op": "ping"}, timeout=2.0).get("ok"):
                    return
            except OSError:
                pass
        time.sleep(0.1)
    raise SystemExit("service did not become ready in time")


def main() -> int:
    bench = to_text(demo_circuit())
    with tempfile.TemporaryDirectory(prefix="repro-serve-demo-") as tmp:
        socket_path = os.path.join(tmp, "serve.sock")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                socket_path,
                "--script",
                "b; rf",
                "--shards",
                "2",
            ],
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            wait_ready(socket_path, proc)
            first = request(socket_path, {"op": "optimize", "name": "demo", "bench": bench})
            assert first["ok"] and first["cached"] is False, first
            assert first["n_ands"] <= first["n_ands_before"], first
            second = request(socket_path, {"op": "optimize", "name": "demo", "bench": bench})
            assert second["ok"] and second["cached"] is True, second
            assert second["bench"] == first["bench"], "cache hit not byte-identical"
            stats = request(socket_path, {"op": "stats"})
            assert stats["cache"]["hits"] == 1 and stats["cache"]["misses"] == 1, stats
            metrics = request(socket_path, {"op": "metrics"})
            assert "serve_cache_hits_total" in metrics["text"], "hit counter not exported"
            request(socket_path, {"op": "shutdown"})
            proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print(
        "serve-demo: ok (miss -> hit, byte-identical, "
        f"{first['n_ands_before']} -> {first['n_ands']} ANDs)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
