"""Silent-swallow lint for failure paths (``make lint-faults``).

The fault-tolerance layer (``docs/robustness.md``) only works if every
failure is *counted or propagated*: a ``try/except Exception: pass`` in
the engine or serve trees would silently eat exactly the crashes the
recovery machinery and its metrics exist to surface.  This lint walks
the ASTs of ``src/repro/engine``, ``src/repro/serve`` (the whole
serving stack — store, shard processes, the asyncio service) and
``src/repro/resilience`` and fails on any handler for ``Exception`` /
``BaseException`` (or a bare ``except:``) whose body does none of:

* re-raise (any ``raise`` statement);
* increment a metric — an ``obs.counter(...).add(...)`` /
  ``histogram(...).observe(...)`` chain, or a
  ``repro.resilience.policy.record_*`` accounting call;
* carry an explicit ``# lint-faults: <justification>`` comment inside
  the handler, for the rare case where swallowing is the contract
  (e.g. a pool worker that *returns* the formatted error for the
  parent to count and recompute).

Narrow handlers (``except ValueError``, ``except (OSError, KeyError)``)
are out of scope: they express a decision about a specific failure, not
a dragnet.  Exit status 0 when clean; prints every offending
``file:line`` before exiting non-zero.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINTED_TREES = (
    "src/repro/engine",
    "src/repro/serve",
    "src/repro/resilience",
    "src/repro/tune",
)
PRAGMA = "# lint-faults:"
BROAD_NAMES = {"Exception", "BaseException"}
METRIC_METHODS = {"add", "observe", "inc", "set"}
METRIC_FACTORIES = {"counter", "histogram", "gauge"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Does the handler catch Exception/BaseException (or everything)?"""
    spec = handler.type
    if spec is None:  # bare except:
        return True
    types = spec.elts if isinstance(spec, ast.Tuple) else [spec]
    for node in types:
        if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in BROAD_NAMES:
            return True
    return False


def _is_metric_call(node: ast.Call) -> bool:
    """``obs.counter(...).add(...)``-style chain or ``record_*`` call."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr.startswith("record_"):
            return True  # policy.record_worker_death(...) etc.
        if func.attr in METRIC_METHODS:
            # Walk down the chain looking for a registry factory:
            # obs.counter(...).add / metrics.histogram(...).observe.
            inner = func.value
            while True:
                if isinstance(inner, ast.Call):
                    inner = inner.func
                elif isinstance(inner, ast.Attribute):
                    if inner.attr in METRIC_FACTORIES:
                        return True
                    inner = inner.value
                else:
                    return False
    elif isinstance(func, ast.Name) and func.id.startswith("record_"):
        return True
    return False


def _handler_accounts(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and _is_metric_call(node):
            return True
    return False


def _has_pragma(handler: ast.ExceptHandler, lines: list[str]) -> bool:
    end = handler.end_lineno or handler.lineno
    return any(PRAGMA in line for line in lines[handler.lineno - 1 : end])


def check_tree(root: Path) -> list[str]:
    failures: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(REPO)
        source = path.read_text(encoding="utf-8")
        try:
            module = ast.parse(source)
        except SyntaxError as error:
            failures.append(f"{rel}:{error.lineno}: does not parse: {error.msg}")
            continue
        lines = source.splitlines()
        for node in ast.walk(module):
            if not isinstance(node, ast.ExceptHandler) or not _is_broad(node):
                continue
            if _handler_accounts(node) or _has_pragma(node, lines):
                continue
            failures.append(
                f"{rel}:{node.lineno}: broad except swallows the failure — "
                f"re-raise, count it (obs.counter(...).add / policy.record_*), "
                f"or justify with '{PRAGMA} <reason>'"
            )
    return failures


def main() -> int:
    failures: list[str] = []
    for tree in LINTED_TREES:
        root = REPO / tree
        if not root.is_dir():
            failures.append(f"{tree}: directory missing")
            continue
        failures.extend(check_tree(root))
    for failure in failures:
        print(f"lint-faults: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"lint-faults: no silent broad excepts under {', '.join(LINTED_TREES)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
