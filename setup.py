"""Setup shim.

The sandbox this repository is developed in has no ``wheel`` package and
no network, so PEP 517 editable installs (``bdist_wheel``) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
