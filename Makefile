# Developer entry points. pytest.ini already puts src/ on sys.path for
# pytest runs; plain `python` invocations still need PYTHONPATH=src.

PYTHON ?= python

.PHONY: test test-fast test-faults docs-check lint-timing lint-faults trace-demo serve-demo tune-demo bench bench-rw bench-mp bench-serve bench-tune bench-all bench-faults profile clean

test: docs-check lint-timing lint-faults serve-demo tune-demo
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Documentation gate: module docstrings in repro.engine / repro.serve /
# repro.obs and the individually listed hot-path modules (simulation
# kernels, the rewrite operator), plus executable README examples
# (tools/docs_check.py).
docs-check:
	$(PYTHON) tools/docs_check.py

# Timing discipline: no wall-clock (time.time) timing in instrumented
# code under src/repro/{engine,opt,serve,resilience} — durations must
# come from the obs span API or the monotonic clocks it is built on.
lint-timing:
	$(PYTHON) tools/lint_timing.py

# Failure-path discipline: a broad `except Exception` under
# src/repro/{engine,serve,resilience} must re-raise, increment a
# metric, or carry an explicit `# lint-faults:` justification
# (docs/robustness.md).
lint-faults:
	$(PYTHON) tools/lint_faults.py

# Resilience battery: worker-death recovery, deadlines, degradation
# ladder and the deterministic fault-injection harness.  Individual
# faults can also be forced by hand, e.g.
#   REPRO_FAULTS="worker.chunk=kill#chunk=0" PYTHONPATH=src python ...
test-faults:
	$(PYTHON) -m pytest tests/test_resilience.py -x -q

# Observability demo: runs a parallel flow with tracing on and writes
# Chrome-trace / JSONL / Prometheus exports under benchmarks/results/.
trace-demo:
	$(PYTHON) tools/trace_demo.py

# Serving smoke test: boots `python -m repro serve` on a temp socket,
# optimizes one circuit twice (miss, then byte-identical cache hit),
# checks the hit counter via stats/metrics, and shuts down.
serve-demo:
	$(PYTHON) tools/serve_demo.py

# Tuner smoke test: tunes a small circuit under a 2 s budget and asserts
# the result matches/beats fixed resyn2, CEC-clean, with a recipe-book
# hit on the second run (tools/tune_demo.py).
tune-demo:
	$(PYTHON) tools/tune_demo.py

# Engine scaling benchmark (no classifier training needed; writes
# benchmarks/results/engine_scaling.json, a rendered table, and the
# refactor rows of the repo-level BENCH_engine.json perf trajectory).
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_scaling.py refactor

# Wave-rewrite scaling: appends/refreshes the rewrite rows of
# BENCH_engine.json without touching the refactor records.
bench-rw:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_scaling.py rewrite

# Wave-transport benchmark: shm segments vs pickled chunks at two
# workers — serialized pipe bytes, segment volume and dispatch time per
# transport; merges `operator: "transport"` rows (and the host's
# cpu_count) into BENCH_engine.json.
bench-mp:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_transport.py

# Idle fault-injection overhead: a REPRO_FAULTS plan armed at every
# site but never triggering vs no plan, on the layered-5k refactor run.
# Merges the faults-idle rows into BENCH_engine.json (<1% contract).
bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_scaling.py faults

# resyn2 runtime profile (refactor's share of the flow, paper SS II).
profile:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_flow_profile.py -q

# Sharded serving throughput + classifier batch occupancy (writes
# benchmarks/results/serve_throughput.json and a rendered table).
bench-serve:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve_throughput.py

# Fixed resyn2 vs the budgeted tuner at equal wall-budget on the layered
# suite; merges the tune-search rows into BENCH_engine.json (seeded,
# cpu_count stamped, every tuned result CEC-verified).
bench-tune:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_tune.py

# Full paper benchmark suite (trains/caches classifiers on first run).
bench-all:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q

clean:
	rm -rf benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
