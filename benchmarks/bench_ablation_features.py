"""Feature ablation: retrain the classifier with one feature removed at a
time and measure the recall/accuracy drop (complements Figure 4's SHAP
attribution with an interventional measurement).
"""

import numpy as np

from repro.cuts import FEATURE_NAMES
from repro.harness import format_table, write_report
from repro.ml import (
    CutDataset,
    MLP,
    TrainConfig,
    confusion,
    train_classifier,
)

from conftest import record_report


def _evaluate(result, x, y):
    fused = result.fused_model()
    probs = 1.0 / (1.0 + np.exp(-fused.forward_logits(x)))
    return confusion(y > 0.5, probs >= 0.5)


def test_feature_ablation(benchmark, epfl_datasets):
    merged = CutDataset.concatenate(list(epfl_datasets.values()), "all")
    train, test = merged.split(0.8, seed=0)
    config = TrainConfig(epochs=10, patience=5, seed=0)

    full_result = benchmark.pedantic(
        lambda: train_classifier(train, config), rounds=1, iterations=1
    )
    full = _evaluate(full_result, test.x, test.y)

    rows = [["(all six)", f"{100 * full.recall:.1f}%", f"{100 * full.accuracy:.1f}%", "-"]]
    f1_full = full.f1
    for j, name in enumerate(FEATURE_NAMES):
        # Neutralize the feature by zeroing its column (keeps the 6-d
        # interface; a constant column carries no information).
        x_train = train.x.copy()
        x_train[:, j] = 0.0
        ds = CutDataset(x_train, train.y, f"wo_{name}")
        cfg = TrainConfig(epochs=10, patience=5, seed=0)
        result = train_classifier(ds, cfg)
        fused = result.fused_model()
        x_test = test.x.copy()
        x_test[:, j] = 0.0
        probs = 1.0 / (1.0 + np.exp(-fused.forward_logits(x_test)))
        c = confusion(test.y > 0.5, probs >= 0.5)
        rows.append(
            [
                f"w/o {name}",
                f"{100 * c.recall:.1f}%",
                f"{100 * c.accuracy:.1f}%",
                f"{c.f1 - f1_full:+.3f}",
            ]
        )
    text = format_table(
        ["Model", "Recall", "Accuracy", "dF1"],
        rows,
        title="Feature ablation - drop-one retraining on the EPFL-like data",
    )
    write_report("ablation_features", text)
    record_report("ablation_features", text)

    # Uncalibrated 0.5 threshold: recall sits below the deployed
    # (recall-calibrated) operating point; accuracy is high.
    assert full.recall > 0.35 and full.accuracy > 0.6, full
