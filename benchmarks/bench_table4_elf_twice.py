"""Table IV: one original refactor pass vs ELF applied twice.

The paper's point: ELF is so much faster that two ELF passes still beat
one baseline pass on runtime, and the second pass can recover extra area
on the large, deep circuits (div, hyp).
"""

from repro.harness import comparison_rows, format_table, write_report

from conftest import record_report

PAPER_SPEEDUP_X2 = {
    "div": 2.32,
    "hyp": 3.38,
    "log2": 1.34,
    "multiplier": 2.20,
    "sqrt": 1.47,
    "square": 1.93,
}


def test_table4_elf_twice(benchmark, epfl, epfl_classifiers):
    rows = benchmark.pedantic(
        lambda: comparison_rows(epfl, epfl_classifiers, elf_applications=2),
        rounds=1,
        iterations=1,
    )
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.design,
                r.nodes_before,
                f"{r.baseline_runtime:.2f}",
                r.baseline_ands,
                f"{r.elf_runtime:.2f}",
                r.elf_ands,
                f"{r.speedup:.2f}x",
                f"{PAPER_SPEEDUP_X2[r.design]:.2f}x",
                f"{r.and_diff_pct:+.2f}%",
            ]
        )
    text = format_table(
        [
            "Design",
            "Nodes",
            "ABC s",
            "ABC And",
            "ELFx2 s",
            "ELFx2 And",
            "Speedup",
            "paper",
            "dAnd",
        ],
        table_rows,
        title="Table IV - one original refactor pass vs ELF applied twice",
    )
    write_report("table4_elf_twice", text)
    record_report("table4", text)

    # Two ELF passes still beat one baseline pass for most designs.
    speedups = [r.speedup for r in rows]
    assert sum(s > 1.0 for s in speedups) >= 3, speedups
    # Quality cannot be worse than a single ELF pass; area stays within
    # the widened band (see bench_table3 / EXPERIMENTS.md).
    diffs = [abs(r.and_diff_pct) for r in rows]
    assert sum(diffs) / len(diffs) < 4.0, diffs
