"""Figure 3: t-SNE embedding of the 6-d cut feature space.

Reproduces the visualization data: a 2-d embedding of sampled cut
features with refactored/unrefactored labels, written as CSV.  The
quantitative check replaces eyeballing: embedding trustworthiness and
some local label structure (refactored points cluster more than chance).
"""

import numpy as np

from repro.analysis import trustworthiness, tsne
from repro.harness import feature_matrix, format_table, write_report

from conftest import record_report


def test_fig3_tsne(benchmark, epfl_datasets):
    x, y = feature_matrix(epfl_datasets, max_per_design=150)
    # Standardize features before embedding (as the classifier does).
    mean, std = x.mean(axis=0), x.std(axis=0)
    std[std < 1e-9] = 1.0
    xs = (x - mean) / std

    embedding = benchmark.pedantic(
        lambda: tsne(xs, perplexity=25.0, n_iter=250, seed=0),
        rounds=1,
        iterations=1,
    )

    # Persist the figure data (point coordinates + labels).
    lines = ["x,y,refactored"]
    for (px, py), label in zip(embedding, y):
        lines.append(f"{px:.4f},{py:.4f},{int(label)}")
    write_report("fig3_tsne_points", "\n".join(lines))

    trust = trustworthiness(xs, embedding, k=8)
    # Label locality: average fraction of same-label points among the
    # 8 nearest embedded neighbours of positive points, vs the base rate.
    pos_rate = float(y.mean())
    d = ((embedding[:, None, :] - embedding[None, :, :]) ** 2).sum(-1)
    np.fill_diagonal(d, np.inf)
    neighbours = d.argsort(axis=1)[:, :8]
    positive_index = np.flatnonzero(y > 0.5)
    locality = float(y[neighbours[positive_index]].mean()) if positive_index.size else 0.0

    text = format_table(
        ["points", "positives", "trustworthiness", "pos 8-NN rate", "base rate"],
        [[len(y), int(y.sum()), f"{trust:.3f}", f"{locality:.3f}", f"{pos_rate:.3f}"]],
        title="Figure 3 - t-SNE of the cut feature space (see fig3_tsne_points.txt)",
    )
    write_report("fig3_tsne", text)
    record_report("fig3", text)

    assert trust > 0.75, trust
    # Discernible structure: positives concentrate beyond the base rate
    # (the paper's "distinct clusters, albeit dispersed").
    assert locality > 1.5 * pos_rate, (locality, pos_rate)
