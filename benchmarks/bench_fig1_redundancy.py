"""Figure 1: the redundancy flow numbers.

The paper's flow diagram annotates: cuts originally NOT committed
89.2-99.9%, originally committed 0.05-10.8%, and ELF pruning 69.4-95.1%
of the nodes.  This bench measures all three quantities on both suites.
"""

from repro.harness import format_table, redundancy_rows, write_report

from conftest import record_report


def test_fig1_redundancy(
    benchmark, epfl, epfl_classifiers, industrial, industrial_classifiers
):
    def run():
        rows = redundancy_rows(epfl, epfl_classifiers)
        rows += redundancy_rows(industrial, industrial_classifiers)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = [
        [
            r.design,
            f"{r.commit_pct:.2f}%",
            f"{r.fail_pct:.2f}%",
            f"{r.elf_prune_pct:.2f}%",
        ]
        for r in rows
    ]
    fail_values = [r.fail_pct for r in rows]
    prune_values = [r.elf_prune_pct for r in rows]
    summary = (
        f"fail range {min(fail_values):.1f}-{max(fail_values):.1f}% "
        f"(paper 89.2-99.9) | prune range {min(prune_values):.1f}-"
        f"{max(prune_values):.1f}% (paper 69.4-95.1)"
    )
    text = (
        format_table(
            ["Design", "Committed", "Not committed", "ELF prunes"],
            table_rows,
            title="Figure 1 - redundancy in refactoring and ELF pruning",
        )
        + "\n"
        + summary
    )
    write_report("fig1_redundancy", text)
    record_report("fig1", text)

    # The motivating observation: the overwhelming majority of cuts fail.
    assert min(fail_values) > 85.0, fail_values
    assert max(fail_values) <= 100.0
    # ELF prunes a large share of the nodes (paper band 69.4-95.1%; a few
    # of our leave-one-out folds prune much less aggressively).
    assert sum(prune_values) / len(prune_values) > 55.0, prune_values
    assert sum(p > 40.0 for p in prune_values) >= len(prune_values) - 3, prune_values
    assert max(prune_values) < 100.0
