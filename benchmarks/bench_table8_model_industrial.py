"""Table VIII: classifier quality on the industrial-style designs.

Paper band: recall 81-100%, accuracy 74-93%, averages 91.8%/81.0%.
"""

from repro.harness import format_table, model_quality, write_report

from conftest import record_report

PAPER = {
    "design_1": (94, 92),
    "design_2": (81, 85),
    "design_3": (100, 93),
    "design_4": (89, 93),
    "design_5": (100, 81),
    "design_6": (100, 87),
    "design_7": (91, 79),
    "design_8": (100, 79),
    "design_9": (94, 85),
    "design_10": (100, 74),
}


def test_table8_model_quality_industrial(
    benchmark, industrial_datasets, industrial_classifiers
):
    quality = benchmark.pedantic(
        lambda: model_quality(industrial_datasets, industrial_classifiers),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, c in quality.items():
        rows.append(
            [
                name,
                f"{100 * c.recall:.0f}%",
                f"{100 * c.accuracy:.0f}%",
                c.tp,
                c.tn,
                c.fp,
                c.fn,
                f"{PAPER[name][0]}%",
                f"{PAPER[name][1]}%",
            ]
        )
    text = format_table(
        ["Design", "Recall", "Accuracy", "TP", "TN", "FP", "FN", "paper R", "paper A"],
        rows,
        title="Table VIII - model quality on industrial designs (leave-one-out)",
    )
    write_report("table8_model_industrial", text)
    record_report("table8", text)

    recalls = [c.recall for c in quality.values()]
    accuracies = [c.accuracy for c in quality.values()]
    # Recall-driven behaviour reproduces (the model protects positives);
    # accuracy on the synthetic industrial suite runs below the paper's
    # 74-93% because several designs share few structural regularities at
    # this scale — see EXPERIMENTS.md.
    assert sum(recalls) / len(recalls) > 0.65, recalls
    assert sum(accuracies) / len(accuracies) > 0.40, accuracies
