"""Ablation (SS III-B): batching all cut features into one tensor vs
classifying per node.  The paper credits batching (plus the fused MVN
node) for keeping inference negligible; streaming pays per-call
overhead on every node.
"""

from repro.elf import ElfParams, elf_refactor
from repro.harness import format_table, write_report

from conftest import record_report


def test_batched_vs_streaming_inference(benchmark, epfl, epfl_classifiers):
    name = "multiplier"
    g = epfl[name]
    classifier = epfl_classifiers[name]

    def batched():
        return elf_refactor(g.clone(), classifier, ElfParams(batched=True))

    def streaming():
        return elf_refactor(g.clone(), classifier, ElfParams(batched=False))

    stats_batched = benchmark.pedantic(batched, rounds=1, iterations=1)
    stats_streaming = streaming()

    per_node_batched = stats_batched.time_inference / max(
        1, stats_batched.nodes_visited
    )
    per_node_streaming = stats_streaming.time_inference / max(
        1, stats_streaming.nodes_visited
    )
    rows = [
        [
            "batched",
            f"{stats_batched.time_inference * 1e3:.2f}ms",
            f"{per_node_batched * 1e6:.2f}us",
            stats_batched.pruned,
        ],
        [
            "streaming",
            f"{stats_streaming.time_inference * 1e3:.2f}ms",
            f"{per_node_streaming * 1e6:.2f}us",
            stats_streaming.pruned,
        ],
    ]
    text = format_table(
        ["Mode", "Total inference", "Per node", "Pruned"],
        rows,
        title="Batched vs streaming classification (paper's batching trick)",
    )
    write_report("batch_vs_stream", text)
    record_report("batch_vs_stream", text)

    # Batching must be dramatically cheaper per node.
    assert per_node_batched < per_node_streaming / 5, (
        per_node_batched,
        per_node_streaming,
    )
