"""Engine scaling: sequential operators vs conflict-wave engine workers.

For each synthetic circuit the sequential sweep is timed once, then the
engine runs at 1/2/4 workers on fresh clones; every engine result is
verified equivalent to its input (exact exhaustive-simulation CEC — the
circuits keep <= 16 PIs for precisely this reason) and its AND count is
compared against the sequential sweep.  Both wave operators are
measured: ``refactor`` (the ELF engine) and ``rewrite`` (the DAC'06
operator on the same scheduler).  Results go to
``benchmarks/results/engine_scaling.{json,txt}`` (machine-readable,
alongside the rendered table; a rewrite-only run writes
``engine_scaling_rewrite.{json,txt}`` instead, so it never clobbers the
committed refactor reference artifacts) and a standardized summary —
runtime, speedup, re-snapshot rate and AND-diff per (operator, circuit,
workers) — is additionally merged into the repo-level
``BENCH_engine.json`` so successive PRs leave a diffable perf
trajectory.  The merge is per-operator: ``make bench`` refreshes the
refactor rows, ``make bench-rw`` appends/refreshes the rewrite rows,
and neither clobbers the other's records.

Staleness is reported as ``stale -> resnap``: the sequential-fallback
replay counter (structurally zero since the incremental re-snapshot
pipeline landed) next to the number of cross-wave snapshot refreshes
that replaced it, plus the evaluation dedup rate (wave-level dedup +
cross-pass/NPN/library cache).

Wall-clock speedup from worker parallelism requires actual cores: the
refactor engine's dominant phase (ISOP + factoring in the worker pool)
is pure CPU, so on a single-core container the pool only adds dispatch
overhead.  The rewrite engine never pools (library lookups are memoized
dict probes); its wave win is the batched truth kernel + per-flow
library cache.  The JSON records the core count; the pytest variant
asserts speedup only where the hardware can express it.

The ``faults`` mode measures the idle overhead of the fault-injection
sites (``docs/robustness.md``): a plan armed at every site but never
triggering must cost <1% on the layered-5k refactor run, recorded as
the ``faults-idle`` rows of ``BENCH_engine.json``.

Runs standalone too:
``PYTHONPATH=src python benchmarks/bench_engine_scaling.py
[refactor|rewrite|all|faults]``.
"""

import json
import os
import sys
from pathlib import Path

from repro import obs
from repro.circuits import layered_random_aig
from repro.harness import engine_scaling, format_table, write_report
from repro.tt.isop import clear_isop_memo
from repro.verify import equivalent

WORKER_COUNTS = (1, 2, 4)
CIRCUITS = (
    ("layered-5k", dict(n_pis=14, n_ands=5500, seed=11)),
    ("layered-8k", dict(n_pis=16, n_ands=8000, seed=23)),
)
REPO_ROOT = Path(__file__).resolve().parent.parent


def measure_circuit(
    name: str, spec: dict, workers=WORKER_COUNTS, operator: str = "refactor"
) -> dict:
    """`harness.engine_scaling` sweep + equivalence check per engine run."""
    # Cold-start discipline: the ISOP memo and the metrics registry are
    # process-wide, so without a reset an earlier operator row warms the
    # later ones (rewrite rows timed against a refactor-heated memo, and
    # counter deltas smeared across rows).  Every row starts cold.
    clear_isop_memo()
    obs.reset()
    g = layered_random_aig(name=name, **spec)
    baseline, *engine_rows = engine_scaling(g, workers_list=workers, operator=operator)
    return {
        "circuit": name,
        "operator": operator,
        "n_ands": g.n_ands,
        "n_pis": g.n_pis,
        "level": g.max_level(),
        "sequential": {
            "runtime": baseline.runtime,
            "n_ands": baseline.n_ands,
            "commits": baseline.commits,
        },
        "engine": [
            {
                "workers": row.workers,
                "runtime": row.runtime,
                "speedup": row.speedup,
                "n_ands": row.n_ands,
                "and_diff_pct": 100.0
                * (row.n_ands - baseline.n_ands)
                / max(1, baseline.n_ands),
                "commits": row.commits,
                "n_waves": row.n_waves,
                "n_stale": row.n_stale,
                "n_resnapshotted": row.n_resnapshotted,
                "dedup_rate": row.dedup_rate,
                "equivalent": bool(equivalent(g, row.graph)),
            }
            for row in engine_rows
        ],
    }


def report_name(operators) -> str:
    """Artifact stem for a run: rewrite-only runs keep their own files so
    they never clobber the committed refactor reference artifacts."""
    return "engine_scaling" if "refactor" in operators else "engine_scaling_rewrite"


def run_scaling(
    circuits=CIRCUITS, workers=WORKER_COUNTS, operators=("refactor",)
) -> dict:
    payload = {
        "cores": os.cpu_count() or 1,
        "workers": list(workers),
        "operators": list(operators),
        "results": [
            measure_circuit(name, spec, workers, operator)
            for operator in operators
            for name, spec in circuits
        ],
    }
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"{report_name(operators)}.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    write_bench_summary(payload)
    return payload


def write_bench_summary(payload: dict, path: Path | None = None) -> dict:
    """Standardized repo-level ``BENCH_engine.json`` perf trajectory.

    One flat record per (operator, circuit, workers) with the headline
    quantities — runtime, speedup, stale/re-snapshot counters, AND-diff —
    so future PRs can diff engine performance without parsing the full
    report.  Records of operators *not* in this payload are preserved
    from the existing file, which is what lets ``make bench`` (refactor)
    and ``make bench-rw`` (rewrite) maintain one trajectory together.
    """
    records = []
    for result in payload["results"]:
        operator = result.get("operator", "refactor")
        mode_prefix = "" if operator == "refactor" else f"{operator}-"
        records.append(
            {
                "operator": operator,
                "circuit": result["circuit"],
                "mode": f"{mode_prefix}sequential",
                "workers": 0,
                "runtime_s": round(result["sequential"]["runtime"], 4),
                "speedup": 1.0,
                "n_ands": result["sequential"]["n_ands"],
                "and_diff_pct": 0.0,
                "n_stale": 0,
                "n_resnapshotted": 0,
                "dedup_rate": 0.0,
            }
        )
        for point in result["engine"]:
            records.append(
                {
                    "operator": operator,
                    "circuit": result["circuit"],
                    "mode": f"{mode_prefix}engine-w{point['workers']}",
                    "workers": point["workers"],
                    "runtime_s": round(point["runtime"], 4),
                    "speedup": round(point["speedup"], 4),
                    "n_ands": point["n_ands"],
                    "and_diff_pct": round(point["and_diff_pct"], 4),
                    "n_stale": point["n_stale"],
                    "n_resnapshotted": point["n_resnapshotted"],
                    "dedup_rate": round(point["dedup_rate"], 4),
                }
            )
    return merge_bench_records(records, payload["cores"], path)


def merge_bench_records(records: list, cores: int, path: Path | None = None) -> dict:
    """Merge ``records`` into ``BENCH_engine.json``, preserving the
    records of every operator *not* measured this run — the mechanism
    that lets ``make bench`` / ``make bench-rw`` / ``make bench-faults``
    maintain one perf trajectory without clobbering each other.

    Every record is stamped with the ``cpu_count`` it was measured on
    (kept records missing one are backfilled from their file's top-level
    ``cores``), so mixed-machine trajectories stay interpretable."""
    target = path or (REPO_ROOT / "BENCH_engine.json")
    measured = {record["operator"] for record in records}
    for record in records:
        record.setdefault("cpu_count", cores)
    if target.is_file():
        try:
            previous = json.loads(target.read_text(encoding="utf-8"))
        except (ValueError, OSError):  # pragma: no cover - corrupt file
            previous = {}
        kept = [
            record
            for record in previous.get("records", ())
            if record.get("operator", "refactor") not in measured
        ]
        for record in kept:
            record.setdefault("cpu_count", previous.get("cores", cores))
        records = kept + records
    summary = {
        "benchmark": "engine_scaling",
        "cores": cores,
        "records": records,
    }
    target.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    return summary


FAULT_SITES = (
    "worker.start",
    "worker.chunk",
    "chunk.result",
    "shm.create",
    "classifier.fire",
)


def _fire_cost_ns(site: str, calls: int = 200_000, batches: int = 5) -> float:
    """Best-of-``batches`` per-call cost of one ``faults.fire`` consult."""
    from time import perf_counter

    from repro.resilience import faults

    best = float("inf")
    for _ in range(batches):
        start = perf_counter()
        for _ in range(calls):
            faults.fire(site, chunk=1)
        best = min(best, perf_counter() - start)
    return 1e9 * best / calls


def run_faults_overhead(
    circuit=("layered-5k", dict(n_pis=14, n_ands=5500, seed=11)),
    workers: int = 2,
) -> dict:
    """Idle fault-injection overhead on the layered-5k refactor run.

    The quantity of interest — the cost of a ``REPRO_FAULTS`` plan that
    is armed at every site but never triggers — is far below wall-clock
    noise on a shared container (an A/B of two multi-second runs swings
    ±10%, useless against a <1% contract), so it is measured where it
    is deterministic and composed:

    1. one instrumented engine pass with pooling forced on counts how
       many times each fault site is actually consulted (worker-side
       ``worker.chunk`` consults mirror the parent's per-chunk
       ``chunk.result`` waits, which the parent *can* count), and
       verifies the result is CEC-equivalent with the plan armed;
    2. a microbenchmark prices one ``faults.fire`` consult with the
       plan installed vs cleared (best-of-batches over 200k calls);
    3. overhead = consults x per-consult delta, relative to the pass
       runtime.

    The contract (``docs/robustness.md``) is <1%; the ``faults-idle``
    rows of ``BENCH_engine.json`` record the result.
    """
    from time import perf_counter

    import repro.engine.parallel as parallel_mod
    from repro.engine import EngineParams, engine_refactor
    from repro.resilience import faults

    name, spec = circuit
    idle_plan = ";".join(f"{site}=raise@1000000000" for site in FAULT_SITES)
    clear_isop_memo()
    obs.reset()
    g = layered_random_aig(name=name, **spec)
    run = g.clone()
    site_calls: dict[str, int] = {}
    real_fire = parallel_mod.fault_fire

    def counting_fire(site, **ctx):
        site_calls[site] = site_calls.get(site, 0) + 1
        real_fire(site, **ctx)

    real_cpu_count = os.cpu_count
    try:
        # Force the pooled path even on a single-core host (same patch
        # the engine's own pool tests use) so every parent-side site is
        # genuinely on the measured code path, with the plan armed.
        parallel_mod.os.cpu_count = lambda: max(2, real_cpu_count() or 1)
        parallel_mod.fault_fire = counting_fire
        faults.install(idle_plan)
        start = perf_counter()
        engine_refactor(run, EngineParams(workers=workers))
        runtime_s = perf_counter() - start
        cec_ok = bool(equivalent(g, run))
        # Workers consult worker.chunk once per chunk; the counting
        # wrapper lives in the parent, so mirror the per-chunk count.
        site_calls["worker.chunk"] = site_calls.get("chunk.result", 0)
        n_consults = sum(site_calls.values())
        fire_idle_ns = _fire_cost_ns("worker.chunk")
    finally:
        faults.clear()
        parallel_mod.fault_fire = real_fire
        parallel_mod.os.cpu_count = real_cpu_count
    fire_off_ns = _fire_cost_ns("worker.chunk")
    overhead_s = n_consults * max(0.0, fire_idle_ns - fire_off_ns) * 1e-9
    payload = {
        "cores": real_cpu_count() or 1,
        "circuit": name,
        "workers": workers,
        "runtime_s": runtime_s,
        "site_calls": site_calls,
        "n_consults": n_consults,
        "fire_off_ns": round(fire_off_ns, 1),
        "fire_idle_ns": round(fire_idle_ns, 1),
        "overhead_s": overhead_s,
        "overhead_pct": 100.0 * overhead_s / runtime_s,
        "equivalent": cec_ok,
        "plan": idle_plan,
    }
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "engine_faults_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    merge_bench_records(
        [
            {
                "operator": "faults-idle",
                "circuit": name,
                "mode": "faults-idle",
                "workers": workers,
                "runtime_s": round(runtime_s, 4),
                "n_consults": n_consults,
                "fire_idle_ns": round(fire_idle_ns, 1),
                "overhead_pct": round(payload["overhead_pct"], 4),
            }
        ],
        payload["cores"],
    )
    return payload


def render_faults(payload: dict) -> str:
    rows = [
        [
            payload["circuit"],
            f"pooled w={payload['workers']}",
            f"{payload['runtime_s']:.3f}s",
            payload["n_consults"],
            f"{payload['fire_off_ns']:.0f}ns",
            f"{payload['fire_idle_ns']:.0f}ns",
            f"{payload['overhead_pct']:+.4f}%",
            "yes" if payload["equivalent"] else "NO",
        ]
    ]
    return format_table(
        [
            "Circuit",
            "Mode",
            "Runtime",
            "Consults",
            "fire() off",
            "fire() idle",
            "Overhead",
            "CEC",
        ],
        rows,
        title=(
            f"Idle fault-injection overhead: consults x per-consult cost "
            f"({payload['cores']} core(s))"
        ),
    )


def render(payload: dict) -> str:
    rows = []
    for result in payload["results"]:
        operator = result.get("operator", "refactor")
        rows.append(
            [
                result["circuit"],
                operator,
                "sequential",
                f"{result['sequential']['runtime']:.2f}s",
                "1.00x",
                result["sequential"]["n_ands"],
                "-",
                "-",
                "-",
                "-",
            ]
        )
        for point in result["engine"]:
            rows.append(
                [
                    result["circuit"],
                    operator,
                    f"engine w={point['workers']}",
                    f"{point['runtime']:.2f}s",
                    f"{point['speedup']:.2f}x",
                    point["n_ands"],
                    f"{point['and_diff_pct']:+.2f}%",
                    f"{point['n_stale']} -> {point['n_resnapshotted']}",
                    f"{100.0 * point['dedup_rate']:.1f}%",
                    "yes" if point["equivalent"] else "NO",
                ]
            )
    return format_table(
        [
            "Circuit",
            "Operator",
            "Mode",
            "Runtime",
            "Speedup",
            "ANDs",
            "And diff",
            "Stale->Resnap",
            "Dedup",
            "CEC",
        ],
        rows,
        title=f"Conflict-wave engine scaling ({payload['cores']} core(s) available)",
    )


def test_engine_scaling(benchmark):
    from conftest import record_report

    payload = benchmark.pedantic(
        run_scaling,
        kwargs={"operators": ("refactor", "rewrite")},
        rounds=1,
        iterations=1,
    )
    text = render(payload)
    write_report("engine_scaling", text)
    record_report("engine_scaling", text)

    for result in payload["results"]:
        operator = result.get("operator", "refactor")
        # Rewrite waves track sequential tighter than refactor waves: the
        # acceptance bound is +-1.5% vs +-2% (4-feasible cuts are more
        # disjoint, so wave order disturbs the greedy sweep less).
        bound = 1.5 if operator == "rewrite" else 2.0
        for point in result["engine"]:
            # Every engine run must preserve functionality and land within
            # the bound of the sequential sweep's quality.
            assert point["equivalent"], (operator, result["circuit"], point["workers"])
            assert abs(point["and_diff_pct"]) <= bound, (operator, point)
            # The sequential fallback is gone: staleness is handled by the
            # incremental re-snapshot pipeline instead.
            assert point["n_stale"] == 0, point
            if point["workers"] > 1:
                assert point["n_resnapshotted"] > 0, (operator, point)
    # Worker scaling is only observable with real cores behind the pool,
    # and only the refactor engine dispatches to the pool at all.
    if payload["cores"] >= 4:
        four = [
            point
            for result in payload["results"]
            if result.get("operator", "refactor") == "refactor"
            for point in result["engine"]
            if point["workers"] == 4
        ]
        assert all(point["speedup"] > 1.0 for point in four), four


if __name__ == "__main__":
    choice = sys.argv[1] if len(sys.argv) > 1 else "refactor"
    if choice == "faults":
        payload = run_faults_overhead()
        text = render_faults(payload)
        write_report("engine_faults_overhead", text)
        print(text)
        print(
            "\nwritten: benchmarks/results/engine_faults_overhead.{json,txt} "
            "and the faults-idle rows of BENCH_engine.json"
        )
        raise SystemExit(0)
    operators = {
        "refactor": ("refactor",),
        "rewrite": ("rewrite",),
        "all": ("refactor", "rewrite"),
    }.get(choice)
    if operators is None:
        raise SystemExit(f"usage: {sys.argv[0]} [refactor|rewrite|all|faults]")
    report = run_scaling(operators=operators)
    text = render(report)
    name = report_name(operators)
    write_report(name, text)
    print(text)
    print(f"\nwritten: benchmarks/results/{name}.{{json,txt}} and BENCH_engine.json")
