"""Engine scaling: sequential refactor vs conflict-wave engine workers.

For each synthetic circuit the sequential sweep is timed once, then the
engine runs at 1/2/4 workers on fresh clones; every engine result is
verified equivalent to its input (exact exhaustive-simulation CEC — the
circuits keep <= 16 PIs for precisely this reason) and its AND count is
compared against the sequential sweep.  Results go to
``benchmarks/results/engine_scaling.json`` (machine-readable, alongside
the rendered table) so scaling regressions are diffable across runs.

Wall-clock speedup from worker parallelism requires actual cores: the
engine's dominant phase (ISOP + factoring in the worker pool) is pure
CPU, so on a single-core container the pool only adds dispatch overhead.
The JSON records the core count; the pytest variant asserts speedup only
where the hardware can express it.

Runs standalone too: ``PYTHONPATH=src python benchmarks/bench_engine_scaling.py``.
"""

import json
import os
from pathlib import Path

from repro.circuits import layered_random_aig
from repro.harness import engine_scaling, format_table, write_report
from repro.verify import equivalent

WORKER_COUNTS = (1, 2, 4)
CIRCUITS = (
    ("layered-5k", dict(n_pis=14, n_ands=5500, seed=11)),
    ("layered-8k", dict(n_pis=16, n_ands=8000, seed=23)),
)


def measure_circuit(name: str, spec: dict, workers=WORKER_COUNTS) -> dict:
    """`harness.engine_scaling` sweep + equivalence check per engine run."""
    g = layered_random_aig(name=name, **spec)
    baseline, *engine_rows = engine_scaling(g, workers_list=workers)
    return {
        "circuit": name,
        "n_ands": g.n_ands,
        "n_pis": g.n_pis,
        "level": g.max_level(),
        "sequential": {
            "runtime": baseline.runtime,
            "n_ands": baseline.n_ands,
            "commits": baseline.commits,
        },
        "engine": [
            {
                "workers": row.workers,
                "runtime": row.runtime,
                "speedup": row.speedup,
                "n_ands": row.n_ands,
                "and_diff_pct": 100.0
                * (row.n_ands - baseline.n_ands)
                / max(1, baseline.n_ands),
                "commits": row.commits,
                "n_waves": row.n_waves,
                "n_stale": row.n_stale,
                "equivalent": bool(equivalent(g, row.graph)),
            }
            for row in engine_rows
        ],
    }


def run_scaling(circuits=CIRCUITS, workers=WORKER_COUNTS) -> dict:
    payload = {
        "cores": os.cpu_count() or 1,
        "workers": list(workers),
        "results": [measure_circuit(name, spec, workers) for name, spec in circuits],
    }
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "engine_scaling.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return payload


def render(payload: dict) -> str:
    rows = []
    for result in payload["results"]:
        rows.append(
            [
                result["circuit"],
                "sequential",
                f"{result['sequential']['runtime']:.2f}s",
                "1.00x",
                result["sequential"]["n_ands"],
                "-",
                "-",
            ]
        )
        for point in result["engine"]:
            rows.append(
                [
                    result["circuit"],
                    f"engine w={point['workers']}",
                    f"{point['runtime']:.2f}s",
                    f"{point['speedup']:.2f}x",
                    point["n_ands"],
                    f"{point['and_diff_pct']:+.2f}%",
                    "yes" if point["equivalent"] else "NO",
                ]
            )
    return format_table(
        ["Circuit", "Mode", "Runtime", "Speedup", "ANDs", "And diff", "CEC"],
        rows,
        title=f"Conflict-wave engine scaling ({payload['cores']} core(s) available)",
    )


def test_engine_scaling(benchmark):
    from conftest import record_report

    payload = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    text = render(payload)
    write_report("engine_scaling", text)
    record_report("engine_scaling", text)

    for result in payload["results"]:
        for point in result["engine"]:
            # Every engine run must preserve functionality and land within
            # 2% of the sequential sweep's quality.
            assert point["equivalent"], (result["circuit"], point["workers"])
            assert abs(point["and_diff_pct"]) <= 2.0, point
    # Worker scaling is only observable with real cores behind the pool.
    if payload["cores"] >= 4:
        four = [
            point
            for result in payload["results"]
            for point in result["engine"]
            if point["workers"] == 4
        ]
        assert all(point["speedup"] > 1.0 for point in four), four


if __name__ == "__main__":
    report = run_scaling()
    print(render(report))
    print("\nwritten: benchmarks/results/engine_scaling.json")
