"""Engine scaling: sequential refactor vs conflict-wave engine workers.

For each synthetic circuit the sequential sweep is timed once, then the
engine runs at 1/2/4 workers on fresh clones; every engine result is
verified equivalent to its input (exact exhaustive-simulation CEC — the
circuits keep <= 16 PIs for precisely this reason) and its AND count is
compared against the sequential sweep.  Results go to
``benchmarks/results/engine_scaling.json`` (machine-readable, alongside
the rendered table) and a standardized summary — runtime, speedup,
re-snapshot rate and AND-diff per (circuit, workers) — is additionally
written to the repo-level ``BENCH_engine.json`` so successive PRs leave
a diffable perf trajectory.

Staleness is reported as ``stale -> resnap``: the sequential-fallback
replay counter (structurally zero since the incremental re-snapshot
pipeline landed) next to the number of cross-wave snapshot refreshes
that replaced it, plus the resynthesis dedup rate (wave-level dedup +
cross-pass/NPN cache).

Wall-clock speedup from worker parallelism requires actual cores: the
engine's dominant phase (ISOP + factoring in the worker pool) is pure
CPU, so on a single-core container the pool only adds dispatch overhead.
The JSON records the core count; the pytest variant asserts speedup only
where the hardware can express it.

Runs standalone too: ``PYTHONPATH=src python benchmarks/bench_engine_scaling.py``.
"""

import json
import os
from pathlib import Path

from repro.circuits import layered_random_aig
from repro.harness import engine_scaling, format_table, write_report
from repro.verify import equivalent

WORKER_COUNTS = (1, 2, 4)
CIRCUITS = (
    ("layered-5k", dict(n_pis=14, n_ands=5500, seed=11)),
    ("layered-8k", dict(n_pis=16, n_ands=8000, seed=23)),
)
REPO_ROOT = Path(__file__).resolve().parent.parent


def measure_circuit(name: str, spec: dict, workers=WORKER_COUNTS) -> dict:
    """`harness.engine_scaling` sweep + equivalence check per engine run."""
    g = layered_random_aig(name=name, **spec)
    baseline, *engine_rows = engine_scaling(g, workers_list=workers)
    return {
        "circuit": name,
        "n_ands": g.n_ands,
        "n_pis": g.n_pis,
        "level": g.max_level(),
        "sequential": {
            "runtime": baseline.runtime,
            "n_ands": baseline.n_ands,
            "commits": baseline.commits,
        },
        "engine": [
            {
                "workers": row.workers,
                "runtime": row.runtime,
                "speedup": row.speedup,
                "n_ands": row.n_ands,
                "and_diff_pct": 100.0
                * (row.n_ands - baseline.n_ands)
                / max(1, baseline.n_ands),
                "commits": row.commits,
                "n_waves": row.n_waves,
                "n_stale": row.n_stale,
                "n_resnapshotted": row.n_resnapshotted,
                "dedup_rate": row.dedup_rate,
                "equivalent": bool(equivalent(g, row.graph)),
            }
            for row in engine_rows
        ],
    }


def run_scaling(circuits=CIRCUITS, workers=WORKER_COUNTS) -> dict:
    payload = {
        "cores": os.cpu_count() or 1,
        "workers": list(workers),
        "results": [measure_circuit(name, spec, workers) for name, spec in circuits],
    }
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "engine_scaling.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    write_bench_summary(payload)
    return payload


def write_bench_summary(payload: dict, path: Path | None = None) -> dict:
    """Standardized repo-level ``BENCH_engine.json`` perf trajectory.

    One flat record per (circuit, workers) with the headline quantities —
    runtime, speedup, stale/re-snapshot counters, AND-diff — so future
    PRs can diff engine performance without parsing the full report.
    """
    records = []
    for result in payload["results"]:
        records.append(
            {
                "circuit": result["circuit"],
                "mode": "sequential",
                "workers": 0,
                "runtime_s": round(result["sequential"]["runtime"], 4),
                "speedup": 1.0,
                "n_ands": result["sequential"]["n_ands"],
                "and_diff_pct": 0.0,
                "n_stale": 0,
                "n_resnapshotted": 0,
                "dedup_rate": 0.0,
            }
        )
        for point in result["engine"]:
            records.append(
                {
                    "circuit": result["circuit"],
                    "mode": f"engine-w{point['workers']}",
                    "workers": point["workers"],
                    "runtime_s": round(point["runtime"], 4),
                    "speedup": round(point["speedup"], 4),
                    "n_ands": point["n_ands"],
                    "and_diff_pct": round(point["and_diff_pct"], 4),
                    "n_stale": point["n_stale"],
                    "n_resnapshotted": point["n_resnapshotted"],
                    "dedup_rate": round(point["dedup_rate"], 4),
                }
            )
    summary = {
        "benchmark": "engine_scaling",
        "cores": payload["cores"],
        "records": records,
    }
    target = path or (REPO_ROOT / "BENCH_engine.json")
    target.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    return summary


def render(payload: dict) -> str:
    rows = []
    for result in payload["results"]:
        rows.append(
            [
                result["circuit"],
                "sequential",
                f"{result['sequential']['runtime']:.2f}s",
                "1.00x",
                result["sequential"]["n_ands"],
                "-",
                "-",
                "-",
                "-",
            ]
        )
        for point in result["engine"]:
            rows.append(
                [
                    result["circuit"],
                    f"engine w={point['workers']}",
                    f"{point['runtime']:.2f}s",
                    f"{point['speedup']:.2f}x",
                    point["n_ands"],
                    f"{point['and_diff_pct']:+.2f}%",
                    f"{point['n_stale']} -> {point['n_resnapshotted']}",
                    f"{100.0 * point['dedup_rate']:.1f}%",
                    "yes" if point["equivalent"] else "NO",
                ]
            )
    return format_table(
        [
            "Circuit",
            "Mode",
            "Runtime",
            "Speedup",
            "ANDs",
            "And diff",
            "Stale->Resnap",
            "Dedup",
            "CEC",
        ],
        rows,
        title=f"Conflict-wave engine scaling ({payload['cores']} core(s) available)",
    )


def test_engine_scaling(benchmark):
    from conftest import record_report

    payload = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    text = render(payload)
    write_report("engine_scaling", text)
    record_report("engine_scaling", text)

    for result in payload["results"]:
        for point in result["engine"]:
            # Every engine run must preserve functionality and land within
            # 2% of the sequential sweep's quality.
            assert point["equivalent"], (result["circuit"], point["workers"])
            assert abs(point["and_diff_pct"]) <= 2.0, point
            # The sequential fallback is gone: staleness is handled by the
            # incremental re-snapshot pipeline instead.
            assert point["n_stale"] == 0, point
            if point["workers"] > 1:
                assert point["n_resnapshotted"] > 0, point
    # Worker scaling is only observable with real cores behind the pool.
    if payload["cores"] >= 4:
        four = [
            point
            for result in payload["results"]
            for point in result["engine"]
            if point["workers"] == 4
        ]
        assert all(point["speedup"] > 1.0 for point in four), four


if __name__ == "__main__":
    report = run_scaling()
    text = render(report)
    write_report("engine_scaling", text)
    print(text)
    print("\nwritten: benchmarks/results/engine_scaling.{json,txt} and BENCH_engine.json")
