"""Wave-transport benchmark: shared-memory segments vs pickled chunks.

Replays realistic resynthesis waves (unique cut functions harvested from
reconvergence-driven cuts of the layered-5k circuit) through a two-worker
:class:`repro.engine.parallel.ResynthExecutor` under both transports and
records, per transport: wall time, serialized bytes that actually crossed
the worker pipes (``engine_task_bytes_total``) and, for shm, the segment
volume written once and mapped zero-copy
(``engine_shm_segment_bytes_total``).  The headline number is the
serialized-bytes reduction of the shm transport — the acceptance bar is
>= 80% on production-size waves.

Results land in ``benchmarks/results/transport_bytes.{json,txt}`` and as
``operator: "transport"`` rows of the repo-level ``BENCH_engine.json``
perf trajectory (other operators' records are preserved); the summary
also records ``cpu_count`` so trajectory diffs are interpretable across
hosts.  On a single-core container the pool guard would refuse to
dispatch at all, so the benchmark forces pooling and flags the run with
``forced_pool`` (byte counts are exact either way; times are then
dispatch overhead, not speedup).

Runs standalone: ``PYTHONPATH=src python benchmarks/bench_transport.py``
(or ``make bench-mp``).
"""

import json
import os
import time
from pathlib import Path
from unittest import mock

import repro.engine.parallel as parallel
from repro import obs
from repro.aig.simulate import cone_truth
from repro.circuits import layered_random_aig
from repro.cuts.reconv import reconv_cut
from repro.engine import ResynthExecutor
from repro.harness import format_table, write_report
from repro.opt import RefactorParams
from repro.tt.isop import clear_isop_memo

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKERS = 2
WAVE_SIZE = 256
CIRCUIT = ("layered-5k", dict(n_pis=14, n_ands=5500, seed=11))


def harvest_waves() -> list[list[tuple[int, int]]]:
    """Unique resynthesis tasks of the circuit, in wave-sized slices."""
    name, spec = CIRCUIT
    g = layered_random_aig(name=name, **spec)
    seen = set()
    tasks = []
    for node in g.and_ids():
        cut = reconv_cut(g, node, 10, collect_features=False)
        if cut.n_leaves < 2:
            continue
        task = (cone_truth(g, node, cut.leaves), cut.n_leaves)
        if task not in seen:
            seen.add(task)
            tasks.append(task)
    return [tasks[i : i + WAVE_SIZE] for i in range(0, len(tasks), WAVE_SIZE)]


def measure(transport: str, waves) -> dict:
    # Cold start per row: the ISOP memo and the counters are process-wide.
    clear_isop_memo()
    obs.reset()
    params = RefactorParams()
    t0 = time.perf_counter()
    with ResynthExecutor(WORKERS, params, transport=transport) as executor:
        for wave in waves:
            executor.run(wave)
    runtime = time.perf_counter() - t0
    reg = obs.metrics()
    return {
        "transport": transport,
        "runtime_s": round(runtime, 4),
        "task_bytes": int(reg.value("engine_task_bytes_total", transport=transport)),
        "segment_bytes": int(reg.value("engine_shm_segment_bytes_total") or 0),
        "segments": int(reg.value("engine_shm_segments_created_total") or 0),
        "fallbacks": int(reg.value("engine_shm_fallbacks_total") or 0),
    }


def run_benchmark() -> dict:
    waves = harvest_waves()
    forced_pool = (os.cpu_count() or 1) < 2
    if forced_pool:
        # The pool guard refuses to dispatch on one core; the benchmark
        # exists to measure transport volume, so dispatch anyway.
        with mock.patch.object(parallel.os, "cpu_count", lambda: WORKERS):
            rows = [measure(t, waves) for t in ("shm", "pickle")]
    else:
        rows = [measure(t, waves) for t in ("shm", "pickle")]
    by_transport = {row["transport"]: row for row in rows}
    reduction = 1.0 - by_transport["shm"]["task_bytes"] / max(
        1, by_transport["pickle"]["task_bytes"]
    )
    return {
        "benchmark": "wave_transport",
        "circuit": CIRCUIT[0],
        "cpu_count": os.cpu_count() or 1,
        "forced_pool": forced_pool,
        "workers": WORKERS,
        "n_waves": len(waves),
        "n_tasks": sum(len(w) for w in waves),
        "serialized_reduction_pct": round(100.0 * reduction, 2),
        "transports": rows,
    }


def merge_bench_summary(payload: dict, path: Path | None = None) -> None:
    """Fold transport rows into ``BENCH_engine.json``, preserving the
    scaling records other bench targets maintain."""
    target = path or (REPO_ROOT / "BENCH_engine.json")
    summary = {}
    if target.is_file():
        try:
            summary = json.loads(target.read_text(encoding="utf-8"))
        except (ValueError, OSError):  # pragma: no cover - corrupt file
            summary = {}
    records = [
        record
        for record in summary.get("records", ())
        if record.get("operator", "refactor") != "transport"
    ]
    # Every record carries the cpu_count it was measured on; kept rows
    # predating the stamp inherit their file's machine-level count.
    fallback_count = summary.get("cpu_count", summary.get("cores", payload["cpu_count"]))
    for record in records:
        record.setdefault("cpu_count", fallback_count)
    for row in payload["transports"]:
        records.append(
            {
                "operator": "transport",
                "circuit": payload["circuit"],
                "mode": f"{row['transport']}-w{payload['workers']}",
                "workers": payload["workers"],
                "runtime_s": row["runtime_s"],
                "task_bytes": row["task_bytes"],
                "segment_bytes": row["segment_bytes"],
                "cpu_count": payload["cpu_count"],
            }
        )
    summary.update(
        {
            "benchmark": summary.get("benchmark", "engine_scaling"),
            "cpu_count": payload["cpu_count"],
            "records": records,
        }
    )
    target.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")


def render(payload: dict) -> str:
    rows = [
        [
            payload["circuit"],
            row["transport"],
            f"w={payload['workers']}",
            f"{row['runtime_s']:.2f}s",
            row["task_bytes"],
            row["segment_bytes"] or "-",
            row["fallbacks"],
        ]
        for row in payload["transports"]
    ]
    title = (
        f"Wave transport ({payload['n_tasks']} tasks / {payload['n_waves']} waves, "
        f"{payload['serialized_reduction_pct']:.1f}% serialized-byte reduction, "
        f"{payload['cpu_count']} core(s)"
        + (", forced pool)" if payload["forced_pool"] else ")")
    )
    return format_table(
        ["Circuit", "Transport", "Mode", "Runtime", "Pipe bytes", "Segment bytes", "Fallbacks"],
        rows,
        title=title,
    )


if __name__ == "__main__":
    payload = run_benchmark()
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "transport_bytes.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    text = render(payload)
    write_report("transport_bytes", text)
    merge_bench_summary(payload)
    print(text)
    print("\nwritten: benchmarks/results/transport_bytes.{json,txt} and BENCH_engine.json")
