"""Table I: EPFL-like arithmetic circuit statistics.

Columns: And, Level, PIs, POs, and the number/fraction of nodes the
baseline refactor operator actually resynthesizes.  Paper values are
shown alongside; node counts differ (regenerated circuits at a Python-
tractable scale) but the *Refactored %* column — the redundancy story —
must land in the same regime: ~0.5-7.5%, with sqrt the outlier.
"""

from repro.circuits import PAPER_TABLE1
from repro.harness import format_table, suite_statistics, write_report

from conftest import record_report


def test_table1_epfl_statistics(benchmark, epfl):
    rows = benchmark.pedantic(
        lambda: suite_statistics(epfl), rounds=1, iterations=1
    )
    table_rows = []
    for r in rows:
        paper = PAPER_TABLE1[r.design]
        table_rows.append(
            [
                r.design,
                r.n_ands,
                r.level,
                r.n_pis,
                r.n_pos,
                r.refactored,
                f"{r.refactored_pct:.2f}",
                f"{paper[5]:.2f}",
            ]
        )
    text = format_table(
        ["Design", "And", "Level", "PIs", "POs", "Refactored", "%", "paper %"],
        table_rows,
        title="Table I - EPFL-like arithmetic circuit statistics",
    )
    write_report("table1_epfl_stats", text)
    record_report("table1", text)

    by_name = {r.design: r for r in rows}
    # Redundancy shape: success is rare everywhere...
    for r in rows:
        assert r.refactored_pct < 15.0, f"{r.design} implausibly refactorable"
    # ...and sqrt is the high-success outlier, as in the paper.
    others = [r.refactored_pct for r in rows if r.design != "sqrt"]
    assert by_name["sqrt"].refactored_pct > max(others) * 0.8
    # Interfaces follow the paper's structure (PIs/POs ratios).
    assert by_name["multiplier"].n_pis == 2 * by_name["square"].n_pis
    assert by_name["sqrt"].n_pis == 2 * by_name["sqrt"].n_pos
