"""Claim check (SS II): refactor accounts for 20-40% of a resyn2-style
flow's runtime despite being invoked only twice (balance 3x, rewrite 4x).
"""

from repro.circuits import epfl_circuit
from repro.harness import format_table, write_report
from repro.opt import OptSession, RESYN2

from conftest import record_report


def test_flow_profile_refactor_share(benchmark):
    g = epfl_circuit("multiplier")

    def run():
        with OptSession() as session:
            return session.run(g.clone(), RESYN2)

    _out, report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [s.command, f"{s.runtime:.2f}", s.n_ands, s.level] for s in report.steps
    ]
    rf_share = report.fraction_of("rf")
    rows.append(["refactor share", f"{100 * rf_share:.1f}%", "", ""])
    text = format_table(
        ["Step", "Runtime s", "And", "Level"],
        rows,
        title="resyn2 profile - refactor's runtime share (paper: 20-40%)",
    )
    write_report("flow_profile", text)
    record_report("flow_profile", text)

    # Two rf invocations vs three b and four rw: refactor is still a
    # major cost center. Bands widened for substrate differences.
    assert 0.10 < rf_share < 0.75, rf_share
    assert len([s for s in report.steps if s.command.startswith("rf")]) == 2
    assert len([s for s in report.steps if s.command.startswith("rw")]) == 4
