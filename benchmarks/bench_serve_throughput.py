"""Sharded serving throughput: many circuits in flight, fused ELF inference.

A suite of 9 circuits (the tiny EPFL-like six plus three synthetic
designs) is served through an ELF flow across 3 shards.  The run records

* the **streamed completion order** — results are consumed as circuits
  finish, not after the slowest shard;
* **classifier batch occupancy** per shard — how many circuits and
  feature rows each fused inference served, and the fraction of
  dispatches cross-circuit fusion eliminated;
* a **byte-identity audit** — at ``workers=1`` every streamed result is
  re-derived by a blocking per-circuit ``run_flow`` and the BENCH texts
  must match exactly (the serving layer's correctness contract);
* **tail latency** — nearest-rank p50/p95/p99 of the per-circuit
  runtimes — and the content-addressed cache **hit rate** of the run.

A second measurement, :func:`run_cold_warm`, serves the same suite twice
through the *process-sharded* path with one shared
:class:`repro.serve.ResultStore` — a cold pass (0% repeat traffic) and a
warm pass (100% repeats, every circuit answered from the cache) — and
folds the pair into the repo-level ``BENCH_engine.json`` trajectory as
``operator: "serve"`` rows.  The warm row certifies the cache contract:
every hit is byte-identical to its cold miss, at double-digit speedup.

Results go to ``benchmarks/results/serve_throughput.json`` alongside the
rendered table.  Throughput on a single-core container reflects the GIL
(circuit threads interleave); the shape that matters everywhere is the
occupancy/amortization column, which is timing-independent.

Runs standalone too: ``PYTHONPATH=src python benchmarks/bench_serve_throughput.py``.
"""

import json
import os
from pathlib import Path

from repro import obs
from repro.circuits import epfl_suite, layered_random_aig, random_aig
from repro.elf import collect_dataset, train_leave_one_out
from repro.harness import format_table, serve_throughput, write_report
from repro.ml import TrainConfig
from repro.serve import ResultStore, ServeParams, serve_suite_procs

FLOW = "b; elf"
COLD_WARM_FLOW = "b; rf"  # classifier-less: the process path serves it as-is
N_SHARDS = 3
WORKERS = 1  # the deterministic mode the byte-identity contract covers


def percentile(values: list, q: float) -> float:
    """Nearest-rank percentile (the convention perf dashboards use)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


def latency_percentiles(runtimes: list) -> dict:
    return {
        "p50_s": round(percentile(runtimes, 50), 4),
        "p95_s": round(percentile(runtimes, 95), 4),
        "p99_s": round(percentile(runtimes, 99), 4),
    }


def build_suite() -> dict:
    """Nine small circuits: EPFL-like tiny six + three synthetic designs."""
    suite = dict(epfl_suite("tiny"))
    suite["layered-a"] = layered_random_aig(n_pis=12, n_ands=500, seed=5, name="layered-a")
    suite["layered-b"] = layered_random_aig(n_pis=13, n_ands=700, seed=9, name="layered-b")
    suite["rand-c"] = random_aig(n_pis=10, n_ands=400, n_pos=8, seed=3, name="rand-c")
    return suite


def build_classifier():
    """Quick classifier trained on held-out random circuits (not the suite)."""
    graphs = [
        random_aig(n_pis=8, n_ands=200, n_pos=4, seed=s, name=f"train{s}")
        for s in (21, 22, 23)
    ]
    datasets = {g.name: collect_dataset(g) for g in graphs}
    return train_leave_one_out(
        datasets, "train21", TrainConfig(epochs=8, seed=0), target_recall=0.95
    )


def run_serve(flow=FLOW, n_shards=N_SHARDS, workers=WORKERS) -> dict:
    suite = build_suite()
    classifier = build_classifier()
    obs.reset()  # per-run registry numbers: serving metrics start at zero
    store = ResultStore(max_entries=64)
    rows, report = serve_throughput(
        suite,
        flow=flow,
        n_shards=n_shards,
        workers=workers,
        classifier=classifier,
        check_identity=(workers == 1),
        store=store,
    )
    payload = {
        "cores": os.cpu_count() or 1,
        "cpu_count": os.cpu_count() or 1,
        "flow": flow,
        "n_shards": report.plan.n_shards,
        "workers": workers,
        "n_circuits": len(rows),
        "wall_time": report.wall_time,
        "circuits_per_sec": report.circuits_per_second,
        "shard_plan": [list(members) for members in report.plan.shards],
        "plan_imbalance": report.plan.imbalance,
        "latency": latency_percentiles([row.runtime for row in rows]),
        "cache": {
            "hits": store.hits,
            "misses": store.misses,
            "hit_rate": round(store.hit_rate, 4),
        },
        "results": [
            {
                "circuit": row.design,
                "shard": row.shard,
                "order": row.order,
                "runtime": row.runtime,
                "n_ands_before": row.n_ands_before,
                "n_ands": row.n_ands,
                "level": row.level,
                "identical_to_sequential": row.identical,
                "error": row.error,
                "cached": row.cached,
            }
            for row in rows
        ],
        "fusion": [
            {
                "shard": shard,
                "n_calls": stats.n_calls,
                "n_subbatches": stats.n_subbatches,
                "n_rows": stats.n_rows,
                "mean_occupancy": stats.mean_occupancy,
                "mean_rows_per_call": stats.mean_rows,
                "amortization": stats.amortization,
            }
            for shard, stats in sorted(report.fusion.items())
        ],
        # Straight off the obs registry (per-circuit latency + outcome
        # counters recorded by the serve tier itself): the audit numbers
        # above must agree with these or the instrumentation is lying.
        "registry": {
            "circuits_ok": obs.metrics().total("serve_circuits_total"),
            "fusion_rounds": obs.metrics().total("serve_fusion_rounds_total"),
            "fusion_subbatches": obs.metrics().total("serve_fusion_subbatches_total"),
            "latency_sum_s": sum(
                h.sum
                for h in obs.metrics().histograms()
                if h.name == "serve_circuit_seconds"
            ),
        },
    }
    payload["cold_warm"] = run_cold_warm()
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "serve_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return payload


def run_cold_warm(flow=COLD_WARM_FLOW, n_shards=N_SHARDS, workers=WORKERS) -> dict:
    """Serve the suite twice through shard processes, one shared cache.

    The cold pass sees 0% repeat traffic (every lookup misses, every
    circuit runs in a shard process); the warm pass is 100% repeats —
    all answered from the content-addressed store, byte-identical to the
    cold results.  Both rows merge into ``BENCH_engine.json`` under
    ``operator: "serve"``.
    """
    from bench_engine_scaling import merge_bench_records

    suite = build_suite()
    store = ResultStore(max_entries=64)
    params = ServeParams(flow=flow, n_shards=n_shards, workers=workers)
    passes = {}
    for mode in ("cold", "warm"):
        before = (store.hits, store.misses)
        report = serve_suite_procs(suite, params, store=store)
        runtimes = [r.runtime for r in report.results]
        lookups = (store.hits - before[0]) + (store.misses - before[1])
        passes[mode] = {
            "mode": mode,
            "runtime_s": round(report.wall_time, 4),
            "circuits_per_sec": round(report.circuits_per_second, 4),
            "hit_rate": round((store.hits - before[0]) / lookups, 4) if lookups else 0.0,
            "cached": sum(r.cached for r in report.results),
            "ok": report.ok,
            **latency_percentiles(runtimes),
            "_results": {r.name: r.bench_text for r in report.results},
        }
    identical = all(
        passes["cold"]["_results"][name] == passes["warm"]["_results"][name]
        for name in suite
    )
    warm_runtime = passes["warm"]["runtime_s"]
    speedup = passes["cold"]["runtime_s"] / warm_runtime if warm_runtime > 0 else float("inf")
    records = []
    for mode in ("cold", "warm"):
        entry = passes[mode]
        entry.pop("_results")
        records.append(
            {
                "operator": "serve",
                "circuit": "tiny-suite-9",
                "mode": f"serve-{mode}-w{workers}",
                "workers": workers,
                "runtime_s": entry["runtime_s"],
                "circuits_per_sec": entry["circuits_per_sec"],
                "hit_rate": entry["hit_rate"],
                "p50_s": entry["p50_s"],
                "p95_s": entry["p95_s"],
                "p99_s": entry["p99_s"],
                "speedup": 1.0 if mode == "cold" else round(speedup, 4),
                "byte_identical": identical,
            }
        )
    merge_bench_records(records, os.cpu_count() or 1)
    return {
        "flow": flow,
        "n_shards": n_shards,
        "workers": workers,
        "speedup": round(speedup, 4) if speedup != float("inf") else None,
        "byte_identical": identical,
        "passes": {mode: passes[mode] for mode in ("cold", "warm")},
    }


def render(payload: dict) -> str:
    rows = [
        [
            point["order"],
            point["circuit"],
            point["shard"],
            f"{point['runtime']:.2f}s",
            point["n_ands_before"],
            point["n_ands"],
            {True: "yes", False: "NO", None: "-"}[point["identical_to_sequential"]],
        ]
        for point in payload["results"]
    ]
    latency = payload["latency"]
    table = format_table(
        ["Done", "Circuit", "Shard", "Runtime", "ANDs in", "ANDs out", "Identical"],
        rows,
        title=(
            f"Sharded serving: {payload['n_circuits']} circuits, "
            f"{payload['n_shards']} shards, flow {payload['flow']!r} "
            f"({payload['circuits_per_sec']:.2f} circuits/s, "
            f"p50/p95/p99 {latency['p50_s']:.2f}/{latency['p95_s']:.2f}/"
            f"{latency['p99_s']:.2f}s, "
            f"cache hit rate {100 * payload['cache']['hit_rate']:.0f}%)"
        ),
    )
    fusion_rows = [
        [
            point["shard"],
            point["n_calls"],
            point["n_subbatches"],
            point["n_rows"],
            f"{point['mean_occupancy']:.2f}",
            f"{point['mean_rows_per_call']:.0f}",
            f"{100 * point['amortization']:.0f}%",
        ]
        for point in payload["fusion"]
    ]
    fusion_table = format_table(
        ["Shard", "Fused calls", "Requests", "Rows", "Circuits/call", "Rows/call", "Saved"],
        fusion_rows,
        title="Classifier batch occupancy (cross-circuit fusion)",
    )
    cold_warm = payload["cold_warm"]
    cw_rows = [
        [
            mode,
            f"{entry['runtime_s']:.2f}s",
            f"{entry['circuits_per_sec']:.2f}",
            f"{100 * entry['hit_rate']:.0f}%",
            f"{entry['p50_s']:.3f}s",
            f"{entry['p95_s']:.3f}s",
            f"{entry['p99_s']:.3f}s",
        ]
        for mode, entry in cold_warm["passes"].items()
    ]
    cw_table = format_table(
        ["Pass", "Wall", "Circuits/s", "Hit rate", "p50", "p95", "p99"],
        cw_rows,
        title=(
            f"Cold vs warm (process shards, flow {cold_warm['flow']!r}): "
            f"{cold_warm['speedup']:.1f}x warm speedup, byte-identical="
            f"{cold_warm['byte_identical']}"
        ),
    )
    return table + "\n" + fusion_table + "\n" + cw_table


def test_serve_throughput(benchmark):
    from conftest import record_report

    payload = benchmark.pedantic(run_serve, rounds=1, iterations=1)
    text = render(payload)
    write_report("serve_throughput", text)
    record_report("serve_throughput", text)

    assert payload["n_circuits"] >= 8
    orders = sorted(point["order"] for point in payload["results"])
    assert orders == list(range(payload["n_circuits"]))
    for point in payload["results"]:
        assert point["error"] is None, point
        assert point["identical_to_sequential"] is True, point
    # Every fused call in a multi-circuit shard must batch across circuits.
    multi = [
        point
        for point in payload["fusion"]
        if len(payload["shard_plan"][point["shard"]]) > 1
    ]
    assert multi and all(point["mean_occupancy"] > 1.0 for point in multi), payload["fusion"]
    # The cold/warm cache contract: a fully-warm pass answers everything
    # from the content-addressed store, byte-identical, >= 10x faster.
    cold_warm = payload["cold_warm"]
    assert cold_warm["byte_identical"] is True
    assert cold_warm["passes"]["cold"]["hit_rate"] == 0.0
    assert cold_warm["passes"]["warm"]["hit_rate"] == 1.0
    assert cold_warm["speedup"] is None or cold_warm["speedup"] >= 10.0, cold_warm
    assert payload["latency"]["p50_s"] <= payload["latency"]["p99_s"]


if __name__ == "__main__":
    report = run_serve()
    print(render(report))
    print("\nwritten: benchmarks/results/serve_throughput.json")
