"""Sharded serving throughput: many circuits in flight, fused ELF inference.

A suite of 9 circuits (the tiny EPFL-like six plus three synthetic
designs) is served through an ELF flow across 3 shards.  The run records

* the **streamed completion order** — results are consumed as circuits
  finish, not after the slowest shard;
* **classifier batch occupancy** per shard — how many circuits and
  feature rows each fused inference served, and the fraction of
  dispatches cross-circuit fusion eliminated;
* a **byte-identity audit** — at ``workers=1`` every streamed result is
  re-derived by a blocking per-circuit ``run_flow`` and the BENCH texts
  must match exactly (the serving layer's correctness contract).

Results go to ``benchmarks/results/serve_throughput.json`` alongside the
rendered table.  Throughput on a single-core container reflects the GIL
(circuit threads interleave); the shape that matters everywhere is the
occupancy/amortization column, which is timing-independent.

Runs standalone too: ``PYTHONPATH=src python benchmarks/bench_serve_throughput.py``.
"""

import json
import os
from pathlib import Path

from repro import obs
from repro.circuits import epfl_suite, layered_random_aig, random_aig
from repro.elf import collect_dataset, train_leave_one_out
from repro.harness import format_table, serve_throughput, write_report
from repro.ml import TrainConfig

FLOW = "b; elf"
N_SHARDS = 3
WORKERS = 1  # the deterministic mode the byte-identity contract covers


def build_suite() -> dict:
    """Nine small circuits: EPFL-like tiny six + three synthetic designs."""
    suite = dict(epfl_suite("tiny"))
    suite["layered-a"] = layered_random_aig(n_pis=12, n_ands=500, seed=5, name="layered-a")
    suite["layered-b"] = layered_random_aig(n_pis=13, n_ands=700, seed=9, name="layered-b")
    suite["rand-c"] = random_aig(n_pis=10, n_ands=400, n_pos=8, seed=3, name="rand-c")
    return suite


def build_classifier():
    """Quick classifier trained on held-out random circuits (not the suite)."""
    graphs = [
        random_aig(n_pis=8, n_ands=200, n_pos=4, seed=s, name=f"train{s}")
        for s in (21, 22, 23)
    ]
    datasets = {g.name: collect_dataset(g) for g in graphs}
    return train_leave_one_out(
        datasets, "train21", TrainConfig(epochs=8, seed=0), target_recall=0.95
    )


def run_serve(flow=FLOW, n_shards=N_SHARDS, workers=WORKERS) -> dict:
    suite = build_suite()
    classifier = build_classifier()
    obs.reset()  # per-run registry numbers: serving metrics start at zero
    rows, report = serve_throughput(
        suite,
        flow=flow,
        n_shards=n_shards,
        workers=workers,
        classifier=classifier,
        check_identity=(workers == 1),
    )
    payload = {
        "cores": os.cpu_count() or 1,
        "flow": flow,
        "n_shards": report.plan.n_shards,
        "workers": workers,
        "n_circuits": len(rows),
        "wall_time": report.wall_time,
        "circuits_per_sec": report.circuits_per_second,
        "shard_plan": [list(members) for members in report.plan.shards],
        "plan_imbalance": report.plan.imbalance,
        "results": [
            {
                "circuit": row.design,
                "shard": row.shard,
                "order": row.order,
                "runtime": row.runtime,
                "n_ands_before": row.n_ands_before,
                "n_ands": row.n_ands,
                "level": row.level,
                "identical_to_sequential": row.identical,
                "error": row.error,
            }
            for row in rows
        ],
        "fusion": [
            {
                "shard": shard,
                "n_calls": stats.n_calls,
                "n_subbatches": stats.n_subbatches,
                "n_rows": stats.n_rows,
                "mean_occupancy": stats.mean_occupancy,
                "mean_rows_per_call": stats.mean_rows,
                "amortization": stats.amortization,
            }
            for shard, stats in sorted(report.fusion.items())
        ],
        # Straight off the obs registry (per-circuit latency + outcome
        # counters recorded by the serve tier itself): the audit numbers
        # above must agree with these or the instrumentation is lying.
        "registry": {
            "circuits_ok": obs.metrics().total("serve_circuits_total"),
            "fusion_rounds": obs.metrics().total("serve_fusion_rounds_total"),
            "fusion_subbatches": obs.metrics().total("serve_fusion_subbatches_total"),
            "latency_sum_s": sum(
                h.sum
                for h in obs.metrics().histograms()
                if h.name == "serve_circuit_seconds"
            ),
        },
    }
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "serve_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return payload


def render(payload: dict) -> str:
    rows = [
        [
            point["order"],
            point["circuit"],
            point["shard"],
            f"{point['runtime']:.2f}s",
            point["n_ands_before"],
            point["n_ands"],
            {True: "yes", False: "NO", None: "-"}[point["identical_to_sequential"]],
        ]
        for point in payload["results"]
    ]
    table = format_table(
        ["Done", "Circuit", "Shard", "Runtime", "ANDs in", "ANDs out", "Identical"],
        rows,
        title=(
            f"Sharded serving: {payload['n_circuits']} circuits, "
            f"{payload['n_shards']} shards, flow {payload['flow']!r} "
            f"({payload['circuits_per_sec']:.2f} circuits/s)"
        ),
    )
    fusion_rows = [
        [
            point["shard"],
            point["n_calls"],
            point["n_subbatches"],
            point["n_rows"],
            f"{point['mean_occupancy']:.2f}",
            f"{point['mean_rows_per_call']:.0f}",
            f"{100 * point['amortization']:.0f}%",
        ]
        for point in payload["fusion"]
    ]
    fusion_table = format_table(
        ["Shard", "Fused calls", "Requests", "Rows", "Circuits/call", "Rows/call", "Saved"],
        fusion_rows,
        title="Classifier batch occupancy (cross-circuit fusion)",
    )
    return table + "\n" + fusion_table


def test_serve_throughput(benchmark):
    from conftest import record_report

    payload = benchmark.pedantic(run_serve, rounds=1, iterations=1)
    text = render(payload)
    write_report("serve_throughput", text)
    record_report("serve_throughput", text)

    assert payload["n_circuits"] >= 8
    orders = sorted(point["order"] for point in payload["results"])
    assert orders == list(range(payload["n_circuits"]))
    for point in payload["results"]:
        assert point["error"] is None, point
        assert point["identical_to_sequential"] is True, point
    # Every fused call in a multi-circuit shard must batch across circuits.
    multi = [
        point
        for point in payload["fusion"]
        if len(payload["shard_plan"][point["shard"]]) > 1
    ]
    assert multi and all(point["mean_occupancy"] > 1.0 for point in multi), payload["fusion"]


if __name__ == "__main__":
    report = run_serve()
    print(render(report))
    print("\nwritten: benchmarks/results/serve_throughput.json")
