"""Table VII: classifier quality on the EPFL-like circuits.

Leave-one-out recall/accuracy plus the raw confusion counts.  Paper
band: recall 76-100% (mostly >=93%), accuracy 77-96%.
"""

from repro.harness import format_table, model_quality, write_report

from conftest import record_report

PAPER = {
    "div": (76, 84),
    "hyp": (100, 77),
    "log2": (93, 90),
    "multiplier": (100, 96),
    "sqrt": (97, 92),
    "square": (94, 84),
}


def test_table7_model_quality_epfl(benchmark, epfl_datasets, epfl_classifiers):
    quality = benchmark.pedantic(
        lambda: model_quality(epfl_datasets, epfl_classifiers),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, c in quality.items():
        rows.append(
            [
                name,
                f"{100 * c.recall:.0f}%",
                f"{100 * c.accuracy:.0f}%",
                c.tp,
                c.tn,
                c.fp,
                c.fn,
                f"{PAPER[name][0]}%",
                f"{PAPER[name][1]}%",
            ]
        )
    text = format_table(
        ["Design", "Recall", "Accuracy", "TP", "TN", "FP", "FN", "paper R", "paper A"],
        rows,
        title="Table VII - model quality on EPFL-like circuits (leave-one-out)",
    )
    write_report("table7_model_epfl", text)
    record_report("table7", text)

    recalls = [c.recall for c in quality.values()]
    accuracies = [c.accuracy for c in quality.values()]
    # Bands widened vs the paper (76-100% recall): our scaled circuits
    # give the classifier ~20x less training signal (see EXPERIMENTS.md).
    assert sum(recalls) / len(recalls) > 0.65, recalls
    assert min(recalls) > 0.35, recalls
    assert sum(accuracies) / len(accuracies) > 0.65, accuracies
