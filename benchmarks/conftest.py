"""Shared fixtures for the benchmark suite.

Heavy artifacts (benchmark circuits, harvested datasets, leave-one-out
classifiers) are session-scoped here and persisted by the harness cache,
so the full `pytest benchmarks/ --benchmark-only` run trains everything
once and every later run reuses it.  Generated tables are echoed into
the terminal summary so they survive output capture.
"""

from __future__ import annotations

import pytest

from repro.circuits import epfl_suite, industrial_suite
from repro.harness import loo_classifiers, suite_datasets

_REPORTS: list[tuple[str, str]] = []


def record_report(name: str, content: str) -> None:
    """Register a rendered table for the end-of-run summary."""
    _REPORTS.append((name, content))


@pytest.fixture(scope="session")
def epfl():
    return epfl_suite("default")


@pytest.fixture(scope="session")
def epfl_datasets(epfl):
    return suite_datasets(epfl, "epfl")


@pytest.fixture(scope="session")
def epfl_classifiers(epfl_datasets):
    return loo_classifiers(epfl_datasets, "epfl")


@pytest.fixture(scope="session")
def industrial():
    return industrial_suite()


@pytest.fixture(scope="session")
def industrial_datasets(industrial):
    return suite_datasets(industrial, "industrial")


@pytest.fixture(scope="session")
def industrial_classifiers(industrial_datasets):
    return loo_classifiers(industrial_datasets, "industrial")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name, content in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(content)
