"""Fixed ``resyn2`` vs the budgeted tuner at equal wall-budget.

The acceptance bar of the ``repro.tune`` subsystem (``make bench-tune``):
on the layered bench suite, a tuned run given the **same wall-clock
budget** must match or beat the fixed ``resyn2`` AND count on at least
2 of the 3 circuits, CEC-clean, with seeded runs.  The comparison is
honest about the budget: the fixed flow runs once (it finishes well
inside the budget and simply stops), while the tuner spends the whole
budget — first replaying the resyn2 trajectory as committed probes,
then searching past it.

Writes ``benchmarks/results/tune_search.json``, renders a table, and
merges the ``tune-search`` rows into the repo-level
``BENCH_engine.json`` perf trajectory via
:func:`benchmarks.bench_engine_scaling.merge_bench_records` (cpu_count
stamped; records of other operators are preserved).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_engine_scaling import merge_bench_records  # noqa: E402
from repro.circuits.random_aig import layered_random_aig  # noqa: E402
from repro.harness.tables import format_table  # noqa: E402
from repro.opt import RESYN2, run_flow  # noqa: E402
from repro.tune import TuneParams, tune  # noqa: E402
from repro.verify.cec import equivalent  # noqa: E402

BUDGET_S = 3.0
SEED = 0

# Few PIs on purpose: CEC below is the *exact* exhaustive-simulation
# method, so every tuned result is verified, not spot-checked.
SUITE = (
    ("layered-a", dict(n_pis=12, n_ands=800, seed=11)),
    ("layered-b", dict(n_pis=14, n_ands=600, seed=22)),
    ("layered-c", dict(n_pis=16, n_ands=400, seed=33)),
)


def main() -> int:
    records = []
    rows = []
    wins = 0
    for name, spec in SUITE:
        g = layered_random_aig(**spec)
        started = time.perf_counter()
        fixed, _report = run_flow(g.clone(), RESYN2)
        fixed_s = time.perf_counter() - started
        result = tune(g, TuneParams(seed=SEED, budget_s=BUDGET_S))
        cec = equivalent(g, result.graph)
        beat = result.n_ands <= fixed.n_ands
        wins += int(beat)
        records.append(
            {
                "operator": "tune-search",
                "mode": "resyn2-fixed",
                "circuit": name,
                "seed": SEED,
                "budget_s": BUDGET_S,
                "n_ands_before": g.n_ands,
                "n_ands": fixed.n_ands,
                "runtime_s": round(fixed_s, 4),
            }
        )
        records.append(
            {
                "operator": "tune-search",
                "mode": "tuned",
                "circuit": name,
                "seed": SEED,
                "budget_s": BUDGET_S,
                "n_ands_before": g.n_ands,
                "n_ands": result.n_ands,
                "runtime_s": round(result.elapsed_s, 4),
                "probes": result.probes,
                "gain_pct": round(result.gain_pct, 2),
                "script": result.script,
                "cec_clean": bool(cec),
                "beats_fixed": bool(beat),
            }
        )
        rows.append(
            [
                name,
                g.n_ands,
                fixed.n_ands,
                result.n_ands,
                result.probes,
                "yes" if cec else "NO",
                "tuned" if result.n_ands < fixed.n_ands else
                ("tie" if beat else "FIXED"),
            ]
        )
        assert cec, f"{name}: tuned result not CEC-equivalent"
    print(
        format_table(
            ["Circuit", "And0", "resyn2", "Tuned", "Probes", "CEC", "Winner"],
            rows,
            title=f"tune-search vs fixed resyn2 (budget {BUDGET_S:.1f}s, seed {SEED})",
        )
    )
    out_dir = REPO_ROOT / "benchmarks" / "results"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "tune_search.json").write_text(
        json.dumps({"budget_s": BUDGET_S, "seed": SEED, "records": records}, indent=2)
        + "\n",
        encoding="utf-8",
    )
    cores = os.cpu_count() or 1
    merge_bench_records(records, cores)
    print(f"bench-tune: merged {len(records)} tune-search records into BENCH_engine.json")
    assert wins >= 2, f"tuned matched/beat fixed resyn2 on only {wins}/3 circuits"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
