"""Table V: original refactor vs ELF on the ten industrial-style designs.

Paper shape: 2.01-4.29x speedups, AND growth <=0.08%, levels almost
unchanged; classifiers never see the test design (leave-one-out).
"""

from repro.harness import comparison_rows, format_table, write_report

from conftest import record_report

PAPER_SPEEDUP = {
    "design_1": 3.10,
    "design_2": 3.47,
    "design_3": 3.32,
    "design_4": 4.29,
    "design_5": 2.32,
    "design_6": 2.48,
    "design_7": 2.24,
    "design_8": 2.48,
    "design_9": 2.27,
    "design_10": 2.01,
}


def test_table5_industrial_elf(benchmark, industrial, industrial_classifiers):
    rows = benchmark.pedantic(
        lambda: comparison_rows(industrial, industrial_classifiers),
        rounds=1,
        iterations=1,
    )
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.design,
                r.nodes_before,
                f"{r.baseline_runtime:.2f}",
                r.baseline_ands,
                r.baseline_level,
                f"{r.elf_runtime:.2f}",
                r.elf_ands,
                r.elf_level,
                f"{r.speedup:.2f}x",
                f"{PAPER_SPEEDUP[r.design]:.2f}x",
                f"{r.and_diff_pct:+.2f}%",
            ]
        )
    text = format_table(
        [
            "Design",
            "Nodes",
            "ABC s",
            "ABC And",
            "ABC Lvl",
            "ELF s",
            "ELF And",
            "ELF Lvl",
            "Speedup",
            "paper",
            "dAnd",
        ],
        table_rows,
        title="Table V - refactor in original form vs ELF (industrial designs)",
    )
    write_report("table5_industrial_elf", text)
    record_report("table5", text)

    speedups = [r.speedup for r in rows]
    assert sum(s > 1.25 for s in speedups) >= 7, speedups
    diffs = [abs(r.and_diff_pct) for r in rows]
    assert sum(diffs) / len(diffs) < 3.0, diffs
    for r in rows:
        assert r.elf_ands >= r.baseline_ands
