"""Training-recipe ablation (SS IV-A): the paper reports trying focal and
class-balanced losses and settling on plain BCE with MixUp + a weighted
sampler.  This bench retrains under each loss and compares.
"""

import numpy as np

from repro.harness import format_table, write_report
from repro.ml import CutDataset, TrainConfig, confusion, train_classifier

from conftest import record_report


def test_loss_ablation(benchmark, epfl_datasets):
    merged = CutDataset.concatenate(list(epfl_datasets.values()), "all")
    train, test = merged.split(0.8, seed=1)

    def evaluate(loss, mixup):
        config = TrainConfig(
            epochs=10, patience=5, seed=0, loss=loss, mixup_alpha=mixup
        )
        result = train_classifier(train, config)
        fused = result.fused_model()
        probs = 1.0 / (1.0 + np.exp(-fused.forward_logits(test.x)))
        return confusion(test.y > 0.5, probs >= 0.5)

    bce = benchmark.pedantic(
        lambda: evaluate("bce", 0.2), rounds=1, iterations=1
    )
    variants = {
        "bce + mixup (paper)": bce,
        "bce, no mixup": evaluate("bce", 0.0),
        "focal": evaluate("focal", 0.2),
        "class-balanced": evaluate("class_balanced", 0.2),
    }
    rows = [
        [name, f"{100 * c.recall:.1f}%", f"{100 * c.accuracy:.1f}%", f"{c.f1:.3f}"]
        for name, c in variants.items()
    ]
    text = format_table(
        ["Loss", "Recall", "Accuracy", "F1"],
        rows,
        title="Loss ablation (paper settled on BCE + MixUp)",
    )
    write_report("ablation_losses", text)
    record_report("ablation_losses", text)

    # Every recipe must at least learn something.
    for name, c in variants.items():
        assert c.recall > 0.3, (name, c)
    # At the paper's data scale BCE+MixUp won outright; at ours the focal
    # loss can edge ahead on F1 — require BCE to stay in the same league
    # on recall (the quantity the paper optimizes for).
    best_recall = max(c.recall for c in variants.values())
    assert bce.recall >= 0.6 * best_recall, (bce.recall, best_recall)
