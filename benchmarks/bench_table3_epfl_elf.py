"""Table III: original refactor vs ELF on the EPFL-like suite.

Leave-one-out classifiers (never trained on the test circuit) prune the
cut stream; we report runtimes, AND counts, levels, the speedup and the
quality deltas.  Paper shape: 2.5-7.7x speedups at <=0.27% AND growth
and unchanged levels.  Absolute runtimes are Python-scale; the *ratio*
is the reproduced quantity.
"""

from repro.circuits import PAPER_TABLE1
from repro.harness import comparison_rows, format_table, write_report

from conftest import record_report

PAPER_SPEEDUP = {
    "div": 4.76,
    "hyp": 7.33,
    "log2": 5.46,
    "multiplier": 7.69,
    "sqrt": 2.50,
    "square": 4.00,
}


def test_table3_epfl_elf(benchmark, epfl, epfl_classifiers):
    rows = benchmark.pedantic(
        lambda: comparison_rows(epfl, epfl_classifiers), rounds=1, iterations=1
    )
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.design,
                r.nodes_before,
                f"{r.baseline_runtime:.2f}",
                r.baseline_ands,
                r.baseline_level,
                f"{r.elf_runtime:.2f}",
                r.elf_ands,
                r.elf_level,
                f"{r.speedup:.2f}x",
                f"{PAPER_SPEEDUP[r.design]:.2f}x",
                f"{r.and_diff_pct:+.2f}%",
                f"{r.level_diff_pct:+.2f}%",
            ]
        )
    text = format_table(
        [
            "Design",
            "Nodes",
            "ABC s",
            "ABC And",
            "ABC Lvl",
            "ELF s",
            "ELF And",
            "ELF Lvl",
            "Speedup",
            "paper",
            "dAnd",
            "dLvl",
        ],
        table_rows,
        title="Table III - refactor in original form vs ELF (EPFL-like suite)",
    )
    write_report("table3_epfl_elf", text)
    record_report("table3", text)

    speedups = [r.speedup for r in rows]
    # The industrial bar from the paper: >=1.25x speedup...
    assert sum(s > 1.25 for s in speedups) >= 4, speedups
    # ...and meaningful average acceleration.
    assert sum(speedups) / len(speedups) > 1.5, speedups
    # Quality: our regenerated circuits carry 5-10x more refactorable
    # material than the paper's, so each missed positive costs more area;
    # the bound is proportionally wider than the paper's 0.27% (see
    # EXPERIMENTS.md).
    diffs = [abs(r.and_diff_pct) for r in rows]
    assert sum(diffs) / len(diffs) < 4.0, diffs
    for r in rows:
        assert r.elf_ands >= r.baseline_ands  # pruning can only miss gains
