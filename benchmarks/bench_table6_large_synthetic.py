"""Table VI: original refactor vs ELF on large synthetic circuits.

The paper's sixteen/twenty/twentythree (16-23M nodes, ~1h of ABC
refactor each) are regenerated at 1/1000 scale — the speedup ratio and
AND-difference columns are the reproduced quantities.  The classifier is
trained on the EPFL-like + industrial datasets only; the synthetic
circuits contribute no training data.
"""

import pytest

from repro.circuits import PAPER_TABLE6, synthetic_suite
from repro.elf import compare
from repro.harness import format_table, global_classifier, write_report

from conftest import record_report


@pytest.fixture(scope="module")
def synthetic():
    return synthetic_suite()


def test_table6_large_synthetic(
    benchmark, synthetic, epfl_datasets, industrial_datasets
):
    classifier = global_classifier(
        {**epfl_datasets, **industrial_datasets}, "mixed"
    )

    def run():
        return [compare(g, classifier) for g in synthetic.values()]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for r in rows:
        paper = PAPER_TABLE6[r.design]
        table_rows.append(
            [
                r.design,
                r.nodes_before,
                f"{paper[0]:,}",
                f"{r.baseline_runtime:.1f}",
                f"{r.speedup:.2f}x",
                f"{paper[2]:.2f}x",
                f"{r.and_diff_pct:+.2f}%",
                f"+{paper[3]:.2f}%",
            ]
        )
    text = format_table(
        [
            "Design",
            "Nodes",
            "paper nodes",
            "ABC s",
            "Speedup",
            "paper",
            "dAnd",
            "paper dAnd",
        ],
        table_rows,
        title="Table VI - large synthetic circuits (1/1000 scale)",
    )
    write_report("table6_large_synthetic", text)
    record_report("table6", text)

    speedups = [r.speedup for r in rows]
    # Paper band: ~2.9x average on 16-23M nodes; at 1/1000 scale with a
    # cross-suite classifier we require clear acceleration on most.
    assert all(s > 1.0 for s in speedups), speedups
    assert sum(s > 1.1 for s in speedups) >= 2, speedups
    assert sum(speedups) / len(speedups) > 1.1, speedups
    diffs = [abs(r.and_diff_pct) for r in rows]
    assert max(diffs) < 1.0, diffs
