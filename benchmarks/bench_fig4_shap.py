"""Figure 4: SHAP values per feature for the trained classifier.

Exact Shapley enumeration (2^6 coalitions).  The paper's directional
reads: few reconvergent nodes pushes toward "no refactor" (positive
association between reconvergence and refactoring), while many leaves,
high root level and large cut size push against refactoring.
"""

import numpy as np

from repro.analysis import mean_abs_shap, shap_direction, shapley_values
from repro.cuts import FEATURE_NAMES
from repro.harness import feature_matrix, format_table, write_report

from conftest import record_report


def test_fig4_shap(benchmark, epfl_datasets, epfl_classifiers):
    x, y = feature_matrix(epfl_datasets, max_per_design=120)
    classifier = next(iter(epfl_classifiers.values()))
    background = x[np.random.default_rng(0).choice(len(x), size=min(200, len(x)), replace=False)]
    samples = x[: min(150, len(x))]

    # Shapley needs a fixed per-row value function, but the deployed
    # classifier normalizes by *batch* statistics (the MVN node).  Freeze
    # the normalization to the background statistics so the explained
    # model is well-defined.
    mean = background.mean(axis=0)
    std = background.std(axis=0)
    std[std < 1e-9] = 1.0

    def predict(batch):
        z = (np.asarray(batch, dtype=np.float64) - mean) / std
        logits = classifier.model.forward_logits(z)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))

    phi = benchmark.pedantic(
        lambda: shapley_values(predict, samples, background),
        rounds=1,
        iterations=1,
    )
    importance = mean_abs_shap(phi)
    direction = shap_direction(phi, samples)

    rows = [
        [FEATURE_NAMES[j], f"{importance[j]:.4f}", f"{direction[j]:+.2f}"]
        for j in np.argsort(-importance)
    ]
    text = format_table(
        ["Feature", "mean |SHAP|", "value/SHAP corr"],
        rows,
        title="Figure 4 - exact Shapley values per feature",
    )
    write_report("fig4_shap", text)
    record_report("fig4", text)

    by_name = {FEATURE_NAMES[j]: (importance[j], direction[j]) for j in range(6)}
    # Every feature carries attribution mass.  Directions are *reported*
    # rather than asserted: at our data scale they vary between trained
    # folds (the paper's directional reads are discussed in
    # EXPERIMENTS.md), while the attribution itself is exact.
    assert importance.sum() > 0
    assert all(importance[j] >= 0 for j in range(6))
    # Efficiency axiom sanity: SHAP rows sum to f(x) - f(reference).
    reference = background.mean(axis=0)
    expected = predict(samples) - predict(reference[None, :])
    assert np.allclose(phi.sum(axis=1), expected, atol=1e-8)
