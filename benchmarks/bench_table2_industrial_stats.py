"""Table II: industrial-style circuit statistics.

Ten synthetic control-dominated designs calibrated to the paper's
shape: shallow, PI/PO-heavy, refactor success mostly ~1% with designs 5
and 10 as the high-redundancy outliers.
"""

from repro.circuits import PAPER_TABLE2
from repro.harness import format_table, suite_statistics, write_report

from conftest import record_report


def test_table2_industrial_statistics(benchmark, industrial):
    rows = benchmark.pedantic(
        lambda: suite_statistics(industrial), rounds=1, iterations=1
    )
    table_rows = []
    for r in rows:
        paper = PAPER_TABLE2[r.design]
        table_rows.append(
            [
                r.design,
                r.n_ands,
                r.level,
                r.n_pis,
                r.n_pos,
                r.refactored,
                f"{r.refactored_pct:.2f}",
                f"{paper[5]:.2f}",
            ]
        )
    text = format_table(
        ["Design", "And", "Level", "PIs", "POs", "Refactored", "%", "paper %"],
        table_rows,
        title="Table II - industrial-style circuit statistics",
    )
    write_report("table2_industrial_stats", text)
    record_report("table2", text)

    by_name = {r.design: r for r in rows}
    # Outlier structure: designs 5 and 10 dominate the Refactored column.
    ordinary = [
        r.refactored_pct
        for r in rows
        if r.design not in ("design_5", "design_10")
    ]
    assert by_name["design_5"].refactored_pct > 2 * max(ordinary)
    assert by_name["design_10"].refactored_pct > 2 * max(ordinary)
    # Ordinary designs are in the ~sub-3% regime.
    assert max(ordinary) < 5.0
    # Shallow, as in Table II.
    for r in rows:
        assert r.level <= 90, f"{r.design} too deep for an industrial profile"
