"""Micro-kernel benchmarks: the per-cut primitives of the refactor loop.

These are the operations whose balance determines ELF's speedup: cut
construction and feature collection stay; truth table + ISOP + factoring
+ counting are what pruning eliminates.
"""

import pytest

from repro.aig import cone_truth, lit_node, make_lit, mffc_nodes
from repro.circuits import epfl_circuit
from repro.cuts import reconv_cut
from repro.factor import count_tree, factor
from repro.tt import isop_exact


@pytest.fixture(scope="module")
def workload():
    g = epfl_circuit("multiplier")
    nodes = g.and_ids()[200:260]
    cuts = [reconv_cut(g, n) for n in nodes]
    tts = [cone_truth(g, c.root, c.leaves) for c in cuts]
    sops = [isop_exact(tt, c.n_leaves) for tt, c in zip(tts, cuts)]
    trees = [factor(s) for s in sops]
    return g, nodes, cuts, tts, sops, trees


def test_kernel_reconv_cut(benchmark, workload):
    g, nodes, *_ = workload
    benchmark(lambda: [reconv_cut(g, n) for n in nodes])


def test_kernel_cut_features(benchmark, workload):
    g, nodes, *_ = workload
    out = benchmark(
        lambda: [reconv_cut(g, n, collect_features=True).features for n in nodes]
    )
    assert all(f is not None for f in out)


def test_kernel_cone_truth(benchmark, workload):
    g, _nodes, cuts, *_ = workload
    benchmark(lambda: [cone_truth(g, c.root, c.leaves) for c in cuts])


def test_kernel_isop(benchmark, workload):
    _g, _nodes, cuts, tts, *_ = workload
    benchmark(lambda: [isop_exact(tt, c.n_leaves) for tt, c in zip(tts, cuts)])


def test_kernel_factor(benchmark, workload):
    *_rest, sops, _trees = workload
    benchmark(lambda: [factor(s) for s in sops])


def test_kernel_mffc(benchmark, workload):
    g, _nodes, cuts, *_ = workload
    benchmark(lambda: [mffc_nodes(g, c.root, set(c.leaves)) for c in cuts])


def test_kernel_count_tree(benchmark, workload):
    g, _nodes, cuts, _tts, _sops, trees = workload
    def run():
        out = []
        for cut, tree in zip(cuts, trees):
            leaf_lits = [make_lit(leaf) for leaf in cut.leaves]
            out.append(count_tree(g, tree, leaf_lits, set(), 1 << 20))
        return out
    results = benchmark(run)
    assert all(r is not None for r in results)
