"""Claim check (SS III-B): per-cut GCN inference costs ~30x the cut's own
resynthesis, which disqualifies graph networks for this task, while the
batched MLP costs a tiny fraction of it.
"""

import time

import numpy as np

from repro.circuits import epfl_circuit
from repro.cuts import reconv_cut, stack_features
from repro.harness import format_table, write_report
from repro.ml import MLP, CutGCN, cut_graph_tensors

from conftest import record_report


def test_gcn_vs_batched_mlp_inference(benchmark):
    g = epfl_circuit("multiplier")
    nodes = g.and_ids()[:300]
    cuts = [reconv_cut(g, n) for n in nodes]
    gcn = CutGCN()
    graphs = [cut_graph_tensors(g, c) for c in cuts]
    features = stack_features([c.features for c in cuts])
    mlp = MLP().fuse_normalization(
        features.mean(axis=0), np.maximum(features.std(axis=0), 1e-3)
    )

    # Per-cut GCN forward (the architecture the paper rejects).
    def gcn_all():
        return [gcn.forward(a, f) for a, f in graphs]

    t0 = time.perf_counter()
    gcn_all()
    gcn_time = time.perf_counter() - t0

    # One batched MLP matmul for every cut (the deployed design).
    result = benchmark.pedantic(
        lambda: mlp.predict_proba(features), rounds=5, iterations=1
    )
    t0 = time.perf_counter()
    mlp.predict_proba(features)
    mlp_time = time.perf_counter() - t0

    # Resynthesis cost of the same cuts, for the 30x comparison.
    from repro.aig import cone_truth
    from repro.factor import factor
    from repro.tt import isop_exact

    t0 = time.perf_counter()
    for cut in cuts:
        tt = cone_truth(g, cut.root, cut.leaves)
        factor(isop_exact(tt, cut.n_leaves))
    resynth_time = time.perf_counter() - t0

    per_cut_gcn = gcn_time / len(cuts)
    per_cut_mlp = mlp_time / len(cuts)
    per_cut_resynth = resynth_time / len(cuts)
    rows = [
        ["GCN (per cut)", f"{1e6 * per_cut_gcn:.1f}us", f"{per_cut_gcn / per_cut_resynth:.1f}x"],
        ["batched MLP (per cut)", f"{1e6 * per_cut_mlp:.2f}us", f"{per_cut_mlp / per_cut_resynth:.3f}x"],
        ["resynthesis (per cut)", f"{1e6 * per_cut_resynth:.1f}us", "1x"],
    ]
    text = format_table(
        ["Inference", "Cost", "vs resynthesis"],
        rows,
        title="GCN vs batched MLP inference cost (paper: GCN ~30x resynthesis)",
    )
    write_report("gcn_inference", text)
    record_report("gcn_inference", text)

    assert result.shape == (len(cuts),)
    # The structural claim that survives the substrate change: per-cut GCN
    # inference costs orders of magnitude more than the batched MLP, while
    # the batched MLP is a negligible fraction of resynthesis.  (The
    # paper's 30x GCN-vs-resynthesis ratio compares PyTorch against C;
    # here resynthesis is Python and the GCN is NumPy, which deflates that
    # particular ratio — see EXPERIMENTS.md.)
    assert per_cut_gcn > 20 * per_cut_mlp, (per_cut_gcn, per_cut_mlp)
    assert per_cut_mlp < 0.05 * per_cut_resynth
