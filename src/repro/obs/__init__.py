"""``repro.obs`` — unified tracing + metrics for every layer of repro.

One lightweight, dependency-free observability spine shared by the wave
engine, the flow/session layer, the worker pool and the serve tier:

* **Spans** (:func:`span`) — hierarchical timed regions on
  ``time.perf_counter`` with structured attributes.  The scheduler emits
  one span per engine pass with child spans per phase and per wave;
  sessions emit one span per flow command; the serve tier one per
  circuit.  Tracing is *disabled by default*: the disabled span still
  measures its duration (the stats fields the code always filled keep
  their exact semantics) but records nothing.
* **Metrics** (:func:`metrics`) — an always-on registry of counters /
  gauges / histograms (:mod:`repro.obs.metrics`).  Worker processes ship
  per-chunk deltas home as serialized snapshots piggybacked on pool task
  results (:func:`merge_worker_snapshot`) — no extra IPC round-trips,
  and an errored chunk loses only its own delta.
* **Exporters** (:mod:`repro.obs.export`) — Chrome trace-event JSON
  (load a flow in ``chrome://tracing`` / Perfetto and read waves off a
  timeline), Prometheus text format, and round-trippable JSONL; the
  ``python -m repro --trace out.json`` / ``--metrics out.prom`` flags
  drive them from the CLI.

Typical embedding::

    from repro import obs

    obs.configure(enabled=True)
    out, report = run_flow(g, "pf -w 2; b")
    obs.export_trace("flow.json")          # Chrome trace by suffix
    print(obs.prometheus_text(obs.metrics()))

:func:`configure`/:func:`reset` manage one process-wide state; tests and
benchmarks call ``obs.reset()`` to start from a clean tracer/registry.
"""

from __future__ import annotations

import itertools
import threading

from .core import DisabledSpan, Span, Tracer
from .export import (
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    export_trace as _export_trace,
    jsonl_records,
    parse_prometheus,
    prometheus_text,
    read_jsonl,
    validate_chrome_trace,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry

_lock = threading.Lock()
_enabled = False
_tracer = Tracer()
_registry = MetricsRegistry()
_sequence = itertools.count(1)


def configure(enabled: bool | None = None) -> None:
    """Turn tracing on/off process-wide (metrics are always on)."""
    global _enabled
    with _lock:
        if enabled is not None:
            _enabled = bool(enabled)


def enabled() -> bool:
    """Whether span recording is currently on."""
    return _enabled


def span(name: str, **attrs):
    """A span context manager; a non-recording timer when tracing is off."""
    if not _enabled:
        return DisabledSpan()
    return Span(_tracer, name, attrs)


def tracer() -> Tracer:
    """The process-wide span store."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The process-wide (always-on) metrics registry."""
    return _registry


def counter(name: str, **labels) -> Counter:
    """Shorthand for ``metrics().counter(...)``."""
    return _registry.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return _registry.gauge(name, **labels)


def histogram(name: str, buckets: tuple = DEFAULT_BUCKETS, **labels) -> Histogram:
    return _registry.histogram(name, buckets, **labels)


def next_label(prefix: str) -> str:
    """Process-unique label value (``"s1"``, ``"s2"``, ...) for per-instance
    series — session and shard stats use these so their registry series
    never collide."""
    return f"{prefix}{next(_sequence)}"


def merge_worker_snapshot(snapshot: dict | None) -> None:
    """Fold one worker chunk's serialized metrics delta into the registry."""
    _registry.merge(snapshot)


def reset() -> None:
    """Clear recorded spans and every metric series (tests/benchmarks)."""
    _tracer.clear()
    _registry.clear()


def export_trace(path: str) -> None:
    """Write the current trace: ``.jsonl`` -> JSONL, else Chrome JSON."""
    _export_trace(path, _tracer, _registry)


def export_metrics(path: str) -> None:
    """Write the current registry in Prometheus text format."""
    export_prometheus(path, _registry)


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "DisabledSpan",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace",
    "configure",
    "counter",
    "enabled",
    "export_chrome_trace",
    "export_jsonl",
    "export_metrics",
    "export_prometheus",
    "export_trace",
    "gauge",
    "histogram",
    "jsonl_records",
    "merge_worker_snapshot",
    "metrics",
    "next_label",
    "parse_prometheus",
    "prometheus_text",
    "read_jsonl",
    "reset",
    "span",
    "tracer",
    "validate_chrome_trace",
]
