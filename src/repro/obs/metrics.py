"""Metrics: a thread-safe registry of counters, gauges and histograms.

One :class:`MetricsRegistry` holds every instrument of a process (the
default instance lives in :mod:`repro.obs`); instruments are addressed
by name plus an optional label set, Prometheus-style, so per-session /
per-shard series coexist under one metric name::

    reg.counter("session_commands_total", session="s1").add(1)
    reg.histogram("serve_circuit_seconds", shard="0").observe(0.12)

Everything is dependency-free and cheap enough to stay **always on**
(unlike tracing, which is opt-in): an update is one dict probe plus an
add under the registry lock.  The registry serializes to a plain-dict
:meth:`~MetricsRegistry.snapshot` and merges snapshots back with
:meth:`~MetricsRegistry.merge` — the mechanism worker processes use to
ship their per-chunk deltas home by piggybacking on pool task results
(:mod:`repro.engine.parallel`), with no extra IPC round-trips.  A worker
whose chunk errors contributes no snapshot, so a lost task loses only
its own delta.
"""

from __future__ import annotations

import threading

DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
)
"""Default histogram bucket upper bounds (seconds-oriented)."""


def _series_key(name: str, labels: dict) -> str:
    """Stable string key for (name, labels): ``name{k=v,k2=v2}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> tuple[str, dict]:
    """Inverse of the snapshot key encoding: ``name{k=v}`` -> (name, labels)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    rest = rest.rstrip("}")
    labels = {}
    if rest:
        for item in rest.split(","):
            k, _, v = item.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """Monotonic accumulator (floats allowed: seconds are counters too)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram (count / sum / min / max kept too)."""

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict,
        lock: threading.Lock,
        buckets: tuple = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)  # per-bucket (non-cumulative)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    break

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named, labeled instruments with get-or-create semantics.

    One lock covers creation and every update — coarse, but the repo's
    instruments update at wave/command/circuit granularity, far below
    contention range.  ``snapshot()``/``merge()`` are the worker-delta
    transport: a snapshot is a plain (JSON-able) dict, and merging adds
    counters, last-writes gauges and folds histogram moments, so deltas
    from any number of workers compose associatively.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = _series_key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = Counter(name, labels, self._lock)
                self._counters[key] = inst
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = _series_key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = Gauge(name, labels, self._lock)
                self._gauges[key] = inst
        return inst

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS, **labels) -> Histogram:
        key = _series_key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = Histogram(name, labels, self._lock, buckets)
                self._histograms[key] = inst
        return inst

    # -- reads ---------------------------------------------------------------

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Current value of a counter or gauge (0.0 when absent)."""
        key = _series_key(name, labels)
        inst = self._counters.get(key) or self._gauges.get(key)
        return inst.value if inst is not None else default

    def total(self, name: str) -> float:
        """Sum of a counter metric over all of its label sets."""
        return sum(
            c.value for c in list(self._counters.values()) if c.name == name
        )

    def counters(self) -> list[Counter]:
        return list(self._counters.values())

    def gauges(self) -> list[Gauge]:
        return list(self._gauges.values())

    def histograms(self) -> list[Histogram]:
        return list(self._histograms.values())

    # -- snapshot / merge (the worker-delta transport) -----------------------

    def snapshot(self) -> dict:
        """Serializable (plain-dict) state of every instrument."""
        with self._lock:
            return {
                "counters": {k: c._value for k, c in self._counters.items()},
                "gauges": {k: g._value for k, g in self._gauges.items()},
                "histograms": {
                    k: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                    }
                    for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` delta into this registry.

        ``None`` is a no-op — the natural encoding of "this worker chunk
        produced no delta" (errored, or observability was off when it
        ran), so merging a result stream never needs special-casing.
        """
        if not snapshot:
            return
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_series_key(key)
            self.counter(name, **labels).add(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = parse_series_key(key)
            self.gauge(name, **labels).set(value)
        for key, data in snapshot.get("histograms", {}).items():
            name, labels = parse_series_key(key)
            hist = self.histogram(name, buckets=tuple(data["buckets"]), **labels)
            with self._lock:
                if tuple(data["buckets"]) == hist.buckets:
                    for i, n in enumerate(data["counts"]):
                        hist.counts[i] += n
                else:  # bucket mismatch: moments still merge exactly
                    pass
                hist.count += data["count"]
                hist.sum += data["sum"]
                hist.min = min(hist.min, data["min"])
                hist.max = max(hist.max, data["max"])

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
