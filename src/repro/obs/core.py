"""Tracing core: hierarchical spans on ``time.perf_counter``.

A span brackets one timed region — an engine pass, a wave, a flow
command, a served circuit — and carries structured attributes.  Spans
nest through a per-thread stack, so a wave span opened inside a pass
span records the pass as its parent without any plumbing through the
instrumented code.  All timestamps are monotonic
(:func:`time.perf_counter`), immune to wall-clock steps.

Tracing is **disabled by default** and the disabled path is engineered
to vanish: :func:`repro.obs.span` then returns a :class:`DisabledSpan`
that still measures its own duration (instrumented code reads
``span.duration`` into the stats fields it always filled) but records
nothing, allocates no attribute dict, and never touches a lock.  The
instrumentation sites sit at pass/wave/command granularity, so the
residual cost — one small allocation plus the two ``perf_counter``
calls the hand-rolled timers already paid — is far below the 2%
budget the engine's timing-identity tests enforce.

Enable with ``repro.obs.configure(enabled=True)`` (or ``python -m repro
--trace out.json``); finished spans accumulate on the :class:`Tracer`
until exported (:mod:`repro.obs.export`) or cleared.
"""

from __future__ import annotations

import itertools
import os
import threading
import time


class DisabledSpan:
    """No-op span that still times itself (stats need the duration)."""

    __slots__ = ("t0", "t1")

    def __enter__(self) -> "DisabledSpan":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.t1 = time.perf_counter()

    def set(self, **attrs) -> None:
        """Attribute writes are dropped on the disabled path."""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Span:
    """One recorded timed region (use as a context manager)."""

    __slots__ = ("name", "attrs", "t0", "t1", "tid", "span_id", "parent_id", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0
        self.t1 = 0.0
        self.tid = 0
        self.span_id = 0
        self.parent_id = 0

    def set(self, **attrs) -> None:
        """Attach (or overwrite) structured attributes."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.t1 = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)


class Tracer:
    """Collects finished spans; owns the per-thread nesting stacks.

    ``epoch`` is the ``perf_counter`` origin all exported timestamps are
    relative to, so one trace's spans share a timeline across threads.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- span lifecycle (called by Span) -------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.tid = threading.get_ident()
        span.parent_id = stack[-1].span_id if stack else 0
        with self._lock:
            span.span_id = next(self._ids)
        stack.append(span)

    def _close(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit
            stack.remove(span)
        with self._lock:
            self._finished.append(span)

    # -- reads ---------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
        self.epoch = time.perf_counter()

    def __len__(self) -> int:
        return len(self._finished)
