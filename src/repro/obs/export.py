"""Exporters: Chrome trace-event JSON, Prometheus text, JSONL.

Three serializations of the same two stores (the span tracer and the
metrics registry), so one instrumented run can feed a timeline viewer,
a scraper, and offline tooling without re-running anything:

* **Chrome trace** (:func:`chrome_trace` / :func:`export_chrome_trace`)
  — the trace-event format ``chrome://tracing`` and Perfetto load; every
  span becomes a complete (``"ph": "X"``) event with microsecond
  ``ts``/``dur`` relative to the tracer epoch, span attributes in
  ``args``, and real pid/tid so waves nest visually under their pass.
* **Prometheus** (:func:`prometheus_text` / :func:`export_prometheus`)
  — the text exposition format: counters/gauges as single samples,
  histograms as cumulative ``_bucket{le=...}`` series plus ``_sum`` /
  ``_count``.
* **JSONL** (:func:`export_jsonl` / :func:`read_jsonl`) — one JSON
  object per line (``{"type": "span" | "counter" | ...}``), the
  round-trippable archive format.

:func:`export_trace` dispatches on the path suffix (``.jsonl`` writes
JSONL, anything else Chrome JSON) — the ``python -m repro --trace``
backend.  :func:`validate_chrome_trace` and :func:`parse_prometheus`
are the minimal schema checkers the tests and ``make trace-demo`` gate
artifacts with.
"""

from __future__ import annotations

import json
import math

from .core import Span, Tracer
from .metrics import MetricsRegistry, _series_key


def _events(tracer: Tracer) -> list[dict]:
    epoch = tracer.epoch
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": tracer.pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro"},
        }
    ]
    for span in tracer.spans():
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((span.t0 - epoch) * 1e6, 3),
                "dur": round((span.t1 - span.t0) * 1e6, 3),
                "pid": tracer.pid,
                "tid": span.tid,
                "args": dict(span.attrs, span_id=span.span_id, parent_id=span.parent_id),
            }
        )
    return events


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's spans as a Chrome trace-event JSON object."""
    return {"traceEvents": _events(tracer), "displayTimeUnit": "ms"}


def export_chrome_trace(path: str, tracer: Tracer) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle, indent=1)
        handle.write("\n")


def validate_chrome_trace(obj: dict) -> list[str]:
    """Schema errors of a Chrome trace object (empty list = valid).

    Checks the trace-event contract the viewers rely on: a
    ``traceEvents`` list whose events carry ``name``/``ph``/``pid``/
    ``tid``/``ts`` (plus ``dur >= 0`` for complete events), and — per
    thread — consistent nesting: any two complete events either nest
    strictly or do not overlap.
    """
    errors: list[str] = []
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: missing or not a list"]
    complete: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, event in enumerate(events):
        missing = [f for f in ("name", "ph", "pid", "tid", "ts") if f not in event]
        for field in missing:
            errors.append(f"event {i}: missing {field!r}")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i}: complete event needs dur >= 0")
            elif not missing:
                complete.setdefault((event["pid"], event["tid"]), []).append(
                    (float(event["ts"]), float(event["ts"]) + float(dur), event["name"])
                )
    for (pid, tid), spans in complete.items():
        # Parents first at equal start times (longest span outermost).
        spans.sort(key=lambda s: (s[0], -s[1]))
        open_stack: list[tuple[float, float, str]] = []
        for t0, t1, name in spans:
            while open_stack and open_stack[-1][1] <= t0 + 1e-9:
                open_stack.pop()
            if open_stack and t1 > open_stack[-1][1] + 1e-6:
                errors.append(
                    f"tid {tid}: {name!r} overlaps {open_stack[-1][2]!r} "
                    "without nesting"
                )
            open_stack.append((t0, t1, name))
    return errors


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{merged[k]}"' for k in sorted(merged))
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in sorted(registry.counters(), key=lambda c: _series_key(c.name, c.labels)):
        _type_line(counter.name, "counter")
        lines.append(f"{counter.name}{_label_str(counter.labels)} {_fmt(counter.value)}")
    for gauge in sorted(registry.gauges(), key=lambda g: _series_key(g.name, g.labels)):
        _type_line(gauge.name, "gauge")
        lines.append(f"{gauge.name}{_label_str(gauge.labels)} {_fmt(gauge.value)}")
    for hist in sorted(registry.histograms(), key=lambda h: _series_key(h.name, h.labels)):
        _type_line(hist.name, "histogram")
        for bound, count in hist.cumulative():
            le = _label_str(hist.labels, {"le": _fmt(bound)})
            lines.append(f"{hist.name}_bucket{le} {count}")
        lines.append(f"{hist.name}_sum{_label_str(hist.labels)} {_fmt(hist.sum)}")
        lines.append(f"{hist.name}_count{_label_str(hist.labels)} {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def export_prometheus(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Minimal line-format parser: metric -> [(labels, value), ...].

    Raises ``ValueError`` on any line that is neither a comment nor a
    well-formed sample — the checker the exporter tests (and external
    scrape smoke tests) run over :func:`prometheus_text` output.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no value: {line!r}")
        try:
            value = float(value_part.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as error:
            raise ValueError(f"line {lineno}: bad value {value_part!r}") from error
        labels: dict = {}
        name = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels: {line!r}")
            name, _, inner = name_part[:-1].partition("{")
            for item in filter(None, inner.split(",")):
                key, eq, raw = item.partition("=")
                if eq != "=" or not (raw.startswith('"') and raw.endswith('"')):
                    raise ValueError(f"line {lineno}: bad label {item!r}")
                labels[key] = raw[1:-1]
        if not name or not name[0].isalpha():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        samples.setdefault(name, []).append((labels, value))
    return samples


def jsonl_records(tracer: Tracer, registry: MetricsRegistry) -> list[dict]:
    """Every span and instrument as one plain-dict record each."""
    records: list[dict] = []
    epoch = tracer.epoch
    for span in tracer.spans():
        records.append(
            {
                "type": "span",
                "name": span.name,
                "ts": round(span.t0 - epoch, 9),
                "dur": round(span.t1 - span.t0, 9),
                "pid": tracer.pid,
                "tid": span.tid,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "attrs": dict(span.attrs),
            }
        )
    snapshot = registry.snapshot()
    for kind in ("counters", "gauges"):
        for key, value in snapshot[kind].items():
            records.append({"type": kind[:-1], "series": key, "value": value})
    for key, data in snapshot["histograms"].items():
        records.append({"type": "histogram", "series": key, **data})
    return records


def export_jsonl(path: str, tracer: Tracer, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for record in jsonl_records(tracer, registry):
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path: str) -> list[dict]:
    """Parse a JSONL export back into its records (the round-trip read)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def export_trace(path: str, tracer: Tracer, registry: MetricsRegistry) -> None:
    """Path-suffix dispatch: ``.jsonl`` -> JSONL, else Chrome trace JSON."""
    if str(path).endswith(".jsonl"):
        export_jsonl(path, tracer, registry)
    else:
        export_chrome_trace(path, tracer)
