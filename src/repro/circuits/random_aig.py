"""Random AIG generation (test workloads and large synthetic circuits)."""

from __future__ import annotations

import random

from ..aig.graph import AIG
from ..aig.literal import lit_node
from ..aig.strash import cleanup


def random_aig(
    n_pis: int,
    n_ands: int,
    n_pos: int,
    seed: int = 0,
    name: str = "random",
    locality: int = 0,
) -> AIG:
    """Random strashed AIG.

    ``locality`` > 0 biases operand choice toward recently created
    signals, producing the deep, layered structure of synthetic EPFL
    circuits; 0 samples uniformly (shallow and wide).
    """
    rng = random.Random(seed)
    g = AIG(name)
    lits = [g.add_pi() for _ in range(n_pis)]
    guard = 0
    while g.n_ands < n_ands and guard < 50 * n_ands:
        guard += 1
        if locality > 0 and len(lits) > locality:
            window = lits[-locality:] + lits[: n_pis // 4 + 1]
            a = rng.choice(window) ^ rng.randint(0, 1)
            b = rng.choice(window) ^ rng.randint(0, 1)
        else:
            a = rng.choice(lits) ^ rng.randint(0, 1)
            b = rng.choice(lits) ^ rng.randint(0, 1)
        lit = g.add_and(a, b)
        if lit > 1:
            lits.append(lit)
    candidates = sorted(
        (lit for lit in lits if lit > 2 * n_pis),
        key=lambda lit: g.n_refs(lit_node(lit)),
    )
    chosen = candidates[:n_pos] if candidates else lits[:n_pos]
    while len(chosen) < n_pos:
        chosen.append(rng.choice(lits))
    for lit in chosen:
        g.add_po(lit ^ rng.randint(0, 1))
    cleanup(g)
    return g


def layered_random_aig(
    n_pis: int,
    n_ands: int,
    seed: int = 0,
    name: str = "layered",
    window: int = 256,
    xor_fraction: float = 0.3,
    sop_fraction: float = 0.05,
) -> AIG:
    """Deep synthetic AIG with *every* node kept live.

    Unlike :func:`random_aig` — where most sampled nodes dangle and are
    swept by cleanup, capping the reachable size over few PIs — dangling
    signals here are OR-reduced into a single PO tree, so the requested
    node count survives even with a handful of inputs.  That combination
    (thousands of nodes, <= 16 PIs) is what lets engine runs be verified
    with *exact* exhaustive CEC.  A ``sop_fraction`` of redundant SOP
    blocks seeds refactorable material; XORs keep signal densities
    balanced so deep chains do not collapse to constants.
    """
    rng = random.Random(seed)
    g = AIG(name)
    pool = [g.add_pi() for _ in range(n_pis)]
    guard = 0
    while g.n_ands < n_ands and guard < 50 * n_ands:
        guard += 1
        recent = pool[-window:] if len(pool) > window else pool
        roll = rng.random()
        if roll < sop_fraction:
            signal = redundant_sop_block(
                g,
                [rng.choice(recent) for _ in range(5)],
                rng.randint(3, 5),
                rng,
            )
        elif roll < sop_fraction + xor_fraction:
            a, b = rng.choice(recent), rng.choice(recent)
            if (a >> 1) == (b >> 1):
                continue
            signal = g.add_xor(a, b)
        else:
            a = rng.choice(recent) ^ rng.randint(0, 1)
            b = rng.choice(recent) ^ rng.randint(0, 1)
            signal = g.add_and(a, b)
        if signal > 1:
            pool.append(signal)
    layer = [lit for lit in pool if lit > 1 and g.n_refs(lit >> 1) == 0]
    while len(layer) > 1:
        nxt = [
            g.add_or(layer[i], layer[i + 1]) for i in range(0, len(layer) - 1, 2)
        ]
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    g.add_po(layer[0] if layer else pool[-1])
    cleanup(g)
    return g


def redundant_sop_block(
    g: AIG,
    inputs: list[int],
    n_cubes: int,
    rng: random.Random,
) -> int:
    """An unfactored OR-of-ANDs with a shared literal.

    These blocks are deliberately what algebraic refactoring is good at
    compressing — generators sprinkle them in to control the fraction of
    refactorable nodes (the paper's ``Refactored`` column).
    """
    shared = rng.choice(inputs)
    terms = []
    for _ in range(n_cubes):
        k = rng.randint(1, 3)
        cube = shared
        for _ in range(k):
            cube = g.add_and(cube, rng.choice(inputs) ^ rng.randint(0, 1))
        terms.append(cube)
    acc = terms[0]
    for term in terms[1:]:
        acc = g.add_or(acc, term)
    return acc
