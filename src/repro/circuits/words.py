"""Word-level circuit construction over AIGs.

``Word`` wraps a vector of AIG literals (LSB first) and provides the
bit-vector operators needed to build real arithmetic circuits: ripple
adders/subtractors, array multipliers, comparators, muxes, shifters.
Everything lowers to plain AND/INV nodes through the host graph, so the
generated circuits are genuine combinational arithmetic, not stand-ins.
"""

from __future__ import annotations

from ..aig.graph import AIG
from ..aig.literal import CONST0, CONST1, lit_not
from ..errors import ReproError


class Word:
    """A fixed-width unsigned bit-vector of AIG literals (LSB first)."""

    def __init__(self, g: AIG, bits: list[int]) -> None:
        self.g = g
        self.bits = list(bits)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def inputs(g: AIG, width: int, prefix: str = "x") -> "Word":
        return Word(g, [g.add_pi(f"{prefix}{i}") for i in range(width)])

    @staticmethod
    def const(g: AIG, value: int, width: int) -> "Word":
        return Word(g, [CONST1 if value >> i & 1 else CONST0 for i in range(width)])

    # -- shape ------------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.bits)

    def zext(self, width: int) -> "Word":
        """Zero-extend (or truncate) to ``width`` bits."""
        if width <= self.width:
            return Word(self.g, self.bits[:width])
        return Word(self.g, self.bits + [CONST0] * (width - self.width))

    def trunc(self, width: int) -> "Word":
        return Word(self.g, self.bits[:width])

    def slice(self, low: int, high: int) -> "Word":
        """Bits ``[low, high)``."""
        return Word(self.g, self.bits[low:high])

    def concat(self, upper: "Word") -> "Word":
        """``{upper, self}``: self provides the low bits."""
        return Word(self.g, self.bits + upper.bits)

    def shifted_left(self, amount: int) -> "Word":
        """Constant left shift, width grows."""
        return Word(self.g, [CONST0] * amount + self.bits)

    def outputs(self, prefix: str = "y") -> None:
        for i, bit in enumerate(self.bits):
            self.g.add_po(bit, f"{prefix}{i}")

    # -- bitwise ----------------------------------------------------------

    def _binary(self, other: "Word", op) -> "Word":
        if other.width != self.width:
            raise ReproError(
                f"width mismatch: {self.width} vs {other.width}"
            )
        return Word(self.g, [op(a, b) for a, b in zip(self.bits, other.bits)])

    def __and__(self, other: "Word") -> "Word":
        return self._binary(other, self.g.add_and)

    def __or__(self, other: "Word") -> "Word":
        return self._binary(other, self.g.add_or)

    def __xor__(self, other: "Word") -> "Word":
        return self._binary(other, self.g.add_xor)

    def __invert__(self) -> "Word":
        return Word(self.g, [lit_not(b) for b in self.bits])

    # -- arithmetic ---------------------------------------------------------

    def add_with_carry(self, other: "Word", carry_in: int = CONST0) -> tuple["Word", int]:
        """Ripple-carry addition; returns (sum, carry_out)."""
        if other.width != self.width:
            raise ReproError("add: width mismatch")
        g = self.g
        carry = carry_in
        out = []
        for a, b in zip(self.bits, other.bits):
            axb = g.add_xor(a, b)
            out.append(g.add_xor(axb, carry))
            carry = g.add_or(g.add_and(a, b), g.add_and(axb, carry))
        return Word(g, out), carry

    def __add__(self, other: "Word") -> "Word":
        return self.add_with_carry(other)[0]

    def __sub__(self, other: "Word") -> "Word":
        return self.add_with_carry(~other, CONST1)[0]

    def sub_with_borrow(self, other: "Word") -> tuple["Word", int]:
        """``(self - other, no_borrow)``: second value true iff self >= other."""
        diff, carry = self.add_with_carry(~other, CONST1)
        return diff, carry

    def __mul__(self, other: "Word") -> "Word":
        """Array multiplier; result width is the sum of the operand widths."""
        g = self.g
        total = self.width + other.width
        acc = Word.const(g, 0, total)
        for i, b in enumerate(other.bits):
            partial = Word(g, [g.add_and(a, b) for a in self.bits])
            acc = acc + partial.shifted_left(i).zext(total)
        return acc

    def square(self) -> "Word":
        return self * self

    # -- comparisons ---------------------------------------------------------

    def ult(self, other: "Word") -> int:
        """Literal of unsigned ``self < other``."""
        _diff, no_borrow = self.sub_with_borrow(other)
        return lit_not(no_borrow)

    def uge(self, other: "Word") -> int:
        """Literal of unsigned ``self >= other``."""
        return self.sub_with_borrow(other)[1]

    def eq(self, other: "Word") -> int:
        g = self.g
        acc = CONST1
        for a, b in zip(self.bits, other.bits):
            acc = g.add_and(acc, lit_not(g.add_xor(a, b)))
        return acc

    def is_zero(self) -> int:
        g = self.g
        acc = CONST1
        for bit in self.bits:
            acc = g.add_and(acc, lit_not(bit))
        return acc

    def reduce_or(self) -> int:
        g = self.g
        acc = CONST0
        for bit in self.bits:
            acc = g.add_or(acc, bit)
        return acc

    def reduce_xor(self) -> int:
        g = self.g
        acc = CONST0
        for bit in self.bits:
            acc = g.add_xor(acc, bit)
        return acc

    # -- selection ---------------------------------------------------------

    def mux(self, sel: int, if_true: "Word") -> "Word":
        """``sel ? if_true : self`` bitwise."""
        if if_true.width != self.width:
            raise ReproError("mux: width mismatch")
        g = self.g
        return Word(
            g,
            [g.add_mux(sel, t, e) for t, e in zip(if_true.bits, self.bits)],
        )

    def barrel_shift_left(self, amount: "Word") -> "Word":
        """Variable left shift by ``amount`` (width preserved)."""
        result = self
        for stage, sel in enumerate(amount.bits):
            shifted = Word(
                self.g, ([CONST0] * (1 << stage) + result.bits)[: self.width]
            )
            result = result.mux(sel, shifted)
        return result

    def barrel_shift_right(self, amount: "Word") -> "Word":
        """Variable logical right shift by ``amount``."""
        result = self
        for stage, sel in enumerate(amount.bits):
            shifted = Word(
                self.g,
                (result.bits[(1 << stage) :] + [CONST0] * (1 << stage))[: self.width],
            )
            result = result.mux(sel, shifted)
        return result
