"""Arithmetic circuit generators (the EPFL-arithmetic-like family).

Each generator builds a *functionally real* datapath from scratch via the
word-level builder: restoring divider, hypotenuse (sqrt of sum of
squares), normalizer+polynomial log2, array multiplier, restoring square
root and squarer.  Bit widths are parameters; the EPFL-suite wrappers in
:mod:`repro.circuits.epfl` pick widths that reproduce the paper's PI/PO
structure at a Python-tractable scale.
"""

from __future__ import annotations

from ..aig.graph import AIG
from ..aig.literal import CONST0, CONST1, lit_not
from .words import Word


def adder(width: int, name: str = "adder") -> AIG:
    """Ripple-carry adder: 2w PIs -> w+1 POs."""
    g = AIG(name)
    a = Word.inputs(g, width, "a")
    b = Word.inputs(g, width, "b")
    total, carry = a.add_with_carry(b)
    total.outputs("s")
    g.add_po(carry, "cout")
    return g


def multiplier(width: int, name: str = "multiplier") -> AIG:
    """Array multiplier: 2w PIs -> 2w POs (EPFL ``multiplier`` shape)."""
    g = AIG(name)
    a = Word.inputs(g, width, "a")
    b = Word.inputs(g, width, "b")
    (a * b).outputs("p")
    return g


def square(width: int, name: str = "square") -> AIG:
    """Squarer: w PIs -> 2w POs (EPFL ``square`` shape)."""
    g = AIG(name)
    a = Word.inputs(g, width, "a")
    a.square().outputs("p")
    return g


def divider(width: int, name: str = "div") -> AIG:
    """Restoring unsigned divider: 2w PIs -> 2w POs (quotient, remainder).

    The deep w-stage compare/subtract chain gives the high logic depth
    characteristic of EPFL ``div``.
    """
    g = AIG(name)
    dividend = Word.inputs(g, width, "n")
    divisor = Word.inputs(g, width, "d")
    wide = width + 1
    remainder = Word.const(g, 0, wide)
    divisor_w = divisor.zext(wide)
    quotient_bits = [CONST0] * width
    for i in reversed(range(width)):
        remainder = Word(g, [dividend.bits[i]] + remainder.bits[: wide - 1])
        diff, fits = remainder.sub_with_borrow(divisor_w)
        remainder = remainder.mux(fits, diff)
        quotient_bits[i] = fits
    Word(g, quotient_bits).outputs("q")
    remainder.trunc(width).outputs("r")
    return g


def isqrt(width: int, name: str = "sqrt") -> AIG:
    """Restoring integer square root: 2w PIs -> w POs.

    Input is a 2w-bit radicand; output the w-bit floor square root.  The
    w-stage restoring recurrence reproduces EPFL ``sqrt``'s very deep,
    narrow structure.
    """
    g = AIG(name)
    x = Word.inputs(g, 2 * width, "x")
    wide = width + 2
    remainder = Word.const(g, 0, wide)
    root = Word.const(g, 0, wide)
    for i in reversed(range(width)):
        # remainder = remainder*4 + next two radicand bits
        remainder = Word(
            g,
            [x.bits[2 * i], x.bits[2 * i + 1]] + remainder.bits[: wide - 2],
        )
        # trial = root*4 + 1
        trial = Word(g, [CONST1, CONST0] + root.bits[: wide - 2])
        diff, fits = remainder.sub_with_borrow(trial)
        remainder = remainder.mux(fits, diff)
        # root = root*2 + fits
        root = Word(g, [fits] + root.bits[: wide - 1])
    root.trunc(width).outputs("s")
    return g


def hypotenuse(width: int, name: str = "hyp") -> AIG:
    """``floor(sqrt(x^2 + y^2))``: 2w PIs -> w+1 POs (EPFL ``hyp`` shape).

    Two squarers, an adder, and a deep restoring square root chained
    together, mirroring hyp's mixed wide/deep structure.
    """
    g = AIG(name)
    x = Word.inputs(g, width, "x")
    y = Word.inputs(g, width, "y")
    total = x.square().zext(2 * width + 2) + y.square().zext(2 * width + 2)
    out_width = width + 1
    radicand = total.zext(2 * out_width)
    wide = out_width + 2
    remainder = Word.const(g, 0, wide)
    root = Word.const(g, 0, wide)
    for i in reversed(range(out_width)):
        remainder = Word(
            g,
            [radicand.bits[2 * i], radicand.bits[2 * i + 1]]
            + remainder.bits[: wide - 2],
        )
        trial = Word(g, [CONST1, CONST0] + root.bits[: wide - 2])
        diff, fits = remainder.sub_with_borrow(trial)
        remainder = remainder.mux(fits, diff)
        root = Word(g, [fits] + root.bits[: wide - 1])
    root.trunc(out_width).outputs("h")
    return g


def log2_approx(width: int, frac_bits: int | None = None, name: str = "log2") -> AIG:
    """Fixed-point base-2 logarithm: w PIs -> w POs.

    Priority-encode the MSB (integer part), barrel-normalize the operand,
    then apply a quadratic polynomial ``f - f^2/2`` to the fractional
    residue through a truncated multiplier.  This reproduces the wide,
    multiplier-dominated structure of EPFL ``log2``; for input 0 the
    output is 0 by convention.
    """
    g = AIG(name)
    x = Word.inputs(g, width, "x")
    frac_bits = frac_bits if frac_bits is not None else max(2, width - _clog2(width))
    int_bits = _clog2(width)
    # Priority encoder: position of the most significant set bit.
    msb_pos = Word.const(g, 0, int_bits)
    found = CONST0
    for i in reversed(range(width)):
        is_here = g.add_and(x.bits[i], lit_not(found))
        candidate = Word.const(g, i, int_bits)
        msb_pos = msb_pos.mux(is_here, candidate)
        found = g.add_or(found, x.bits[i])
    # Normalize: shift left so the MSB lands at the top bit.
    shift = Word.const(g, width - 1, int_bits) - msb_pos
    normalized = x.barrel_shift_left(shift.zext(_clog2(width)))
    # Fractional residue f in [0, 1): the top bits below the leading one.
    f = Word(g, normalized.bits[max(0, width - 1 - frac_bits) : width - 1])
    f = f.zext(frac_bits)
    # Quadratic correction: log2(1+f) ~ f + 3/8 * (f - f^2), exact at both
    # endpoints and within ~0.015 across [0, 1).
    f_squared = (f * f).slice(frac_bits, 2 * frac_bits)  # top half
    t = f - f_squared
    t_quarter = Word(g, t.bits[2:] + [CONST0] * 2)
    t_eighth = Word(g, t.bits[3:] + [CONST0] * 3)
    frac = f + t_quarter + t_eighth
    # Assemble: integer part in the high bits, fraction below.
    out = frac.zext(width)
    for k in range(int_bits):
        if frac_bits + k < width:
            out.bits[frac_bits + k] = msb_pos.bits[k]
    # Zero when the input is zero.
    out = out.mux(lit_not(found), Word.const(g, 0, width))
    out.outputs("l")
    return g


def mac(width: int, name: str = "mac") -> AIG:
    """Multiply-accumulate ``a*b + c``: 3w PIs -> 2w+1 POs."""
    g = AIG(name)
    a = Word.inputs(g, width, "a")
    b = Word.inputs(g, width, "b")
    c = Word.inputs(g, width, "c")
    product = a * b
    total, carry = product.add_with_carry(c.zext(2 * width))
    total.outputs("m")
    g.add_po(carry, "cout")
    return g


def alu(width: int, name: str = "alu") -> AIG:
    """A small ALU (add/sub/and/or/xor/lt) selected by a 3-bit opcode."""
    g = AIG(name)
    a = Word.inputs(g, width, "a")
    b = Word.inputs(g, width, "b")
    op = Word.inputs(g, 3, "op")
    results = [
        a + b,
        a - b,
        a & b,
        a | b,
        a ^ b,
        Word(g, [a.ult(b)] + [CONST0] * (width - 1)),
        ~a,
        b,
    ]
    out = results[0]
    for index in range(1, 8):
        match = _opcode_is(g, op, index)
        out = out.mux(match, results[index])
    out.outputs("r")
    return g


def _opcode_is(g: AIG, op: Word, value: int) -> int:
    acc = CONST1
    for i, bit in enumerate(op.bits):
        acc = g.add_and(acc, bit if value >> i & 1 else lit_not(bit))
    return acc


def _clog2(n: int) -> int:
    return max(1, (n - 1).bit_length())
