"""The EPFL-arithmetic-like benchmark suite.

The paper evaluates on the six largest EPFL arithmetic circuits (div,
hyp, log2, multiplier, sqrt, square — Table I).  The original AIGER
files are not redistributable here, so this module *regenerates*
functionally real counterparts with the same PI/PO structure and circuit
character using the generators in :mod:`repro.circuits.arith`.

``scale`` selects the operand widths: ``"full"`` matches the paper's
interfaces (64x64 multiplier = 128 PIs, etc.) but is impractically large
for pure-Python refactoring; ``"default"`` is the laptop-scale used by
the benchmark harness; ``"tiny"`` is for tests.  Redundancy statistics
and ELF speedup shapes are scale-invariant (they are properties of the
refactoring algorithm, not of absolute node counts) — see DESIGN.md.
"""

from __future__ import annotations

from ..aig.graph import AIG
from ..errors import ReproError
from .arith import divider, hypotenuse, isqrt, log2_approx, multiplier, square

EPFL_NAMES = ("div", "hyp", "log2", "multiplier", "sqrt", "square")

# name -> width per scale
_WIDTHS = {
    "tiny": {
        "div": 5,
        "hyp": 4,
        "log2": 8,
        "multiplier": 5,
        "sqrt": 6,
        "square": 5,
    },
    "default": {
        "div": 12,
        "hyp": 10,
        "log2": 16,
        "multiplier": 12,
        "sqrt": 16,
        "square": 12,
    },
    "large": {
        "div": 24,
        "hyp": 20,
        "log2": 24,
        "multiplier": 24,
        "sqrt": 32,
        "square": 24,
    },
    "full": {
        "div": 64,
        "hyp": 128,
        "log2": 32,
        "multiplier": 64,
        "sqrt": 64,
        "square": 64,
    },
}

_GENERATORS = {
    "div": divider,
    "hyp": hypotenuse,
    "log2": log2_approx,
    "multiplier": multiplier,
    "sqrt": isqrt,
    "square": square,
}


def epfl_circuit(name: str, scale: str = "default") -> AIG:
    """Build one EPFL-like circuit by name."""
    if name not in _GENERATORS:
        raise ReproError(f"unknown EPFL circuit {name!r}; have {EPFL_NAMES}")
    if scale not in _WIDTHS:
        raise ReproError(f"unknown scale {scale!r}; have {tuple(_WIDTHS)}")
    width = _WIDTHS[scale][name]
    g = _GENERATORS[name](width, name=name)
    return g


def epfl_suite(scale: str = "default") -> dict[str, AIG]:
    """All six circuits, keyed by name."""
    return {name: epfl_circuit(name, scale) for name in EPFL_NAMES}


PAPER_TABLE1 = {
    # design: (And, Level, PIs, POs, refactored, refactored_pct)
    "div": (57247, 4372, 128, 128, 285, 0.50),
    "hyp": (214335, 24801, 256, 128, 1992, 0.93),
    "log2": (32060, 444, 32, 32, 530, 1.65),
    "multiplier": (27062, 274, 128, 128, 247, 0.91),
    "sqrt": (24618, 5058, 128, 64, 1806, 7.34),
    "square": (18484, 250, 64, 128, 177, 0.96),
}
"""The paper's Table I, for side-by-side reporting."""
