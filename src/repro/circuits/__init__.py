"""Benchmark circuit generators: word-level arithmetic, the EPFL-like
suite, synthetic industrial designs, and large synthetic circuits."""

from .arith import (
    adder,
    alu,
    divider,
    hypotenuse,
    isqrt,
    log2_approx,
    mac,
    multiplier,
    square,
)
from .epfl import EPFL_NAMES, PAPER_TABLE1, epfl_circuit, epfl_suite
from .industrial import (
    PAPER_TABLE2,
    IndustrialProfile,
    industrial_design,
    industrial_profiles,
    industrial_suite,
)
from .random_aig import layered_random_aig, random_aig, redundant_sop_block
from .synthetic import (
    PAPER_TABLE6,
    SYNTHETIC_SIZES,
    synthetic_circuit,
    synthetic_suite,
)
from .words import Word

__all__ = [
    "EPFL_NAMES",
    "IndustrialProfile",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE6",
    "SYNTHETIC_SIZES",
    "Word",
    "adder",
    "alu",
    "divider",
    "epfl_circuit",
    "epfl_suite",
    "hypotenuse",
    "industrial_design",
    "industrial_profiles",
    "industrial_suite",
    "isqrt",
    "layered_random_aig",
    "log2_approx",
    "mac",
    "multiplier",
    "random_aig",
    "redundant_sop_block",
    "square",
    "synthetic_circuit",
    "synthetic_suite",
]
