"""Synthetic industrial-style designs (the paper's Table II stand-ins).

The 10 industrial circuits in the paper are proprietary; what matters
for reproducing the evaluation is their *shape*: shallow (tens of
levels), wide, PI/PO-heavy control-dominated netlists whose refactor
success ratio sits mostly below 1%, with two outliers near 4-11%
(designs 5 and 10).

This generator assembles such designs from realistic control blocks —
mux trees, word comparators, parity/CRC slices, one-hot decoders, small
ALU slices, AND-OR glue — plus a tunable dose of unfactored SOP blocks,
which is the knob that controls how many nodes refactoring can win back.
Designs are seeded deterministically by index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..aig.graph import AIG
from ..aig.literal import lit_not
from ..aig.strash import cleanup
from .random_aig import redundant_sop_block
from .words import Word


@dataclass(frozen=True)
class IndustrialProfile:
    """Shape parameters of one synthetic design."""

    index: int
    n_ands_target: int
    n_pis: int
    n_pos: int
    redundancy: float  # fraction of blocks that are refactor-friendly
    max_level: int  # depth budget (Table II's Level column)


# Scaled-down echoes of Table II: node counts ~1/100 of the paper's,
# PI/PO-heavy, shallow, with designs 5 and 10 carrying extra redundancy.
# ``redundancy`` is calibrated so the refactored fraction lands near the
# paper's Refactored column (mostly <1%, outliers at several percent).
_PROFILES = [
    IndustrialProfile(1, 3850, 131, 131, 0.009, 65),
    IndustrialProfile(2, 2674, 278, 206, 0.013, 49),
    IndustrialProfile(3, 6288, 356, 345, 0.008, 36),
    IndustrialProfile(4, 1598, 358, 347, 0.024, 44),
    IndustrialProfile(5, 4289, 523, 513, 0.500, 51),
    IndustrialProfile(6, 5070, 263, 252, 0.004, 35),
    IndustrialProfile(7, 3052, 202, 191, 0.008, 72),
    IndustrialProfile(8, 771, 184, 183, 0.002, 40),
    IndustrialProfile(9, 1906, 262, 261, 0.013, 71),
    IndustrialProfile(10, 4237, 423, 338, 0.410, 40),
]


def industrial_profiles() -> list[IndustrialProfile]:
    return list(_PROFILES)


def industrial_design(index: int, size_factor: float = 1.0) -> AIG:
    """Build synthetic ``design {index}`` (1-based, matching Table II)."""
    if not 1 <= index <= len(_PROFILES):
        raise ValueError(f"design index must be 1..{len(_PROFILES)}")
    profile = _PROFILES[index - 1]
    rng = random.Random(7000 + index)
    g = AIG(f"design_{index}")
    target = max(200, int(profile.n_ands_target * size_factor))
    n_pis = max(16, int(profile.n_pis * size_factor**0.5))
    n_pos = max(8, int(profile.n_pos * size_factor**0.5))

    pool = [g.add_pi(f"in{i}") for i in range(n_pis)]
    outputs: list[int] = []
    level_budget = max(12, profile.max_level - 10)
    sampler = _LevelBoundedSampler(g, pool, rng, level_budget, n_pis)

    # Mux/parity/glue are essentially incompressible under refactoring
    # (~0.1-0.4% success); comparators, adder slices and decoders carry
    # genuine algebraic redundancy.  Scaling their share by the profile's
    # redundancy reproduces the paper's Refactored column shape.
    f = profile.redundancy
    builders = [
        (_mux_tree, 4.0),
        (_parity_slice, 3.0),
        (_and_or_glue, 3.0),
        (_comparator, 12.0 * f),
        (_alu_slice, 8.0 * f),
        (_decoder, 4.0 * f),
    ]
    names, weights = zip(*builders)
    while g.n_ands < target:
        if rng.random() < 0.3 * f:
            signal = redundant_sop_block(
                g, sampler.take(6), rng.randint(3, 6), rng
            )
            new_signals = [signal]
        else:
            block = rng.choices(names, weights)[0]
            new_signals = block(g, sampler, rng)
        for s in new_signals:
            if s > 1:
                pool.append(s)
                if rng.random() < 0.25:
                    outputs.append(s)

    rng.shuffle(outputs)
    for lit in outputs[: n_pos - 1]:
        g.add_po(lit)
    # Ensure every remaining dangling signal feeds somewhere: reduce the
    # unreferenced signals into one observability output with a *balanced*
    # OR tree (a linear chain would blow the depth budget).
    dangling = [
        lit for lit in pool if lit > 1 and g.n_refs(lit >> 1) == 0
    ]
    g.add_po(_balanced_or(g, dangling), "observe")
    cleanup(g)
    return g


def _balanced_or(g: AIG, lits: list[int]) -> int:
    if not lits:
        return 0
    layer = list(lits)
    while len(layer) > 1:
        nxt = [
            g.add_or(layer[i], layer[i + 1]) for i in range(0, len(layer) - 1, 2)
        ]
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


def industrial_suite(size_factor: float = 1.0) -> dict[str, AIG]:
    """All ten designs keyed ``design_1`` .. ``design_10``."""
    return {
        f"design_{i}": industrial_design(i, size_factor)
        for i in range(1, len(_PROFILES) + 1)
    }


PAPER_TABLE2 = {
    "design_1": (384971, 65, 13135, 13127, 1142, 0.30),
    "design_2": (267358, 49, 27800, 20603, 1184, 0.44),
    "design_3": (628777, 36, 35552, 34480, 1569, 0.25),
    "design_4": (159763, 44, 35784, 34712, 1273, 0.80),
    "design_5": (428904, 51, 52344, 51283, 46376, 10.8),
    "design_6": (507027, 35, 26292, 25220, 603, 0.12),
    "design_7": (305218, 72, 20228, 19148, 839, 0.28),
    "design_8": (77130, 40, 18357, 18325, 42, 0.05),
    "design_9": (190600, 71, 26168, 26139, 807, 0.42),
    "design_10": (423661, 40, 42257, 33849, 19180, 4.53),
}
"""The paper's Table II, for side-by-side reporting."""


# -- block builders -----------------------------------------------------------


class _LevelBoundedSampler:
    """Signal sampler that keeps the design shallow.

    Signals above the level budget are replaced by a random PI, which
    caps the depth near the per-design Table II level while still letting
    blocks chain into each other below the cap.
    """

    def __init__(
        self,
        g: AIG,
        pool: list[int],
        rng: random.Random,
        level_budget: int,
        n_pis: int,
    ) -> None:
        self._g = g
        self._pool = pool
        self._rng = rng
        self._budget = level_budget
        self._n_pis = n_pis

    def take(self, k: int) -> list[int]:
        out = []
        for _ in range(k):
            lit = self._rng.choice(self._pool)
            if self._g.level(lit >> 1) >= self._budget:
                lit = self._pool[self._rng.randrange(self._n_pis)]
            out.append(lit)
        return out


def _mux_tree(g: AIG, sampler: _LevelBoundedSampler, rng: random.Random) -> list[int]:
    depth = rng.randint(1, 3)
    n_data = 1 << depth
    data = sampler.take(n_data)
    selectors = sampler.take(depth)
    level = data
    for s in selectors:
        level = [
            g.add_mux(s, level[2 * i + 1], level[2 * i])
            for i in range(len(level) // 2)
        ]
    return level


def _comparator(g: AIG, sampler: _LevelBoundedSampler, rng: random.Random) -> list[int]:
    width = rng.randint(3, 6)
    a = Word(g, sampler.take(width))
    b = Word(g, sampler.take(width))
    return [a.eq(b), a.ult(b)]


def _parity_slice(g: AIG, sampler: _LevelBoundedSampler, rng: random.Random) -> list[int]:
    width = rng.randint(4, 8)
    return [Word(g, sampler.take(width)).reduce_xor()]


def _decoder(g: AIG, sampler: _LevelBoundedSampler, rng: random.Random) -> list[int]:
    width = rng.randint(2, 3)
    select = sampler.take(width)
    outs = []
    for value in range(1 << width):
        acc = 1
        for i, bit in enumerate(select):
            acc = g.add_and(acc, bit if value >> i & 1 else lit_not(bit))
        outs.append(acc)
    return outs


def _alu_slice(g: AIG, sampler: _LevelBoundedSampler, rng: random.Random) -> list[int]:
    width = rng.randint(2, 4)
    a = Word(g, sampler.take(width))
    b = Word(g, sampler.take(width))
    total, carry = a.add_with_carry(b)
    return total.bits + [carry]


def _and_or_glue(g: AIG, sampler: _LevelBoundedSampler, rng: random.Random) -> list[int]:
    terms = []
    for _ in range(rng.randint(2, 4)):
        a, b = sampler.take(2)
        if rng.random() < 0.3:
            # XORs keep signal densities balanced (see synthetic.py).
            terms.append(g.add_xor(a, b))
        else:
            terms.append(g.add_and(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)))
    acc = terms[0]
    for t in terms[1:]:
        acc = g.add_or(acc, t)
    return [acc]
