"""Large synthetic circuits (the paper's Table VI family).

The paper's ``sixteen``/``twenty``/``twentythree`` are the synthetic
More-than-Million EPFL circuits with 16.2M/20.7M/23.3M AND nodes, on
which ABC's refactor runs for about an hour.  A pure-Python refactor at
those sizes is infeasible (repro band 3: pointer-heavy DAG rewriting is
~1000x slower per node than C), so the default here scales each circuit
down by 1000x while preserving the generator character: a deep,
locality-biased random AIG salted with ~1% refactorable SOP blocks.
Speedup ratios and And-diff percentages — the quantities Table VI
reports — are preserved under this scaling; absolute runtimes are not.
"""

from __future__ import annotations

import random

from ..aig.graph import AIG
from ..aig.strash import cleanup
from .random_aig import redundant_sop_block

SYNTHETIC_SIZES = {
    # name: paper node count
    "sixteen": 16_216_836,
    "twenty": 20_732_893,
    "twentythree": 23_339_737,
}

PAPER_TABLE6 = {
    # name: (nodes, abc_runtime_s, elf_speedup, and_diff_pct)
    "sixteen": (16_216_836, 2243.63, 2.97, 0.07),
    "twenty": (20_732_893, 3138.46, 2.87, 0.06),
    "twentythree": (23_339_737, 3914.77, 2.85, 0.06),
}
"""The paper's Table VI, for side-by-side reporting."""

DEFAULT_SCALE_DIVISOR = 1000


def synthetic_circuit(name: str, scale_divisor: int = DEFAULT_SCALE_DIVISOR) -> AIG:
    """Build a scaled ``sixteen``/``twenty``/``twentythree`` analogue."""
    if name not in SYNTHETIC_SIZES:
        raise ValueError(f"unknown synthetic circuit {name!r}")
    target = max(1000, SYNTHETIC_SIZES[name] // scale_divisor)
    # Stable seed (str hash is process-salted, which would make circuits
    # differ between runs).
    rng = random.Random(sum(ord(c) * 31**i for i, c in enumerate(name)) & 0xFFFF)
    n_pis = max(64, target // 80)
    g = AIG(name)
    pool = [g.add_pi() for _ in range(n_pis)]
    while g.n_ands < target:
        roll = rng.random()
        if roll < 0.008:
            # Refactorable material: unfactored SOP blocks (~1% of nodes,
            # matching the MtM circuits' low-but-nonzero success rate).
            window = pool[-256:]
            signal = redundant_sop_block(
                g, [rng.choice(window) for _ in range(5)], rng.randint(3, 5), rng
            )
        else:
            # Deep chains of random ANDs drift toward constant functions
            # (signal density is a multiplicative random walk), which
            # refactoring would then collapse catastrophically.  Real
            # netlists are XOR-rich; mixing XORs in keeps densities
            # balanced and the circuit incompressible, like the MtM suite.
            window = pool[-512:] if len(pool) > 512 else pool
            a = rng.choice(window)
            b = rng.choice(window)
            if (a >> 1) == (b >> 1):
                continue
            if roll < 0.35:
                signal = g.add_xor(a, b)
            else:
                signal = g.add_and(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1))
        if signal > 1:
            pool.append(signal)
    # Keep everything alive: some dangling signals become POs directly,
    # the rest reduce through balanced OR trees into chunk outputs.
    dangling = [lit for lit in pool if lit > 1 and g.n_refs(lit >> 1) == 0]
    direct = max(64, target // 300)
    for lit in dangling[:direct]:
        g.add_po(lit)
    chunk = 64
    for start in range(direct, len(dangling), chunk):
        layer = dangling[start : start + chunk]
        while len(layer) > 1:
            nxt = [
                g.add_or(layer[i], layer[i + 1])
                for i in range(0, len(layer) - 1, 2)
            ]
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        if layer and layer[0] > 1:
            g.add_po(layer[0])
    if g.n_pos == 0:
        g.add_po(pool[-1])
    cleanup(g)
    return g


def synthetic_suite(scale_divisor: int = DEFAULT_SCALE_DIVISOR) -> dict[str, AIG]:
    return {
        name: synthetic_circuit(name, scale_divisor) for name in SYNTHETIC_SIZES
    }
