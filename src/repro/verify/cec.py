"""Combinational equivalence checking (CEC).

Strategy ladder:

1. exhaustive truth tables when the support is small (exact);
2. random bit-parallel simulation (fast falsification);
3. SAT on the miter (exact, via the built-in DPLL solver).

The test suite leans on this to prove that every optimization operator
preserves network functionality.
"""

from __future__ import annotations

import numpy as np

from ..aig.graph import AIG
from ..aig.literal import lit_node
from ..aig.simulate import cone_truth, full_mask, simulate, var_mask
from ..errors import ReproError
from .cnf import CnfMapping, encode
from .sat import Solver

EXHAUSTIVE_PI_LIMIT = 12


def po_truth_tables(g: AIG) -> list[int]:
    """Exhaustive truth table of every PO (requires few PIs)."""
    if g.n_pis > 16:
        raise ReproError(f"{g.n_pis} PIs is too many for exhaustive tables")
    pis = g.pis
    ones = full_mask(len(pis))
    tables = []
    for lit in g.pos:
        tt = cone_truth(g, lit_node(lit), pis)
        tables.append(tt ^ ones if lit & 1 else tt)
    return tables


def equivalent(
    g1: AIG,
    g2: AIG,
    method: str = "auto",
    n_random_words: int = 16,
    seed: int = 0,
) -> bool:
    """Decide whether the two networks compute the same functions.

    ``method``: ``"auto"`` (exhaustive if small, else simulation screen +
    SAT), ``"exhaustive"``, ``"sim"`` (probabilistic!), or ``"sat"``.
    """
    if g1.n_pis != g2.n_pis or g1.n_pos != g2.n_pos:
        return False
    if method == "exhaustive" or (method == "auto" and g1.n_pis <= EXHAUSTIVE_PI_LIMIT):
        return po_truth_tables(g1) == po_truth_tables(g2)
    if not _sim_equal(g1, g2, n_random_words, seed):
        return False
    if method == "sim":
        return True
    return _sat_equal(g1, g2)


def counterexample(g1: AIG, g2: AIG) -> dict[int, bool] | None:
    """PI assignment distinguishing the two networks, or None if equivalent.

    Keys are PI indices (position in ``g.pis``).
    """
    solver, m1, _m2, outputs = _build_miter_cnf(g1, g2)
    solver.add_clause(outputs)
    if not solver.solve():
        return None
    model = solver.model()
    return {
        i: model.get(m1.var_of[pi], False) for i, pi in enumerate(g1.pis)
    }


def _sim_equal(g1: AIG, g2: AIG, n_words: int, seed: int) -> bool:
    rng = np.random.default_rng(seed)
    pi_values = rng.integers(0, 2**64, size=(g1.n_pis, n_words), dtype=np.uint64)
    return np.array_equal(simulate(g1, pi_values), simulate(g2, pi_values))


def _sat_equal(g1: AIG, g2: AIG) -> bool:
    solver, _m1, _m2, outputs = _build_miter_cnf(g1, g2)
    # Any PO pair differing -> SAT. One clause over all XOR outputs.
    solver.add_clause(outputs)
    return not solver.solve()


def _build_miter_cnf(
    g1: AIG, g2: AIG
) -> tuple[Solver, CnfMapping, CnfMapping, list[int]]:
    solver = Solver()
    m1 = encode(g1, solver)
    m2 = encode(g2, solver, CnfMapping(g2, offset=m1.n_vars))
    # Tie the PIs together.
    for pi1, pi2 in zip(g1.pis, g2.pis):
        v1, v2 = m1.var_of[pi1], m2.var_of[pi2]
        solver.add_clause([-v1, v2])
        solver.add_clause([v1, -v2])
    # XOR variable per PO pair.
    outputs = []
    next_var = m1.n_vars + m2.n_vars
    for lit1, lit2 in zip(g1.pos, g2.pos):
        a, b = m1.dimacs(lit1), m2.dimacs(lit2)
        next_var += 1
        x = next_var
        solver.add_clause([-x, a, b])
        solver.add_clause([-x, -a, -b])
        solver.add_clause([x, -a, b])
        solver.add_clause([x, a, -b])
        outputs.append(x)
    return solver, m1, m2, outputs
