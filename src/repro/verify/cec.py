"""Combinational equivalence checking (CEC).

Strategy ladder:

1. exhaustive truth tables when the support is small (exact);
2. random bit-parallel simulation (fast falsification);
3. SAT on the miter (exact, via the built-in DPLL solver).

The test suite leans on this to prove that every optimization operator
preserves network functionality.
"""

from __future__ import annotations

import numpy as np

from ..aig.graph import AIG
from ..aig.literal import lit_node
from ..aig.simulate import cone_truth, full_mask, simulate, var_mask
from ..errors import ReproError
from .cnf import CnfMapping, encode
from .sat import Solver

EXHAUSTIVE_PI_LIMIT = 12
EXHAUSTIVE_SIM_PI_LIMIT = 20
"""Up to here, *all* input patterns fit in a bit-parallel simulation
(2^20 patterns = 16 K uint64 words per signal), which is exact like the
truth-table path but runs as two vectorized network sweeps — the miter
SAT fallback is only needed beyond this."""


def po_truth_tables(g: AIG) -> list[int]:
    """Exhaustive truth table of every PO (requires few PIs)."""
    if g.n_pis > 16:
        raise ReproError(f"{g.n_pis} PIs is too many for exhaustive tables")
    pis = g.pis
    ones = full_mask(len(pis))
    tables = []
    for lit in g.pos:
        tt = cone_truth(g, lit_node(lit), pis)
        tables.append(tt ^ ones if lit & 1 else tt)
    return tables


def equivalent(
    g1: AIG,
    g2: AIG,
    method: str = "auto",
    n_random_words: int = 16,
    seed: int = 0,
) -> bool:
    """Decide whether the two networks compute the same functions.

    ``method``: ``"auto"`` (exhaustive tables if small, exhaustive
    simulation up to ``EXHAUSTIVE_SIM_PI_LIMIT`` PIs, else simulation
    screen + SAT), ``"exhaustive"``, ``"exhaustive-sim"``, ``"sim"``
    (probabilistic!), or ``"sat"``.
    """
    if g1.n_pis != g2.n_pis or g1.n_pos != g2.n_pos:
        return False
    if method == "exhaustive" or (method == "auto" and g1.n_pis <= EXHAUSTIVE_PI_LIMIT):
        return po_truth_tables(g1) == po_truth_tables(g2)
    if method == "exhaustive-sim" or (
        method == "auto"
        and g1.n_pis <= EXHAUSTIVE_SIM_PI_LIMIT
        and _exhaustive_sim_words(g1, g2) <= _EXHAUSTIVE_SIM_WORD_BUDGET
    ):
        if g1.n_pis > EXHAUSTIVE_SIM_PI_LIMIT:
            raise ReproError(
                f"{g1.n_pis} PIs is too many for exhaustive simulation"
            )
        patterns = exhaustive_pi_patterns(g1.n_pis)
        return np.array_equal(simulate(g1, patterns), simulate(g2, patterns))
    if not _sim_equal(g1, g2, n_random_words, seed):
        return False
    if method == "sim":
        return True
    return _sat_equal(g1, g2)


_EXHAUSTIVE_SIM_WORD_BUDGET = 1 << 25
"""Auto mode only picks exhaustive simulation when the per-node value
matrix stays within this many uint64 words (256 MiB), falling back to
the simulation screen + SAT ladder for bigger cases."""


def _exhaustive_sim_words(g1: AIG, g2: AIG) -> int:
    n_words = max(1, (1 << g1.n_pis) >> 6)
    return max(g1.n_nodes, g2.n_nodes) * n_words


def exhaustive_pi_patterns(n_pis: int) -> np.ndarray:
    """All ``2^n_pis`` input assignments as ``(n_pis, words)`` uint64 rows.

    Bit ``b`` of word ``w`` of row ``v`` is the value of PI ``v`` under
    assignment ``64 * w + b`` — the same variable order truth tables use.
    For fewer than 7 PIs the single word repeats the 2^n patterns, which
    is harmless for equivalence checks (both networks see duplicates).
    """
    if n_pis > EXHAUSTIVE_SIM_PI_LIMIT:
        raise ReproError(f"{n_pis} PIs is too many for exhaustive patterns")
    n_words = max(1, (1 << n_pis) >> 6)
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    patterns = np.empty((n_pis, n_words), dtype=np.uint64)
    word_index = np.arange(n_words, dtype=np.uint64)
    for var in range(n_pis):
        if var < 6:
            # Alternating runs of 2^var zeros and ones inside each word.
            word = 0
            run = 1 << var
            for offset in range(0, 64, 2 * run):
                word |= ((1 << run) - 1) << (offset + run)
            patterns[var, :] = np.uint64(word)
        else:
            # Assignment index bit ``var`` selects whole words.
            bit = np.uint64(1) << np.uint64(var - 6)
            patterns[var] = np.where(word_index & bit != 0, ones, np.uint64(0))
    return patterns


def counterexample(g1: AIG, g2: AIG) -> dict[int, bool] | None:
    """PI assignment distinguishing the two networks, or None if equivalent.

    Keys are PI indices (position in ``g.pis``).
    """
    solver, m1, _m2, outputs = _build_miter_cnf(g1, g2)
    solver.add_clause(outputs)
    if not solver.solve():
        return None
    model = solver.model()
    return {
        i: model.get(m1.var_of[pi], False) for i, pi in enumerate(g1.pis)
    }


def _sim_equal(g1: AIG, g2: AIG, n_words: int, seed: int) -> bool:
    rng = np.random.default_rng(seed)
    pi_values = rng.integers(0, 2**64, size=(g1.n_pis, n_words), dtype=np.uint64)
    return np.array_equal(simulate(g1, pi_values), simulate(g2, pi_values))


def _sat_equal(g1: AIG, g2: AIG) -> bool:
    solver, _m1, _m2, outputs = _build_miter_cnf(g1, g2)
    # Any PO pair differing -> SAT. One clause over all XOR outputs.
    solver.add_clause(outputs)
    return not solver.solve()


def _build_miter_cnf(
    g1: AIG, g2: AIG
) -> tuple[Solver, CnfMapping, CnfMapping, list[int]]:
    solver = Solver()
    m1 = encode(g1, solver)
    m2 = encode(g2, solver, CnfMapping(g2, offset=m1.n_vars))
    # Tie the PIs together.
    for pi1, pi2 in zip(g1.pis, g2.pis):
        v1, v2 = m1.var_of[pi1], m2.var_of[pi2]
        solver.add_clause([-v1, v2])
        solver.add_clause([v1, -v2])
    # XOR variable per PO pair.
    outputs = []
    next_var = m1.n_vars + m2.n_vars
    for lit1, lit2 in zip(g1.pos, g2.pos):
        a, b = m1.dimacs(lit1), m2.dimacs(lit2)
        next_var += 1
        x = next_var
        solver.add_clause([-x, a, b])
        solver.add_clause([-x, -a, -b])
        solver.add_clause([x, -a, b])
        solver.add_clause([x, a, -b])
        outputs.append(x)
    return solver, m1, m2, outputs
