"""Tseitin encoding of AIGs into CNF."""

from __future__ import annotations

from ..aig.graph import AIG
from ..aig.literal import lit_node
from .sat import Solver


class CnfMapping:
    """Mapping from AIG nodes to DIMACS variables."""

    def __init__(self, g: AIG, offset: int = 0) -> None:
        self.var_of: dict[int, int] = {}
        next_var = offset + 1
        self.var_of[0] = next_var  # constant node
        next_var += 1
        for pi in g.pis:
            self.var_of[pi] = next_var
            next_var += 1
        for node in g.iter_ands():
            self.var_of[node] = next_var
            next_var += 1
        self.n_vars = next_var - 1

    def dimacs(self, aig_lit: int) -> int:
        """DIMACS literal for an AIG literal."""
        var = self.var_of[lit_node(aig_lit)]
        return -var if aig_lit & 1 else var


def encode(g: AIG, solver: Solver, mapping: CnfMapping | None = None) -> CnfMapping:
    """Add Tseitin clauses of ``g`` to ``solver``; returns the mapping."""
    mapping = mapping or CnfMapping(g)
    solver.add_clause([-mapping.var_of[0]])  # constant node is false
    for node in g.iter_ands():
        z = mapping.var_of[node]
        f0, f1 = g.fanin_lits(node)
        a, b = mapping.dimacs(f0), mapping.dimacs(f1)
        solver.add_clause([-z, a])
        solver.add_clause([-z, b])
        solver.add_clause([z, -a, -b])
    return mapping
