"""A compact CNF SAT solver (iterative DPLL with watched literals).

Small by design: the library only needs it for combinational equivalence
checking of test- and example-sized miters.  Literals follow the DIMACS
convention: variables are positive ints, negation is the negative int.
"""

from __future__ import annotations

from ..errors import SatError


class Solver:
    """DPLL with two-watched-literal propagation and a static frequency
    decision heuristic."""

    def __init__(self) -> None:
        self._clauses: list[list[int]] = []
        self._n_vars = 0
        self._model: dict[int, bool] = {}

    def add_clause(self, lits: list[int]) -> None:
        """Add a clause; empty clauses make the instance trivially UNSAT."""
        clause = []
        seen = set()
        for lit in lits:
            if lit == 0:
                raise SatError("0 is not a valid DIMACS literal")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
                self._n_vars = max(self._n_vars, abs(lit))
        self._clauses.append(clause)

    @property
    def n_vars(self) -> int:
        return self._n_vars

    @property
    def n_clauses(self) -> int:
        return len(self._clauses)

    def solve(self, assumptions: list[int] | None = None) -> bool:
        """Decide satisfiability; the model is available via :meth:`model`."""
        if any(not clause for clause in self._clauses):
            return False
        n = self._n_vars
        assign: list[int] = [0] * (n + 1)  # 0 unknown, 1 true, -1 false
        trail: list[int] = []
        trail_lim: list[int] = []
        watches: dict[int, list[int]] = {}
        clauses = [list(c) for c in self._clauses]

        def watch(lit: int, ci: int) -> None:
            watches.setdefault(lit, []).append(ci)

        units: list[int] = []
        for ci, clause in enumerate(clauses):
            if len(clause) == 1:
                units.append(clause[0])
            else:
                watch(clause[0], ci)
                watch(clause[1], ci)

        def value(lit: int) -> int:
            v = assign[abs(lit)]
            return v if lit > 0 else -v

        def enqueue(lit: int) -> bool:
            if value(lit) == 1:
                return True
            if value(lit) == -1:
                return False
            assign[abs(lit)] = 1 if lit > 0 else -1
            trail.append(lit)
            return True

        def propagate(start: int) -> bool:
            head = start
            while head < len(trail):
                false_lit = -trail[head]
                head += 1
                watching = watches.get(false_lit, [])
                kept: list[int] = []
                i = 0
                while i < len(watching):
                    ci = watching[i]
                    i += 1
                    clause = clauses[ci]
                    # Normalize: watched lits at positions 0 and 1.
                    if clause[0] == false_lit:
                        clause[0], clause[1] = clause[1], clause[0]
                    other = clause[0]
                    if value(other) == 1:
                        kept.append(ci)
                        continue
                    moved = False
                    for k in range(2, len(clause)):
                        if value(clause[k]) != -1:
                            clause[1], clause[k] = clause[k], clause[1]
                            watch(clause[1], ci)
                            moved = True
                            break
                    if moved:
                        continue
                    kept.append(ci)
                    if not enqueue(other):
                        kept.extend(watching[i:])
                        watches[false_lit] = kept
                        return False
                watches[false_lit] = kept
            return True

        for lit in units:
            if not enqueue(lit):
                return False
        for lit in assumptions or []:
            if abs(lit) > n:
                continue
            if not enqueue(lit):
                return False
        if not propagate(0):
            return False

        # Static decision order: most frequent variables first.
        freq = [0] * (n + 1)
        for clause in clauses:
            for lit in clause:
                freq[abs(lit)] += 1
        order = sorted(range(1, n + 1), key=lambda v: -freq[v])
        # (decision_var_index, phase_tried) stack
        decisions: list[tuple[int, int]] = []

        def next_unassigned() -> int:
            for v in order:
                if assign[v] == 0:
                    return v
            return 0

        while True:
            var = next_unassigned()
            if var == 0:
                self._model = {v: assign[v] == 1 for v in range(1, n + 1)}
                return True
            trail_lim.append(len(trail))
            decisions.append((var, 0))
            enqueue(var)  # try positive phase first
            while not propagate(trail_lim[-1]):
                # Conflict: backtrack chronologically.
                while decisions and decisions[-1][1] == 1:
                    level = trail_lim.pop()
                    for lit in trail[level:]:
                        assign[abs(lit)] = 0
                    del trail[level:]
                    decisions.pop()
                if not decisions:
                    return False
                var, _phase = decisions[-1]
                level = trail_lim[-1]
                for lit in trail[level:]:
                    assign[abs(lit)] = 0
                del trail[level:]
                decisions[-1] = (var, 1)
                enqueue(-var)

    def model(self) -> dict[int, bool]:
        """Satisfying assignment from the last successful :meth:`solve`."""
        if not self._model:
            raise SatError("no model available (last solve failed or not run)")
        return dict(self._model)
