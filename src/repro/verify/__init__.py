"""Verification: SAT solving, CNF encoding, combinational equivalence."""

from .cec import counterexample, equivalent, exhaustive_pi_patterns, po_truth_tables
from .cnf import CnfMapping, encode
from .sat import Solver

__all__ = [
    "CnfMapping",
    "Solver",
    "counterexample",
    "encode",
    "equivalent",
    "exhaustive_pi_patterns",
    "po_truth_tables",
]
