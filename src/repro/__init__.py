"""repro — a full reproduction of *ELF: Efficient Logic Synthesis by
Pruning Redundancy in Refactoring* (DAC 2025).

Quickstart::

    from repro import AIG, refactor, elf_refactor
    from repro.circuits import multiplier
    from repro.elf import collect_dataset, train_leave_one_out

    g = multiplier(12)
    stats = refactor(g.clone())          # baseline ABC-style refactor
    # ... train a classifier and run the pruned operator:
    # elf_refactor(g, classifier)

Subpackages: ``aig`` (the AND-inverter-graph substrate), ``cuts``,
``tt`` (truth tables/ISOP/NPN), ``factor`` (algebraic factoring),
``opt`` (refactor/rewrite/resub/balance/flows), ``ml`` (NumPy training
stack), ``elf`` (the paper's contribution), ``engine`` (conflict-aware
parallel refactoring), ``serve`` (sharded multi-circuit serving with
cross-circuit fused classification), ``circuits`` (benchmark
generators), ``verify`` (SAT/CEC), ``analysis`` (t-SNE/SHAP), and
``harness`` (experiment drivers).
"""

from .aig import AIG
from .elf import ElfClassifier, ElfParams, elf_refactor, elf_refactor_parallel
from .engine import EngineParams, EngineStats, engine_refactor
from .opt import OptSession, RefactorParams, refactor, run_flow

__version__ = "1.0.0"

__all__ = [
    "AIG",
    "ElfClassifier",
    "ElfParams",
    "EngineParams",
    "EngineStats",
    "OptSession",
    "RefactorParams",
    "elf_refactor",
    "elf_refactor_parallel",
    "engine_refactor",
    "refactor",
    "run_flow",
    "__version__",
]
