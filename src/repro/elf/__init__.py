"""ELF: the paper's contribution — classifier-pruned refactoring."""

from .classifier import ElfClassifier
from .operator import ElfParams, elf_refactor, elf_refactor_parallel
from .pipeline import (
    ComparisonRow,
    collect_dataset,
    compare,
    evaluate_classifier,
    train_leave_one_out,
)

__all__ = [
    "ComparisonRow",
    "ElfClassifier",
    "ElfParams",
    "collect_dataset",
    "compare",
    "elf_refactor",
    "elf_refactor_parallel",
    "evaluate_classifier",
    "train_leave_one_out",
]
