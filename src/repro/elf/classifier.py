"""The deployed ELF classifier.

Deployment mirrors the paper's ONNX graph: a Mean-Variance-Normalization
node merged in front of the network, run over *all cut data in one
batch*.  MVN normalizes by the statistics of the batch itself — which is
exactly the paper's "each dataset is standardized individually": at
inference the batch is the test circuit's whole cut population, so the
model sees the same per-circuit standardization it was trained under,
and generalizes across circuit sizes it never saw.

For small batches (the streaming ablation) batch statistics are
meaningless, so a fallback normalization captured from the training
corpus is used instead.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..cuts.features import N_FEATURES
from ..errors import TrainingError
from ..ml.metrics import threshold_for_recall
from ..ml.mlp import MLP
from ..ml.train import TrainResult

MIN_BATCH_FOR_MVN = 16


class ElfClassifier:
    """Batch-MVN + MLP classifier with a recall-driven threshold."""

    def __init__(
        self,
        model: MLP,
        threshold: float = 0.5,
        fallback_mean: np.ndarray | None = None,
        fallback_std: np.ndarray | None = None,
        batch_normalize: bool = True,
    ) -> None:
        if model.layer_sizes[0] != N_FEATURES:
            raise TrainingError(f"classifier input must be {N_FEATURES}-d")
        self.model = model
        self.threshold = float(threshold)
        self.batch_normalize = batch_normalize
        self.fallback_mean = (
            np.zeros(N_FEATURES) if fallback_mean is None else np.asarray(fallback_mean)
        )
        self.fallback_std = (
            np.ones(N_FEATURES) if fallback_std is None else np.asarray(fallback_std)
        )

    @staticmethod
    def from_training(
        result: TrainResult,
        target_recall: float = 0.95,
        calibration: list[np.ndarray] | tuple | None = None,
        calibration_labels: list[np.ndarray] | None = None,
    ) -> "ElfClassifier":
        """Build the deployable classifier from a training run.

        ``result`` must come from training on *per-circuit standardized*
        features.  ``calibration`` is a list of per-circuit raw feature
        arrays with matching ``calibration_labels``; the threshold is the
        recall-driven operating point over their pooled predictions.
        Passing a single ``(x, y)`` tuple is also accepted.
        """
        clf = ElfClassifier(result.fused_model())
        if calibration is None:
            return clf
        if isinstance(calibration, tuple):
            feature_sets = [np.asarray(calibration[0])]
            label_sets = [np.asarray(calibration[1])]
        else:
            feature_sets = [np.asarray(x) for x in calibration]
            label_sets = [np.asarray(y) for y in (calibration_labels or [])]
        if len(feature_sets) != len(label_sets):
            raise TrainingError("calibration features/labels mismatch")
        raw = np.concatenate(feature_sets)
        clf.fallback_mean = raw.mean(axis=0)
        std = raw.std(axis=0)
        std[std < 1e-9] = 1.0
        clf.fallback_std = std
        # Per-circuit operating points, aggregated by median: a pooled
        # threshold is dominated by whichever training circuit has the
        # hardest positives, which wrecks recall/pruning balance on the
        # others.  The median threshold hits the recall target on the
        # typical circuit while staying robust to one outlier.
        thresholds = []
        for x, y in zip(feature_sets, label_sets):
            if (y > 0.5).sum() >= 5:
                probs = clf.predict_proba(x)
                thresholds.append(threshold_for_recall(probs, y, target_recall))
        if thresholds:
            clf.threshold = float(np.median(thresholds))
        return clf

    @property
    def n_parameters(self) -> int:
        return self.model.n_parameters

    def _normalize(self, features: np.ndarray) -> np.ndarray:
        """The MVN node: z-score a batch by its own statistics when it is
        large enough to have meaningful ones, else by the fallback stats.

        The single normalization path shared by plain and fused
        inference — per-batch semantics must stay identical between the
        two for the serving layer's fusion guarantee to hold.
        """
        if self.batch_normalize and features.shape[0] >= MIN_BATCH_FOR_MVN:
            mean = features.mean(axis=0)
            std = features.std(axis=0)
            std[std < 1e-9] = 1.0
        else:
            mean, std = self.fallback_mean, self.fallback_std
        return (features - mean) / std

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probabilities for a raw-feature batch ``(n, 6)``."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] == 0:
            return np.zeros(0)
        return _sigmoid(self.model.forward_logits(self._normalize(features)))

    def keep_mask(self, features: np.ndarray) -> np.ndarray:
        """Boolean mask: True = attempt resynthesis, False = prune."""
        return self.predict_proba(features) >= self.threshold

    # -- cross-circuit batch fusion ------------------------------------------

    def fused_predict_proba(self, batches: list[np.ndarray]) -> list[np.ndarray]:
        """Classify several independent batches with one fused forward pass.

        This is the serving layer's amortization hook: each batch keeps
        *its own* MVN statistics (so per-batch semantics — and therefore
        per-circuit standardization — are preserved exactly), but the
        normalized rows are stacked into a single matrix and pushed
        through the network once.  The returned probabilities match what
        per-batch :meth:`predict_proba` calls would produce to within
        the last ulp (BLAS may pick a different kernel for the stacked
        shape); keep/prune decisions are unchanged unless a probability
        sits within float rounding of the threshold.
        """
        z_blocks: list[np.ndarray] = []
        lengths: list[int] = []
        for features in batches:
            features = np.asarray(features, dtype=np.float64)
            lengths.append(features.shape[0])
            if features.shape[0] == 0:
                continue
            z_blocks.append(self._normalize(features))
        if not z_blocks:
            return [np.zeros(0) for _ in lengths]
        fused = _sigmoid(self.model.forward_logits(np.concatenate(z_blocks)))
        out: list[np.ndarray] = []
        offset = 0
        for n in lengths:
            out.append(fused[offset : offset + n])
            offset += n
        return out

    def fused_keep_masks(self, batches: list[np.ndarray]) -> list[np.ndarray]:
        """Per-batch keep masks from one fused inference (see above)."""
        return [p >= self.threshold for p in self.fused_predict_proba(batches)]

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        arrays = {
            "threshold": np.array(self.threshold),
            "batch_normalize": np.array(int(self.batch_normalize)),
            "fallback_mean": self.fallback_mean,
            "fallback_std": self.fallback_std,
            "layer_sizes": np.array(self.model.layer_sizes),
        }
        for i, (w, b) in enumerate(zip(self.model.weights, self.model.biases)):
            arrays[f"w{i}"] = w
            arrays[f"b{i}"] = b
        np.savez_compressed(path, **arrays)

    @staticmethod
    def load(path: str | Path) -> "ElfClassifier":
        data = np.load(path, allow_pickle=False)
        layer_sizes = tuple(int(s) for s in data["layer_sizes"])
        model = MLP(layer_sizes)
        model.weights = [data[f"w{i}"] for i in range(len(layer_sizes) - 1)]
        model.biases = [data[f"b{i}"] for i in range(len(layer_sizes) - 1)]
        return ElfClassifier(
            model,
            float(data["threshold"]),
            fallback_mean=data["fallback_mean"],
            fallback_std=data["fallback_std"],
            batch_normalize=bool(int(data["batch_normalize"])),
        )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out
