"""Leave-one-out training and ABC-vs-ELF comparison pipelines.

This is the experiment machinery behind Tables III-VIII: harvest
datasets by running the baseline operator, train on every circuit except
the one under test (the paper's generalization protocol), deploy the
fused classifier, and measure runtime/quality of baseline refactor vs
ELF on fresh clones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..aig.graph import AIG
from ..errors import TrainingError
from ..ml.dataset import CutDataset, DatasetCollector
from ..ml.metrics import Confusion, confusion
from ..ml.train import TrainConfig, train_classifier
from ..opt.refactor import RefactorParams, RefactorStats, refactor
from .classifier import ElfClassifier
from .operator import ElfParams, elf_refactor


def collect_dataset(
    g: AIG,
    params: RefactorParams | None = None,
    name: str | None = None,
) -> CutDataset:
    """Run baseline refactor on a clone of ``g``; harvest features/labels."""
    collector = DatasetCollector()
    refactor(g.clone(), params, collector=collector)
    return collector.dataset(name if name is not None else g.name)


def train_leave_one_out(
    datasets: dict[str, CutDataset],
    test_name: str,
    config: TrainConfig | None = None,
    target_recall: float = 0.95,
) -> ElfClassifier:
    """Train on every dataset except ``test_name`` (paper SS IV-A).

    The decision threshold is calibrated on the *training* data only, so
    the test circuit stays fully unseen.
    """
    if test_name not in datasets:
        raise TrainingError(f"unknown test design {test_name!r}")
    training = [d for name, d in datasets.items() if name != test_name]
    if not training:
        raise TrainingError("leave-one-out needs at least two datasets")
    # The paper standardizes each dataset *individually* before training
    # (its deployed MVN node normalizes per batch = per circuit); mirror
    # that here so the network always sees per-circuit z-scores.
    standardized = [d.standardized()[0] for d in training if len(d) > 0]
    merged = CutDataset.concatenate(standardized, name=f"all-but-{test_name}")
    result = train_classifier(merged, config)
    return ElfClassifier.from_training(
        result,
        target_recall,
        calibration=[d.x for d in training if len(d) > 0],
        calibration_labels=[d.y for d in training if len(d) > 0],
    )


def evaluate_classifier(dataset: CutDataset, classifier: ElfClassifier) -> Confusion:
    """Confusion counts of the classifier on a (test) dataset."""
    predictions = classifier.keep_mask(dataset.x)
    return confusion(dataset.y > 0.5, predictions)


@dataclass
class ComparisonRow:
    """One row of the paper's Table III/IV/V layout."""

    design: str
    nodes_before: int
    baseline_runtime: float
    baseline_ands: int
    baseline_level: int
    elf_runtime: float
    elf_ands: int
    elf_level: int
    baseline_stats: RefactorStats
    elf_stats: RefactorStats
    # Conflict-wave engine columns; populated when ``compare`` runs with
    # ``engine_workers`` (0 = engine row absent).
    engine_workers: int = 0
    engine_runtime: float = 0.0
    engine_ands: int = 0
    engine_level: int = 0
    engine_stats: RefactorStats | None = None

    @property
    def speedup(self) -> float:
        return self.baseline_runtime / self.elf_runtime if self.elf_runtime > 0 else float("inf")

    @property
    def engine_speedup(self) -> float:
        """Baseline refactor runtime over the engine's runtime."""
        if self.engine_workers == 0:
            return 0.0
        return (
            self.baseline_runtime / self.engine_runtime
            if self.engine_runtime > 0
            else float("inf")
        )

    @property
    def engine_and_diff_pct(self) -> float:
        if self.engine_workers == 0 or self.baseline_ands == 0:
            return 0.0
        return 100.0 * (self.engine_ands - self.baseline_ands) / self.baseline_ands

    @property
    def and_diff_pct(self) -> float:
        if self.baseline_ands == 0:
            return 0.0
        return 100.0 * (self.elf_ands - self.baseline_ands) / self.baseline_ands

    @property
    def level_diff_pct(self) -> float:
        if self.baseline_level == 0:
            return 0.0
        return 100.0 * (self.elf_level - self.baseline_level) / self.baseline_level

    @property
    def prune_fraction(self) -> float:
        visited = self.elf_stats.nodes_visited
        return self.elf_stats.pruned / visited if visited else 0.0


def compare(
    g: AIG,
    classifier: ElfClassifier,
    params: ElfParams | None = None,
    elf_applications: int = 1,
    engine_workers: int | None = None,
) -> ComparisonRow:
    """Baseline refactor vs ELF (applied ``elf_applications`` times).

    Both run on fresh clones of ``g``; the baseline always runs once
    (Table IV compares one baseline pass against ELF x 2).  With
    ``engine_workers`` the conflict-wave engine also runs once on its own
    clone (classifier deployed) and fills the row's ``engine_*`` columns.
    """
    params = params or ElfParams()
    baseline_g = g.clone()
    t0 = time.perf_counter()
    baseline_stats = refactor(baseline_g, params.refactor)
    baseline_runtime = time.perf_counter() - t0

    elf_g = g.clone()
    elf_stats_total = RefactorStats()
    t0 = time.perf_counter()
    for _ in range(elf_applications):
        pass_stats = elf_refactor(elf_g, classifier, params)
        _accumulate(elf_stats_total, pass_stats)
    elf_runtime = time.perf_counter() - t0

    engine_columns = {}
    if engine_workers is not None:
        from ..engine import EngineParams, engine_refactor

        engine_g = g.clone()
        t0 = time.perf_counter()
        engine_stats = engine_refactor(
            engine_g,
            EngineParams(refactor=params.refactor, workers=engine_workers),
            classifier=classifier,
        )
        engine_columns = dict(
            engine_workers=engine_stats.workers,
            engine_runtime=time.perf_counter() - t0,
            engine_ands=engine_g.n_ands,
            engine_level=engine_g.max_level(),
            engine_stats=engine_stats,
        )

    return ComparisonRow(
        **engine_columns,
        design=g.name,
        nodes_before=g.n_ands,
        baseline_runtime=baseline_runtime,
        baseline_ands=baseline_g.n_ands,
        baseline_level=baseline_g.max_level(),
        elf_runtime=elf_runtime,
        elf_ands=elf_g.n_ands,
        elf_level=elf_g.max_level(),
        baseline_stats=baseline_stats,
        elf_stats=elf_stats_total,
    )


def _accumulate(total: RefactorStats, part: RefactorStats) -> None:
    total.nodes_visited += part.nodes_visited
    total.cuts_formed += part.cuts_formed
    total.commits += part.commits
    total.gain_total += part.gain_total
    total.fail_gain += part.fail_gain
    total.fail_level += part.fail_level
    total.fail_poison += part.fail_poison
    total.fail_trivial += part.fail_trivial
    total.pruned += part.pruned
    total.time_total += part.time_total
    total.time_cut += part.time_cut
    total.time_truth += part.time_truth
    total.time_resynth += part.time_resynth
    total.time_commit += part.time_commit
    total.time_inference += part.time_inference
