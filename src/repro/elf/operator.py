"""ELF: the pruned refactor operator (Algorithm 2 of the paper).

Batched mode (the paper's deployment):

1. one sweep forms every node's cut and stacks the six features into a
   single matrix;
2. one fused matmul classifies all nodes at once;
3. the refactor sweep then skips every node classified as
   will-not-improve, resynthesizing only the survivors.

Features from step 1 can go stale as commits mutate the graph; the paper
notes (and we preserve) that this only costs runtime, never quality —
stale survivors just fail resynthesis like they would have anyway.

Streaming mode classifies each node on its own (batch of one) right
before resynthesis; it exists for the batching-ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..aig.graph import AIG
from ..aig.levels import RequiredLevels
from ..cuts.features import stack_features
from ..cuts.reconv import reconv_cut
from ..opt.refactor import RefactorParams, RefactorStats, refactor_node
from .classifier import ElfClassifier


@dataclass
class ElfParams:
    """ELF knobs on top of the base refactor parameters."""

    refactor: RefactorParams = field(default_factory=RefactorParams)
    batched: bool = True


def elf_refactor(
    g: AIG,
    classifier: ElfClassifier,
    params: ElfParams | None = None,
    collector=None,
    cache: dict | None = None,
) -> RefactorStats:
    """One ELF pass over ``g`` in place; returns stats incl. prune counts.

    ``collector(features, committed)`` sees only non-pruned nodes (the
    pruned ones never reach resynthesis, exactly as in Algorithm 2).

    ``cache`` plugs in an externally owned resynthesis cache (e.g. a
    flow-level :class:`repro.engine.ResynthCache`): entries are pure
    functions of ``(tt, n_leaves)`` under fixed factoring knobs, so the
    second ``elf`` of an ``elf; elf`` flow reuses the first pass's
    factored forms with bit-identical results (all sharers must use the
    same ``try_complement``/``method`` settings, as flows do).
    """
    params = params or ElfParams()
    stats = RefactorStats()
    g.drain_dirty()  # sequential pass: retire the previous journal epoch
    with obs.span("elf.refactor", batched=params.batched) as pass_span:
        required = RequiredLevels(g) if params.refactor.preserve_levels else None

        nodes = g.and_ids()
        if cache is None:
            cache = {}
        if params.batched:
            keep = _batch_classify(g, nodes, classifier, params, stats)
        else:
            keep = None

        for position, node in enumerate(nodes):
            if g.is_dead(node):
                continue
            stats.nodes_visited += 1
            if params.batched:
                if not keep[position]:
                    stats.pruned += 1
                    continue
                t0 = time.perf_counter()
                cut = reconv_cut(
                    g, node, params.refactor.max_leaves, collect_features=False
                )
                stats.time_cut += time.perf_counter() - t0
            else:
                t0 = time.perf_counter()
                cut = reconv_cut(
                    g, node, params.refactor.max_leaves, collect_features=True
                )
                stats.time_cut += time.perf_counter() - t0
                t0 = time.perf_counter()
                keep_one = classifier.keep_mask(
                    cut.features.as_array()[None, :]
                )[0]
                stats.time_inference += time.perf_counter() - t0
                if not keep_one:
                    stats.pruned += 1
                    continue
            stats.cuts_formed += 1
            committed = refactor_node(
                g, node, cut, params.refactor, required, stats, cache
            )
            if collector is not None:
                committed_features = cut.features
                if committed_features is None:
                    cut_feats = reconv_cut(
                        g, node, params.refactor.max_leaves, collect_features=True
                    )
                    committed_features = cut_feats.features
                collector(committed_features, committed)
        pass_span.set(
            nodes=stats.nodes_visited, pruned=stats.pruned, commits=stats.commits
        )
    stats.time_total = pass_span.duration
    return stats


def elf_refactor_parallel(
    g: AIG,
    classifier: ElfClassifier,
    params: ElfParams | None = None,
    workers: int = 0,
):
    """ELF deployed on the conflict-wave engine (``repro.engine``).

    Candidates are partitioned into conflict-free commit waves, each wave
    is classified with one fused inference, and surviving cuts are
    resynthesized by a worker pool.  ``workers=0`` uses one worker per
    core; ``workers=1`` is the deterministic in-process mode, identical
    to :func:`elf_refactor`.  Returns :class:`repro.engine.EngineStats`.
    """
    from ..engine import EngineParams, engine_refactor

    params = params or ElfParams()
    return engine_refactor(
        g,
        EngineParams(
            refactor=params.refactor,
            workers=workers,
            elf_batched=params.batched,
        ),
        classifier=classifier,
    )


def _batch_classify(
    g: AIG,
    nodes: list[int],
    classifier: ElfClassifier,
    params: ElfParams,
    stats: RefactorStats,
) -> np.ndarray:
    """Pass 1 of Algorithm 2: collect every cut's features, classify once."""
    t0 = time.perf_counter()
    features = []
    for node in nodes:
        cut = reconv_cut(g, node, params.refactor.max_leaves, collect_features=True)
        features.append(cut.features)
    stats.time_cut += time.perf_counter() - t0
    t0 = time.perf_counter()
    matrix = stack_features(features)
    keep = classifier.keep_mask(matrix)
    stats.time_inference += time.perf_counter() - t0
    return keep
