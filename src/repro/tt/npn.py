"""NPN canonicalization of 4-variable functions.

Two functions are NPN-equivalent when one can be obtained from the other
by Negating inputs, Permuting inputs and/or Negating the output.  The
16-bit truth tables of 4-variable functions fall into 222 NPN classes —
the library the rewrite operator substitutes cuts from (Mishchenko et
al., DAC'06).

Canonical form: the minimum 16-bit table over all 2 x 24 x 16 = 768
transforms.  ``npn_canonize`` returns the canonical table plus the
transform that maps the canonical function back onto the input, so a
precomputed implementation of the class can be instantiated on concrete
cut leaves.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from ..errors import TruthTableError

N_VARS = 4
N_MINTERMS = 16
_FULL = (1 << N_MINTERMS) - 1

Transform = tuple[tuple[int, ...], int, bool]
"""(perm, input_flips, output_flip): see :func:`apply_transform`."""


def _permute_minterm(minterm: int, perm: tuple[int, ...]) -> int:
    out = 0
    for j, source in enumerate(perm):
        if minterm >> source & 1:
            out |= 1 << j
    return out


def _build_index_tables() -> dict[tuple[tuple[int, ...], int], list[int]]:
    tables = {}
    for perm in permutations(range(N_VARS)):
        for flips in range(N_MINTERMS):
            tables[(perm, flips)] = [
                _permute_minterm(m, perm) ^ flips for m in range(N_MINTERMS)
            ]
    return tables


_INDEX: dict[tuple[tuple[int, ...], int], list[int]] = _build_index_tables()
_ALL_PERMS: list[tuple[int, ...]] = list(permutations(range(N_VARS)))

# The same 384 index tables as one (384, 16) matrix, rows in the exact
# (perm-major, flips-minor) order the scalar loops iterate — the
# vectorized canonizer's argmin therefore lands on the same transform
# the scalar first-strict-minimum scan would pick.
_INDEX_MATRIX: np.ndarray = np.array(
    [_INDEX[(perm, flips)] for perm in _ALL_PERMS for flips in range(N_MINTERMS)],
    dtype=np.uint32,
)
_POW2: np.ndarray = (np.uint32(1) << np.arange(N_MINTERMS, dtype=np.uint32)).astype(
    np.uint32
)


def _transform_values(tt: int) -> np.ndarray:
    """All 384 permute+input-flip images of ``tt`` as a uint32 vector."""
    bits = (np.uint32(tt) >> _INDEX_MATRIX) & np.uint32(1)
    return bits @ _POW2


def apply_transform(tt: int, transform: Transform) -> int:
    """Transform ``tt``: ``G(v) = F(perm(v) ^ input_flips) ^ output_flip``.

    ``perm(v)`` places bit ``perm[j]`` of ``v`` at position ``j``.
    """
    perm, input_flips, output_flip = transform
    index = _INDEX[(perm, input_flips)]
    out = 0
    for v in range(N_MINTERMS):
        if tt >> index[v] & 1:
            out |= 1 << v
    return out ^ (_FULL if output_flip else 0)


def invert_transform(transform: Transform) -> Transform:
    """The transform undoing ``transform`` under :func:`apply_transform`."""
    perm, input_flips, output_flip = transform
    inverse_perm = [0] * N_VARS
    for j, source in enumerate(perm):
        inverse_perm[source] = j
    # G(v) = F(P(v)^flips)^o  =>  F(w) = G(P_inv(w))^o with the flip mask
    # carried through the inverse permutation (xor-before-permute equals
    # permute-then-xor with the permuted mask).
    inverse_flips = 0
    for j in range(N_VARS):
        if input_flips >> inverse_perm[j] & 1:
            inverse_flips |= 1 << j
    return (tuple(inverse_perm), inverse_flips, output_flip)


def npn_canonize(tt: int) -> tuple[int, Transform]:
    """Canonical table of ``tt`` and the transform with
    ``apply_transform(canonical, transform) == tt``.

    One numpy sweep over all 768 transforms: the 384 permute+flip images
    come from a gather against the precomputed index matrix, both output
    phases are laid out in the scalar scan's iteration order, and the
    first minimum (``argmin``) is the canonical pick.  Bit-identical to
    :func:`npn_canonize_scalar`, which `tests/test_kernel_parity.py`
    pins it against.
    """
    if not 0 <= tt <= _FULL:
        raise TruthTableError("npn_canonize expects a 16-bit truth table")
    values = _transform_values(tt)
    # Interleave output_flip False/True per (perm, flips) row so the flat
    # index order matches the scalar loop nest exactly.
    both = np.empty((values.size, 2), dtype=np.uint32)
    both[:, 0] = values
    both[:, 1] = values ^ np.uint32(_FULL)
    flat = both.reshape(-1)
    pick = int(np.argmin(flat))  # first occurrence of the minimum
    best = int(flat[pick])
    row, output_flip = divmod(pick, 2)
    perm = _ALL_PERMS[row // N_MINTERMS]
    flips = row % N_MINTERMS
    return best, invert_transform((perm, flips, bool(output_flip)))


def npn_canonize_scalar(tt: int) -> tuple[int, Transform]:
    """Reference scalar canonizer (kept as the parity oracle for the
    vectorized :func:`npn_canonize`)."""
    if not 0 <= tt <= _FULL:
        raise TruthTableError("npn_canonize expects a 16-bit truth table")
    best = None
    best_transform: Transform | None = None
    for perm in _ALL_PERMS:
        for flips in range(N_MINTERMS):
            index = _INDEX[(perm, flips)]
            candidate = 0
            for v in range(N_MINTERMS):
                if tt >> index[v] & 1:
                    candidate |= 1 << v
            for output_flip in (False, True):
                value = candidate ^ (_FULL if output_flip else 0)
                if best is None or value < best:
                    best = value
                    best_transform = (perm, flips, output_flip)
    assert best is not None and best_transform is not None
    return best, invert_transform(best_transform)


def npn_orbit(tt: int) -> set[int]:
    """All 16-bit tables NPN-equivalent to ``tt``."""
    values = _transform_values(tt)
    return set(values.tolist()) | set((values ^ np.uint32(_FULL)).tolist())


def enumerate_npn_classes() -> list[int]:
    """Canonical representatives of all 4-variable NPN classes (222 of them).

    Sweep all 65536 tables, expanding each unseen orbit once.
    """
    seen = bytearray(1 << N_MINTERMS)
    classes: list[int] = []
    for tt in range(1 << N_MINTERMS):
        if seen[tt]:
            continue
        orbit = npn_orbit(tt)
        representative = min(orbit)
        classes.append(representative)
        for member in orbit:
            seen[member] = 1
    return classes
