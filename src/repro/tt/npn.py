"""NPN canonicalization of 4-variable functions.

Two functions are NPN-equivalent when one can be obtained from the other
by Negating inputs, Permuting inputs and/or Negating the output.  The
16-bit truth tables of 4-variable functions fall into 222 NPN classes —
the library the rewrite operator substitutes cuts from (Mishchenko et
al., DAC'06).

Canonical form: the minimum 16-bit table over all 2 x 24 x 16 = 768
transforms.  ``npn_canonize`` returns the canonical table plus the
transform that maps the canonical function back onto the input, so a
precomputed implementation of the class can be instantiated on concrete
cut leaves.
"""

from __future__ import annotations

from itertools import permutations

from ..errors import TruthTableError

N_VARS = 4
N_MINTERMS = 16
_FULL = (1 << N_MINTERMS) - 1

Transform = tuple[tuple[int, ...], int, bool]
"""(perm, input_flips, output_flip): see :func:`apply_transform`."""


def _permute_minterm(minterm: int, perm: tuple[int, ...]) -> int:
    out = 0
    for j, source in enumerate(perm):
        if minterm >> source & 1:
            out |= 1 << j
    return out


def _build_index_tables() -> dict[tuple[tuple[int, ...], int], list[int]]:
    tables = {}
    for perm in permutations(range(N_VARS)):
        for flips in range(N_MINTERMS):
            tables[(perm, flips)] = [
                _permute_minterm(m, perm) ^ flips for m in range(N_MINTERMS)
            ]
    return tables


_INDEX: dict[tuple[tuple[int, ...], int], list[int]] = _build_index_tables()
_ALL_PERMS: list[tuple[int, ...]] = list(permutations(range(N_VARS)))


def apply_transform(tt: int, transform: Transform) -> int:
    """Transform ``tt``: ``G(v) = F(perm(v) ^ input_flips) ^ output_flip``.

    ``perm(v)`` places bit ``perm[j]`` of ``v`` at position ``j``.
    """
    perm, input_flips, output_flip = transform
    index = _INDEX[(perm, input_flips)]
    out = 0
    for v in range(N_MINTERMS):
        if tt >> index[v] & 1:
            out |= 1 << v
    return out ^ (_FULL if output_flip else 0)


def invert_transform(transform: Transform) -> Transform:
    """The transform undoing ``transform`` under :func:`apply_transform`."""
    perm, input_flips, output_flip = transform
    inverse_perm = [0] * N_VARS
    for j, source in enumerate(perm):
        inverse_perm[source] = j
    # G(v) = F(P(v)^flips)^o  =>  F(w) = G(P_inv(w))^o with the flip mask
    # carried through the inverse permutation (xor-before-permute equals
    # permute-then-xor with the permuted mask).
    inverse_flips = 0
    for j in range(N_VARS):
        if input_flips >> inverse_perm[j] & 1:
            inverse_flips |= 1 << j
    return (tuple(inverse_perm), inverse_flips, output_flip)


def npn_canonize(tt: int) -> tuple[int, Transform]:
    """Canonical table of ``tt`` and the transform with
    ``apply_transform(canonical, transform) == tt``."""
    if not 0 <= tt <= _FULL:
        raise TruthTableError("npn_canonize expects a 16-bit truth table")
    best = None
    best_transform: Transform | None = None
    for perm in _ALL_PERMS:
        for flips in range(N_MINTERMS):
            index = _INDEX[(perm, flips)]
            candidate = 0
            for v in range(N_MINTERMS):
                if tt >> index[v] & 1:
                    candidate |= 1 << v
            for output_flip in (False, True):
                value = candidate ^ (_FULL if output_flip else 0)
                if best is None or value < best:
                    best = value
                    best_transform = (perm, flips, output_flip)
    assert best is not None and best_transform is not None
    return best, invert_transform(best_transform)


def npn_orbit(tt: int) -> set[int]:
    """All 16-bit tables NPN-equivalent to ``tt``."""
    orbit = set()
    for perm in _ALL_PERMS:
        for flips in range(N_MINTERMS):
            index = _INDEX[(perm, flips)]
            candidate = 0
            for v in range(N_MINTERMS):
                if tt >> index[v] & 1:
                    candidate |= 1 << v
            orbit.add(candidate)
            orbit.add(candidate ^ _FULL)
    return orbit


def enumerate_npn_classes() -> list[int]:
    """Canonical representatives of all 4-variable NPN classes (222 of them).

    Sweep all 65536 tables, expanding each unseen orbit once.
    """
    seen = bytearray(1 << N_MINTERMS)
    classes: list[int] = []
    for tt in range(1 << N_MINTERMS):
        if seen[tt]:
            continue
        orbit = npn_orbit(tt)
        representative = min(orbit)
        classes.append(representative)
        for member in orbit:
            seen[member] = 1
    return classes
