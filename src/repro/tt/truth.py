"""Truth-table operations on arbitrary-precision Python integers.

A truth table over ``n`` variables is an int whose bit ``i`` holds the
function value under the assignment encoded by ``i`` (variable 0 is the
least significant position).  This matches
:func:`repro.aig.simulate.cone_truth` and scales to the 10-16 leaf cuts
the refactor operator works on.

Two representations coexist:

* **Scalar**: one Python int per table.  CPython big-int bitwise ops beat
  numpy on single tables up to ~13 variables, so every per-table
  operation keeps this form.
* **Packed**: a batch of tables as a ``(n_tables, n_words)`` uint64
  array, bit ``i`` of table ``t`` at ``words[t, i >> 6] >> (i & 63)``.
  This is the wire format of the engine's shared-memory wave transport
  (:mod:`repro.engine.pack`) and the form the ``*_many`` kernels sweep —
  one numpy pass over the whole batch instead of per-table Python loops.
  ``tests/test_kernel_parity.py`` pins each ``*_many`` kernel against
  its scalar sibling.
"""

from __future__ import annotations

import numpy as np

from ..errors import TruthTableError
from ..aig.simulate import full_mask, var_mask


def cofactor0(tt: int, var: int, n_vars: int) -> int:
    """Negative cofactor: the function with ``var`` forced to 0."""
    mask = var_mask(var, n_vars)
    lo = tt & ~mask & full_mask(n_vars)
    return lo | (lo << (1 << var))


def cofactor1(tt: int, var: int, n_vars: int) -> int:
    """Positive cofactor: the function with ``var`` forced to 1."""
    mask = var_mask(var, n_vars)
    hi = tt & mask
    return hi | (hi >> (1 << var))


def depends_on(tt: int, var: int, n_vars: int) -> bool:
    """True when the function actually depends on ``var``."""
    return cofactor0(tt, var, n_vars) != cofactor1(tt, var, n_vars)


def tt_support(tt: int, n_vars: int) -> list[int]:
    """Variables the function depends on."""
    return [v for v in range(n_vars) if depends_on(tt, v, n_vars)]


def ones_count(tt: int, n_vars: int) -> int:
    """Number of satisfying assignments."""
    return (tt & full_mask(n_vars)).bit_count()


def is_const0(tt: int, n_vars: int) -> bool:
    return (tt & full_mask(n_vars)) == 0


def is_const1(tt: int, n_vars: int) -> bool:
    return (tt & full_mask(n_vars)) == full_mask(n_vars)


def tt_not(tt: int, n_vars: int) -> int:
    return ~tt & full_mask(n_vars)


def tt_to_hex(tt: int, n_vars: int) -> str:
    """Hex string of the table, most significant nibble first."""
    digits = max(1, (1 << n_vars) // 4)
    return format(tt & full_mask(n_vars), f"0{digits}x")


def tt_from_hex(text: str, n_vars: int) -> int:
    value = int(text, 16)
    if value > full_mask(n_vars):
        raise TruthTableError(f"hex table {text!r} too wide for {n_vars} vars")
    return value


def expand_tt(tt: int, var_map: list[int], n_from: int, n_to: int) -> int:
    """Re-express ``tt`` (over ``n_from`` vars) over ``n_to`` variables.

    ``var_map[i]`` names the variable in the target space that input ``i``
    of the source function maps to.  Used when stitching cut functions into
    larger windows (resubstitution).

    Large targets dispatch to a vectorized gather (one numpy pass over
    all ``2**n_to`` minterms); small ones keep the scalar loop, which
    wins under the numpy call overhead.  Both produce identical bits —
    see :func:`expand_tt_scalar` and the parity battery.
    """
    if n_to >= 7:
        if len(var_map) != n_from:
            raise TruthTableError("var_map length mismatch")
        minterms = np.arange(1 << n_to, dtype=np.uint32)
        src_index = np.zeros(1 << n_to, dtype=np.uint32)
        for i, target in enumerate(var_map):
            src_index |= ((minterms >> np.uint32(target)) & np.uint32(1)) << np.uint32(
                i
            )
        out_bits = tt_to_bits(tt, n_from)[src_index]
        return bits_to_tt(out_bits)
    return expand_tt_scalar(tt, var_map, n_from, n_to)


def expand_tt_scalar(tt: int, var_map: list[int], n_from: int, n_to: int) -> int:
    """Reference scalar implementation of :func:`expand_tt` (the parity
    oracle for the vectorized path)."""
    if len(var_map) != n_from:
        raise TruthTableError("var_map length mismatch")
    out = 0
    for minterm in range(1 << n_to):
        src_index = 0
        for i, target in enumerate(var_map):
            if minterm >> target & 1:
                src_index |= 1 << i
        if tt >> src_index & 1:
            out |= 1 << minterm
    return out


# ----------------------------------------------------------------------
# Packed word-array kernels
# ----------------------------------------------------------------------


def words_per_table(n_vars: int) -> int:
    """uint64 words needed for one ``n_vars``-variable table (min 1)."""
    return max(1, (1 << n_vars) >> 6)


def tt_to_words(tt: int, n_vars: int) -> np.ndarray:
    """Pack one table into a ``(words_per_table(n_vars),)`` uint64 array."""
    n_words = words_per_table(n_vars)
    raw = (tt & full_mask(n_vars)).to_bytes(n_words * 8, "little")
    return np.frombuffer(raw, dtype="<u8").copy()


def words_to_tt(words: np.ndarray, n_vars: int | None = None) -> int:
    """Inverse of :func:`tt_to_words`; truncates to ``n_vars`` when given."""
    value = int.from_bytes(np.ascontiguousarray(words, dtype="<u8").tobytes(), "little")
    if n_vars is not None:
        value &= full_mask(n_vars)
    return value


def pack_tts(tts: list[int], n_vars: int) -> np.ndarray:
    """Pack a batch of tables into one ``(len(tts), n_words)`` uint64 array."""
    n_words = words_per_table(n_vars)
    ones = full_mask(n_vars)
    raw = b"".join((tt & ones).to_bytes(n_words * 8, "little") for tt in tts)
    return np.frombuffer(raw, dtype="<u8").reshape(len(tts), n_words).copy()


def unpack_tts(words: np.ndarray) -> list[int]:
    """Inverse of :func:`pack_tts` (no truncation: words carry the width)."""
    contiguous = np.ascontiguousarray(words, dtype="<u8")
    stride = contiguous.shape[1] * 8
    raw = contiguous.tobytes()
    return [
        int.from_bytes(raw[i * stride : (i + 1) * stride], "little")
        for i in range(contiguous.shape[0])
    ]


def tt_to_bits(tt: int, n_vars: int) -> np.ndarray:
    """One uint8 per minterm (bit ``i`` of the table at index ``i``)."""
    n_bits = 1 << n_vars
    raw = (tt & full_mask(n_vars)).to_bytes((n_bits + 7) // 8, "little")
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")[
        :n_bits
    ]


def bits_to_tt(bits: np.ndarray) -> int:
    """Inverse of :func:`tt_to_bits`."""
    return int.from_bytes(
        np.packbits(bits, bitorder="little").tobytes(), "little"
    )


def cofactor0_many(words: np.ndarray, var: int, n_vars: int) -> np.ndarray:
    """Negative cofactor of every packed table — the batch-axis form of
    :func:`cofactor0` (one vectorized pass; bit-identical per table)."""
    _check_packed(words, n_vars)
    if var >= n_vars:
        raise TruthTableError(f"variable {var} out of range for {n_vars} vars")
    if (1 << var) < 64:
        # The 2*2^var period divides the word: pure in-lane masking.
        mask = np.uint64(var_mask(var, min(n_vars, 6)) & 0xFFFFFFFFFFFFFFFF)
        shift = np.uint64(1 << var)
        lo = words & ~mask
        return lo | (lo << shift)
    # Word-granular: blocks of 2^(var-6) words alternate low/high halves;
    # duplicate each low half over its high sibling.
    block = 1 << (var - 6)
    shaped = words.reshape(words.shape[0], -1, 2, block)
    out = np.empty_like(shaped)
    out[:, :, 0, :] = shaped[:, :, 0, :]
    out[:, :, 1, :] = shaped[:, :, 0, :]
    return out.reshape(words.shape)


def cofactor1_many(words: np.ndarray, var: int, n_vars: int) -> np.ndarray:
    """Positive cofactor of every packed table (batch form of
    :func:`cofactor1`)."""
    _check_packed(words, n_vars)
    if var >= n_vars:
        raise TruthTableError(f"variable {var} out of range for {n_vars} vars")
    if (1 << var) < 64:
        mask = np.uint64(var_mask(var, min(n_vars, 6)) & 0xFFFFFFFFFFFFFFFF)
        shift = np.uint64(1 << var)
        hi = words & mask
        return hi | (hi >> shift)
    block = 1 << (var - 6)
    shaped = words.reshape(words.shape[0], -1, 2, block)
    out = np.empty_like(shaped)
    out[:, :, 0, :] = shaped[:, :, 1, :]
    out[:, :, 1, :] = shaped[:, :, 1, :]
    return out.reshape(words.shape)


def _check_packed(words: np.ndarray, n_vars: int) -> None:
    if words.ndim != 2 or words.shape[1] != words_per_table(n_vars):
        raise TruthTableError(
            f"packed batch shape {words.shape} does not match {n_vars} vars"
        )
