"""Truth-table operations on arbitrary-precision Python integers.

A truth table over ``n`` variables is an int whose bit ``i`` holds the
function value under the assignment encoded by ``i`` (variable 0 is the
least significant position).  This matches
:func:`repro.aig.simulate.cone_truth` and scales to the 10-16 leaf cuts
the refactor operator works on.
"""

from __future__ import annotations

from ..errors import TruthTableError
from ..aig.simulate import full_mask, var_mask


def cofactor0(tt: int, var: int, n_vars: int) -> int:
    """Negative cofactor: the function with ``var`` forced to 0."""
    mask = var_mask(var, n_vars)
    lo = tt & ~mask & full_mask(n_vars)
    return lo | (lo << (1 << var))


def cofactor1(tt: int, var: int, n_vars: int) -> int:
    """Positive cofactor: the function with ``var`` forced to 1."""
    mask = var_mask(var, n_vars)
    hi = tt & mask
    return hi | (hi >> (1 << var))


def depends_on(tt: int, var: int, n_vars: int) -> bool:
    """True when the function actually depends on ``var``."""
    return cofactor0(tt, var, n_vars) != cofactor1(tt, var, n_vars)


def tt_support(tt: int, n_vars: int) -> list[int]:
    """Variables the function depends on."""
    return [v for v in range(n_vars) if depends_on(tt, v, n_vars)]


def ones_count(tt: int, n_vars: int) -> int:
    """Number of satisfying assignments."""
    return (tt & full_mask(n_vars)).bit_count()


def is_const0(tt: int, n_vars: int) -> bool:
    return (tt & full_mask(n_vars)) == 0


def is_const1(tt: int, n_vars: int) -> bool:
    return (tt & full_mask(n_vars)) == full_mask(n_vars)


def tt_not(tt: int, n_vars: int) -> int:
    return ~tt & full_mask(n_vars)


def tt_to_hex(tt: int, n_vars: int) -> str:
    """Hex string of the table, most significant nibble first."""
    digits = max(1, (1 << n_vars) // 4)
    return format(tt & full_mask(n_vars), f"0{digits}x")


def tt_from_hex(text: str, n_vars: int) -> int:
    value = int(text, 16)
    if value > full_mask(n_vars):
        raise TruthTableError(f"hex table {text!r} too wide for {n_vars} vars")
    return value


def expand_tt(tt: int, var_map: list[int], n_from: int, n_to: int) -> int:
    """Re-express ``tt`` (over ``n_from`` vars) over ``n_to`` variables.

    ``var_map[i]`` names the variable in the target space that input ``i``
    of the source function maps to.  Used when stitching cut functions into
    larger windows (resubstitution).
    """
    if len(var_map) != n_from:
        raise TruthTableError("var_map length mismatch")
    out = 0
    for minterm in range(1 << n_to):
        src_index = 0
        for i, target in enumerate(var_map):
            if minterm >> target & 1:
                src_index |= 1 << i
        if tt >> src_index & 1:
            out |= 1 << minterm
    return out
