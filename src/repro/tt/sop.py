"""Sum-of-products (SOP) representation over cube bitmasks.

A *cube* over ``n`` variables is an int bitmask with two bits per
variable: bit ``2v`` set means the positive literal of variable ``v`` is
in the cube, bit ``2v + 1`` the negative literal.  The empty cube (0) is
the constant-true cube.  An SOP is a list of cubes (empty list = constant
false).

This encoding makes the algebraic operations used by factoring —
containment, common cube, weak division — single bitwise instructions.
"""

from __future__ import annotations

from functools import reduce

from ..errors import FactoringError
from ..aig.simulate import full_mask, var_mask


def lit_index(var: int, negative: bool) -> int:
    """Cube-bit index of a literal."""
    return 2 * var + int(negative)


def lit_var(index: int) -> int:
    return index >> 1


def lit_negative(index: int) -> bool:
    return bool(index & 1)


def cube_from_lits(lits: list[int]) -> int:
    """Cube containing exactly the given literal indices."""
    cube = 0
    for lit in lits:
        cube |= 1 << lit
    return cube


def cube_lits(cube: int) -> list[int]:
    """Literal indices present in ``cube`` (ascending)."""
    lits = []
    while cube:
        low = cube & -cube
        lits.append(low.bit_length() - 1)
        cube ^= low
    return lits


def cube_size(cube: int) -> int:
    """Number of literals in the cube."""
    return cube.bit_count()


def cube_is_contradictory(cube: int) -> bool:
    """True when some variable appears in both phases (empty intersection)."""
    positives = cube & 0x5555555555555555555555555555555555555555
    return bool((positives << 1) & cube)


def cube_tt(cube: int, n_vars: int) -> int:
    """Truth table of a cube."""
    tt = full_mask(n_vars)
    for lit in cube_lits(cube):
        mask = var_mask(lit_var(lit), n_vars)
        tt &= ~mask & full_mask(n_vars) if lit_negative(lit) else mask
    return tt


def sop_tt(cubes: list[int], n_vars: int) -> int:
    """Truth table of an SOP."""
    return reduce(lambda acc, cube: acc | cube_tt(cube, n_vars), cubes, 0)


def sop_literal_count(cubes: list[int]) -> int:
    """Total number of literals across all cubes."""
    return sum(cube_size(c) for c in cubes)


# Internal cube -> literal-list cache for the frequency scan (the
# divisor search recounts frequencies after every division step, and the
# same cubes recur across steps and SOPs).  The lists never escape this
# module, so sharing is safe; capped like the ISOP memo (cleared, not
# LRU).
_CUBE_LITS: dict[int, list[int]] = {}
_CUBE_LITS_LIMIT = 1 << 16


def sop_literal_frequencies(cubes: list[int]) -> dict[int, int]:
    """Occurrence count of every literal index present in the SOP."""
    freq: dict[int, int] = {}
    get = freq.get
    lits_get = _CUBE_LITS.get
    for cube in cubes:
        lits = lits_get(cube)
        if lits is None:
            lits = []
            rest = cube
            while rest:
                low = rest & -rest
                lits.append(low.bit_length() - 1)
                rest ^= low
            if len(_CUBE_LITS) >= _CUBE_LITS_LIMIT:  # pragma: no cover - cap
                _CUBE_LITS.clear()
            _CUBE_LITS[cube] = lits
        for lit in lits:
            freq[lit] = get(lit, 0) + 1
    return freq


def sop_common_cube(cubes: list[int]) -> int:
    """Largest cube dividing every cube of the SOP (its common literals)."""
    if not cubes:
        return 0
    common = cubes[0]
    for cube in cubes:
        common &= cube
        if not common:
            break
    return common


def sop_is_cube_free(cubes: list[int]) -> bool:
    """True when no single literal appears in every cube."""
    return sop_common_cube(cubes) == 0


def sop_make_cube_free(cubes: list[int]) -> tuple[int, list[int]]:
    """Split the SOP into (common cube, cube-free remainder)."""
    common = sop_common_cube(cubes)
    if common == 0:
        return 0, list(cubes)
    return common, [c & ~common for c in cubes]


def sop_sort(cubes: list[int]) -> list[int]:
    """Canonical cube order (by size then value) for stable output."""
    return sorted(cubes, key=lambda c: (cube_size(c), c))


def sop_to_string(cubes: list[int], n_vars: int, names: list[str] | None = None) -> str:
    """Human-readable form, e.g. ``a!b + c``."""
    if names is None:
        names = [chr(ord("a") + v) if v < 26 else f"x{v}" for v in range(n_vars)]
    if not cubes:
        return "0"
    terms = []
    for cube in sop_sort(cubes):
        if cube == 0:
            terms.append("1")
            continue
        parts = []
        for lit in cube_lits(cube):
            prefix = "!" if lit_negative(lit) else ""
            parts.append(prefix + names[lit_var(lit)])
        terms.append("".join(parts))
    return " + ".join(terms)


def check_sop(cubes: list[int], n_vars: int) -> None:
    """Validate that cubes only mention declared variables, no contradictions."""
    limit = 1 << (2 * n_vars)
    for cube in cubes:
        if cube >= limit:
            raise FactoringError(f"cube {cube:#x} exceeds {n_vars} variables")
        if cube_is_contradictory(cube):
            raise FactoringError(f"cube {cube:#x} contains x & !x")
