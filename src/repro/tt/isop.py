"""Irredundant sum-of-products via the Minato-Morreale algorithm.

``isop(lower, upper, n_vars)`` computes a cube cover ``C`` with
``lower <= tt(C) <= upper`` (an *interval cover*, enabling don't-cares);
``isop_exact`` is the common ``lower == upper`` case used by refactor.
The recursion splits on the top variable in the support and produces an
irredundant cover, the same construction ABC uses (``Kit_TruthIsop``).

The recursive core is memoized process-wide: it is a pure function of
``(lower, upper, top, n_vars)``, and the cofactor subproblems of related
cut functions overlap heavily (the reconvergent cones of one circuit
keep re-deriving the same half-covers), so on refactor-scale workloads
more than half the recursion tree is served from the memo.  The memo is
cleared when it reaches :data:`ISOP_MEMO_LIMIT` entries, bounding memory
without changing any result.
"""

from __future__ import annotations

from ..errors import TruthTableError
from ..aig.simulate import full_mask, var_mask
from .sop import lit_index
from .truth import cofactor0, cofactor1

ISOP_MEMO_LIMIT = 1 << 18
"""Entry cap of the process-wide Minato-Morreale memo (cleared, not LRU)."""

_MEMO: dict[tuple[int, int, int, int], tuple[list[int], int]] = {}
_MEMO_HITS = 0


def clear_isop_memo() -> None:
    """Reset the process-wide memo (and its hit counter).

    Results never depend on memo state; this exists so benchmarks can
    time every mode from a cold start instead of letting earlier runs
    warm later ones.
    """
    global _MEMO_HITS
    _MEMO.clear()
    _MEMO_HITS = 0


def isop_memo_hits() -> int:
    """Cumulative memo hits of this process (snapshot around a region to
    report per-task rates — the worker pool ships the delta home on each
    task result for the observability registry)."""
    return _MEMO_HITS


def isop_exact(tt: int, n_vars: int) -> list[int]:
    """Irredundant SOP of ``tt`` (no don't-cares)."""
    cubes, cover = _isop(tt, tt, n_vars, n_vars)
    if cover != tt:  # pragma: no cover - algorithmic invariant
        raise TruthTableError("isop cover mismatch")
    return list(cubes)


def isop(lower: int, upper: int, n_vars: int) -> list[int]:
    """Cover ``C`` with ``lower <= tt(C) <= upper`` (don't-care interval)."""
    mask = full_mask(n_vars)
    lower &= mask
    upper &= mask
    if lower & ~upper:
        raise TruthTableError("isop: lower bound not contained in upper bound")
    cubes, _cover = _isop(lower, upper, n_vars, n_vars)
    return list(cubes)


def _isop(lower: int, upper: int, top: int, n_vars: int) -> tuple[list[int], int]:
    """Recursive core; returns (cubes, exact cover truth table).

    Callers must not mutate the returned cube list — it is shared with
    the memo (the public wrappers copy).
    """
    if lower == 0:
        return [], 0
    if upper == full_mask(n_vars):
        return [0], full_mask(n_vars)
    key = (lower, upper, top, n_vars)
    hit = _MEMO.get(key)
    if hit is not None:
        global _MEMO_HITS
        _MEMO_HITS += 1
        return hit
    # Find the top-most variable either bound depends on.
    var = top - 1
    while var >= 0:
        mask = var_mask(var, n_vars)
        if (lower & mask) != ((lower << (1 << var)) & mask) or (
            (upper & mask) != ((upper << (1 << var)) & mask)
        ):
            break
        var -= 1
    if var < 0:  # pragma: no cover - constants handled above
        raise TruthTableError("isop: no support variable found")

    l0, l1 = cofactor0(lower, var, n_vars), cofactor1(lower, var, n_vars)
    u0, u1 = cofactor0(upper, var, n_vars), cofactor1(upper, var, n_vars)
    ones = full_mask(n_vars)

    # Minterms only realizable in the var=0 (resp. var=1) half.
    cubes0, cover0 = _isop(l0 & ~u1 & ones, u0, var, n_vars)
    cubes1, cover1 = _isop(l1 & ~u0 & ones, u1, var, n_vars)
    # What remains must be covered independently of var.
    l_rest = (l0 & ~cover0) | (l1 & ~cover1)
    cubes_star, cover_star = _isop(l_rest & ones, u0 & u1, var, n_vars)

    neg_bit = 1 << lit_index(var, True)
    pos_bit = 1 << lit_index(var, False)
    cubes = (
        [c | neg_bit for c in cubes0]
        + [c | pos_bit for c in cubes1]
        + cubes_star
    )
    mask = var_mask(var, n_vars)
    cover = (cover0 & ~mask) | (cover1 & mask) | cover_star
    if len(_MEMO) >= ISOP_MEMO_LIMIT:
        _MEMO.clear()
    _MEMO[key] = (cubes, cover)
    return cubes, cover
