"""Irredundant sum-of-products via the Minato-Morreale algorithm.

``isop(lower, upper, n_vars)`` computes a cube cover ``C`` with
``lower <= tt(C) <= upper`` (an *interval cover*, enabling don't-cares);
``isop_exact`` is the common ``lower == upper`` case used by refactor.
The recursion splits on the top variable in the support and produces an
irredundant cover, the same construction ABC uses (``Kit_TruthIsop``).

The recursive core is memoized process-wide: it is a pure function of
``(lower, upper, n_vars)``, and the cofactor subproblems of related
cut functions overlap heavily (the reconvergent cones of one circuit
keep re-deriving the same half-covers), so on refactor-scale workloads
more than half the recursion tree is served from the memo.  The memo is
cleared when it reaches :data:`ISOP_MEMO_LIMIT` entries, bounding memory
without changing any result.

The recursion body is the sequential hot loop of refactor-family
operators (every resynthesis task starts with one or two ISOPs), so it
is written for big-int throughput: the four cofactors share one mask /
shift computation per split instead of going through the
:mod:`repro.tt.truth` helpers, and the split-variable scan
short-circuits bound by bound.  Output is bit-identical to the
straightforward composition of :func:`repro.tt.truth.cofactor0` /
``cofactor1`` — ``tests/test_kernel_parity.py`` pins the cube lists of
both formulations against each other.
"""

from __future__ import annotations

from ..errors import TruthTableError
from ..aig.simulate import full_mask, var_mask

ISOP_MEMO_LIMIT = 1 << 18
"""Entry cap of the process-wide Minato-Morreale memo (cleared, not LRU)."""

_MEMO: dict[tuple[int, int, int], tuple[list[int], int]] = {}
_MEMO_HITS = 0

# Per-width scan constants: n_vars -> (ones, (var_mask(0), var_mask(1), ...)).
# Tuple indexing in the recursion's split-variable scan replaces one
# dict-with-tuple-key lookup and one big-int full_mask allocation per call.
_SCAN: dict[int, tuple[int, tuple[int, ...]]] = {}


def _scan_constants(n_vars: int) -> tuple[int, tuple[int, ...]]:
    entry = _SCAN.get(n_vars)
    if entry is None:
        entry = (
            full_mask(n_vars),
            tuple(var_mask(v, n_vars) for v in range(n_vars)),
        )
        _SCAN[n_vars] = entry
    return entry


def clear_isop_memo() -> None:
    """Reset the process-wide memo (and its hit counter).

    Results never depend on memo state; this exists so benchmarks can
    time every mode from a cold start instead of letting earlier runs
    warm later ones.
    """
    global _MEMO_HITS
    _MEMO.clear()
    _MEMO_HITS = 0


def isop_memo_hits() -> int:
    """Cumulative memo hits of this process (snapshot around a region to
    report per-task rates — the worker pool ships the delta home on each
    task result for the observability registry)."""
    return _MEMO_HITS


def isop_exact(tt: int, n_vars: int) -> list[int]:
    """Irredundant SOP of ``tt`` (no don't-cares)."""
    cubes, cover = _isop(tt, tt, n_vars, n_vars)
    if cover != tt:  # pragma: no cover - algorithmic invariant
        raise TruthTableError("isop cover mismatch")
    return list(cubes)


def isop(lower: int, upper: int, n_vars: int) -> list[int]:
    """Cover ``C`` with ``lower <= tt(C) <= upper`` (don't-care interval)."""
    mask = full_mask(n_vars)
    lower &= mask
    upper &= mask
    if lower & ~upper:
        raise TruthTableError("isop: lower bound not contained in upper bound")
    cubes, _cover = _isop(lower, upper, n_vars, n_vars)
    return list(cubes)


def _isop(lower: int, upper: int, top: int, n_vars: int) -> tuple[list[int], int]:
    """Recursive core; returns (cubes, exact cover truth table).

    Callers must not mutate the returned cube list — it is shared with
    the memo (the public wrappers copy).

    The memo key omits ``top``: the split variable is the top-most
    variable either bound depends on, and every call site guarantees
    ``top`` exceeds it (the public wrappers pass ``n_vars``; recursive
    calls pass the parent's split variable, above which the cofactors
    are constant), so the result is independent of where the scan
    starts.  Dropping ``top`` folds the same subproblem reached at
    different recursion depths into one entry.
    """
    if lower == 0:
        return [], 0
    ones, masks = _scan_constants(n_vars)
    if upper == ones:
        return [0], ones
    key = (lower, upper, n_vars)
    hit = _MEMO.get(key)
    if hit is not None:
        global _MEMO_HITS
        _MEMO_HITS += 1
        return hit
    # Find the top-most variable either bound depends on.  A bound
    # depends on ``var`` exactly when its high half differs from its low
    # half under the periodic mask; checking ``lower`` first
    # short-circuits the (rarer) ``upper`` comparison.
    var = top - 1
    while var >= 0:
        mask = masks[var]
        shift = 1 << var
        if (lower & mask) != ((lower << shift) & mask) or (
            (upper & mask) != ((upper << shift) & mask)
        ):
            break
        var -= 1
    if var < 0:  # pragma: no cover - constants handled above
        raise TruthTableError("isop: no support variable found")

    # All four cofactors inline, sharing one mask / inverse-mask pair:
    # cofactor0 duplicates the low half up, cofactor1 the high half down
    # (bit-identical to repro.tt.truth.cofactor0/cofactor1).
    inv = ~mask & ones
    l_lo = lower & inv
    l_hi = lower & mask
    u_lo = upper & inv
    u_hi = upper & mask
    l0 = l_lo | (l_lo << shift)
    l1 = l_hi | (l_hi >> shift)
    u0 = u_lo | (u_lo << shift)
    u1 = u_hi | (u_hi >> shift)

    # Minterms only realizable in the var=0 (resp. var=1) half.  The two
    # base cases (empty lower bound, full upper bound) are inlined at
    # each recursion site: most child subproblems are trivial, and
    # skipping the call halves the recursion count.  (Base results are
    # never memoized, so this is state-identical to calling through.)
    lo = l0 & ~u1
    if lo == 0:
        cubes0, cover0 = [], 0
    elif u0 == ones:
        cubes0, cover0 = [0], ones
    else:
        cubes0, cover0 = _isop(lo, u0, var, n_vars)
    lo = l1 & ~u0
    if lo == 0:
        cubes1, cover1 = [], 0
    elif u1 == ones:
        cubes1, cover1 = [0], ones
    else:
        cubes1, cover1 = _isop(lo, u1, var, n_vars)
    # What remains must be covered independently of var.
    lo = (l0 & ~cover0) | (l1 & ~cover1)
    if lo == 0:
        cubes_star, cover_star = [], 0
    else:
        u_star = u0 & u1
        if u_star == ones:
            cubes_star, cover_star = [0], ones
        else:
            cubes_star, cover_star = _isop(lo, u_star, var, n_vars)

    neg_bit = 1 << (2 * var + 1)  # lit_index(var, True), inlined
    pos_bit = 1 << (2 * var)
    cubes = (
        [c | neg_bit for c in cubes0]
        + [c | pos_bit for c in cubes1]
        + cubes_star
    )
    cover = (cover0 & inv) | (cover1 & mask) | cover_star
    if len(_MEMO) >= ISOP_MEMO_LIMIT:
        _MEMO.clear()
    _MEMO[key] = (cubes, cover)
    return cubes, cover
