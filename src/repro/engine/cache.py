"""Cross-pass resynthesis cache with an NPN-canonical layer.

Resynthesis — ISOP extraction plus algebraic factoring — is a pure
function of ``(truth table, leaf count)``, which is why one pass-level
dict already serves many nodes of one sweep.  This module extends that
in two directions:

* **cross-pass**: a :class:`ResynthCache` outlives a single operator
  pass, so the second ``elf`` of an ``elf; elf`` flow (or the next
  engine pass over a re-snapshotted region) starts with every factored
  form the first pass derived;
* **cross-function**: 4-leaf cut functions are additionally indexed by
  their NPN class (:mod:`repro.tt.npn`).  A miss on the exact table but
  a hit on the class remaps the cached factored tree through the NPN
  transform — a variable permutation plus input/output negations — which
  costs a handful of tree-node rebuilds instead of a full ISOP +
  factoring run.

Exact lookups return bit-identical entries to recomputation, so sharing
a cache with the *sequential* operators changes nothing but runtime.
NPN-remapped entries are functionally equivalent but may factor a class
representative differently than the concrete table would have factored;
they are therefore only served to consumers that opted in via
:meth:`ResynthCache.npn_view` — the conflict-wave scheduler — whose
commits are gain-checked against the real graph either way.

A third, independent layer serves the *rewrite* family:
:meth:`ResynthCache.library_lookup` memoizes the NPN-library resolution
``tt4 -> (LibraryEntry, Transform)`` per cache (i.e. per flow), so every
``prw`` wave — and every later rewrite step of the same script — pays
the canonization walk for each distinct 4-variable function once.  The
layer stores the library's own (immutable) entries, never derived trees,
so it is deterministic and safe for any consumer.

Every layer can be bounded: ``ResynthCache(max_entries=N)`` keeps at
most ``N`` entries per layer in LRU order and counts evictions on the
``engine_cache_evictions_total{layer=...}`` metric.  Unbounded remains
the default — a single flow's working set is modest — but long-lived
serving sessions cap their caches so memory stays flat under arbitrary
circuit traffic.
"""

from __future__ import annotations

from .. import obs
from ..factor.tree import KIND_LIT, FactorTree
from ..tt.npn import N_VARS, Transform, invert_transform, npn_canonize


def remap_tree(tree: FactorTree, transform: Transform) -> FactorTree:
    """Substitute variables of ``tree`` along an NPN transform.

    With ``transform = (perm, flips, _)``, variable ``j`` becomes
    variable ``perm[j]``, complemented when bit ``j`` of ``flips`` is
    set (the output-negation member is handled by the caller through the
    entry's ``inverted`` flag).  The tree shape — and therefore the
    literal count the gain check sees — is preserved exactly.
    """
    perm, flips, _output_flip = transform
    if tree.kind == KIND_LIT:
        return FactorTree.lit(
            perm[tree.var], tree.negative ^ bool(flips >> tree.var & 1)
        )
    if not tree.children:
        return tree
    return FactorTree(
        tree.kind,
        children=tuple(remap_tree(child, transform) for child in tree.children),
    )


class ResynthCache:
    """Dict-compatible ``(tt, n_leaves) -> (tree, inverted)`` cache.

    Drop-in for the per-pass dict the operators use (``get`` /
    ``__setitem__`` / ``__contains__``), plus the NPN-canonical side
    table for 4-leaf cuts.  The base handle serves — and stores — exact
    entries only, so sequential consumers pay no canonization cost and
    stay bit-identical to running uncached; :meth:`npn_view` returns a
    handle over the same exact/canonical storage that additionally
    serves NPN-class remaps.  Remapped entries live in a view-local
    overlay and never enter the shared exact store — an exact-only
    handle can never observe an NPN-derived tree.

    Cached entries are factored under the knobs of whoever computed
    them: every consumer sharing one cache must use the same factoring
    parameters (``try_complement``, ``method``), which ``run_flow``
    guarantees by constructing all refactor-family steps alike.

    Hit/miss counters are cumulative and shared by all views; consumers
    snapshot them around a pass to report per-pass rates.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        # Per-layer LRU bound (None = unbounded, the historical default).
        # Long-lived consumers — the serving tier above all — set it so a
        # cache shared across thousands of circuits cannot grow without
        # limit; evictions land on ``engine_cache_evictions_total``.
        self.max_entries = max_entries
        self._exact: dict[tuple[int, int], tuple] = {}
        # Canonical 4-variable entries: class table -> entry in the
        # canonical variable space.  Populated lazily, by NPN views only.
        self._canonical: dict[int, tuple] = {}
        # Rewrite-library resolutions: padded tt4 -> (entry, transform).
        self._library: dict[int, tuple] = {}
        self.hits_exact = 0
        self.hits_npn = 0
        self.misses = 0
        self.hits_library = 0
        self.misses_library = 0
        self._npn_lookup = False
        # View-local state: remapped entries, and transforms computed by
        # a miss in get() so __setitem__ need not canonize again.
        self._overlay: dict[tuple[int, int], tuple] = {}
        self._pending_canon: dict[tuple[int, int], tuple[int, Transform]] = {}

    def npn_view(self) -> "ResynthCache":
        """A handle over the same storage that also serves NPN-class hits."""
        view = ResynthCache(self.max_entries)
        view._exact = self._exact
        view._canonical = self._canonical
        view._library = self._library
        view._npn_lookup = True
        view._stats_owner = self._owner()
        return view

    # Counter writes go to the storage owner so views and owner agree.
    _stats_owner: "ResynthCache | None" = None

    def _owner(self) -> "ResynthCache":
        # NB: explicit None test — ``or`` would misfire on an empty owner
        # (``__len__`` makes an empty cache falsy).
        return self if self._stats_owner is None else self._stats_owner

    def _trim(self, layer: dict, name: str) -> None:
        """Evict oldest entries of ``layer`` down to the LRU bound."""
        if self.max_entries is None:
            return
        while len(layer) > self.max_entries:
            layer.pop(next(iter(layer)))
            obs.counter("engine_cache_evictions_total", layer=name).add(1)

    def _touch(self, layer: dict, key) -> None:
        """Mark ``key`` most-recently-used (insertion order is LRU order)."""
        if self.max_entries is not None:
            layer[key] = layer.pop(key)

    def get(self, key: tuple[int, int]):
        """Entry for ``key`` or None; NPN remaps count as hits on views."""
        entry = self._exact.get(key)
        owner = self._owner()
        if entry is not None:
            self._touch(self._exact, key)
            owner.hits_exact += 1
            return entry
        tt, n_leaves = key
        if self._npn_lookup and n_leaves == N_VARS:
            entry = self._overlay.get(key)
            if entry is not None:
                owner.hits_npn += 1
                return entry
            canonical, transform = npn_canonize(tt)
            hit = self._canonical.get(canonical)
            if hit is not None:
                self._touch(self._canonical, canonical)
                tree_c, inverted_c = hit
                entry = (
                    remap_tree(tree_c, transform),
                    inverted_c ^ transform[2],
                )
                self._overlay[key] = entry
                self._trim(self._overlay, "overlay")
                owner.hits_npn += 1
                return entry
            self._pending_canon[key] = (canonical, transform)
        owner.misses += 1
        return None

    def __setitem__(self, key: tuple[int, int], entry: tuple) -> None:
        self._exact[key] = entry
        self._trim(self._exact, "exact")
        if not self._npn_lookup:
            return  # exact-only consumers never pay for canonization
        tt, n_leaves = key
        if n_leaves != N_VARS:
            return
        pending = self._pending_canon.pop(key, None)
        canonical, transform = pending if pending is not None else npn_canonize(tt)
        if canonical not in self._canonical:
            tree, inverted = entry
            inverse = invert_transform(transform)
            self._canonical[canonical] = (
                remap_tree(tree, inverse),
                inverted ^ inverse[2],
            )
            self._trim(self._canonical, "canonical")

    def library_lookup(self, tt4: int, library) -> tuple:
        """Cached NPN-library resolution of a padded 4-variable function.

        Returns the library's ``(entry, transform)`` pair for ``tt4``,
        memoized in a layer shared by every view of this cache.  Unlike
        the resynthesis layers above, the stored values come straight
        from :meth:`repro.opt.npn_library.NpnLibrary.lookup` — immutable
        class implementations plus the recorded transform — so a hit is
        exactly the pair a direct lookup would return, for any consumer.
        """
        owner = self._owner()
        hit = self._library.get(tt4)
        if hit is not None:
            self._touch(self._library, tt4)
            owner.hits_library += 1
            return hit
        owner.misses_library += 1
        resolved = library.lookup(tt4)
        self._library[tt4] = resolved
        self._trim(self._library, "library")
        return resolved

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._exact

    def __len__(self) -> int:
        return len(self._exact)

    @property
    def n_npn_classes(self) -> int:
        """Distinct 4-variable NPN classes with a cached factored form."""
        return len(self._canonical)
