"""Worker-pool execution of cut resynthesis.

Resynthesis — ISOP extraction plus algebraic factoring — is a pure
function of ``(truth table, leaf count)`` and never touches the AIG, so
it is the one refactoring phase that parallelizes without sharing the
graph.  The scheduler ships each wave's *unique* cut functions here in
chunks; winning factored forms are replayed against the main graph
serially by the scheduler.

The executor keeps one ``multiprocessing`` pool alive across waves
(fork start method where available, so workers inherit the imported
library for free) and degrades gracefully at two levels: a chunk whose
worker body errors is recomputed in-process (the other chunks of the
dispatch are unaffected), while ``workers <= 1``, pool creation failure,
or a pool-level error (a killed worker) fall back to in-process
evaluation of everything.  Both paths are bit-identical because workers
run the same ``_resynthesize`` as the sequential operator.

**Transport** (:mod:`repro.engine.pack`): by default each dispatch packs
the whole wave's tasks into one shared-memory segment and ships workers
``(descriptor, start, stop)`` ranges instead of pickled big-int lists —
the per-wave serialized volume drops to one flat copy plus a few dozen
bytes per chunk.  The ``transport`` parameter pins ``"shm"`` or
``"pickle"`` explicitly (benchmarks compare the two); ``"auto"`` uses
shared memory whenever the platform forks and the payload is worth a
segment, and falls back to pickle otherwise — or on any segment-creation
error, counted by ``engine_shm_fallbacks_total``.  Segment lifecycle is
one dispatch: created, mapped by workers, unlinked in a ``finally`` (the
``engine_shm_segments_created/unlinked_total`` counters must match after
every pass; ``engine_task_bytes_total{transport=...}`` records shipped
bytes per transport).

**Observability** (:mod:`repro.obs`): when tracing is enabled each
worker measures its chunk — tasks evaluated, evaluate seconds, ISOP-memo
hits — and piggybacks the serialized delta on the task result; the
parent merges deltas into the metrics registry at collect time, so
worker-side counters cost zero extra IPC round-trips.  A failed chunk
returns no snapshot and therefore loses only its own delta.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time

from .. import obs
from ..errors import ReproError
from ..opt.refactor import RefactorParams, _resynthesize
from ..tt.isop import isop_memo_hits
from .pack import PackedTasks, WaveSegment, share_resource_tracker

ResynthTask = "tuple[int, int]"  # (truth table, number of leaves)

SHM_MIN_BYTES = 1 << 14
"""Packed payloads below this ride the pickle path in ``auto`` mode —
segment setup costs more than pickling a few tables."""


def resynthesize_batch(
    tasks: list[tuple[int, int]],
    params: RefactorParams,
) -> list[tuple]:
    """In-process resynthesis of a task chunk (also the worker body)."""
    return [_resynthesize(tt, n_leaves, params, None) for tt, n_leaves in tasks]


def _worker(payload: tuple) -> tuple:
    """Worker body: ``(entries, error, snapshot)`` for one chunk.

    Two payload shapes, discriminated by the leading tag:

    * ``("pickle", params, chunk, want_obs)`` — the chunk's tasks travel
      pickled inside the message;
    * ``("shm", params, descriptor, start, stop, want_obs)`` — the tasks
      live in a shared-memory wave segment; the worker attaches it,
      rebuilds exactly its ``[start, stop)`` slice, and closes the
      mapping before resynthesizing.

    Errors are contained per chunk (``entries is None`` + the formatted
    error; the parent recomputes that chunk in-process), and the metrics
    snapshot rides along only when the parent asked for one and the
    chunk succeeded.
    """
    if payload[0] == "shm":
        _tag, params, descriptor, start, stop, want_obs = payload
        try:
            segment = WaveSegment.attach(descriptor)
            try:
                chunk = segment.packed().tasks(start, stop)
            finally:
                segment.close()
        except Exception as error:
            return (None, f"{type(error).__name__}: {error}", None)
    else:
        _tag, params, chunk, want_obs = payload
    t0 = time.perf_counter()
    memo0 = isop_memo_hits()
    try:
        entries = resynthesize_batch(chunk, params)
    except Exception as error:
        return (None, f"{type(error).__name__}: {error}", None)
    snapshot = None
    if want_obs:
        snapshot = {
            "counters": {
                "engine_worker_tasks_total": len(chunk),
                "engine_worker_evaluate_seconds_total": time.perf_counter() - t0,
                "engine_worker_isop_memo_hits_total": isop_memo_hits() - memo0,
                "engine_worker_chunks_total": 1,
            }
        }
    return (entries, None, snapshot)


def _chunked(tasks: list, n_chunks: int) -> list[list]:
    size = max(1, -(-len(tasks) // n_chunks))
    return [tasks[i : i + size] for i in range(0, len(tasks), size)]


class ResynthExecutor:
    """Chunked resynthesis executor over a persistent process pool.

    ``transport`` selects how task payloads reach workers: ``"shm"``
    (shared-memory wave segments), ``"pickle"`` (tasks inside the chunk
    messages), or ``"auto"`` (shm when the pool forks and the wave is
    big enough, pickle otherwise).
    """

    def __init__(
        self,
        workers: int,
        params: RefactorParams,
        transport: str = "auto",
    ) -> None:
        if transport not in ("auto", "shm", "pickle"):
            raise ReproError(f"unknown transport {transport!r}")
        self.workers = max(1, workers)
        self.params = params
        self.transport = transport
        self._pool = None
        self._pool_broken = False
        self._pool_is_fork = False

    @property
    def in_process(self) -> bool:
        """True when tasks run on the calling process (no pool)."""
        return self.workers <= 1 or self._pool_broken

    def will_pool(self, n_tasks: int) -> bool:
        """Whether ``run`` would dispatch this many tasks to the pool.

        Tail waves shrink geometrically; below ~4 tasks per worker the
        dispatch + result pickling costs more than the work itself.  A
        single-core host never pools: the workers would time-slice the
        one CPU the parent already occupies, so every dispatch and every
        pickled factored form is pure overhead there.
        """
        if (os.cpu_count() or 1) < 2:
            return False
        return n_tasks >= self.workers * 4 and not self.in_process

    def warm(self) -> bool:
        """Fork the worker pool now (if pooling applies); True when live.

        Long-lived owners (the serving layer) call this from the main
        thread before spawning circuit threads: forking a process pool
        while sibling threads run is undefined-behaviour territory on
        POSIX, so the fork is front-loaded to a single-threaded moment.
        """
        return self._ensure_pool() is not None

    def run(self, tasks: list[tuple[int, int]]) -> list[tuple]:
        """Resynthesize every task; results align with the input order."""
        if not tasks:
            return []
        pool = self._ensure_pool() if self.will_pool(len(tasks)) else None
        if pool is None:
            return resynthesize_batch(tasks, self.params)
        # ~4 chunks per worker amortizes dispatch while keeping the pool
        # load-balanced when task costs are skewed.
        chunks = _chunked(tasks, self.workers * 4)
        want_obs = obs.enabled()
        payloads, segment = self._build_payloads(tasks, chunks, want_obs)
        try:
            try:
                raw = pool.map(_worker, payloads)
            except Exception:
                self._teardown()
                self._pool_broken = True
                return resynthesize_batch(tasks, self.params)
        finally:
            if segment is not None:
                # One-dispatch lifecycle: the wave's segment never
                # outlives its pool.map, crash paths included.
                segment.close()
                segment.unlink()
                obs.counter("engine_shm_segments_unlinked_total").add(1)
        results: list[tuple] = []
        for chunk, (entries, error, snapshot) in zip(chunks, raw):
            if entries is None:
                # Chunk-level containment: recompute just this chunk in
                # process (bit-identical worker body); its worker-side
                # metrics delta is the only thing lost.
                if want_obs:
                    obs.counter("engine_worker_chunks_failed_total").add(1)
                entries = resynthesize_batch(chunk, self.params)
            elif snapshot is not None:
                obs.merge_worker_snapshot(snapshot)
            results.extend(entries)
        return results

    def _build_payloads(
        self,
        tasks: list[tuple[int, int]],
        chunks: list[list[tuple[int, int]]],
        want_obs: bool,
    ):
        """Chunk payloads plus the owning segment (None on the pickle path)."""
        if self.transport != "pickle" and self._pool_is_fork:
            packed = PackedTasks.pack(tasks)
            if self.transport == "shm" or packed.nbytes >= SHM_MIN_BYTES:
                try:
                    segment = WaveSegment.create(packed)
                except Exception:  # pragma: no cover - /dev/shm exhaustion
                    obs.counter("engine_shm_fallbacks_total").add(1)
                else:
                    obs.counter("engine_shm_segments_created_total").add(1)
                    obs.counter("engine_shm_segment_bytes_total").add(segment.nbytes)
                    descriptor = segment.descriptor()
                    payloads = []
                    start = 0
                    for chunk in chunks:
                        stop = start + len(chunk)
                        payloads.append(
                            ("shm", self.params, descriptor, start, stop, want_obs)
                        )
                        start = stop
                    # Serialized volume = what actually crosses the pipe:
                    # descriptor-range messages, not the segment (which is
                    # written once and mapped zero-copy by workers).
                    obs.counter("engine_task_bytes_total", transport="shm").add(
                        sum(len(pickle.dumps(p)) for p in payloads)
                    )
                    return payloads, segment
        elif self.transport == "shm":
            # Pinned shm on a non-forking pool: honor the pin as a
            # counted fallback rather than undefined tracker behaviour.
            obs.counter("engine_shm_fallbacks_total").add(1)
        payloads = [
            ("pickle", self.params, chunk, want_obs) for chunk in chunks
        ]
        obs.counter("engine_task_bytes_total", transport="pickle").add(
            sum(len(pickle.dumps(p)) for p in payloads)
        )
        return payloads, None

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ResynthExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self):
        if self._pool is None and not self._pool_broken:
            try:
                if "fork" in mp.get_all_start_methods():
                    context = mp.get_context("fork")
                    self._pool_is_fork = True
                    # Workers must inherit the parent's resource tracker
                    # for shm segment accounting to collapse cleanly.
                    share_resource_tracker()
                else:  # pragma: no cover - non-POSIX platforms
                    context = mp.get_context()
                    self._pool_is_fork = False
                self._pool = context.Pool(self.workers)
            except (OSError, ValueError):  # pragma: no cover - sandboxed envs
                self._pool_broken = True
                self._pool_is_fork = False
        return self._pool

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
