"""Worker-pool execution of cut resynthesis, with worker-death recovery.

Resynthesis — ISOP extraction plus algebraic factoring — is a pure
function of ``(truth table, leaf count)`` and never touches the AIG, so
it is the one refactoring phase that parallelizes without sharing the
graph.  The scheduler ships each wave's *unique* cut functions here in
chunks; winning factored forms are replayed against the main graph
serially by the scheduler.

The executor keeps one ``multiprocessing`` pool alive across waves
(fork start method where available, so workers inherit the imported
library for free).  **Fault tolerance** is layered, and every layer is
bit-identical to the sequential operator because workers run the same
``_resynthesize`` body:

* a chunk whose worker body errors is *contained* — the worker returns
  the formatted error and the parent recomputes that chunk in-process
  (``engine_worker_chunks_failed_total``);
* a chunk whose result never arrives — the worker died (OOM/SIGKILL) or
  hung — is detected by the per-chunk deadline on ``AsyncResult.get``
  (``chunk_timeout_s``); the executor counts the event
  (``engine_worker_deaths_total`` by pool-pid liveness,
  ``engine_worker_hangs_total`` otherwise), tears the pool down,
  respawns it after a :class:`repro.resilience.RetryPolicy` backoff
  (``engine_retries_total``) and **re-runs only the lost chunks**;
* a failed round that rode the shared-memory transport steps down the
  degradation ladder to pickled chunks
  (``engine_degradations_total{to="pickle"}``), and an exhausted retry
  budget degrades to in-process sequential execution
  (``engine_degradations_total{to="sequential"}``) — the floor that
  PR 1 proved bit-identical;
* pool *creation* failure (sandboxed hosts) falls back in-process,
  counted per cause (``engine_pool_fallbacks_total{reason=...}``) and
  logged once, so a sandbox stops looking like a 1-worker perf
  regression.

A :class:`repro.resilience.Deadline` passed to :meth:`ResynthExecutor.run`
bounds every chunk wait and the sequential floor; expiry raises
:class:`repro.errors.DeadlineExceeded` instead of blocking past budget.
Named fault-injection sites (``worker.start``, ``worker.chunk``,
``chunk.result``, ``shm.create`` — see :mod:`repro.resilience.faults`)
make each recovery path deterministically testable in CI.

**Transport** (:mod:`repro.engine.pack`): by default each dispatch packs
the round's tasks into one shared-memory segment and ships workers
``(descriptor, start, stop)`` ranges instead of pickled big-int lists —
the per-wave serialized volume drops to one flat copy plus a few dozen
bytes per chunk.  The ``transport`` parameter pins ``"shm"`` or
``"pickle"`` explicitly (benchmarks compare the two); ``"auto"`` uses
shared memory whenever the platform forks and the payload is worth a
segment, and falls back to pickle otherwise — or on any segment-creation
error, counted by ``engine_shm_fallbacks_total``.  Segment lifecycle is
one dispatch: created, mapped by workers, unlinked in a ``finally`` on
**every** path, crash and deadline paths included (the
``engine_shm_segments_created/unlinked_total`` counters must match after
every pass); any name that somehow survives — e.g. an unlink that itself
raised — is swept at :meth:`ResynthExecutor.close`
(``engine_shm_segments_swept_total``).

**Observability** (:mod:`repro.obs`): when tracing is enabled each
worker measures its chunk — tasks evaluated, evaluate seconds, ISOP-memo
hits — and piggybacks the serialized delta on the task result; the
parent merges deltas into the metrics registry at collect time, so
worker-side counters cost zero extra IPC round-trips.  A failed chunk
returns no snapshot and therefore loses only its own delta.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import pickle
import time

from .. import obs
from ..errors import DeadlineExceeded, ReproError
from ..opt.refactor import RefactorParams, _resynthesize
from ..resilience import Deadline, RetryPolicy, policy
from ..resilience.faults import InjectedFault, fire as fault_fire
from ..tt.isop import isop_memo_hits
from .pack import PackedTasks, WaveSegment, share_resource_tracker, unlink_by_name

ResynthTask = "tuple[int, int]"  # (truth table, number of leaves)

SHM_MIN_BYTES = 1 << 14
"""Packed payloads below this ride the pickle path in ``auto`` mode —
segment setup costs more than pickling a few tables."""

DEFAULT_CHUNK_TIMEOUT_S = 30.0
"""Per-chunk deadline on ``AsyncResult.get``: generous against skewed
task costs (a production chunk runs milliseconds), tight enough that a
dead worker is detected the same wave it died in."""

_log = logging.getLogger(__name__)
_logged_once: set[str] = set()


def _log_once(key: str, message: str, *args) -> None:
    """Warn exactly once per process per condition (recovery is counted
    on the metrics registry; the log line is for humans tailing serve)."""
    if key not in _logged_once:
        _logged_once.add(key)
        _log.warning(message, *args)


def resynthesize_batch(
    tasks: list[tuple[int, int]],
    params: RefactorParams,
) -> list[tuple]:
    """In-process resynthesis of a task chunk (also the worker body)."""
    return [_resynthesize(tt, n_leaves, params, None) for tt, n_leaves in tasks]


def _worker(payload: tuple) -> tuple:
    """Worker body: ``(entries, error, snapshot)`` for one chunk.

    Two payload shapes, discriminated by the leading tag (the trailing
    ``index`` is the absolute chunk index, the handle fault plans match
    on):

    * ``("pickle", params, chunk, want_obs, index)`` — the chunk's tasks
      travel pickled inside the message;
    * ``("shm", params, descriptor, start, stop, want_obs, index)`` —
      the tasks live in a shared-memory wave segment; the worker attaches
      it, rebuilds exactly its ``[start, stop)`` slice, and closes the
      mapping before resynthesizing.

    Errors are contained per chunk (``entries is None`` + the formatted
    error; the parent recomputes that chunk in-process), and the metrics
    snapshot rides along only when the parent asked for one and the
    chunk succeeded.  The ``worker.chunk`` fault site fires here — a
    ``kill`` fault SIGKILLs this very worker mid-chunk, which is what
    makes worker-death recovery reproducible in CI.
    """
    if payload[0] == "shm":
        _tag, params, descriptor, start, stop, want_obs, index = payload
        try:
            segment = WaveSegment.attach(descriptor)
            try:
                chunk = segment.packed().tasks(start, stop)
            finally:
                segment.close()
        except Exception as error:  # lint-faults: contained (parent recomputes + counts)
            return (None, f"{type(error).__name__}: {error}", None)
    else:
        _tag, params, chunk, want_obs, index = payload
    t0 = time.perf_counter()
    memo0 = isop_memo_hits()
    try:
        fault_fire("worker.chunk", chunk=index, pid=os.getpid())
        entries = resynthesize_batch(chunk, params)
    except Exception as error:  # lint-faults: contained (parent recomputes + counts)
        return (None, f"{type(error).__name__}: {error}", None)
    snapshot = None
    if want_obs:
        snapshot = {
            "counters": {
                "engine_worker_tasks_total": len(chunk),
                "engine_worker_evaluate_seconds_total": time.perf_counter() - t0,
                "engine_worker_isop_memo_hits_total": isop_memo_hits() - memo0,
                "engine_worker_chunks_total": 1,
            }
        }
    return (entries, None, snapshot)


def _chunked(tasks: list, n_chunks: int) -> list[list]:
    size = max(1, -(-len(tasks) // n_chunks))
    return [tasks[i : i + size] for i in range(0, len(tasks), size)]


class ResynthExecutor:
    """Chunked resynthesis executor over a persistent, self-healing pool.

    ``transport`` selects how task payloads reach workers: ``"shm"``
    (shared-memory wave segments), ``"pickle"`` (tasks inside the chunk
    messages), or ``"auto"`` (shm when the pool forks and the wave is
    big enough, pickle otherwise).  ``chunk_timeout_s`` is the per-chunk
    result deadline that turns a dead or hung worker into a recoverable
    event; ``retry_policy`` bounds pool respawns (see the module
    docstring for the full recovery ladder).
    """

    def __init__(
        self,
        workers: int,
        params: RefactorParams,
        transport: str = "auto",
        chunk_timeout_s: float = DEFAULT_CHUNK_TIMEOUT_S,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if transport not in ("auto", "shm", "pickle"):
            raise ReproError(f"unknown transport {transport!r}")
        self.workers = max(1, workers)
        self.params = params
        self.transport = transport
        self.chunk_timeout_s = chunk_timeout_s
        self.retry_policy = retry_policy or policy.DEFAULT_RETRY_POLICY
        self._pool = None
        self._pool_broken = False
        self._pool_is_fork = False
        self._forced_transport: str | None = None  # ladder state, sticky
        self._live_segments: set[str] = set()  # created, not yet unlinked

    @property
    def in_process(self) -> bool:
        """True when tasks run on the calling process (no pool)."""
        return self.workers <= 1 or self._pool_broken

    @property
    def effective_transport(self) -> str:
        """The configured transport, after any ladder degradation."""
        return self._forced_transport or self.transport

    def will_pool(self, n_tasks: int) -> bool:
        """Whether ``run`` would dispatch this many tasks to the pool.

        Tail waves shrink geometrically; below ~4 tasks per worker the
        dispatch + result pickling costs more than the work itself.  A
        single-core host never pools: the workers would time-slice the
        one CPU the parent already occupies, so every dispatch and every
        pickled factored form is pure overhead there.
        """
        if (os.cpu_count() or 1) < 2:
            return False
        return n_tasks >= self.workers * 4 and not self.in_process

    def warm(self) -> bool:
        """Fork the worker pool now (if pooling applies); True when live.

        Long-lived owners (the serving layer) call this from the main
        thread before spawning circuit threads: forking a process pool
        while sibling threads run is undefined-behaviour territory on
        POSIX, so the fork is front-loaded to a single-threaded moment.
        """
        return self._ensure_pool() is not None

    def run(
        self,
        tasks: list[tuple[int, int]],
        deadline: Deadline | None = None,
    ) -> list[tuple]:
        """Resynthesize every task; results align with the input order.

        Bit-identical on every path — pooled, retried, transport-degraded
        or sequential — because all of them run the same worker body.
        ``deadline`` bounds each chunk wait and the sequential floor;
        expiry raises :class:`repro.errors.DeadlineExceeded` (the caller
        abandons only uncommitted work, so the pass result stays a
        consistent prefix).
        """
        if not tasks:
            return []
        if deadline is not None:
            deadline.check("executor.run")
        pool = self._ensure_pool() if self.will_pool(len(tasks)) else None
        if pool is None:
            return self._run_sequential(tasks, deadline)
        # ~4 chunks per worker amortizes dispatch while keeping the pool
        # load-balanced when task costs are skewed.
        chunks = _chunked(tasks, self.workers * 4)
        results: list[list | None] = [None] * len(chunks)
        pending = list(range(len(chunks)))
        attempt = 0
        while pending and pool is not None:
            failed = self._dispatch(pool, chunks, pending, results, deadline)
            if not failed:
                pending = []
                break
            if not self.retry_policy.allows(attempt):
                # Retry budget exhausted: degrade to the sequential
                # floor for the still-lost chunks and stay there — a
                # pool this unhealthy would burn every future wave's
                # budget rediscovering the same failure.
                policy.record_degradation("sequential")
                _log_once(
                    "degraded-sequential",
                    "engine pool degraded to in-process sequential execution "
                    "after %d failed recovery attempts",
                    attempt,
                )
                self._teardown()
                self._pool_broken = True
                pool = None
                pending = failed
                break
            policy.record_retry()
            attempt += 1
            pool = self._respawn(attempt, deadline)
            pending = failed
        for i in pending:
            results[i] = self._run_sequential(chunks[i], deadline)
        out: list[tuple] = []
        for entries in results:
            out.extend(entries)
        return out

    # -- one dispatch + collect round ----------------------------------------

    def _dispatch(
        self,
        pool,
        chunks: list[list[tuple[int, int]]],
        pending: list[int],
        results: list,
        deadline: Deadline | None,
    ) -> list[int]:
        """Ship the pending chunks; collect with per-chunk deadlines.

        Fills ``results`` in place for every chunk that lands (including
        the contained-error recompute path) and returns the indices
        whose results never arrived — dead or hung workers — for the
        caller's retry machinery.  The round's shm segment, if any, is
        unlinked on every exit path.
        """
        want_obs = obs.enabled()
        payloads, segment = self._build_payloads(chunks, pending, want_obs)
        # Worker process objects at dispatch time (CPython pool internals;
        # the liveness probe is what separates a death from a hang).
        procs = list(getattr(pool, "_pool", ()))
        pids = [p.pid for p in procs]
        failed: list[int] = []
        hung = 0
        try:
            handles = [pool.apply_async(_worker, (payload,)) for payload in payloads]
            for i, handle in zip(pending, handles):
                try:
                    fault_fire("chunk.result", chunk=i, pids=pids)
                    timeout = self.chunk_timeout_s
                    if deadline is not None:
                        timeout = deadline.bound(timeout)
                    raw = handle.get(timeout=timeout)
                except mp.TimeoutError:
                    if deadline is not None and deadline.expired:
                        raise DeadlineExceeded(
                            "resynthesis chunk wait exceeded the deadline",
                            site="executor.chunk",
                        )
                    obs.counter(
                        "engine_chunk_failures_total", reason="timeout"
                    ).add(1)
                    failed.append(i)
                    hung += 1
                    continue
                except DeadlineExceeded:
                    raise
                except Exception as error:
                    # Pool-level breakage (or an injected lost chunk):
                    # the chunk is retried, the cause is counted.
                    obs.counter(
                        "engine_chunk_failures_total",
                        reason=type(error).__name__,
                    ).add(1)
                    failed.append(i)
                    continue
                entries, _error, snapshot = raw
                if entries is None:
                    # Chunk-level containment: recompute just this chunk
                    # in process (bit-identical worker body); its
                    # worker-side metrics delta is the only thing lost.
                    if want_obs:
                        obs.counter("engine_worker_chunks_failed_total").add(1)
                    entries = resynthesize_batch(chunks[i], self.params)
                elif snapshot is not None:
                    obs.merge_worker_snapshot(snapshot)
                results[i] = entries
        finally:
            if segment is not None:
                # One-dispatch lifecycle: the round's segment never
                # outlives its collection, crash paths included.
                name = segment.descriptor()[0]
                segment.close()
                segment.unlink()
                self._live_segments.discard(name)
                obs.counter("engine_shm_segments_unlinked_total").add(1)
        if failed:
            deaths = sum(1 for p in procs if not p.is_alive())
            if deaths:
                policy.record_worker_death(deaths)
            else:
                policy.record_worker_hang(hung)
            self._last_round_shm = segment is not None
        return failed

    _last_round_shm = False  # whether the most recent failed round rode shm

    def _respawn(self, attempt: int, deadline: Deadline | None):
        """Tear down and re-fork the pool for retry round ``attempt``.

        A failed round that used the shared-memory transport first steps
        the ladder down to pickled chunks — if the segment mapping was
        implicated (``/dev/shm`` pressure, a SIGBUS on access), retrying
        over it would fail the same way.  The downgrade is sticky for
        this executor and counted once.
        """
        self._teardown()
        if self._last_round_shm and self.effective_transport != "pickle":
            self._forced_transport = "pickle"
            policy.record_degradation("pickle")
            _log_once(
                "degraded-pickle",
                "engine transport degraded shm -> pickle after a failed round",
            )
        delay = self.retry_policy.backoff(attempt - 1)
        if deadline is not None:
            delay = deadline.bound(delay)
        if delay > 0:
            time.sleep(delay)
        return self._ensure_pool()

    def _run_sequential(
        self, tasks: list[tuple[int, int]], deadline: Deadline | None
    ) -> list[tuple]:
        """The in-process floor; deadline-checked per task."""
        if deadline is None:
            return resynthesize_batch(tasks, self.params)
        out: list[tuple] = []
        for tt, n_leaves in tasks:
            deadline.check("executor.sequential")
            out.append(_resynthesize(tt, n_leaves, self.params, None))
        return out

    def _build_payloads(
        self,
        chunks: list[list[tuple[int, int]]],
        pending: list[int],
        want_obs: bool,
    ):
        """Payloads for the pending chunks plus the owning segment
        (``None`` on the pickle path)."""
        transport = self.effective_transport
        if transport != "pickle" and self._pool_is_fork:
            tasks = [task for i in pending for task in chunks[i]]
            packed = PackedTasks.pack(tasks)
            if transport == "shm" or packed.nbytes >= SHM_MIN_BYTES:
                try:
                    fault_fire("shm.create", nbytes=packed.nbytes)
                    segment = WaveSegment.create(packed)
                except Exception:  # /dev/shm exhaustion, injected faults
                    obs.counter("engine_shm_fallbacks_total").add(1)
                else:
                    obs.counter("engine_shm_segments_created_total").add(1)
                    obs.counter("engine_shm_segment_bytes_total").add(segment.nbytes)
                    self._live_segments.add(segment.descriptor()[0])
                    descriptor = segment.descriptor()
                    payloads = []
                    start = 0
                    for i in pending:
                        stop = start + len(chunks[i])
                        payloads.append(
                            ("shm", self.params, descriptor, start, stop, want_obs, i)
                        )
                        start = stop
                    # Serialized volume = what actually crosses the pipe:
                    # descriptor-range messages, not the segment (which is
                    # written once and mapped zero-copy by workers).
                    obs.counter("engine_task_bytes_total", transport="shm").add(
                        sum(len(pickle.dumps(p)) for p in payloads)
                    )
                    return payloads, segment
        elif transport == "shm":
            # Pinned shm on a non-forking pool: honor the pin as a
            # counted fallback rather than undefined tracker behaviour.
            obs.counter("engine_shm_fallbacks_total").add(1)
        payloads = [
            ("pickle", self.params, chunks[i], want_obs, i) for i in pending
        ]
        obs.counter("engine_task_bytes_total", transport="pickle").add(
            sum(len(pickle.dumps(p)) for p in payloads)
        )
        return payloads, None

    def close(self) -> None:
        """Terminate the pool and sweep any segment the normal unlink
        missed (``engine_shm_segments_swept_total`` counts real sweeps;
        the created/unlinked invariant is preserved either way)."""
        self._teardown()
        for name in sorted(self._live_segments):
            if unlink_by_name(name):
                obs.counter("engine_shm_segments_swept_total").add(1)
                obs.counter("engine_shm_segments_unlinked_total").add(1)
        self._live_segments.clear()

    def __enter__(self) -> "ResynthExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self):
        if self._pool is None and not self._pool_broken:
            try:
                fault_fire("worker.start", workers=self.workers)
                if "fork" in mp.get_all_start_methods():
                    context = mp.get_context("fork")
                    self._pool_is_fork = True
                    # Workers must inherit the parent's resource tracker
                    # for shm segment accounting to collapse cleanly.
                    share_resource_tracker()
                else:  # pragma: no cover - non-POSIX platforms
                    context = mp.get_context()
                    self._pool_is_fork = False
                self._pool = context.Pool(self.workers)
            except (OSError, ValueError, InjectedFault) as error:
                # Sandboxed hosts (no fork permitted) land here: degrade
                # to in-process execution, counted per cause and logged
                # once so it never masquerades as a perf regression.
                self._pool_broken = True
                self._pool_is_fork = False
                obs.counter(
                    "engine_pool_fallbacks_total", reason=type(error).__name__
                ).add(1)
                _log_once(
                    "pool-fallback",
                    "worker pool unavailable (%s: %s); resynthesis runs "
                    "in-process",
                    type(error).__name__,
                    error,
                )
        return self._pool

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
