"""Worker-pool execution of cut resynthesis.

Resynthesis — ISOP extraction plus algebraic factoring — is a pure
function of ``(truth table, leaf count)`` and never touches the AIG, so
it is the one refactoring phase that parallelizes without sharing the
graph.  The scheduler ships each wave's *unique* cut functions here in
chunks; winning factored forms are replayed against the main graph
serially by the scheduler.

The executor keeps one ``multiprocessing`` pool alive across waves
(fork start method where available, so workers inherit the imported
library for free) and degrades gracefully at two levels: a chunk whose
worker body errors is recomputed in-process (the other chunks of the
dispatch are unaffected), while ``workers <= 1``, pool creation failure,
or a pool-level error (a killed worker) fall back to in-process
evaluation of everything.  Both paths are bit-identical because workers
run the same ``_resynthesize`` as the sequential operator.

**Observability** (:mod:`repro.obs`): when tracing is enabled each
worker measures its chunk — tasks evaluated, evaluate seconds, ISOP-memo
hits — and piggybacks the serialized delta on the task result; the
parent merges deltas into the metrics registry at collect time, so
worker-side counters cost zero extra IPC round-trips.  A failed chunk
returns no snapshot and therefore loses only its own delta.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

from .. import obs
from ..opt.refactor import RefactorParams, _resynthesize
from ..tt.isop import isop_memo_hits

ResynthTask = "tuple[int, int]"  # (truth table, number of leaves)


def resynthesize_batch(
    tasks: list[tuple[int, int]],
    params: RefactorParams,
) -> list[tuple]:
    """In-process resynthesis of a task chunk (also the worker body)."""
    return [_resynthesize(tt, n_leaves, params, None) for tt, n_leaves in tasks]


def _worker(payload: tuple) -> tuple:
    """Worker body: ``(entries, error, snapshot)`` for one chunk.

    Errors are contained per chunk (``entries is None`` + the formatted
    error; the parent recomputes that chunk in-process), and the metrics
    snapshot rides along only when the parent asked for one and the
    chunk succeeded.
    """
    params, chunk, want_obs = payload
    t0 = time.perf_counter()
    memo0 = isop_memo_hits()
    try:
        entries = resynthesize_batch(chunk, params)
    except Exception as error:
        return (None, f"{type(error).__name__}: {error}", None)
    snapshot = None
    if want_obs:
        snapshot = {
            "counters": {
                "engine_worker_tasks_total": len(chunk),
                "engine_worker_evaluate_seconds_total": time.perf_counter() - t0,
                "engine_worker_isop_memo_hits_total": isop_memo_hits() - memo0,
                "engine_worker_chunks_total": 1,
            }
        }
    return (entries, None, snapshot)


def _chunked(tasks: list, n_chunks: int) -> list[list]:
    size = max(1, -(-len(tasks) // n_chunks))
    return [tasks[i : i + size] for i in range(0, len(tasks), size)]


class ResynthExecutor:
    """Chunked resynthesis executor over a persistent process pool."""

    def __init__(self, workers: int, params: RefactorParams) -> None:
        self.workers = max(1, workers)
        self.params = params
        self._pool = None
        self._pool_broken = False

    @property
    def in_process(self) -> bool:
        """True when tasks run on the calling process (no pool)."""
        return self.workers <= 1 or self._pool_broken

    def will_pool(self, n_tasks: int) -> bool:
        """Whether ``run`` would dispatch this many tasks to the pool.

        Tail waves shrink geometrically; below ~4 tasks per worker the
        dispatch + result pickling costs more than the work itself.  A
        single-core host never pools: the workers would time-slice the
        one CPU the parent already occupies, so every dispatch and every
        pickled factored form is pure overhead there.
        """
        if (os.cpu_count() or 1) < 2:
            return False
        return n_tasks >= self.workers * 4 and not self.in_process

    def warm(self) -> bool:
        """Fork the worker pool now (if pooling applies); True when live.

        Long-lived owners (the serving layer) call this from the main
        thread before spawning circuit threads: forking a process pool
        while sibling threads run is undefined-behaviour territory on
        POSIX, so the fork is front-loaded to a single-threaded moment.
        """
        return self._ensure_pool() is not None

    def run(self, tasks: list[tuple[int, int]]) -> list[tuple]:
        """Resynthesize every task; results align with the input order."""
        if not tasks:
            return []
        pool = self._ensure_pool() if self.will_pool(len(tasks)) else None
        if pool is None:
            return resynthesize_batch(tasks, self.params)
        # ~4 chunks per worker amortizes dispatch while keeping the pool
        # load-balanced when task costs are skewed.
        chunks = _chunked(tasks, self.workers * 4)
        want_obs = obs.enabled()
        try:
            raw = pool.map(_worker, [(self.params, chunk, want_obs) for chunk in chunks])
        except Exception:
            self._teardown()
            self._pool_broken = True
            return resynthesize_batch(tasks, self.params)
        results: list[tuple] = []
        for chunk, (entries, error, snapshot) in zip(chunks, raw):
            if entries is None:
                # Chunk-level containment: recompute just this chunk in
                # process (bit-identical worker body); its worker-side
                # metrics delta is the only thing lost.
                if want_obs:
                    obs.counter("engine_worker_chunks_failed_total").add(1)
                entries = resynthesize_batch(chunk, self.params)
            elif snapshot is not None:
                obs.merge_worker_snapshot(snapshot)
            results.extend(entries)
        return results

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ResynthExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self):
        if self._pool is None and not self._pool_broken:
            try:
                if "fork" in mp.get_all_start_methods():
                    context = mp.get_context("fork")
                else:  # pragma: no cover - non-POSIX platforms
                    context = mp.get_context()
                self._pool = context.Pool(self.workers)
            except (OSError, ValueError):  # pragma: no cover - sandboxed envs
                self._pool_broken = True
        return self._pool

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
