"""Conflict-aware parallel refactoring engine.

The sequential refactor sweep visits nodes one at a time; the only speed
lever ELF adds on top is classifier pruning.  This subsystem adds the
other lever: MFFC-disjoint candidates are grouped into conflict-free
commit waves (:mod:`repro.engine.conflict`), each wave's unique cut
functions are resynthesized by a worker pool off the main graph
(:mod:`repro.engine.parallel`) through a cross-pass NPN-aware cache
(:mod:`repro.engine.cache`), and winning commits are replayed serially
(:mod:`repro.engine.scheduler`).  Snapshots an earlier wave invalidates
are incrementally re-cut and re-waved via the graph's dirty journal and
the candidate inverted index — there is no sequential fallback.
``workers=1`` delegates to the sequential operators, bit for bit.
"""

from .cache import ResynthCache, remap_tree
from .conflict import Candidate, CandidateIndex, build_conflict_graph, color_waves
from .parallel import ResynthExecutor, resynthesize_batch
from .scheduler import EngineParams, EngineStats, engine_refactor

__all__ = [
    "Candidate",
    "CandidateIndex",
    "EngineParams",
    "EngineStats",
    "ResynthCache",
    "ResynthExecutor",
    "build_conflict_graph",
    "color_waves",
    "engine_refactor",
    "remap_tree",
    "resynthesize_batch",
]
