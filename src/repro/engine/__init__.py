"""Conflict-aware parallel optimization engine (the wave pipeline).

The sequential operator sweeps visit nodes one at a time; the only speed
lever ELF adds on top is classifier pruning.  This subsystem adds the
other lever: footprint-disjoint candidates are grouped into
conflict-free commit waves (:mod:`repro.engine.conflict`), each wave is
batch-evaluated off the main graph, and winning commits are replayed
serially (:mod:`repro.engine.scheduler`).  The scheduler itself is
operator-agnostic: everything operator-specific sits behind the
:class:`repro.engine.operators.WaveOperator` protocol, with two
adapters — :class:`repro.engine.operators.RefactorWaveOp` (refactor /
ELF: pooled resynthesis via :mod:`repro.engine.parallel` through the
cross-pass NPN-aware cache of :mod:`repro.engine.cache`) and
:class:`repro.engine.operators.RewriteWaveOp` (DAC'06 rewriting:
batched truth kernels + cached NPN-library lookups).  Snapshots an
earlier wave invalidates are incrementally re-cut and re-waved via the
graph's dirty journal and the candidate inverted index — there is no
sequential fallback.  ``workers=1`` delegates to the sequential
operators, bit for bit.
"""

from .cache import ResynthCache, remap_tree
from .conflict import Candidate, CandidateIndex, build_conflict_graph, color_waves
from .operators import RefactorWaveOp, RewriteWaveOp, WaveOperator
from .parallel import ResynthExecutor, resynthesize_batch
from .scheduler import (
    EngineParams,
    EngineStats,
    RewriteEngineParams,
    engine_refactor,
    engine_rewrite,
    run_wave_pass,
)

__all__ = [
    "Candidate",
    "CandidateIndex",
    "EngineParams",
    "EngineStats",
    "RefactorWaveOp",
    "ResynthCache",
    "ResynthExecutor",
    "RewriteEngineParams",
    "RewriteWaveOp",
    "WaveOperator",
    "build_conflict_graph",
    "color_waves",
    "engine_refactor",
    "engine_rewrite",
    "remap_tree",
    "resynthesize_batch",
    "run_wave_pass",
]
