"""Conflict-aware parallel refactoring engine.

The sequential refactor sweep visits nodes one at a time; the only speed
lever ELF adds on top is classifier pruning.  This subsystem adds the
other lever: MFFC-disjoint candidates are grouped into conflict-free
commit waves (:mod:`repro.engine.conflict`), each wave's unique cut
functions are resynthesized by a worker pool off the main graph
(:mod:`repro.engine.parallel`), and winning commits are replayed
serially (:mod:`repro.engine.scheduler`).  ``workers=1`` delegates to
the sequential operators, bit for bit.
"""

from .conflict import Candidate, build_conflict_graph, color_waves
from .parallel import ResynthExecutor, resynthesize_batch
from .scheduler import EngineParams, EngineStats, engine_refactor

__all__ = [
    "Candidate",
    "EngineParams",
    "EngineStats",
    "ResynthExecutor",
    "build_conflict_graph",
    "color_waves",
    "engine_refactor",
    "resynthesize_batch",
]
