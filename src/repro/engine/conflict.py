"""Conflict graph and wave coloring for parallel refactoring.

Two refactor candidates can be resynthesized concurrently and committed
in the same wave only when their commits cannot interfere.  A commit of
candidate A deletes exactly A's MFFC (plus, rarely, strash-merge
victims) and rewires fanouts of A's root; both effects are confined to
nodes that see A's MFFC.  Candidate B is therefore endangered exactly
when A's MFFC intersects B's *footprint* — B's root, cut cone, leaves or
MFFC — and vice versa.  Following "Parallel AIG Refactoring via Conflict
Breaking", candidates are vertices, interference pairs are edges, and a
greedy coloring partitions the candidates into conflict-free commit
waves.

The conflict test is conservative: a surviving wave member's snapshot
cone is guaranteed intact (every structural edit inside the cone would
have killed a cone node, which the scheduler re-checks before reusing
precomputed data), so precomputed truth tables and factored forms stay
valid across a wave.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cuts.features import CutFeatures


@dataclass(frozen=True)
class Candidate:
    """Snapshot of one refactor candidate taken at pass start."""

    node: int
    leaves: tuple[int, ...]
    interior: frozenset[int]  # cut cone, root included, leaves excluded
    mffc: frozenset[int]  # nodes freed if ``node`` is replaced
    features: CutFeatures | None = None

    @property
    def footprint(self) -> set[int]:
        """Every node whose deletion or rewiring can invalidate this
        candidate's snapshot data or commit."""
        return {self.node} | set(self.leaves) | set(self.interior) | set(self.mffc)


def build_conflict_graph(
    candidates: list[Candidate],
) -> tuple[list[set[int]], int]:
    """Adjacency sets over candidate *indices*, plus the edge count.

    Built through an inverted node -> candidates index so the cost is
    linear in total footprint size (footprints are small — a cut has at
    most ``max_leaves`` leaves and a comparable interior), never the
    quadratic all-pairs scan.
    """
    touched_by: dict[int, list[int]] = {}
    for index, candidate in enumerate(candidates):
        for node in candidate.footprint:
            touched_by.setdefault(node, []).append(index)
    adjacency: list[set[int]] = [set() for _ in candidates]
    for index, candidate in enumerate(candidates):
        for node in candidate.mffc:
            for other in touched_by.get(node, ()):
                if other != index:
                    adjacency[index].add(other)
                    adjacency[other].add(index)
    n_edges = sum(len(neighbors) for neighbors in adjacency) // 2
    return adjacency, n_edges


def color_waves(adjacency: list[set[int]]) -> list[list[int]]:
    """Greedy coloring in candidate (= ascending node id) order.

    Returns the color classes as waves of candidate indices; every wave
    is an independent set of the conflict graph, and the first waves are
    the largest (greedy packs early colors first), which is what feeds
    the worker pool best.
    """
    colors = [-1] * len(adjacency)
    waves: list[list[int]] = []
    for index in range(len(adjacency)):
        used = {colors[other] for other in adjacency[index] if colors[other] >= 0}
        color = 0
        while color in used:
            color += 1
        colors[index] = color
        if color == len(waves):
            waves.append([])
        waves[color].append(index)
    return waves
