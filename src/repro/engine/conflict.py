"""Conflict graph, wave coloring and the candidate inverted index.

Two wave candidates can be evaluated concurrently and committed in the
same wave only when their commits cannot interfere.  The reasoning is
operator-agnostic — it holds for any operator whose commit replaces one
root with a gain-checked cone over snapshot leaves (refactor, rewrite):
a commit of candidate A deletes exactly A's MFFC (plus, rarely,
strash-merge victims) and rewires fanouts of A's root; both effects are
confined to nodes that see A's MFFC.  Candidate B is therefore
endangered exactly when A's MFFC intersects B's *footprint* — B's root,
cut cone, leaves or MFFC — and vice versa.  Following "Parallel AIG
Refactoring via Conflict Breaking", candidates are vertices,
interference pairs are edges, and a greedy coloring partitions the
candidates into conflict-free commit waves.

The :class:`CandidateIndex` inverts the candidate set: it maps every
cone node to the candidates whose snapshot it certifies and every
footprint node to the candidates whose scheduling it constrains.  The
scheduler intersects each commit's dirty set (the nodes it killed) with
the cone map to find the exact set of invalidated candidates in
O(damage) — the incremental alternative to the per-candidate liveness
probing and sequential fallback the engine used to replay stale
candidates through.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from ..cuts.features import CutFeatures


@dataclass(frozen=True)
class Candidate:
    """Snapshot of one wave candidate taken at pass start.

    The conflict/invalidation machinery is operator-agnostic: it only
    reads ``node``, ``leaves``, ``interior`` and ``mffc``.  A
    single-cut operator (refactor) stores its one cut directly; a
    multi-cut operator (rewrite) stores the *unions* here — death of any
    node in any cut's cone must invalidate the snapshot — and keeps the
    per-cut detail in ``payload``, which the scheduler never inspects.

    Re-snapshotted candidates (built between waves after their cone was
    dirtied) may carry the conservative ``mffc == interior`` bound: the
    cut-bounded MFFC is always a subset of the interior, the gain check
    recomputes the exact MFFC at commit time anyway, and the superset
    only makes conflict planning more cautious.
    """

    node: int
    leaves: tuple[int, ...]
    interior: frozenset[int]  # cut cone, root included, leaves excluded
    mffc: frozenset[int]  # nodes freed if ``node`` is replaced
    features: CutFeatures | None = None
    payload: object = None  # operator-private snapshot data

    @cached_property
    def footprint(self) -> set[int]:
        """Every node whose deletion or rewiring can invalidate this
        candidate's snapshot data or commit."""
        return {self.node} | set(self.leaves) | set(self.interior) | set(self.mffc)

    @cached_property
    def cone(self) -> frozenset[int]:
        """Root, interior and leaves — the nodes whose *death* invalidates
        the snapshot's truth table and factored form (MFFC drift does not:
        the gain check recomputes it at commit time)."""
        return frozenset((self.node, *self.leaves)) | self.interior


class CandidateIndex:
    """Inverted node → candidate maps over a pass's snapshots.

    ``add`` registers (or re-registers, after a re-snapshot) a candidate
    under its current cone and footprint.  Entries from superseded
    snapshots are not eagerly removed — a stale entry can only cause a
    spurious invalidation probe or a conservative conflict, never a missed
    one — which keeps updates O(snapshot size).
    """

    def __init__(self) -> None:
        self._by_cone: dict[int, set[int]] = {}
        self._by_footprint: dict[int, set[int]] = {}

    def add(self, index: int, candidate: Candidate) -> None:
        by_cone = self._by_cone
        for node in candidate.cone:
            members = by_cone.get(node)
            if members is None:
                by_cone[node] = {index}
            else:
                members.add(index)
        by_footprint = self._by_footprint
        for node in candidate.footprint:
            members = by_footprint.get(node)
            if members is None:
                by_footprint[node] = {index}
            else:
                members.add(index)

    def invalidated(self, dirty: Iterable[int], pending: set[int]) -> set[int]:
        """Pending candidates whose snapshot cone intersects ``dirty``.

        O(|dirty|) map probes — never a per-candidate liveness scan.
        """
        hit: set[int] = set()
        by_cone = self._by_cone
        for node in dirty:
            members = by_cone.get(node)
            if members:
                hit.update(members & pending)
        return hit


def build_conflict_graph(
    candidates: list[Candidate],
    index: CandidateIndex | None = None,
) -> tuple[list[set[int]], int]:
    """Adjacency sets over candidate *indices*, plus the edge count.

    Built through an inverted node -> candidates map so the cost is
    linear in total footprint size (footprints are small — a cut has at
    most ``max_leaves`` leaves and a comparable interior), never the
    quadratic all-pairs scan.  Passing the pass's :class:`CandidateIndex`
    reuses its footprint map instead of building a throwaway one.
    """
    if index is None:
        index = CandidateIndex()
        for i, candidate in enumerate(candidates):
            index.add(i, candidate)
    touched_by = index._by_footprint
    adjacency: list[set[int]] = [set() for _ in candidates]
    for i, candidate in enumerate(candidates):
        for node in candidate.mffc:
            for other in touched_by.get(node, ()):
                if other != i:
                    adjacency[i].add(other)
                    adjacency[other].add(i)
    n_edges = sum(len(neighbors) for neighbors in adjacency) // 2
    return adjacency, n_edges


def color_waves(adjacency: list[set[int]]) -> list[list[int]]:
    """Greedy coloring in candidate (= ascending node id) order.

    Returns the color classes as waves of candidate indices; every wave
    is an independent set of the conflict graph, and the first waves are
    the largest (greedy packs early colors first), which is what feeds
    the worker pool best.
    """
    colors = [-1] * len(adjacency)
    waves: list[list[int]] = []
    for index in range(len(adjacency)):
        used = {colors[other] for other in adjacency[index] if colors[other] >= 0}
        color = 0
        while color in used:
            color += 1
        colors[index] = color
        if color == len(waves):
            waves.append([])
        waves[color].append(index)
    return waves
