"""Wave operators: the per-operator hooks the generic scheduler drives.

The conflict-wave pipeline (:mod:`repro.engine.scheduler`) is
operator-agnostic: snapshotting, conflict planning, wave coloring,
fused classification, incremental re-snapshot and the repair-wave
protocol all work on :class:`repro.engine.conflict.Candidate` alone.
Everything operator-specific lives behind the :class:`WaveOperator`
protocol — three graph-facing hooks plus lifecycle glue:

* ``snapshot(g, node, stats)`` — build one candidate (cut(s), footprint,
  optional features) on the intact graph, or account the node and
  return ``None``;
* ``evaluate(g, items, stats)`` — the batchable middle: given the wave's
  surviving ``(index, candidate)`` pairs, produce one result per pair
  (refactor: batched truth tables + pooled resynthesis through the
  cross-pass cache; rewrite: batched truth tables + cached NPN-library
  lookups).  Runs *before* any of the wave's commits, so it may only
  depend on graph state every earlier wave already produced;
* ``commit(g, candidate, result, stats, dirty)`` — gain-check and commit
  one candidate against the current graph, accumulating journaled kills
  into ``dirty``; runs serially at replay, in ascending node order.

Two adapters implement the protocol: :class:`RefactorWaveOp` (the
ELF-paper refactor engine, extracted verbatim from the previously
hard-wired scheduler — behavior- and BENCH-identical) and
:class:`RewriteWaveOp` (DAC'06 cut rewriting, built from the
snapshot/evaluate/commit phase split of :mod:`repro.opt.rewrite`).
"""

from __future__ import annotations

import time

from ..aig.graph import AIG
from ..aig.levels import RequiredLevels
from ..aig.mffc import mffc_nodes
from ..aig.simulate import batch_cone_truths
from ..cuts.reconv import reconv_cut
from ..opt.refactor import RefactorParams, commit_tree
from ..opt.rewrite import (
    RewriteParams,
    commit_scored,
    evaluate_cut,
    usable_node_cuts,
)
from .cache import ResynthCache
from .conflict import Candidate


class WaveOperator:
    """Protocol (and default lifecycle) of a wave-pipeline operator.

    Subclasses must implement :meth:`snapshot`, :meth:`evaluate` and
    :meth:`commit`; :meth:`resnapshot` must be provided whenever
    snapshots can be invalidated (always, in practice).  ``prepare`` /
    ``finish`` bracket one pass and default to no-ops.

    ``wants_features`` tells the scheduler whether snapshots carry the
    six ELF features (so wave members can be batch-classified); an
    operator without a feature notion leaves it ``False`` and the
    scheduler never classifies.
    """

    name = "wave"
    wants_features = False
    # Set by run_wave_pass before the wave loop: the pass's latency
    # budget (or None).  Operators whose ``evaluate`` blocks — pooled
    # resynthesis, chiefly — bound their waits on it so a dead worker
    # cannot stall past the budget.
    deadline = None

    def prepare(self, g: AIG, stats) -> None:
        """Pass-level setup on the intact graph (cut enumeration, levels)."""

    def snapshot(self, g: AIG, node: int, stats) -> Candidate | None:
        """Snapshot one live AND node, or account it and return None."""
        raise NotImplementedError

    def resnapshot(self, g: AIG, candidate: Candidate, stats) -> Candidate | None:
        """Refresh an invalidated snapshot on the current graph.

        Returns the fresh candidate, or ``None`` when the node no longer
        yields one (degenerate cut, all cuts stale) — after accounting it
        the way the sequential sweep would.
        """
        raise NotImplementedError

    def evaluate(self, g: AIG, items: list, stats) -> list:
        """Batch-evaluate ``items`` (``(index, candidate)`` pairs).

        Returns one opaque result per item, aligned with the input; the
        scheduler hands each back to :meth:`commit` at replay.
        """
        raise NotImplementedError

    def commit(self, g: AIG, candidate: Candidate, result, stats, dirty: set) -> None:
        """Gain-check + commit one candidate; journaled kills go to ``dirty``."""
        raise NotImplementedError

    def finish(self, stats) -> None:
        """Pass-level teardown / stats finalization."""


class RefactorWaveOp(WaveOperator):
    """Refactor (and ELF-pruned refactor) on the wave pipeline.

    Snapshot: one reconvergence-driven cut + cut-bounded MFFC (+ features
    when a classifier is deployed).  Evaluate: the wave's survivor cones
    go through the multi-root truth kernel, unique cut functions through
    the cross-pass NPN-aware cache, and true misses to the worker pool —
    where the executor packs the whole wave into one shared-memory
    segment instead of pickling per-task big-ints (see
    :mod:`repro.engine.pack`).  Commit: the same ``commit_tree`` the
    sequential operator uses.
    """

    name = "refactor"

    def __init__(
        self,
        params: RefactorParams,
        cache: ResynthCache,
        executor,
        want_features: bool,
    ) -> None:
        self.params = params
        self.cache = cache
        self.executor = executor
        self.wants_features = want_features
        self.required: RequiredLevels | None = None
        self._hits_exact0 = 0
        self._hits_npn0 = 0

    def prepare(self, g: AIG, stats) -> None:
        if self.params.preserve_levels:
            self.required = RequiredLevels(g)
        owner = self.cache._owner()
        self._hits_exact0 = owner.hits_exact
        self._hits_npn0 = owner.hits_npn

    def snapshot(self, g: AIG, node: int, stats) -> Candidate | None:
        cut = reconv_cut(
            g, node, self.params.max_leaves, collect_features=self.wants_features
        )
        if cut.n_leaves < 2:
            # Degenerate cuts mirror the sequential accounting (visited,
            # formed, failed) without entering the wave machinery.
            stats.nodes_visited += 1
            stats.cuts_formed += 1
            stats.fail_trivial += 1
            return None
        mffc = frozenset(mffc_nodes(g, node, boundary=set(cut.leaves)))
        return Candidate(
            node=node,
            leaves=tuple(cut.leaves),
            interior=frozenset(cut.interior),
            mffc=mffc,
            features=cut.features,
        )

    def resnapshot(self, g: AIG, candidate: Candidate, stats) -> Candidate | None:
        """Fresh reconvergence cut with the conservative ``mffc = interior``
        bound (the cut-bounded MFFC is a subset of the interior, and the
        commit-time gain check recomputes the exact value anyway)."""
        cut = reconv_cut(
            g,
            candidate.node,
            self.params.max_leaves,
            collect_features=self.wants_features,
        )
        if cut.n_leaves < 2:
            stats.nodes_visited += 1
            stats.cuts_formed += 1
            stats.fail_trivial += 1
            return None
        interior = frozenset(cut.interior)
        return Candidate(
            node=candidate.node,
            leaves=tuple(cut.leaves),
            interior=interior,
            mffc=interior,
            features=cut.features,
        )

    def evaluate(self, g: AIG, items: list, stats) -> list:
        # Truth tables of all surviving cones in one batched kernel call.
        t0 = time.perf_counter()
        tts = batch_cone_truths(
            g, [(c.node, c.leaves, c.interior) for _, c in items]
        )
        stats.time_truth += time.perf_counter() - t0

        # Resolve each unique cut function through the cross-pass cache;
        # only true misses are shipped to the worker pool.
        entries: dict[tuple[int, int], tuple | None] = {}
        todo: list[tuple[int, int]] = []
        for (_i, candidate), tt in zip(items, tts):
            key = (tt, len(candidate.leaves))
            if key in entries:
                continue
            hit = self.cache.get(key)
            entries[key] = hit
            if hit is None:
                todo.append(key)
        stats.n_tasks += len(items)
        stats.n_unique_tasks += len(todo)
        if todo:
            pooled = self.executor.will_pool(len(todo))
            t0 = time.perf_counter()
            for key, entry in zip(todo, self.executor.run(todo, deadline=self.deadline)):
                self.cache[key] = entry
                entries[key] = entry
            elapsed = time.perf_counter() - t0
            if pooled:
                stats.time_parallel += elapsed
            stats.time_resynth += elapsed
        return [
            entries[(tt, len(candidate.leaves))]
            for (_i, candidate), tt in zip(items, tts)
        ]

    def commit(self, g: AIG, candidate: Candidate, result, stats, dirty: set) -> None:
        stats.nodes_visited += 1
        stats.cuts_formed += 1
        commit_tree(
            g,
            candidate.node,
            list(candidate.leaves),
            self.params,
            self.required,
            stats,
            lambda: result,
            dirty=dirty,
        )

    def finish(self, stats) -> None:
        owner = self.cache._owner()
        stats.n_cache_hits = owner.hits_exact - self._hits_exact0
        stats.n_npn_hits = owner.hits_npn - self._hits_npn0


class RewriteWaveOp(WaveOperator):
    """DAC'06 cut rewriting on the wave pipeline.

    Snapshot: the node's 4-feasible cuts from the pass-level enumeration
    (:func:`repro.cuts.enumerate.enumerate_cuts`, run once in
    ``prepare``), each with its cone interior, unioned into one
    candidate whose footprint covers every cut — death anywhere in any
    cut's cone invalidates the snapshot, exactly the staleness the
    sequential sweep detects per cut.  Re-snapshot filters the original
    cut list against the current graph (dead leaves / uncovered cones
    are dropped and counted), mirroring the sequential "skip stale cuts"
    rule rather than re-enumerating.

    Evaluate: all member cuts' truth tables come from one
    :func:`repro.aig.simulate.batch_cone_truths` call; each padded
    function resolves through the cache's library layer
    (:meth:`repro.engine.cache.ResynthCache.library_lookup`), so one NPN
    canonization per distinct function per flow.  No worker pool: a
    library lookup is a dict probe (at worst one 222-class synthesis per
    process), far below process-dispatch cost — the batching *is* the
    speedup, matching the ELF trick of fusing per-wave evaluation.

    Commit: :func:`repro.opt.rewrite.commit_scored` — the exact
    MFFC/strash-aware gain check and build the sequential operator runs,
    applied serially at replay.
    """

    name = "rewrite"

    def __init__(
        self,
        params: RewriteParams,
        cache: ResynthCache,
        library,
    ) -> None:
        self.params = params
        self.cache = cache
        self.library = library
        self.required: RequiredLevels | None = None
        self._all_cuts = None
        self._hits_library0 = 0

    def prepare(self, g: AIG, stats) -> None:
        from ..cuts.enumerate import enumerate_cuts

        if self.params.preserve_levels:
            self.required = RequiredLevels(g)
        self._all_cuts = enumerate_cuts(g, self.params.k, self.params.max_cuts)
        self._hits_library0 = self.cache._owner().hits_library

    def _build_candidate(
        self, node: int, cuts: list[tuple[tuple[int, ...], frozenset]], mffc: frozenset
    ) -> Candidate:
        leaves = sorted({leaf for cut_leaves, _ in cuts for leaf in cut_leaves})
        interior = frozenset().union(*(interior for _, interior in cuts))
        return Candidate(
            node=node,
            leaves=tuple(leaves),
            interior=interior,
            mffc=mffc,
            payload=tuple(cuts),
        )

    def snapshot(self, g: AIG, node: int, stats) -> Candidate | None:
        usable, n_stale = usable_node_cuts(g, node, self._all_cuts)
        stats.n_stale_cuts += n_stale
        cuts = []
        mffc: set[int] = set()
        for leaves in usable:
            interior = _cut_interior(g, node, set(leaves))
            if interior is None:  # pragma: no cover - intact graph covers all
                stats.n_stale_cuts += 1
                continue
            cuts.append((tuple(leaves), interior))
            # The commit kills the MFFC bounded by whichever cut wins, so
            # the conflict footprint takes the union over all cuts.  (A
            # single unbounded-MFFC sweep would be a valid superset, but
            # on deep circuits it links far more candidates than the cut
            # cones ever touch — measured: ~20% more conflict edges and
            # 50% more waves on layered-5k — so per-cut precision wins.)
            mffc.update(mffc_nodes(g, node, boundary=set(leaves)))
        if not cuts:
            stats.nodes_visited += 1
            return None
        return self._build_candidate(node, cuts, frozenset(mffc))

    def resnapshot(self, g: AIG, candidate: Candidate, stats) -> Candidate | None:
        cuts = []
        for cut_leaves, _old_interior in candidate.payload:
            if any(g.is_dead(leaf) for leaf in cut_leaves):
                stats.n_stale_cuts += 1
                continue
            interior = _cut_interior(g, candidate.node, set(cut_leaves))
            if interior is None:
                stats.n_stale_cuts += 1
                continue
            cuts.append((cut_leaves, interior))
        if not cuts:
            # Every cut went stale: the node is visited but nothing is
            # tried, exactly like the sequential sweep's all-stale case.
            stats.nodes_visited += 1
            return None
        interior_union = frozenset().union(*(interior for _, interior in cuts))
        # Conservative mffc = interior bound, as in the refactor refresh:
        # any cut-bounded MFFC is a subset of its cut's interior and the
        # commit-time gain check recomputes the exact set anyway.
        return self._build_candidate(candidate.node, cuts, interior_union)

    def evaluate(self, g: AIG, items: list, stats) -> list:
        cones = []
        spans = []
        for _i, candidate in items:
            cuts = candidate.payload
            spans.append(len(cuts))
            for cut_leaves, interior in cuts:
                cones.append((candidate.node, cut_leaves, interior))
        t0 = time.perf_counter()
        tts = batch_cone_truths(g, cones)
        stats.time_truth += time.perf_counter() - t0

        owner = self.cache._owner()
        misses0 = owner.misses_library
        t0 = time.perf_counter()
        results = []
        pos = 0
        for (_i, candidate), span in zip(items, spans):
            scored = []
            for (cut_leaves, _interior), tt in zip(
                candidate.payload, tts[pos : pos + span]
            ):
                stats.cuts_formed += 1  # sequential ``cuts_tried``
                entry, transform = evaluate_cut(
                    tt, len(cut_leaves), self.library, cache=self.cache
                )
                scored.append((list(cut_leaves), entry, transform))
            pos += span
            results.append(scored)
        stats.time_resynth += time.perf_counter() - t0
        stats.n_tasks += len(cones)
        stats.n_unique_tasks += owner.misses_library - misses0
        return results

    def commit(self, g: AIG, candidate: Candidate, result, stats, dirty: set) -> None:
        stats.nodes_visited += 1
        gain = commit_scored(
            g,
            candidate.node,
            result,
            self.library,
            self.params,
            self.required,
            dirty=dirty,
        )
        if gain is None:
            stats.fail_gain += 1
            return
        stats.commits += 1
        stats.gain_total += gain

    def finish(self, stats) -> None:
        stats.n_library_hits = self.cache._owner().hits_library - self._hits_library0


def _cut_interior(g: AIG, root: int, cut: set[int]) -> frozenset | None:
    """Cone interior of ``root`` over ``cut`` (root included), or ``None``.

    ``None`` means the cut no longer covers the cone on the current
    graph: the walk escaped to a PI/constant/dead node outside the cut —
    the "uncovered cone" staleness the sequential sweep detects via
    :class:`repro.errors.TruthTableError` and skips.
    """
    interior: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in cut or node in interior:
            continue
        if not g.is_and(node):  # PI, constant, or dead: the cut is stale
            return None
        f0, f1 = g.fanin_lits(node)
        interior.add(node)
        stack.append(f0 >> 1)
        stack.append(f1 >> 1)
    return frozenset(interior)
