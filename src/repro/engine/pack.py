"""Packed wave payloads for the shared-memory resynthesis transport.

The parallel executor used to pickle every ``(truth table, leaf count)``
task into each chunk message — a big-int per candidate, re-serialized on
every dispatch.  Here a whole wave is packed **once** into two flat
arrays (:class:`PackedTasks`), copied into one
``multiprocessing.shared_memory`` segment (:class:`WaveSegment`), and
chunk messages shrink to ``(segment descriptor, start, stop)`` ranges:
workers attach the segment read-only, slice their range, and rebuild the
exact Python ints.

Array layout (all little-endian, fixed by the descriptor):

* ``n_leaves`` — ``(n_tasks,)`` uint8, the leaf count of each task;
* ``words`` — ``(n_tasks, n_words)`` uint64, each row the task's truth
  table packed at the batch-wide width ``n_words =
  words_per_table(max leaf count)`` (bit ``i`` of table ``t`` lives at
  ``words[t, i >> 6] >> (i & 63)``, matching :mod:`repro.tt.truth`).

Inside a segment the uint8 array comes first, padded to 8 bytes, then
the word matrix.  Lifecycle: the parent creates and owns the segment for
exactly one dispatch, workers ``attach``/``close`` per chunk, and the
parent unlinks in a ``finally`` — crash paths included — so no ``/dev/shm``
entry outlives its wave.  See ``docs/engine.md`` ("Packed wave
payloads") for the transport-selection rules and fallback behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory


def share_resource_tracker() -> None:
    """Start the resource tracker now, so forked children inherit it.

    Attaching a segment registers it with the attaching process's
    tracker (Python < 3.13 has no ``track=False``).  If the tracker
    first starts inside a forked worker, that private tracker never sees
    the parent's unlink and reports every wave segment as leaked at
    shutdown.  Starting it before the pool forks gives all processes the
    *same* tracker, where duplicate registrations collapse and the
    owner's unlink retires the name for everyone.
    """
    resource_tracker.ensure_running()

import numpy as np

from ..errors import ReproError
from ..tt.truth import pack_tts


def _align8(n: int) -> int:
    return (n + 7) & ~7


@dataclass
class PackedTasks:
    """A wave of resynthesis tasks as flat arrays (see module docstring)."""

    words: np.ndarray  # (n_tasks, n_words) uint64
    n_leaves: np.ndarray  # (n_tasks,) uint8

    @classmethod
    def pack(cls, tasks: list[tuple[int, int]]) -> "PackedTasks":
        """Pack ``(tt, n_leaves)`` tasks at the batch-wide word width."""
        if not tasks:
            return cls(
                words=np.zeros((0, 1), dtype=np.uint64),
                n_leaves=np.zeros(0, dtype=np.uint8),
            )
        n_max = max(n for _tt, n in tasks)
        return cls(
            words=pack_tts([tt for tt, _n in tasks], n_max),
            n_leaves=np.array([n for _tt, n in tasks], dtype=np.uint8),
        )

    @property
    def n_tasks(self) -> int:
        return self.words.shape[0]

    @property
    def nbytes(self) -> int:
        """Payload bytes (the serialized size this wave ships once)."""
        return int(self.words.nbytes + self.n_leaves.nbytes)

    def tasks(self, start: int = 0, stop: int | None = None) -> list[tuple[int, int]]:
        """Rebuild ``(tt, n_leaves)`` tuples for a task range.

        The ints are exact reconstructions of what :meth:`pack` was
        given — the shared-memory round trip is bit-identical.
        """
        if stop is None:
            stop = self.n_tasks
        block = np.ascontiguousarray(self.words[start:stop], dtype="<u8")
        stride = block.shape[1] * 8
        raw = block.tobytes()
        counts = self.n_leaves[start:stop]
        return [
            (
                int.from_bytes(raw[i * stride : (i + 1) * stride], "little"),
                int(counts[i]),
            )
            for i in range(block.shape[0])
        ]


class WaveSegment:
    """One wave's :class:`PackedTasks` in a shared-memory segment.

    Created (and later unlinked) by the dispatching parent; workers
    :meth:`attach` by descriptor and must :meth:`close` before returning.
    Arrays handed out by :meth:`packed` are views into the mapping and
    die with it — slice/copy before closing (``PackedTasks.tasks`` does).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_tasks: int,
        n_words: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._n_tasks = n_tasks
        self._n_words = n_words
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, packed: PackedTasks) -> "WaveSegment":
        """Allocate a segment and copy ``packed`` into it (parent side)."""
        n_tasks, n_words = packed.words.shape
        offset = _align8(n_tasks)
        size = max(1, offset + n_tasks * n_words * 8)
        shm = shared_memory.SharedMemory(create=True, size=size)
        segment = cls(shm, n_tasks, n_words, owner=True)
        leaves_view, words_view = segment._views()
        leaves_view[:] = packed.n_leaves
        words_view[:] = packed.words
        return segment

    @classmethod
    def attach(cls, descriptor: tuple[str, int, int]) -> "WaveSegment":
        """Map an existing segment from its descriptor (worker side)."""
        name, n_tasks, n_words = descriptor
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, n_tasks, n_words, owner=False)

    def descriptor(self) -> tuple[str, int, int]:
        """Picklable handle: ``(name, n_tasks, n_words)``."""
        return (self._shm.name, self._n_tasks, self._n_words)

    def packed(self) -> PackedTasks:
        """Zero-copy :class:`PackedTasks` views over the mapping."""
        leaves_view, words_view = self._views()
        return PackedTasks(words=words_view, n_leaves=leaves_view)

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment; owner only, after :meth:`close`."""
        if not self._owner:
            raise ReproError("only the creating process may unlink a wave segment")
        self._shm.unlink()

    def _views(self) -> tuple[np.ndarray, np.ndarray]:
        offset = _align8(self._n_tasks)
        buf = self._shm.buf
        leaves = np.frombuffer(buf, dtype=np.uint8, count=self._n_tasks)
        words = np.frombuffer(
            buf, dtype="<u8", count=self._n_tasks * self._n_words, offset=offset
        ).reshape(self._n_tasks, self._n_words)
        return leaves, words


def unlink_by_name(name: str) -> bool:
    """Best-effort unlink of a segment by name (crash-sweep helper).

    The executor records every segment name it creates and normally
    retires them inside the dispatch ``finally``; this helper is the
    second line of defense — :meth:`ResynthExecutor.close` sweeps any
    name still registered after a failure path that never reached the
    ``finally`` (e.g. the parent interrupted mid-recovery).  Returns
    True when a live segment was actually unlinked.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - platform-specific attach errors
        return False
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        return False
    return True


def leaked_segments(prefix: str = "psm_") -> list[str]:
    """Names of live ``/dev/shm`` segments with the stdlib prefix.

    Test/diagnostic helper: a clean engine leaves zero of these behind
    after pool shutdown (snapshot before, compare after).
    """
    import os

    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(prefix))
    except OSError:  # pragma: no cover - non-Linux
        return []
