"""The conflict-aware batch scheduler (the engine's main loop).

One engine pass over a network runs in four phases:

1. **Snapshot sweep** — every live AND gets its reconvergence-driven cut,
   its cut-bounded MFFC and (when a classifier is deployed) its six ELF
   features, exactly once, on the unmodified graph.
2. **Conflict planning** — candidates whose commits could interfere are
   linked in a conflict graph (:mod:`repro.engine.conflict`) and greedily
   colored into conflict-free commit waves.
3. **Per wave** — features of the wave's members are stacked into one
   matrix and classified with a single fused inference (the paper's
   batching trick, applied per wave); survivors' truth tables are
   computed on the main graph; the wave's *unique* cut functions are
   resynthesized by the worker pool (:mod:`repro.engine.parallel`).
4. **Serial replay** — winning factored forms are gain-checked and
   committed one by one in ascending node order through the same
   ``commit_tree`` the sequential operator uses, so structural soundness
   and functional equivalence are inherited, not re-proven.

Snapshot data can go stale across waves (an earlier commit killed part
of a candidate's cone); such candidates fall back to the sequential
per-node path inline, which costs runtime but never quality — the same
staleness argument the paper makes for batched classification.

``workers <= 1`` bypasses all of the above and *delegates* to the
sequential operators, which makes the single-worker engine bit-identical
to ``refactor()`` / ``elf_refactor()`` by construction.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

from ..aig.graph import AIG
from ..aig.levels import RequiredLevels
from ..aig.mffc import mffc_nodes
from ..aig.simulate import cone_truth
from ..cuts.features import stack_features
from ..cuts.reconv import reconv_cut
from ..opt.refactor import (
    RefactorParams,
    RefactorStats,
    commit_tree,
    refactor,
    refactor_node,
)
from .conflict import Candidate, build_conflict_graph, color_waves
from .parallel import ResynthExecutor


@dataclass
class EngineParams:
    """Engine knobs on top of the base refactor parameters.

    ``workers = 0`` means auto (one worker per available core).

    ``executor`` plugs in an externally owned :class:`ResynthExecutor`
    so one worker pool can be shared across many engine passes — the
    serving layer runs every circuit of a shard through the same pool
    instead of forking a fresh one per pass.  An external executor
    overrides ``workers`` (the pool was sized at construction) and is
    left open when the pass finishes; its ``params`` are what pooled
    resynthesis uses, so keep them consistent with ``refactor``.
    """

    refactor: RefactorParams = field(default_factory=RefactorParams)
    workers: int = 0
    # Classification mode for the ``workers=1`` delegation to the
    # sequential ELF operator (wave mode always classifies batched, one
    # fused inference per wave); mirrors ``ElfParams.batched``.
    elf_batched: bool = True
    executor: "ResynthExecutor | None" = None

    def resolved_workers(self) -> int:
        if self.executor is not None:
            return self.executor.workers
        if self.workers > 0:
            return self.workers
        return os.cpu_count() or 1


@dataclass
class EngineStats(RefactorStats):
    """`RefactorStats` plus the engine's scheduling counters."""

    workers: int = 1
    delegated: bool = False  # ran the plain sequential operator
    n_candidates: int = 0
    n_conflict_edges: int = 0
    n_waves: int = 0
    n_stale: int = 0  # candidates replayed via the sequential fallback
    n_tasks: int = 0  # survivor resyntheses requested
    n_unique_tasks: int = 0  # after per-pass (tt, leaves) dedup
    time_snapshot: float = 0.0
    time_conflict: float = 0.0
    time_parallel: float = 0.0  # wall time inside the worker pool
    time_replay: float = 0.0

    @property
    def dedup_rate(self) -> float:
        """Fraction of resynthesis tasks eliminated by wave-level dedup."""
        if self.n_tasks == 0:
            return 0.0
        return 1.0 - self.n_unique_tasks / self.n_tasks


def engine_refactor(
    g: AIG,
    params: EngineParams | None = None,
    classifier=None,
) -> EngineStats:
    """One conflict-wave refactor pass over ``g`` in place.

    With ``classifier`` the engine is the parallel deployment of ELF
    (each wave is classified with one fused inference); without it, the
    engine parallelizes the plain refactor operator.
    """
    params = params or EngineParams()
    workers = params.resolved_workers()
    if workers <= 1:
        return _delegate_sequential(g, params, classifier)
    return _wave_refactor(g, params, classifier, workers)


def _delegate_sequential(g: AIG, params: EngineParams, classifier) -> EngineStats:
    """Deterministic in-process mode: run the sequential operator as-is."""
    if classifier is None:
        base = refactor(g, params.refactor)
    else:
        from ..elf.operator import ElfParams, elf_refactor

        base = elf_refactor(
            g,
            classifier,
            ElfParams(refactor=params.refactor, batched=params.elf_batched),
        )
    stats = EngineStats(workers=1, delegated=True)
    for f in dataclasses.fields(RefactorStats):
        setattr(stats, f.name, getattr(base, f.name))
    stats.n_candidates = base.nodes_visited
    stats.n_waves = 1 if base.nodes_visited else 0
    return stats


def _wave_refactor(
    g: AIG,
    params: EngineParams,
    classifier,
    workers: int,
) -> EngineStats:
    stats = EngineStats(workers=workers)
    start = time.perf_counter()
    rparams = params.refactor
    required = RequiredLevels(g) if rparams.preserve_levels else None
    want_features = classifier is not None

    # Phase 1: snapshot sweep (cuts, features, MFFCs on the intact graph).
    t0 = time.perf_counter()
    candidates: list[Candidate] = []
    n_trivial = 0
    for node in g.and_ids():
        cut = reconv_cut(g, node, rparams.max_leaves, collect_features=want_features)
        if cut.n_leaves < 2:
            n_trivial += 1
            continue
        mffc = frozenset(mffc_nodes(g, node, boundary=set(cut.leaves)))
        candidates.append(
            Candidate(
                node=node,
                leaves=tuple(cut.leaves),
                interior=frozenset(cut.interior),
                mffc=mffc,
                features=cut.features,
            )
        )
    stats.time_snapshot = time.perf_counter() - t0
    stats.time_cut += stats.time_snapshot
    # Degenerate cuts mirror the sequential accounting (visited, formed,
    # failed) without entering the wave machinery.
    stats.nodes_visited += n_trivial
    stats.cuts_formed += n_trivial
    stats.fail_trivial += n_trivial
    stats.n_candidates = len(candidates)

    # Phase 2: conflict planning.
    t0 = time.perf_counter()
    adjacency, n_edges = build_conflict_graph(candidates)
    waves = color_waves(adjacency)
    stats.n_conflict_edges = n_edges
    stats.n_waves = len(waves)
    stats.time_conflict = time.perf_counter() - t0

    # Phases 3+4, wave by wave.  An external executor (serving layer)
    # outlives this pass; an owned one is torn down with it.
    cache: dict = {}
    executor = params.executor
    own_executor = executor is None
    if own_executor:
        executor = ResynthExecutor(workers, rparams)
    try:
        for wave in waves:
            _run_wave(
                g,
                [candidates[i] for i in wave],
                classifier,
                rparams,
                required,
                cache,
                executor,
                stats,
            )
    finally:
        if own_executor:
            executor.close()
    stats.time_total = time.perf_counter() - start
    return stats


def _cone_alive(g: AIG, candidate: Candidate) -> bool:
    """Is the snapshot cut still structurally intact?

    Any graph edit that could change the candidate's local function kills
    a node of its cone (fanouts of a replaced node are only rewired where
    the replaced node — by the cut closure property a cone member — dies),
    so liveness of root, interior and leaves certifies the precomputed
    truth table and factored form.
    """
    if g.is_dead(candidate.node):
        return False
    for node in candidate.interior:
        if g.is_dead(node):
            return False
    for node in candidate.leaves:
        if g.is_dead(node):
            return False
    return True


def _run_wave(
    g: AIG,
    members: list[Candidate],
    classifier,
    rparams: RefactorParams,
    required: RequiredLevels | None,
    cache: dict,
    executor: ResynthExecutor,
    stats: EngineStats,
) -> None:
    # Partition the wave into candidates whose snapshot survived earlier
    # waves and stale ones (replayed via the sequential fallback below).
    valid: list[Candidate] = []
    stale: list[Candidate] = []
    for candidate in members:
        if g.is_dead(candidate.node):
            continue  # committed away entirely; the sequential sweep skips these too
        if _cone_alive(g, candidate):
            valid.append(candidate)
        else:
            stale.append(candidate)

    # One fused classification per wave over the stacked feature matrix.
    pruned: set[int] = set()
    if classifier is not None and valid:
        t0 = time.perf_counter()
        matrix = stack_features([c.features for c in valid])
        keep = classifier.keep_mask(matrix)
        stats.time_inference += time.perf_counter() - t0
        pruned = {c.node for c, k in zip(valid, keep) if not k}

    # Truth tables of the surviving candidates, then one pool dispatch for
    # the wave's unique cut functions.
    survivors: list[tuple[Candidate, int]] = []
    t0 = time.perf_counter()
    for candidate in valid:
        if candidate.node in pruned:
            continue
        survivors.append(
            (candidate, cone_truth(g, candidate.node, list(candidate.leaves)))
        )
    stats.time_truth += time.perf_counter() - t0

    todo: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for candidate, tt in survivors:
        key = (tt, len(candidate.leaves))
        if key not in cache and key not in seen:
            seen.add(key)
            todo.append(key)
    stats.n_tasks += len(survivors)
    stats.n_unique_tasks += len(todo)
    if todo:
        pooled = executor.will_pool(len(todo))
        t0 = time.perf_counter()
        for key, entry in zip(todo, executor.run(todo)):
            cache[key] = entry
        elapsed = time.perf_counter() - t0
        if pooled:
            stats.time_parallel += elapsed
        stats.time_resynth += elapsed

    # Serial replay in ascending node order: commit survivors with their
    # precomputed forms, re-attempt stale members from scratch.
    t0 = time.perf_counter()
    precomputed = {c.node: tt for c, tt in survivors}
    for candidate in sorted(valid + stale, key=lambda c: c.node):
        node = candidate.node
        if g.is_dead(node):
            continue
        if node in pruned:
            stats.nodes_visited += 1
            stats.pruned += 1
            continue
        stats.nodes_visited += 1
        if node in precomputed and _cone_alive(g, candidate):
            tt = precomputed[node]
            entry = cache[(tt, len(candidate.leaves))]
            stats.cuts_formed += 1
            commit_tree(
                g,
                node,
                list(candidate.leaves),
                rparams,
                required,
                stats,
                lambda entry=entry: entry,
            )
        else:
            # Stale snapshot (or killed by a rare intra-wave strash
            # cascade): fall back to the sequential per-node path.
            stats.n_stale += 1
            cut_t0 = time.perf_counter()
            cut = reconv_cut(g, node, rparams.max_leaves, collect_features=False)
            stats.time_cut += time.perf_counter() - cut_t0
            stats.cuts_formed += 1
            refactor_node(g, node, cut, rparams, required, stats, cache=cache)
    stats.time_replay += time.perf_counter() - t0
