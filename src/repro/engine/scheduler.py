"""The conflict-aware wave scheduler (the engine's operator-agnostic core).

One engine pass over a network runs in four phases, none of which knows
which operator it is running — everything operator-specific sits behind
the :class:`repro.engine.operators.WaveOperator` protocol (``snapshot`` /
``evaluate`` / ``commit`` plus lifecycle glue):

1. **Snapshot sweep** — every live AND is offered to the operator's
   ``snapshot`` hook exactly once, on the unmodified graph; refactor
   returns its reconvergence cut + cut-bounded MFFC (+ ELF features),
   rewrite its 4-feasible cut set with a union footprint.
2. **Conflict planning** — candidates whose commits could interfere are
   linked in a conflict graph (:mod:`repro.engine.conflict`) and greedily
   colored into conflict-free commit waves; the same sweep builds the
   inverted candidate index the incremental machinery runs on.
3. **Per wave** — members with features are stacked and classified with
   a single fused inference (the paper's batching trick, applied per
   wave); survivors are handed to the operator's ``evaluate`` hook as
   one batch (refactor: multi-root truth kernel + pooled resynthesis
   through the cross-pass NPN-aware cache; rewrite: multi-root truth
   kernel + cached NPN-library lookups); results are gain-checked and
   committed serially in ascending node order through the operator's
   ``commit`` hook — the same commit code the sequential operators use.
4. **Incremental re-snapshot** — each commit drains the graph's dirty
   journal; the killed set, pushed through the candidate index, yields
   the exact set of candidates whose snapshots the commit invalidated
   (O(damage), no per-candidate liveness probing).  An invalidated
   candidate scheduled in a later wave keeps its slot and is refreshed
   lazily (operator ``resnapshot`` hook) when that wave starts; an
   invalidated member of the *running* wave is deferred at replay and
   lands in a **repair wave** that runs immediately after — the wave
   effectively splits at the first realized conflict, keeping the
   global commit order close to the sequential sweep's node order.
   There is no sequential fallback: ``n_stale`` is structurally zero,
   and every node — fresh or refreshed — flows through the same batched
   classify/evaluate pipeline.

``workers <= 1`` bypasses all of the above and *delegates* to the
sequential operators, which makes the single-worker engine bit-identical
to ``refactor()`` / ``elf_refactor()`` / ``rewrite()`` by construction.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from .. import obs
from ..aig.graph import AIG
from ..cuts.features import stack_features
from ..errors import DeadlineExceeded
from ..opt.refactor import (
    RefactorParams,
    RefactorStats,
    refactor,
)
from ..opt.rewrite import RewriteParams, RewriteStats, rewrite
from ..resilience import Deadline, policy
from .cache import ResynthCache
from .conflict import Candidate, CandidateIndex, build_conflict_graph, color_waves
from .operators import RefactorWaveOp, RewriteWaveOp, WaveOperator
from .parallel import ResynthExecutor


@dataclass
class EngineParams:
    """Engine knobs on top of the base refactor parameters.

    ``workers = 0`` means auto (one worker per available core).

    ``executor`` plugs in an externally owned :class:`ResynthExecutor`
    so one worker pool can be shared across many engine passes — the
    serving layer runs every circuit of a shard through the same pool
    instead of forking a fresh one per pass.  An external executor
    overrides ``workers`` (the pool was sized at construction) and is
    left open when the pass finishes; its ``params`` are what pooled
    resynthesis uses, so keep them consistent with ``refactor``.

    ``resynth_cache`` plugs in an externally owned
    :class:`repro.engine.cache.ResynthCache` so factored forms survive
    across passes — ``run_flow`` hands every refactor-family step of one
    script the same cache, which is what makes the second ``elf`` of an
    ``elf; elf`` flow start warm.  Wave mode reads it through its NPN
    view; the ``workers=1`` delegation passes it to the sequential
    operator as an exact-only cache (bit-identical entries).
    """

    refactor: RefactorParams = field(default_factory=RefactorParams)
    workers: int = 0
    # Classification mode for the ``workers=1`` delegation to the
    # sequential ELF operator (wave mode always classifies batched, one
    # fused inference per wave); mirrors ``ElfParams.batched``.
    elf_batched: bool = True
    executor: "ResynthExecutor | None" = None
    resynth_cache: "ResynthCache | None" = None
    # Task transport of a pass-owned executor: "auto" | "shm" | "pickle"
    # (see ResynthExecutor; an external ``executor`` keeps its own).
    transport: str = "auto"
    # Latency budget for this pass: checked at wave boundaries and bound
    # onto every pooled chunk wait; expiry raises DeadlineExceeded with
    # the graph left at a consistent committed prefix (commits are
    # serial, so there is no torn state to roll back).
    deadline: "Deadline | None" = None

    def resolved_workers(self) -> int:
        if self.executor is not None:
            return self.executor.workers
        if self.workers > 0:
            return self.workers
        return os.cpu_count() or 1


@dataclass
class RewriteEngineParams:
    """Engine knobs for the wave-rewrite pass (``prw`` / ``prwz``).

    ``workers`` selects the mode exactly like :class:`EngineParams`:
    ``<= 1`` delegates to the sequential :func:`repro.opt.rewrite.rewrite`
    (bit-identical by construction), ``>= 2`` runs the wave pipeline, and
    ``0`` means auto.  ``executor`` is accepted for server-hook symmetry
    with the refactor engine — a shared executor's width sizes the pass
    (the pool was provisioned for the whole served flow) — but rewrite
    evaluation never dispatches to it: NPN-library lookups are memoized
    dict probes, far below process-dispatch cost.

    ``resynth_cache`` shares the flow-level cache's *library layer*
    (:meth:`repro.engine.cache.ResynthCache.library_lookup`), so every
    rewrite step of one script canonizes each distinct cut function
    once.  ``library`` pins the NPN library (default: the process-wide
    shared instance).
    """

    rewrite: RewriteParams = field(default_factory=RewriteParams)
    workers: int = 0
    executor: "ResynthExecutor | None" = None
    resynth_cache: "ResynthCache | None" = None
    library: object | None = None
    # Same wave-boundary latency budget as EngineParams.deadline.
    deadline: "Deadline | None" = None

    def resolved_workers(self) -> int:
        if self.executor is not None:
            return self.executor.workers
        if self.workers > 0:
            return self.workers
        return os.cpu_count() or 1


@dataclass
class EngineStats(RefactorStats):
    """`RefactorStats` plus the engine's scheduling counters.

    One stats type serves every wave operator; ``operator`` records which
    one ran.  For rewrite runs the inherited counters are mapped from
    :class:`repro.opt.rewrite.RewriteStats`: ``cuts_formed`` counts
    evaluated cuts (sequential ``cuts_tried``), ``fail_gain`` counts
    nodes where no cut committed, and ``n_stale_cuts`` / ``n_library_hits``
    are rewrite-specific (zero for refactor runs).
    """

    operator: str = "refactor"
    workers: int = 1
    delegated: bool = False  # ran the plain sequential operator
    n_candidates: int = 0
    n_conflict_edges: int = 0
    n_waves: int = 0  # waves actually executed (incl. re-snapshot waves)
    # Retained for report compatibility; structurally zero since the
    # sequential fallback was replaced by incremental re-snapshot.
    n_stale: int = 0
    # Candidates newly marked stale; re-hits while already stale are not
    # double-counted (one refresh repairs them all the same).
    n_invalidated: int = 0
    n_resnapshotted: int = 0  # lazy cut/feature refreshes performed
    n_repair_waves: int = 0  # wave splits: repair rounds after deferrals
    n_tasks: int = 0  # survivor evaluations requested
    n_unique_tasks: int = 0  # after wave dedup + cross-pass cache hits
    n_cache_hits: int = 0  # exact resynthesis cache hits this pass
    n_npn_hits: int = 0  # NPN-class remap hits this pass
    n_library_hits: int = 0  # rewrite-library layer hits this pass
    n_stale_cuts: int = 0  # rewrite cuts dropped as stale (dead/uncovered)
    time_snapshot: float = 0.0
    time_conflict: float = 0.0
    time_parallel: float = 0.0  # wall time inside the worker pool
    time_replay: float = 0.0
    time_resnapshot: float = 0.0  # cross-wave re-snapshot + requeue time

    @property
    def dedup_rate(self) -> float:
        """Fraction of evaluation tasks eliminated by dedup + caching."""
        if self.n_tasks == 0:
            return 0.0
        return 1.0 - self.n_unique_tasks / self.n_tasks

    @property
    def resnapshot_rate(self) -> float:
        """Fraction of candidates that needed a cross-wave re-snapshot."""
        if self.n_candidates == 0:
            return 0.0
        return self.n_resnapshotted / self.n_candidates


def engine_refactor(
    g: AIG,
    params: EngineParams | None = None,
    classifier=None,
) -> EngineStats:
    """One conflict-wave refactor pass over ``g`` in place.

    With ``classifier`` the engine is the parallel deployment of ELF
    (each wave is classified with one fused inference); without it, the
    engine parallelizes the plain refactor operator.
    """
    params = params or EngineParams()
    workers = params.resolved_workers()
    if workers <= 1:
        # The sequential delegation has no wave boundaries to check at;
        # an already-expired budget still refuses to start the pass.
        if params.deadline is not None:
            params.deadline.check("engine.pass")
        with obs.span("engine.pass", operator="refactor", workers=1, delegated=True):
            stats = _delegate_sequential(g, params, classifier)
        _record_pass_metrics(stats)
        return stats

    stats = EngineStats(workers=workers)
    base_cache = params.resynth_cache
    if base_cache is None:
        base_cache = ResynthCache()
    executor = params.executor
    own_executor = executor is None
    if own_executor:
        executor = ResynthExecutor(workers, params.refactor, transport=params.transport)
    op = RefactorWaveOp(
        params.refactor,
        base_cache.npn_view(),
        executor,
        want_features=classifier is not None,
    )
    try:
        run_wave_pass(g, op, stats, classifier=classifier, deadline=params.deadline)
    finally:
        if own_executor:
            executor.close()
    return stats


def engine_rewrite(
    g: AIG,
    params: RewriteEngineParams | None = None,
) -> EngineStats:
    """One conflict-wave rewrite pass over ``g`` in place.

    The same scheduler as :func:`engine_refactor`, driving the
    :class:`repro.engine.operators.RewriteWaveOp` adapter; ``workers <= 1``
    delegates to the sequential :func:`repro.opt.rewrite.rewrite`
    bit-identically.
    """
    from ..opt.npn_library import default_library

    params = params or RewriteEngineParams()
    workers = params.resolved_workers()
    if workers <= 1:
        if params.deadline is not None:
            params.deadline.check("engine.pass")
        with obs.span("engine.pass", operator="rewrite", workers=1, delegated=True):
            stats = _delegate_sequential_rewrite(g, params)
        _record_pass_metrics(stats)
        return stats

    stats = EngineStats(workers=workers, operator="rewrite")
    base_cache = params.resynth_cache
    if base_cache is None:
        base_cache = ResynthCache()
    library = params.library
    if library is None:  # NB: a fresh library is empty and therefore falsy
        library = default_library()
    op = RewriteWaveOp(params.rewrite, base_cache, library)
    run_wave_pass(g, op, stats, classifier=None, deadline=params.deadline)
    return stats


def _delegate_sequential(g: AIG, params: EngineParams, classifier) -> EngineStats:
    """Deterministic in-process mode: run the sequential operator as-is.

    A shared ``resynth_cache`` is passed through as an exact-only cache:
    entries are pure functions of ``(tt, n_leaves)``, so warm starts stay
    bit-identical to a cold sequential run.
    """
    cache = params.resynth_cache
    if classifier is None:
        base = refactor(g, params.refactor, cache=cache)
    else:
        from ..elf.operator import ElfParams, elf_refactor

        base = elf_refactor(
            g,
            classifier,
            ElfParams(refactor=params.refactor, batched=params.elf_batched),
            cache=cache,
        )
    stats = EngineStats(workers=1, delegated=True)
    for f in dataclasses.fields(RefactorStats):
        setattr(stats, f.name, getattr(base, f.name))
    stats.n_candidates = base.nodes_visited
    stats.n_waves = 1 if base.nodes_visited else 0
    return stats


def _delegate_sequential_rewrite(g: AIG, params: RewriteEngineParams) -> EngineStats:
    """``workers <= 1`` rewrite mode: run ``rewrite()`` itself, bit for bit,
    then map its counters onto the engine's stats shape."""
    base: RewriteStats = rewrite(g, params.rewrite, library=params.library)
    stats = EngineStats(workers=1, delegated=True, operator="rewrite")
    stats.nodes_visited = base.nodes_visited
    stats.cuts_formed = base.cuts_tried
    stats.commits = base.commits
    stats.gain_total = base.gain_total
    stats.n_stale_cuts = base.stale_cuts
    stats.time_total = base.time_total
    stats.n_candidates = base.nodes_visited
    stats.n_waves = 1 if base.nodes_visited else 0
    return stats


def run_wave_pass(
    g: AIG,
    op: WaveOperator,
    stats: EngineStats,
    classifier=None,
    deadline: "Deadline | None" = None,
) -> EngineStats:
    """Run one generic wave pass of ``op`` over ``g`` in place.

    The scheduler owns everything operator-agnostic — candidate
    bookkeeping, conflict planning, wave coloring, fused classification
    (when ``classifier`` is given and the operator snapshots features),
    invalidation and repair waves — and calls the operator's hooks for
    the rest.  ``stats`` is the caller-constructed :class:`EngineStats`
    (mutated in place and returned).

    ``deadline`` bounds the pass: it is checked before every wave (and
    repair round), handed to the operator (``op.deadline``) so pooled
    evaluation bounds its chunk waits, and expiry raises
    :class:`repro.errors.DeadlineExceeded` **after** the operator's
    ``finish`` hook and the pass metrics run — commits are serial, so
    the graph is always a consistent, CEC-verifiable prefix of the full
    pass at that point (counted ``engine_deadline_exceeded_total``).

    Every phase is bracketed by a :mod:`repro.obs` span (one pass span,
    ``engine.snapshot`` / ``engine.conflict`` children, one
    ``engine.wave`` child per executed wave with per-phase grandchildren)
    and the stats timing fields read the span durations — with tracing
    enabled, a Chrome-trace timeline and the stats report can never
    disagree, because they are the same measurements.
    """
    op.deadline = deadline
    exceeded: DeadlineExceeded | None = None
    with obs.span(
        "engine.pass", operator=stats.operator, workers=stats.workers
    ) as pass_span:
        # Phase 1: pass-level prep + snapshot sweep on the intact graph.
        with obs.span("engine.snapshot") as snap_span:
            op.prepare(g, stats)
            candidates: list[Candidate] = []
            for node in g.iter_ands():
                candidate = op.snapshot(g, node, stats)
                if candidate is not None:
                    candidates.append(candidate)
            snap_span.set(n_candidates=len(candidates))
        stats.time_snapshot = snap_span.duration
        stats.time_cut += stats.time_snapshot
        stats.n_candidates = len(candidates)

        # Phase 2: conflict planning over the shared inverted index.
        with obs.span("engine.conflict") as conflict_span:
            index = CandidateIndex()
            for i, candidate in enumerate(candidates):
                index.add(i, candidate)
            adjacency, n_edges = build_conflict_graph(candidates, index)
            wave_queue = color_waves(adjacency)
            conflict_span.set(n_edges=n_edges, n_waves=len(wave_queue))
        stats.n_conflict_edges = n_edges
        stats.time_conflict = conflict_span.duration

        # Phases 3+4, wave by wave.  Snapshots describe the graph as of
        # now; discard older damage.
        g.drain_dirty()
        pending = set(range(len(candidates)))
        stale: set[int] = set()  # invalidated, not yet re-snapshotted
        try:
            for wave in wave_queue:
                members = [i for i in wave if i in pending]
                repair = False
                while members:
                    if deadline is not None:
                        deadline.check("engine.wave")
                    stats.n_waves += 1
                    if repair:
                        stats.n_repair_waves += 1
                    with obs.span(
                        "engine.wave",
                        wave=stats.n_waves - 1,
                        repair=repair,
                        members=len(members),
                    ) as wave_span:
                        deferred = _run_wave(
                            g,
                            op,
                            members,
                            candidates,
                            index,
                            classifier,
                            stats,
                            pending,
                            stale,
                        )
                        wave_span.set(deferred=len(deferred))
                    # Members invalidated mid-wave split off into a repair
                    # wave that runs immediately, preserving the sequential
                    # sweep's node-order locality.
                    members = sorted(i for i in deferred if i in pending)
                    repair = True
        except DeadlineExceeded as error:
            # Wave-boundary expiry, or a bounded chunk wait inside the
            # executor.  Evaluation runs before any of its wave's commits
            # and commits are serial, so the graph holds exactly the
            # waves committed so far — finish the pass bookkeeping, then
            # re-raise below (outside the spans) for the caller.
            exceeded = error
        op.finish(stats)
        pass_span.set(
            n_candidates=stats.n_candidates,
            n_waves=stats.n_waves,
            n_invalidated=stats.n_invalidated,
            n_resnapshotted=stats.n_resnapshotted,
            n_repair_waves=stats.n_repair_waves,
            n_cache_hits=stats.n_cache_hits,
            n_npn_hits=stats.n_npn_hits,
            n_library_hits=stats.n_library_hits,
            dedup_rate=round(stats.dedup_rate, 6),
            commits=stats.commits,
        )
    stats.time_total = pass_span.duration
    _record_pass_metrics(stats)
    if exceeded is not None:
        policy.record_deadline("engine")
        raise exceeded
    return stats


def _record_pass_metrics(stats: EngineStats) -> None:
    """Fold one finished pass into the process metrics registry.

    The registry is always on (cheap, per-pass granularity); tracing
    spans are the opt-in part.  These counters are what the Prometheus
    and JSONL exports surface, and what benchmarks read instead of
    hand-rolled timers.
    """
    m = obs.metrics()
    op = stats.operator
    m.counter("engine_passes_total", operator=op).add(1)
    m.counter("engine_waves_total", operator=op).add(stats.n_waves)
    m.counter("engine_commits_total", operator=op).add(stats.commits)
    m.counter("engine_tasks_total", operator=op).add(stats.n_tasks)
    m.counter("engine_unique_tasks_total", operator=op).add(stats.n_unique_tasks)
    m.counter("engine_invalidated_total", operator=op).add(stats.n_invalidated)
    m.counter("engine_resnapshotted_total", operator=op).add(stats.n_resnapshotted)
    m.counter("engine_repair_waves_total", operator=op).add(stats.n_repair_waves)
    m.counter("engine_cache_hits_total", operator=op, layer="exact").add(stats.n_cache_hits)
    m.counter("engine_cache_hits_total", operator=op, layer="npn").add(stats.n_npn_hits)
    m.counter("engine_cache_hits_total", operator=op, layer="library").add(
        stats.n_library_hits
    )
    m.histogram(
        "engine_pass_seconds", operator=op, workers=str(stats.workers)
    ).observe(stats.time_total)


def _refresh_members(
    g: AIG,
    op: WaveOperator,
    member_indices: list[int],
    candidates: list[Candidate],
    index: CandidateIndex,
    stats: EngineStats,
    pending: set[int],
    stale: set[int],
) -> list[tuple[int, Candidate]]:
    """Lazily re-snapshot the stale members of a wave about to run.

    Invalidated candidates keep their wave slot; the refresh — the
    operator's ``resnapshot`` hook, on the graph every earlier commit
    already shaped — happens exactly once per wave arrival.  Dead roots
    are dropped (the commit cascade consumed them; the sequential sweep
    skips those too), and roots the operator declines to re-snapshot
    (collapsed cuts, all-stale cut sets) are accounted by the hook and
    dropped as well.
    """
    refreshed: list[tuple[int, Candidate]] = []
    with obs.span("engine.resnapshot") as sp:
        n_refreshed = 0
        for i in member_indices:
            if i not in stale:
                refreshed.append((i, candidates[i]))
                continue
            stale.discard(i)
            if g.is_dead(candidates[i].node):
                pending.discard(i)
                continue
            fresh = op.resnapshot(g, candidates[i], stats)
            if fresh is None:
                pending.discard(i)
                continue
            candidates[i] = fresh
            index.add(i, fresh)
            stats.n_resnapshotted += 1
            n_refreshed += 1
            refreshed.append((i, fresh))
        sp.set(refreshed=n_refreshed)
    stats.time_resnapshot += sp.duration
    return refreshed


def _run_wave(
    g: AIG,
    op: WaveOperator,
    member_indices: list[int],
    candidates: list[Candidate],
    index: CandidateIndex,
    classifier,
    stats: EngineStats,
    pending: set[int],
    stale: set[int],
) -> set[int]:
    """Classify, batch-evaluate and commit one wave through the operator.

    Stale members are re-snapshotted up front, so the operator's batch
    evaluation only ever sees snapshots that describe the current graph.
    Returns the indices deferred mid-wave (an earlier commit of this
    same wave dirtied their cone); the caller runs them as a repair wave
    next.
    """
    members = _refresh_members(
        g, op, member_indices, candidates, index, stats, pending, stale
    )

    # One fused classification per wave over the stacked feature matrix.
    survivors: list[tuple[int, Candidate]] = []
    if classifier is not None and op.wants_features:
        if not members:
            return set()
        with obs.span("engine.classify", members=len(members)) as sp:
            matrix = stack_features([c.features for _, c in members])
            keep = classifier.keep_mask(matrix)
        stats.time_inference += sp.duration
        for (i, candidate), keep_one in zip(members, keep):
            if keep_one:
                survivors.append((i, candidate))
            else:
                stats.nodes_visited += 1
                stats.pruned += 1
                pending.discard(i)
    else:
        survivors = members

    # The operator's batchable middle: truth kernels, cache lookups,
    # pooled resynthesis — whatever the operator fuses per wave.
    with obs.span("engine.evaluate", survivors=len(survivors)):
        results = op.evaluate(g, survivors, stats)

    # Serial replay in ascending node order.  Each commit drains the
    # dirty journal and pushes the killed set through the candidate
    # index: invalidated candidates anywhere in the schedule are marked
    # stale (their wave refreshes them lazily on arrival), and
    # invalidated members of *this* wave are additionally deferred so
    # the caller can split them off into an immediate repair wave.
    with obs.span("engine.commit") as commit_span:
        replay = sorted(zip(survivors, results), key=lambda item: item[0][1].node)
        unprocessed = {i for i, _ in survivors}
        deferred: set[int] = set()
        for (i, candidate), result in replay:
            unprocessed.discard(i)
            if i in deferred:
                continue  # stays pending; the repair wave re-snapshots it
            if g.is_dead(candidate.node):  # pragma: no cover - journal catches this first
                deferred.add(i)
                stale.add(i)
                continue
            commit_dirty: set[int] = set()
            op.commit(g, candidate, result, stats, commit_dirty)
            pending.discard(i)
            if commit_dirty:
                invalidated = index.invalidated(commit_dirty, pending)
                stats.n_invalidated += len(invalidated - stale)
                stale |= invalidated
                deferred |= invalidated & unprocessed
        commit_span.set(replayed=len(replay), deferred=len(deferred))
    stats.time_replay += commit_span.duration
    return deferred
