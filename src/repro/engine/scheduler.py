"""The conflict-aware batch scheduler (the engine's main loop).

One engine pass over a network runs in four phases:

1. **Snapshot sweep** — every live AND gets its reconvergence-driven cut,
   its cut-bounded MFFC and (when a classifier is deployed) its six ELF
   features, exactly once, on the unmodified graph.
2. **Conflict planning** — candidates whose commits could interfere are
   linked in a conflict graph (:mod:`repro.engine.conflict`) and greedily
   colored into conflict-free commit waves; the same sweep builds the
   inverted candidate index the incremental machinery runs on.
3. **Per wave** — features of the wave's members are stacked into one
   matrix and classified with a single fused inference (the paper's
   batching trick, applied per wave); survivors' truth tables are
   computed by the multi-root batch kernel
   (:func:`repro.aig.simulate.batch_cone_truths`); the wave's *unique,
   uncached* cut functions are resynthesized by the worker pool
   (:mod:`repro.engine.parallel`) through the cross-pass NPN-aware cache
   (:mod:`repro.engine.cache`); winning forms are gain-checked and
   committed serially in ascending node order through the same
   ``commit_tree`` the sequential operator uses.
4. **Incremental re-snapshot** — each commit drains the graph's dirty
   journal; the killed set, pushed through the candidate index, yields
   the exact set of candidates whose snapshots the commit invalidated
   (O(damage), no per-candidate liveness probing).  An invalidated
   candidate scheduled in a later wave keeps its slot and is re-cut
   lazily when that wave starts (so each wave arrival pays exactly one
   refresh); an invalidated member of the *running* wave is deferred at
   replay and lands in a **repair wave** that runs immediately after —
   the wave effectively splits at the first realized conflict, keeping
   the global commit order close to the sequential sweep's node order.
   There is no sequential fallback: ``n_stale`` is structurally zero,
   and every node — fresh or refreshed — flows through the same batched
   classify/truth/resynth pipeline.

``workers <= 1`` bypasses all of the above and *delegates* to the
sequential operators, which makes the single-worker engine bit-identical
to ``refactor()`` / ``elf_refactor()`` by construction.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

from ..aig.graph import AIG
from ..aig.levels import RequiredLevels
from ..aig.mffc import mffc_nodes
from ..aig.simulate import batch_cone_truths
from ..cuts.features import stack_features
from ..cuts.reconv import reconv_cut
from ..opt.refactor import (
    RefactorParams,
    RefactorStats,
    commit_tree,
    refactor,
)
from .cache import ResynthCache
from .conflict import Candidate, CandidateIndex, build_conflict_graph, color_waves
from .parallel import ResynthExecutor


@dataclass
class EngineParams:
    """Engine knobs on top of the base refactor parameters.

    ``workers = 0`` means auto (one worker per available core).

    ``executor`` plugs in an externally owned :class:`ResynthExecutor`
    so one worker pool can be shared across many engine passes — the
    serving layer runs every circuit of a shard through the same pool
    instead of forking a fresh one per pass.  An external executor
    overrides ``workers`` (the pool was sized at construction) and is
    left open when the pass finishes; its ``params`` are what pooled
    resynthesis uses, so keep them consistent with ``refactor``.

    ``resynth_cache`` plugs in an externally owned
    :class:`repro.engine.cache.ResynthCache` so factored forms survive
    across passes — ``run_flow`` hands every refactor-family step of one
    script the same cache, which is what makes the second ``elf`` of an
    ``elf; elf`` flow start warm.  Wave mode reads it through its NPN
    view; the ``workers=1`` delegation passes it to the sequential
    operator as an exact-only cache (bit-identical entries).
    """

    refactor: RefactorParams = field(default_factory=RefactorParams)
    workers: int = 0
    # Classification mode for the ``workers=1`` delegation to the
    # sequential ELF operator (wave mode always classifies batched, one
    # fused inference per wave); mirrors ``ElfParams.batched``.
    elf_batched: bool = True
    executor: "ResynthExecutor | None" = None
    resynth_cache: "ResynthCache | None" = None

    def resolved_workers(self) -> int:
        if self.executor is not None:
            return self.executor.workers
        if self.workers > 0:
            return self.workers
        return os.cpu_count() or 1


@dataclass
class EngineStats(RefactorStats):
    """`RefactorStats` plus the engine's scheduling counters."""

    workers: int = 1
    delegated: bool = False  # ran the plain sequential operator
    n_candidates: int = 0
    n_conflict_edges: int = 0
    n_waves: int = 0  # waves actually executed (incl. re-snapshot waves)
    # Retained for report compatibility; structurally zero since the
    # sequential fallback was replaced by incremental re-snapshot.
    n_stale: int = 0
    # Candidates newly marked stale; re-hits while already stale are not
    # double-counted (one refresh repairs them all the same).
    n_invalidated: int = 0
    n_resnapshotted: int = 0  # lazy cut/feature refreshes performed
    n_repair_waves: int = 0  # wave splits: repair rounds after deferrals
    n_tasks: int = 0  # survivor resyntheses requested
    n_unique_tasks: int = 0  # after wave dedup + cross-pass/NPN cache hits
    n_cache_hits: int = 0  # exact resynthesis cache hits this pass
    n_npn_hits: int = 0  # NPN-class remap hits this pass
    time_snapshot: float = 0.0
    time_conflict: float = 0.0
    time_parallel: float = 0.0  # wall time inside the worker pool
    time_replay: float = 0.0
    time_resnapshot: float = 0.0  # cross-wave re-snapshot + requeue time

    @property
    def dedup_rate(self) -> float:
        """Fraction of resynthesis tasks eliminated by dedup + caching."""
        if self.n_tasks == 0:
            return 0.0
        return 1.0 - self.n_unique_tasks / self.n_tasks

    @property
    def resnapshot_rate(self) -> float:
        """Fraction of candidates that needed a cross-wave re-snapshot."""
        if self.n_candidates == 0:
            return 0.0
        return self.n_resnapshotted / self.n_candidates


def engine_refactor(
    g: AIG,
    params: EngineParams | None = None,
    classifier=None,
) -> EngineStats:
    """One conflict-wave refactor pass over ``g`` in place.

    With ``classifier`` the engine is the parallel deployment of ELF
    (each wave is classified with one fused inference); without it, the
    engine parallelizes the plain refactor operator.
    """
    params = params or EngineParams()
    workers = params.resolved_workers()
    if workers <= 1:
        return _delegate_sequential(g, params, classifier)
    return _wave_refactor(g, params, classifier, workers)


def _delegate_sequential(g: AIG, params: EngineParams, classifier) -> EngineStats:
    """Deterministic in-process mode: run the sequential operator as-is.

    A shared ``resynth_cache`` is passed through as an exact-only cache:
    entries are pure functions of ``(tt, n_leaves)``, so warm starts stay
    bit-identical to a cold sequential run.
    """
    cache = params.resynth_cache
    if classifier is None:
        base = refactor(g, params.refactor, cache=cache)
    else:
        from ..elf.operator import ElfParams, elf_refactor

        base = elf_refactor(
            g,
            classifier,
            ElfParams(refactor=params.refactor, batched=params.elf_batched),
            cache=cache,
        )
    stats = EngineStats(workers=1, delegated=True)
    for f in dataclasses.fields(RefactorStats):
        setattr(stats, f.name, getattr(base, f.name))
    stats.n_candidates = base.nodes_visited
    stats.n_waves = 1 if base.nodes_visited else 0
    return stats


def _wave_refactor(
    g: AIG,
    params: EngineParams,
    classifier,
    workers: int,
) -> EngineStats:
    stats = EngineStats(workers=workers)
    start = time.perf_counter()
    rparams = params.refactor
    required = RequiredLevels(g) if rparams.preserve_levels else None
    want_features = classifier is not None

    # Phase 1: snapshot sweep (cuts, features, MFFCs on the intact graph).
    t0 = time.perf_counter()
    candidates: list[Candidate] = []
    n_trivial = 0
    max_leaves = rparams.max_leaves
    for node in g.iter_ands():
        cut = reconv_cut(g, node, max_leaves, collect_features=want_features)
        if cut.n_leaves < 2:
            n_trivial += 1
            continue
        mffc = frozenset(mffc_nodes(g, node, boundary=set(cut.leaves)))
        candidates.append(
            Candidate(
                node=node,
                leaves=tuple(cut.leaves),
                interior=frozenset(cut.interior),
                mffc=mffc,
                features=cut.features,
            )
        )
    stats.time_snapshot = time.perf_counter() - t0
    stats.time_cut += stats.time_snapshot
    # Degenerate cuts mirror the sequential accounting (visited, formed,
    # failed) without entering the wave machinery.
    stats.nodes_visited += n_trivial
    stats.cuts_formed += n_trivial
    stats.fail_trivial += n_trivial
    stats.n_candidates = len(candidates)

    # Phase 2: conflict planning over the shared inverted index.
    t0 = time.perf_counter()
    index = CandidateIndex()
    for i, candidate in enumerate(candidates):
        index.add(i, candidate)
    adjacency, n_edges = build_conflict_graph(candidates, index)
    wave_queue = color_waves(adjacency)
    stats.n_conflict_edges = n_edges
    stats.time_conflict = time.perf_counter() - t0

    # Phases 3+4, wave by wave.  An external executor (serving layer)
    # outlives this pass; an owned one is torn down with it.  Same for
    # the resynthesis cache (flow layer), read through its NPN view.
    base_cache = params.resynth_cache
    if base_cache is None:
        base_cache = ResynthCache()
    cache = base_cache.npn_view()
    owner = cache._owner()
    hits_exact0, hits_npn0 = owner.hits_exact, owner.hits_npn
    executor = params.executor
    own_executor = executor is None
    if own_executor:
        executor = ResynthExecutor(workers, rparams)
    # Snapshots describe the graph as of now; discard older damage.
    g.drain_dirty()
    pending = set(range(len(candidates)))
    stale: set[int] = set()  # invalidated, not yet re-snapshotted
    try:
        for wave in wave_queue:
            members = [i for i in wave if i in pending]
            repair = False
            while members:
                stats.n_waves += 1
                if repair:
                    stats.n_repair_waves += 1
                deferred = _run_wave(
                    g,
                    members,
                    candidates,
                    index,
                    classifier,
                    rparams,
                    required,
                    cache,
                    executor,
                    stats,
                    pending,
                    stale,
                    want_features,
                )
                # Members invalidated mid-wave split off into a repair
                # wave that runs immediately, preserving the sequential
                # sweep's node-order locality.
                members = sorted(i for i in deferred if i in pending)
                repair = True
    finally:
        if own_executor:
            executor.close()
    stats.n_cache_hits = owner.hits_exact - hits_exact0
    stats.n_npn_hits = owner.hits_npn - hits_npn0
    stats.time_total = time.perf_counter() - start
    return stats


def _refresh_members(
    g: AIG,
    member_indices: list[int],
    candidates: list[Candidate],
    index: CandidateIndex,
    rparams: RefactorParams,
    want_features: bool,
    stats: EngineStats,
    pending: set[int],
    stale: set[int],
) -> list[tuple[int, Candidate]]:
    """Lazily re-snapshot the stale members of a wave about to run.

    Invalidated candidates keep their wave slot; the refresh — a fresh
    reconvergence cut, features when a classifier runs, and the
    conservative ``mffc = interior`` bound (the cut-bounded MFFC is a
    subset of the interior, and the commit-time gain check recomputes
    the exact value anyway) — happens exactly once per wave arrival, on
    the graph every earlier commit already shaped.  Dead roots are
    dropped (the commit cascade consumed them; the sequential sweep
    skips those too) and re-cut cones that collapsed below two leaves
    are accounted like the snapshot phase accounts degenerate cuts.
    """
    refreshed: list[tuple[int, Candidate]] = []
    t0 = time.perf_counter()
    for i in member_indices:
        if i not in stale:
            refreshed.append((i, candidates[i]))
            continue
        stale.discard(i)
        node = candidates[i].node
        if g.is_dead(node):
            pending.discard(i)
            continue
        cut = reconv_cut(g, node, rparams.max_leaves, collect_features=want_features)
        if cut.n_leaves < 2:
            stats.nodes_visited += 1
            stats.cuts_formed += 1
            stats.fail_trivial += 1
            pending.discard(i)
            continue
        interior = frozenset(cut.interior)
        fresh = Candidate(
            node=node,
            leaves=tuple(cut.leaves),
            interior=interior,
            mffc=interior,
            features=cut.features,
        )
        candidates[i] = fresh
        index.add(i, fresh)
        stats.n_resnapshotted += 1
        refreshed.append((i, fresh))
    stats.time_resnapshot += time.perf_counter() - t0
    return refreshed


def _run_wave(
    g: AIG,
    member_indices: list[int],
    candidates: list[Candidate],
    index: CandidateIndex,
    classifier,
    rparams: RefactorParams,
    required: RequiredLevels | None,
    cache: ResynthCache,
    executor: ResynthExecutor,
    stats: EngineStats,
    pending: set[int],
    stale: set[int],
    want_features: bool,
) -> set[int]:
    """Classify, batch-evaluate, resynthesize and commit one wave.

    Stale members are re-snapshotted up front, so the batch kernels only
    ever see cuts that describe the current graph.  Returns the indices
    deferred mid-wave (an earlier commit of this same wave dirtied their
    cone); the caller runs them as a repair wave next.
    """
    members = _refresh_members(
        g,
        member_indices,
        candidates,
        index,
        rparams,
        want_features,
        stats,
        pending,
        stale,
    )

    # One fused classification per wave over the stacked feature matrix.
    survivors: list[tuple[int, Candidate]] = []
    if classifier is not None:
        if not members:
            return set()
        t0 = time.perf_counter()
        matrix = stack_features([c.features for _, c in members])
        keep = classifier.keep_mask(matrix)
        stats.time_inference += time.perf_counter() - t0
        for (i, candidate), keep_one in zip(members, keep):
            if keep_one:
                survivors.append((i, candidate))
            else:
                stats.nodes_visited += 1
                stats.pruned += 1
                pending.discard(i)
    else:
        survivors = members

    # Truth tables of all surviving cones in one batched kernel call.
    t0 = time.perf_counter()
    tts = batch_cone_truths(
        g, [(c.node, c.leaves, c.interior) for _, c in survivors]
    )
    stats.time_truth += time.perf_counter() - t0

    # Resolve each unique cut function through the cross-pass cache; only
    # true misses are shipped to the worker pool.
    entries: dict[tuple[int, int], tuple | None] = {}
    todo: list[tuple[int, int]] = []
    for (_i, candidate), tt in zip(survivors, tts):
        key = (tt, len(candidate.leaves))
        if key in entries:
            continue
        hit = cache.get(key)
        entries[key] = hit
        if hit is None:
            todo.append(key)
    stats.n_tasks += len(survivors)
    stats.n_unique_tasks += len(todo)
    if todo:
        pooled = executor.will_pool(len(todo))
        t0 = time.perf_counter()
        for key, entry in zip(todo, executor.run(todo)):
            cache[key] = entry
            entries[key] = entry
        elapsed = time.perf_counter() - t0
        if pooled:
            stats.time_parallel += elapsed
        stats.time_resynth += elapsed

    # Serial replay in ascending node order.  Each commit drains the
    # dirty journal and pushes the killed set through the candidate
    # index: invalidated candidates anywhere in the schedule are marked
    # stale (their wave re-cuts them lazily on arrival), and invalidated
    # members of *this* wave are additionally deferred so the caller can
    # split them off into an immediate repair wave.
    t0 = time.perf_counter()
    replay = sorted(zip(survivors, tts), key=lambda item: item[0][1].node)
    unprocessed = {i for i, _ in survivors}
    deferred: set[int] = set()
    for (i, candidate), tt in replay:
        unprocessed.discard(i)
        if i in deferred:
            continue  # stays pending; the repair wave re-snapshots it
        node = candidate.node
        if g.is_dead(node):  # pragma: no cover - journal catches this first
            deferred.add(i)
            stale.add(i)
            continue
        stats.nodes_visited += 1
        stats.cuts_formed += 1
        entry = entries[(tt, len(candidate.leaves))]
        commit_dirty: set[int] = set()
        commit_tree(
            g,
            node,
            list(candidate.leaves),
            rparams,
            required,
            stats,
            lambda entry=entry: entry,
            dirty=commit_dirty,
        )
        pending.discard(i)
        if commit_dirty:
            invalidated = index.invalidated(commit_dirty, pending)
            stats.n_invalidated += len(invalidated - stale)
            stale |= invalidated
            deferred |= invalidated & unprocessed
    stats.time_replay += time.perf_counter() - t0
    return deferred

