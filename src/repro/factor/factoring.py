"""Algebraic factoring of SOPs into factored-form trees.

``factor`` implements the classic GFACTOR scheme (SIS / De Micheli
Alg. 8.3.1) with the quick divisor: find a level-0 kernel D, divide
F = Q*D + R, recurse.  ``good_factor`` swaps in the best kernel by
literal savings.  The result is always checked cheaper-or-equal to the
flat SOP form, falling back to the flat form otherwise (ABC's
``Dec_Factor`` has the same guarantee).
"""

from __future__ import annotations

from ..errors import FactoringError
from ..tt.sop import (
    check_sop,
    cube_lits,
    sop_literal_frequencies,
    sop_make_cube_free,
    sop_tt,
)
from .divisor import (
    divide_by_literal,
    kernels,
    most_frequent_literal,
    quick_divisor,
    weak_div,
)
from .tree import FactorTree


def factor(cubes: list[int], n_vars: int | None = None, method: str = "quick") -> FactorTree:
    """Factor an SOP into a :class:`FactorTree`.

    ``method`` is ``"quick"`` (level-0 kernel divisor, the refactor
    default) or ``"good"`` (best kernel by literal savings).  ``n_vars``
    enables input validation when provided.
    """
    if n_vars is not None:
        check_sop(cubes, n_vars)
    if method == "quick":
        divisor_fn = quick_divisor
    elif method == "good":
        divisor_fn = _best_kernel
    else:
        raise FactoringError(f"unknown factoring method {method!r}")
    if not cubes:
        return FactorTree.const0()
    if cubes == [0]:
        return FactorTree.const1()
    tree = _gfactor(cubes, divisor_fn)
    # The flat SOP tree has exactly one literal per cube literal; only
    # materialize it when it actually wins (it rarely does).
    flat_cost = sum(c.bit_count() for c in cubes)
    return tree if tree.n_literals() <= flat_cost else FactorTree.from_sop(cubes)


def _gfactor(cubes: list[int], divisor_fn) -> FactorTree:
    if len(cubes) == 1:
        return FactorTree.from_cube(cubes[0])
    # Pull out the largest common cube first: F = C * F'.
    common, cube_free = sop_make_cube_free(cubes)
    if common:
        inner = _gfactor(cube_free, divisor_fn) if cube_free else FactorTree.const1()
        return FactorTree.and_([FactorTree.from_cube(common), inner])
    divisor = divisor_fn(cubes)
    if divisor is None:
        return FactorTree.from_sop(cubes)
    quotient, _remainder = weak_div(cubes, divisor)
    if not quotient:
        return FactorTree.from_sop(cubes)
    if len(quotient) == 1:
        return _literal_factor(cubes, quotient[0], divisor_fn)
    _q_common, quotient_free = sop_make_cube_free(quotient)
    if not quotient_free:
        return FactorTree.from_sop(cubes)
    # Re-divide by the cube-free quotient.
    new_divisor, remainder = weak_div(cubes, quotient_free)
    if not new_divisor:
        return FactorTree.from_sop(cubes)
    d_common, _d_free = sop_make_cube_free(new_divisor)
    if d_common == 0:
        q_tree = _gfactor(quotient_free, divisor_fn)
        d_tree = _gfactor(new_divisor, divisor_fn)
        product = FactorTree.and_([d_tree, q_tree])
        if not remainder:
            return product
        r_tree = _gfactor(remainder, divisor_fn)
        return FactorTree.or_([product, r_tree])
    return _literal_factor(cubes, d_common, divisor_fn)


def _literal_factor(cubes: list[int], cube: int, divisor_fn) -> FactorTree:
    """LF: factor out the best single literal of ``cube``."""
    lit = _best_literal(cubes, cube)
    if lit < 0:
        return FactorTree.from_sop(cubes)
    quotient, remainder = divide_by_literal(cubes, lit)
    lit_tree = FactorTree.lit(lit >> 1, bool(lit & 1))
    q_tree = (
        _gfactor(quotient, divisor_fn) if quotient else FactorTree.const1()
    )
    product = FactorTree.and_([lit_tree, q_tree])
    if not remainder:
        return product
    r_tree = _gfactor(remainder, divisor_fn)
    return FactorTree.or_([product, r_tree])


def _best_literal(cubes: list[int], cube: int) -> int:
    """Literal of ``cube`` appearing in the most cubes of the SOP."""
    if cube == 0:
        lit, count = most_frequent_literal(cubes)
        return lit if count else -1
    freq = sop_literal_frequencies(cubes)
    best_lit, best_count = -1, 0
    for lit in cube_lits(cube):
        count = freq.get(lit, 0)
        if count > best_count:
            best_lit, best_count = lit, count
    return best_lit


def _best_kernel(cubes: list[int]) -> list[int] | None:
    """Divisor choice for ``good_factor``: kernel maximizing literal savings."""
    if len(cubes) <= 1:
        return None
    _lit, count = most_frequent_literal(cubes)
    if count < 2:
        return None
    best, best_score = None, -1
    for kernel, _co in kernels(cubes):
        if len(kernel) < 2 or kernel == sorted(cubes):
            continue
        quotient, remainder = weak_div(cubes, kernel)
        if not quotient:
            continue
        original = sum(len(cube_lits(c)) for c in cubes)
        new_cost = (
            sum(len(cube_lits(c)) for c in kernel)
            + sum(len(cube_lits(c)) for c in quotient)
            + sum(len(cube_lits(c)) for c in remainder)
        )
        score = original - new_cost
        if score > best_score:
            best, best_score = kernel, score
    if best is None:
        return quick_divisor(cubes)
    return best


def good_factor(cubes: list[int], n_vars: int | None = None) -> FactorTree:
    """Convenience wrapper for the kernel-searching variant."""
    return factor(cubes, n_vars, method="good")


def factored_literal_count(cubes: list[int]) -> int:
    """Literal count of the quick-factored form (a common cost metric)."""
    return factor(cubes).n_literals()


def verify_factoring(cubes: list[int], tree: FactorTree, n_vars: int) -> bool:
    """True when ``tree`` computes exactly the SOP's function."""
    return tree.eval_tt(n_vars) == sop_tt(cubes, n_vars)
