"""Algebraic division and divisor extraction for SOP factoring.

Implements the classic SIS machinery: weak (algebraic) division, the
quick divisor (one level-0 kernel), and full kernel enumeration.  Cubes
use the bitmask encoding of :mod:`repro.tt.sop`.
"""

from __future__ import annotations

from ..tt.sop import (
    cube_lits,
    sop_literal_frequencies,
    sop_make_cube_free,
)


def divide_by_literal(cubes: list[int], lit: int) -> tuple[list[int], list[int]]:
    """``(quotient, remainder)`` of division by a single literal index."""
    bit = 1 << lit
    quotient = [c & ~bit for c in cubes if c & bit]
    remainder = [c for c in cubes if not c & bit]
    return quotient, remainder


def divide_by_cube(cubes: list[int], cube: int) -> tuple[list[int], list[int]]:
    """``(quotient, remainder)`` of division by one cube."""
    quotient = [c & ~cube for c in cubes if c & cube == cube]
    remainder = [c for c in cubes if c & cube != cube]
    return quotient, remainder


def weak_div(cubes: list[int], divisor: list[int]) -> tuple[list[int], list[int]]:
    """Weak (algebraic) division ``F = Q * D + R``.

    ``Q`` is the largest cube set with ``Q x D`` contained in ``F`` (as an
    algebraic, non-redundant product); ``R`` collects the unused cubes.
    """
    if not divisor:
        return [], list(cubes)
    if len(divisor) == 1:
        return divide_by_cube(cubes, divisor[0])
    quotient_sets: list[set[int]] = []
    for d in divisor:
        quotient_sets.append({c & ~d for c in cubes if c & d == d})
    common = set.intersection(*quotient_sets)
    quotient = sorted(common)
    product = {q | d for q in quotient for d in divisor}
    remainder = [c for c in cubes if c not in product]
    return quotient, remainder


def most_frequent_literal(cubes: list[int]) -> tuple[int, int]:
    """``(literal index, count)`` of the most frequent literal (ties: lowest
    index); ``(-1, 0)`` for an empty or literal-free SOP."""
    freq = sop_literal_frequencies(cubes)
    best_lit, best_count = -1, 0
    # Single unsorted sweep; the tie rule (max count, then lowest index)
    # is enforced directly instead of via a sorted ascending scan.
    for lit, count in freq.items():
        if count > best_count or (count == best_count and lit < best_lit):
            best_lit, best_count = lit, count
    return best_lit, best_count


def quick_divisor(cubes: list[int]) -> list[int] | None:
    """One level-0 kernel of the SOP, or None when none exists.

    Repeatedly divides by the most frequent literal (making the quotient
    cube-free) until no literal appears twice — the standard
    ``QUICK_DIVISOR`` of SIS.
    """
    if len(cubes) <= 1:
        return None
    # The first loop iteration sees ``kernel == cubes``, so the entry
    # check doubles as its frequency scan — one pass, not two.
    lit, count = most_frequent_literal(cubes)
    if count < 2:
        return None
    kernel = list(cubes)
    while count >= 2:
        kernel, _remainder = divide_by_literal(kernel, lit)
        _common, kernel = sop_make_cube_free(kernel)
        lit, count = most_frequent_literal(kernel)
    if not kernel or kernel == list(cubes):
        return None
    return kernel


def kernels(cubes: list[int], min_index: int = 0) -> list[tuple[list[int], int]]:
    """All kernels of the SOP with their co-kernels.

    Returns ``[(kernel, co_kernel_cube), ...]``; the SOP itself is included
    (with co-kernel 1) when it is cube-free.  Standard recursive KERNELS
    procedure; exponential in the worst case, so reserved for analysis and
    the good-factor variant on small SOPs.
    """
    _common, cube_free = sop_make_cube_free(list(cubes))
    results: list[tuple[list[int], int]] = []
    seen: set[tuple[int, ...]] = set()

    def recurse(sop: list[int], start_lit: int, co_kernel: int) -> None:
        key = tuple(sorted(sop))
        if key in seen:
            return
        seen.add(key)
        results.append((sop, co_kernel))
        freq = sop_literal_frequencies(sop)
        for lit in sorted(freq):
            if lit < start_lit or freq[lit] < 2:
                continue
            quotient, _r = divide_by_literal(sop, lit)
            common, quotient_free = sop_make_cube_free(quotient)
            new_co = co_kernel | (1 << lit) | common
            recurse(quotient_free, lit + 1, new_co)

    if cube_free:
        recurse(cube_free, 0, 0)
    return results
