"""Factored-form trees (the analogue of ABC's ``Dec_Graph``).

A factored form is an AND/OR tree over literals, e.g.
``(a + !b)(c + d) + e``.  The refactor operator derives one from the
cut's ISOP, counts how many fresh AIG nodes it would need, and commits it
when that beats the size of the cone it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce

from ..errors import FactoringError
from ..tt.sop import cube_lits, lit_negative, lit_var
from ..aig.simulate import full_mask, var_mask

KIND_LIT = "lit"
KIND_AND = "and"
KIND_OR = "or"
KIND_CONST0 = "const0"
KIND_CONST1 = "const1"

# Shared immutable instances: literal nodes by (var, negative), and the
# AND tree of each cube bitmask (cubes repeat heavily across the SOPs of
# one circuit).  Both caches only ever hold frozen trees, so sharing is
# invisible except in construction cost; the cube cache is capped like
# the ISOP memo (cleared, not LRU).
_LIT_CACHE: dict[tuple[int, bool], "FactorTree"] = {}
_CUBE_CACHE: dict[int, "FactorTree"] = {}
_CUBE_CACHE_LIMIT = 1 << 16


@dataclass(frozen=True)
class FactorTree:
    """Immutable factored-form node."""

    kind: str
    var: int = -1
    negative: bool = False
    children: tuple["FactorTree", ...] = field(default_factory=tuple)
    # Lazily-computed literal count (-1 = not yet computed); excluded
    # from equality/hash/repr so the dataclass semantics are unchanged.
    _n_lits: int = field(default=-1, compare=False, repr=False)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def lit(var: int, negative: bool = False) -> "FactorTree":
        # Literal nodes are immutable and drawn from a tiny domain
        # (cut variables x two phases), so the instances are shared:
        # factoring builds tens of thousands per pass.
        key = (var, negative)
        node = _LIT_CACHE.get(key)
        if node is None:
            node = FactorTree(KIND_LIT, var=var, negative=negative)
            _LIT_CACHE[key] = node
        return node

    @staticmethod
    def const0() -> "FactorTree":
        return FactorTree(KIND_CONST0)

    @staticmethod
    def const1() -> "FactorTree":
        return FactorTree(KIND_CONST1)

    @staticmethod
    def and_(children: list["FactorTree"]) -> "FactorTree":
        flat = _flatten(KIND_AND, children)
        if not flat:
            return FactorTree.const1()
        if len(flat) == 1:
            return flat[0]
        return FactorTree(KIND_AND, children=tuple(flat))

    @staticmethod
    def or_(children: list["FactorTree"]) -> "FactorTree":
        flat = _flatten(KIND_OR, children)
        if not flat:
            return FactorTree.const0()
        if len(flat) == 1:
            return flat[0]
        return FactorTree(KIND_OR, children=tuple(flat))

    @staticmethod
    def from_cube(cube: int) -> "FactorTree":
        """AND of the cube's literals (empty cube = const 1)."""
        tree = _CUBE_CACHE.get(cube)
        if tree is None:
            lits = [
                FactorTree.lit(lit_var(i), lit_negative(i)) for i in cube_lits(cube)
            ]
            tree = FactorTree.and_(lits)
            if len(_CUBE_CACHE) >= _CUBE_CACHE_LIMIT:  # pragma: no cover - cap
                _CUBE_CACHE.clear()
            _CUBE_CACHE[cube] = tree
        return tree

    @staticmethod
    def from_sop(cubes: list[int]) -> "FactorTree":
        """OR of cube trees (the unfactored flat form)."""
        return FactorTree.or_([FactorTree.from_cube(c) for c in cubes])

    # -- queries ---------------------------------------------------------

    def n_literals(self) -> int:
        """Number of literal leaves in the tree (the factoring cost metric).

        Cached on first call: trees are immutable and heavily shared (see
        the literal/cube caches above), and factoring compares literal
        counts after every division step.
        """
        n = self._n_lits
        if n < 0:
            if self.kind == KIND_LIT:
                n = 1
            elif self.kind in (KIND_CONST0, KIND_CONST1):
                n = 0
            else:
                n = sum(child.n_literals() for child in self.children)
            object.__setattr__(self, "_n_lits", n)
        return n

    def support(self) -> set[int]:
        if self.kind == KIND_LIT:
            return {self.var}
        return set().union(*(c.support() for c in self.children)) if self.children else set()

    def eval_tt(self, n_vars: int) -> int:
        """Truth table of the tree over ``n_vars`` variables."""
        ones = full_mask(n_vars)
        if self.kind == KIND_CONST0:
            return 0
        if self.kind == KIND_CONST1:
            return ones
        if self.kind == KIND_LIT:
            mask = var_mask(self.var, n_vars)
            return (~mask & ones) if self.negative else mask
        child_tts = [c.eval_tt(n_vars) for c in self.children]
        if self.kind == KIND_AND:
            return reduce(lambda a, b: a & b, child_tts, ones)
        if self.kind == KIND_OR:
            return reduce(lambda a, b: a | b, child_tts, 0)
        raise FactoringError(f"unknown tree kind {self.kind!r}")  # pragma: no cover

    def to_string(self, names: list[str] | None = None) -> str:
        if self.kind == KIND_CONST0:
            return "0"
        if self.kind == KIND_CONST1:
            return "1"
        if self.kind == KIND_LIT:
            name = (
                names[self.var]
                if names is not None
                else (chr(ord("a") + self.var) if self.var < 26 else f"x{self.var}")
            )
            return ("!" + name) if self.negative else name
        parts = [c.to_string(names) for c in self.children]
        if self.kind == KIND_AND:
            return "".join(
                p if c.kind in (KIND_LIT, KIND_AND) else f"({p})"
                for p, c in zip(parts, self.children)
            )
        return " + ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.to_string()


def _flatten(kind: str, children: list[FactorTree]) -> list[FactorTree]:
    """Merge nested same-kind nodes and drop neutral constants."""
    neutral = KIND_CONST1 if kind == KIND_AND else KIND_CONST0
    absorbing = KIND_CONST0 if kind == KIND_AND else KIND_CONST1
    flat: list[FactorTree] = []
    for child in children:
        if child.kind == absorbing:
            return [FactorTree.const0() if kind == KIND_AND else FactorTree.const1()]
        if child.kind == neutral:
            continue
        if child.kind == kind:
            flat.extend(child.children)
        else:
            flat.append(child)
    return flat
