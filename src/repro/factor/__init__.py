"""Algebraic factoring: division, kernels, GFACTOR, and tree-to-AIG
materialization with strash-aware node counting."""

from .divisor import (
    divide_by_cube,
    divide_by_literal,
    kernels,
    most_frequent_literal,
    quick_divisor,
    weak_div,
)
from .factoring import (
    factor,
    factored_literal_count,
    good_factor,
    verify_factoring,
)
from .to_aig import CountResult, build_tree, count_tree
from .tree import FactorTree

__all__ = [
    "CountResult",
    "FactorTree",
    "build_tree",
    "count_tree",
    "divide_by_cube",
    "divide_by_literal",
    "factor",
    "factored_literal_count",
    "good_factor",
    "kernels",
    "most_frequent_literal",
    "quick_divisor",
    "verify_factoring",
    "weak_div",
]
