"""Evaluating and materializing factored forms inside an AIG.

Two phases, mirroring ABC's refactoring engine:

* :func:`count_tree` — a *dry run* that walks the factored form bottom-up,
  probing the structural hash table: subfunctions that already exist in
  the network (outside the MFFC being replaced, which is about to die)
  are free; everything else costs one fresh AND node.  Counting aborts as
  soon as the cost exceeds the allowed budget (``nodes saved``), exactly
  like ``Dec_GraphToNetworkCount``.

* :func:`build_tree` — actually creates the nodes.  Reuse is permissive
  here (a reused MFFC node simply survives, cancelling one saved against
  one added) with a single exception: if a lookup resolves to the *root
  being replaced*, committing would create a combinational cycle, so the
  build is aborted and partially created nodes are garbage collected.

Both phases build balanced AND/OR trees (children combined
cheapest-level-first) so committed logic stays shallow.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..aig.graph import AIG, _simplify_and
from ..aig.literal import CONST0, CONST1, lit_node, make_lit
from ..errors import FactoringError
from .tree import KIND_AND, KIND_CONST0, KIND_CONST1, KIND_LIT, KIND_OR, FactorTree

# Descriptors: ints. >= 0 is a real literal of the graph; < 0 encodes a
# *virtual* (not yet created) node: virtual node k in phase c is -(2k+c+1).


def _virtual_lit(index: int, compl: int) -> int:
    return -(2 * index + compl + 1)


def _virtual_index(descriptor: int) -> int:
    return (-descriptor - 1) >> 1


def _descriptor_not(descriptor: int) -> int:
    if descriptor >= 0:
        return descriptor ^ 1
    return -((-descriptor - 1) ^ 1) - 1


class _Exceeded(Exception):
    """Internal: cost budget exceeded during the dry run."""


@dataclass(frozen=True)
class CountResult:
    """Outcome of a dry-run evaluation."""

    cost: int  # fresh AND nodes required
    root_level: int  # level the new root would have
    existing_lit: int | None  # set when the function already exists as a literal


def count_tree(
    g: AIG,
    tree: FactorTree,
    leaf_lits: list[int],
    forbidden: set[int],
    max_added: int,
) -> CountResult | None:
    """Dry-run cost of materializing ``tree`` on ``leaf_lits``.

    ``forbidden`` nodes (the MFFC about to be deleted) are not reusable.
    Returns None when more than ``max_added`` fresh nodes are needed.
    """
    walker = _TreeWalker(g, leaf_lits, forbidden, max_added)
    try:
        root = walker.eval(tree)
    except _Exceeded:
        return None
    return CountResult(
        cost=walker.cost,
        root_level=walker.level(root),
        existing_lit=root if root >= 0 else None,
    )


def build_tree(
    g: AIG,
    tree: FactorTree,
    leaf_lits: list[int],
    avoid_root: int,
) -> int | None:
    """Materialize ``tree``; returns the root literal.

    Aborts (returning None, graph restored) if any structural-hash lookup
    resolves to ``avoid_root`` — reusing the node being replaced would
    create a cycle once its fanouts are patched.
    """
    nodes_before = g.n_nodes
    builder = _TreeBuilder(g, leaf_lits, avoid_root)
    try:
        return builder.eval(tree)
    except _Poisoned:
        for node in range(g.n_nodes - 1, nodes_before - 1, -1):
            if not g.is_dead(node) and g.is_and(node) and g.n_refs(node) == 0:
                g._reap(node)
        return None


class _TreeWalker:
    """Shared bottom-up traversal; this variant only counts."""

    def __init__(
        self,
        g: AIG,
        leaf_lits: list[int],
        forbidden: set[int],
        max_added: int,
    ) -> None:
        self.g = g
        self.leaf_lits = leaf_lits
        self.forbidden = forbidden
        self.max_added = max_added
        self.cost = 0
        self._virtual_levels: list[int] = []
        self._virtual_strash: dict[tuple[int, int], int] = {}

    def level(self, descriptor: int) -> int:
        if descriptor >= 0:
            return self.g._level[descriptor >> 1]
        return self._virtual_levels[_virtual_index(descriptor)]

    def eval(self, tree: FactorTree) -> int:
        if tree.kind == KIND_CONST0:
            return CONST0
        if tree.kind == KIND_CONST1:
            return CONST1
        if tree.kind == KIND_LIT:
            if tree.var >= len(self.leaf_lits):
                raise FactoringError(
                    f"tree variable {tree.var} exceeds {len(self.leaf_lits)} leaves"
                )
            lit = self.leaf_lits[tree.var]
            return _descriptor_not(lit) if tree.negative else lit
        descriptors = [self.eval(child) for child in tree.children]
        if tree.kind == KIND_AND:
            return self._balanced(descriptors, invert=False)
        if tree.kind == KIND_OR:
            return self._balanced(
                [_descriptor_not(d) for d in descriptors], invert=True
            )
        raise FactoringError(f"unknown tree kind {tree.kind!r}")  # pragma: no cover

    def _balanced(self, descriptors: list[int], invert: bool) -> int:
        """AND the descriptors pairwise, cheapest levels first."""
        # Two-child nodes dominate factored forms; replicate the heap's
        # selection (level, then position) without building one.
        if len(descriptors) == 2:
            d0, d1 = descriptors
            if self.level(d0) <= self.level(d1):
                result = self._and(d0, d1)
            else:
                result = self._and(d1, d0)
            return _descriptor_not(result) if invert else result
        heap = [(self.level(d), i, d) for i, d in enumerate(descriptors)]
        heapq.heapify(heap)
        tiebreak = len(heap)
        while len(heap) > 1:
            _l0, _i0, a = heapq.heappop(heap)
            _l1, _i1, b = heapq.heappop(heap)
            combined = self._and(a, b)
            heapq.heappush(heap, (self.level(combined), tiebreak, combined))
            tiebreak += 1
        result = heap[0][2]
        return _descriptor_not(result) if invert else result

    def _and(self, a: int, b: int) -> int:
        if a >= 0 and b >= 0:
            simplified = _simplify_and(a, b)
            if simplified is not None:
                return simplified
            key = (a, b) if a < b else (b, a)
            hit = self.g._strash.get(key)
            if hit is not None and hit not in self.forbidden:
                return self._reuse(hit)
        else:
            if a == b:
                return a
            if a == _descriptor_not(b):
                return CONST0
            if CONST0 in (a, b):
                return CONST0
            if a == CONST1:
                return b
            if b == CONST1:
                return a
        key = (a, b) if a < b else (b, a)
        cached = self._virtual_strash.get(key)
        if cached is not None:
            return cached
        return self._fresh(a, b, key)

    def _reuse(self, node: int) -> int:
        return make_lit(node)

    def _fresh(self, a: int, b: int, key: tuple[int, int]) -> int:
        self.cost += 1
        if self.cost > self.max_added:
            raise _Exceeded()
        level = 1 + max(self.level(a), self.level(b))
        index = len(self._virtual_levels)
        self._virtual_levels.append(level)
        descriptor = _virtual_lit(index, 0)
        self._virtual_strash[key] = descriptor
        return descriptor


class _Poisoned(Exception):
    """Internal: the build tried to reuse the node being replaced."""


class _TreeBuilder(_TreeWalker):
    """Traversal variant that creates real nodes."""

    def __init__(self, g: AIG, leaf_lits: list[int], avoid_root: int) -> None:
        super().__init__(g, leaf_lits, forbidden=set(), max_added=1 << 30)
        self.avoid_root = avoid_root

    def _and(self, a: int, b: int) -> int:
        hit = self.g.lookup_and(a, b)
        if hit is not None and lit_node(hit) == self.avoid_root:
            raise _Poisoned()
        lit = self.g.add_and(a, b)
        if lit_node(lit) == self.avoid_root:  # pragma: no cover - guarded above
            raise _Poisoned()
        return lit
