"""Exception types shared across the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class AigError(ReproError):
    """Structural violation or misuse of an :class:`repro.aig.AIG`."""


class AigerFormatError(ReproError):
    """Malformed AIGER input."""


class BenchFormatError(ReproError):
    """Malformed BENCH input."""


class TruthTableError(ReproError):
    """Invalid truth-table operation (size mismatch, too many variables)."""


class FactoringError(ReproError):
    """Invalid SOP handed to the algebraic factoring engine."""


class TrainingError(ReproError):
    """ML training misconfiguration (shape mismatch, empty dataset)."""


class SatError(ReproError):
    """Malformed CNF or solver misuse."""
