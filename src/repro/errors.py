"""Exception types shared across the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class AigError(ReproError):
    """Structural violation or misuse of an :class:`repro.aig.AIG`."""


class AigerFormatError(ReproError):
    """Malformed AIGER input."""


class BenchFormatError(ReproError):
    """Malformed BENCH input."""


class TruthTableError(ReproError):
    """Invalid truth-table operation (size mismatch, too many variables)."""


class FactoringError(ReproError):
    """Invalid SOP handed to the algebraic factoring engine."""


class TrainingError(ReproError):
    """ML training misconfiguration (shape mismatch, empty dataset)."""


class SatError(ReproError):
    """Malformed CNF or solver misuse."""


class RetryableError(ReproError):
    """A failure the resilience layer may retry (transient by contract).

    Raising one of these tells the recovery machinery that repeating the
    operation — possibly after a backoff, a pool respawn, or a transport
    downgrade — is expected to succeed; see
    :mod:`repro.resilience.policy` for how retry budgets are spent.
    """


class FatalError(ReproError):
    """A failure no retry can fix (misconfiguration, corrupted state).

    The resilience layer never retries these: they propagate to the
    caller immediately, bypassing the degradation ladder.
    """


class WorkerCrashError(RetryableError):
    """A pool worker died (OOM/SIGKILL) or hung past its chunk deadline.

    Raised by :class:`repro.engine.parallel.ResynthExecutor` only after
    the retry budget is exhausted *and* in-process degradation is
    impossible; during recovery the crash is counted
    (``engine_worker_deaths_total``) and handled internally.
    """


class DeadlineExceeded(ReproError):
    """A latency budget (:class:`repro.resilience.Deadline`) expired.

    Carries the best consistent result committed before expiry: waves
    commit serially, so ``partial`` — when set by the flow layer — is a
    valid, CEC-verifiable AIG reflecting every completed commit, and
    ``report`` covers the flow steps that finished.  ``site`` names the
    checkpoint that observed the expiry (``"flow.command"``,
    ``"engine.wave"``, ``"executor.chunk"``, ...).
    """

    def __init__(self, message: str = "deadline exceeded", site: str = "",
                 partial=None, report=None) -> None:
        super().__init__(message)
        self.site = site
        self.partial = partial  # best valid AIG committed so far (or None)
        self.report = report  # FlowReport of the completed prefix (or None)
