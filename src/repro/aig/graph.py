"""The And-Inverter Graph (AIG) data structure.

This mirrors the core of ABC's strashed AIG network:

* nodes are two-input AND gates, primary inputs, or the constant node;
  inverters live on edges as literal complement bits
  (see :mod:`repro.aig.literal`);
* every AND is *structurally hashed*: at most one live node exists for a
  given ordered fanin literal pair, and the trivial cases
  (``AND(x, 0)``, ``AND(x, 1)``, ``AND(x, x)``, ``AND(x, ~x)``) are never
  materialized;
* fanout lists and reference counts are maintained eagerly, which is what
  makes MFFC computation, cut features (fanout counts) and in-place node
  replacement possible;
* :meth:`AIG.replace` substitutes a node by an arbitrary literal, patching
  fanouts, merging structural duplicates that the patch creates (ABC's
  ``Abc_AigReplace`` cascade), propagating level updates and garbage
  collecting the dead cone;
* every kill and in-place fanin rewire is journaled per epoch
  (:meth:`AIG.drain_dirty`), which is how the parallel engine maps a wave
  of commits to the exact set of candidate snapshots it invalidated.

The class is deliberately index-based (parallel lists) rather than
object-based: Python object graphs are several times slower and this
structure is the hot path of every operator in the library.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from ..errors import AigError
from .literal import (
    CONST0,
    lit_is_compl,
    lit_node,
    lit_not,
    make_lit,
)

_PI_MARK = -1
_CONST_MARK = -2
_DEAD_MARK = -3


class DirtyJournal(NamedTuple):
    """One epoch of structural damage, drained via :meth:`AIG.drain_dirty`.

    ``killed`` are nodes that died (GC, strash merges, the replaced node
    itself); ``rewired`` are surviving AND nodes whose fanin literals were
    patched in place.  A snapshot of a cut cone taken before the epoch is
    certainly still valid when the cone avoids ``killed``: an in-place
    rewire only ever happens where the rewired node's old fanin died, so
    any rewire inside a cone is always accompanied by a kill inside it
    (cut closure), and rewired *leaves* keep their function (replacement
    preserves the functionality of every survivor).
    """

    killed: frozenset[int]
    rewired: frozenset[int]

    @property
    def empty(self) -> bool:
        return not self.killed and not self.rewired


class AIG:
    """A structurally hashed And-Inverter Graph.

    Node 0 is the constant-false node.  Primary inputs and AND nodes share
    the same index space; and AND node indices are assigned in creation
    order, so iterating ids ascending is a topological order.
    """

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        # Parallel node arrays. Index 0 is the constant node.
        self._fanin0: list[int] = [_CONST_MARK]
        self._fanin1: list[int] = [_CONST_MARK]
        self._level: list[int] = [0]
        self._refs: list[int] = [0]
        self._fanouts: list[list[int]] = [[]]
        self._pis: list[int] = []
        self._pi_names: list[str] = []
        self._pos: list[int] = []  # driver literals
        self._po_names: list[str] = []
        self._po_uses: dict[int, list[int]] = {}  # node -> PO indices
        self._strash: dict[tuple[int, int], int] = {}
        self._n_live_ands = 0
        # Monotone counter bumped by every structural change; used by
        # consumers (cuts, required levels) to detect staleness.
        self.edit_stamp = 0
        # Dirty journal of the current epoch: nodes killed and fanouts
        # rewired by replace()/GC since the last drain_dirty().  This is
        # what lets the engine invalidate exactly the snapshots an epoch
        # of commits touched instead of liveness-probing every candidate.
        self._dirty_killed: set[int] = set()
        self._dirty_rewired: set[int] = set()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total allocated node slots, including dead nodes and node 0."""
        return len(self._fanin0)

    @property
    def n_pis(self) -> int:
        return len(self._pis)

    @property
    def n_pos(self) -> int:
        return len(self._pos)

    @property
    def n_ands(self) -> int:
        """Number of live AND nodes."""
        return self._n_live_ands

    @property
    def pis(self) -> list[int]:
        """Node indices of the primary inputs, in creation order."""
        return list(self._pis)

    @property
    def pos(self) -> list[int]:
        """Driver literals of the primary outputs, in creation order."""
        return list(self._pos)

    def pi_name(self, index: int) -> str:
        return self._pi_names[index]

    def po_name(self, index: int) -> str:
        return self._po_names[index]

    def is_const(self, node: int) -> bool:
        return node == 0

    def is_pi(self, node: int) -> bool:
        return self._fanin0[node] == _PI_MARK

    def is_and(self, node: int) -> bool:
        return self._fanin0[node] >= 0

    def is_dead(self, node: int) -> bool:
        return self._fanin0[node] == _DEAD_MARK

    def fanin0(self, node: int) -> int:
        """First fanin literal of an AND node."""
        lit = self._fanin0[node]
        if lit < 0:
            raise AigError(f"node {node} is not an AND node")
        return lit

    def fanin1(self, node: int) -> int:
        """Second fanin literal of an AND node."""
        lit = self._fanin1[node]
        if lit < 0:
            raise AigError(f"node {node} is not an AND node")
        return lit

    def fanin_lits(self, node: int) -> tuple[int, int]:
        """Both fanin literals of an AND node."""
        f0 = self._fanin0[node]
        if f0 < 0:
            raise AigError(f"node {node} is not an AND node")
        return f0, self._fanin1[node]

    def level(self, node: int) -> int:
        return self._level[node]

    def n_refs(self, node: int) -> int:
        """Fanout references (AND fanouts plus PO uses)."""
        return self._refs[node]

    def fanouts(self, node: int) -> list[int]:
        """Live AND nodes that use ``node`` as a fanin (copy)."""
        return list(self._fanouts[node])

    def iter_fanouts(self, node: int) -> Iterator[int]:
        """Zero-copy iteration over ``node``'s AND fanouts.

        Unlike :meth:`fanouts` this does not copy the fanout list, so the
        graph must not be mutated while the iterator is live — the read
        paths (traversals, cut growth, divisor filtering) qualify.
        """
        return iter(self._fanouts[node])

    def n_fanouts(self, node: int) -> int:
        """Total fanout count: AND fanouts plus PO uses.

        This is the quantity the paper calls the *fanout* of a node (its
        number of outgoing edges).
        """
        return self._refs[node]

    def po_uses(self, node: int) -> list[int]:
        """Indices of POs driven by ``node`` (either phase)."""
        return list(self._po_uses.get(node, ()))

    def and_ids(self) -> list[int]:
        """Snapshot of live AND node ids in ascending (creation) order.

        Creation order is topological for freshly built graphs; after
        node replacements it may not be — use
        :func:`repro.aig.traversal.topological_order` when fanins must
        come first.
        """
        return [i for i in range(1, len(self._fanin0)) if self._fanin0[i] >= 0]

    def iter_ands(self) -> Iterator[int]:
        """Iterate live AND ids lazily (ascending creation order)."""
        fanin0 = self._fanin0
        for i in range(1, len(fanin0)):
            if fanin0[i] >= 0:
                yield i

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_pi(self, name: str | None = None) -> int:
        """Create a primary input; returns its (regular) literal."""
        node = self._alloc(_PI_MARK, _PI_MARK, 0)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return make_lit(node)

    def add_po(self, lit: int, name: str | None = None) -> int:
        """Register ``lit`` as a primary output; returns the PO index."""
        self._check_lit(lit)
        index = len(self._pos)
        self._pos.append(lit)
        self._po_names.append(name if name is not None else f"po{index}")
        node = lit_node(lit)
        self._refs[node] += 1
        self._po_uses.setdefault(node, []).append(index)
        self.edit_stamp += 1
        return index

    def set_po(self, index: int, lit: int) -> None:
        """Re-drive PO ``index`` with ``lit``."""
        self._check_lit(lit)
        old = self._pos[index]
        old_node = lit_node(old)
        self._refs[old_node] -= 1
        uses = self._po_uses[old_node]
        uses.remove(index)
        if not uses:
            del self._po_uses[old_node]
        self._pos[index] = lit
        node = lit_node(lit)
        self._refs[node] += 1
        self._po_uses.setdefault(node, []).append(index)
        self.edit_stamp += 1

    def add_and(self, a: int, b: int) -> int:
        """Return the literal of ``AND(a, b)``, creating a node if needed.

        Applies the standard strashing simplifications, so the result may
        be a constant or one of the operands.
        """
        self._check_lit(a)
        self._check_lit(b)
        simplified = _simplify_and(a, b)
        if simplified is not None:
            return simplified
        if a > b:
            a, b = b, a
        hit = self._strash.get((a, b))
        if hit is not None:
            return make_lit(hit)
        node = self._alloc(a, b, 1 + max(self._level[lit_node(a)], self._level[lit_node(b)]))
        self._strash[(a, b)] = node
        self._connect(a, node)
        self._connect(b, node)
        self._n_live_ands += 1
        return make_lit(node)

    def add_or(self, a: int, b: int) -> int:
        """OR via De Morgan: ``a + b = ~(~a & ~b)``."""
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a: int, b: int) -> int:
        """XOR built from three AND nodes."""
        return self.add_or(self.add_and(a, lit_not(b)), self.add_and(lit_not(a), b))

    def add_mux(self, sel: int, t: int, e: int) -> int:
        """``sel ? t : e`` built from three AND nodes."""
        return self.add_or(self.add_and(sel, t), self.add_and(lit_not(sel), e))

    def lookup_and(self, a: int, b: int) -> int | None:
        """Probe for ``AND(a, b)`` without creating it.

        Returns the literal of the existing (or trivially simplified)
        result, or None when the node does not exist.
        """
        simplified = _simplify_and(a, b)
        if simplified is not None:
            return simplified
        if a > b:
            a, b = b, a
        hit = self._strash.get((a, b))
        return None if hit is None else make_lit(hit)

    # ------------------------------------------------------------------
    # Replacement / deletion
    # ------------------------------------------------------------------

    def replace(self, old_node: int, new_lit: int) -> int:
        """Replace ``old_node`` by ``new_lit`` everywhere; GC the old cone.

        All fanouts and PO uses of ``old_node`` are patched to use
        ``new_lit`` (phase-adjusted).  Patches can make a fanout
        structurally identical to an existing node, in which case the two
        are merged and the merge cascades upward (ABC's ``Abc_AigReplace``
        semantics).  Nodes whose reference count drops to zero are
        recursively deleted.

        Returns the number of AND nodes deleted minus the number that were
        newly referenced (callers typically ignore it and inspect
        :attr:`n_ands` instead).
        """
        if not self.is_and(old_node) and not self.is_pi(old_node):
            raise AigError(f"cannot replace node {old_node}")
        ands_before = self._n_live_ands
        # The replaced node is functionally gone even when the slot
        # survives (a replaced PI is never GC'd): journal it as killed.
        self._dirty_killed.add(old_node)
        # Work stack of definitive replacement facts (node -> literal).
        # Targets are pinned (refs bumped) so cascading GC cannot free a
        # literal that a pending patch still needs.
        stack: list[tuple[int, int]] = [(old_node, new_lit)]
        self._refs[lit_node(new_lit)] += 1
        while stack:
            node, lit = stack.pop()
            self._refs[lit_node(lit)] -= 1
            if self.is_dead(node) or lit_node(lit) == node:
                self._reap(lit_node(lit))
                continue
            if self.is_dead(lit_node(lit)):
                raise AigError("replacement target died during cascade")
            self._patch_pos(node, lit)
            for fanout in list(self._fanouts[node]):
                if self.is_dead(fanout) or self.is_dead(node):
                    continue
                merge = self._patch_fanin(fanout, node, lit)
                if merge is not None:
                    self._refs[lit_node(merge)] += 1
                    stack.append((fanout, merge))
            self._reap(node)
            self._reap(lit_node(lit))
        self.edit_stamp += 1
        return ands_before - self._n_live_ands

    def _patch_pos(self, node: int, lit: int) -> None:
        for po_index in list(self._po_uses.get(node, ())):
            old = self._pos[po_index]
            self.set_po(po_index, lit ^ (old & 1))

    def _patch_fanin(self, fanout: int, node: int, lit: int) -> int | None:
        """Rewire ``fanout``'s fanin from ``node`` to ``lit``.

        Returns a literal ``fanout`` must itself be replaced by when the
        patch simplifies it away or collides with an existing node, else
        None (patched in place).
        """
        f0, f1 = self._fanin0[fanout], self._fanin1[fanout]
        if lit_node(f0) == node:
            old_fanin, other = f0, f1
        elif lit_node(f1) == node:
            old_fanin, other = f1, f0
        else:  # already rewired by an earlier cascade step
            return None
        new_fanin = lit ^ (old_fanin & 1)
        simplified = _simplify_and(new_fanin, other)
        if simplified is not None:
            return simplified
        a, b = (new_fanin, other) if new_fanin < other else (other, new_fanin)
        hit = self._strash.get((a, b))
        if hit is not None and hit != fanout:
            return make_lit(hit)
        # In-place rehash.
        key_old = (f0, f1) if f0 < f1 else (f1, f0)
        if self._strash.get(key_old) == fanout:
            del self._strash[key_old]
        self._disconnect(old_fanin, fanout)
        self._connect(new_fanin, fanout)
        self._fanin0[fanout], self._fanin1[fanout] = a, b
        self._strash[(a, b)] = fanout
        self._dirty_rewired.add(fanout)
        self._update_level(fanout)
        return None

    def _reap(self, node: int) -> None:
        """Delete ``node`` (and recursively its cone) if unreferenced."""
        if node == 0 or not self.is_and(node) or self._refs[node] > 0:
            return
        stack = [node]
        while stack:
            top = stack.pop()
            if self._refs[top] > 0 or not self.is_and(top):
                continue
            f0, f1 = self._fanin0[top], self._fanin1[top]
            key = (f0, f1) if f0 < f1 else (f1, f0)
            if self._strash.get(key) == top:
                del self._strash[key]
            self._fanin0[top] = _DEAD_MARK
            self._fanin1[top] = _DEAD_MARK
            self._fanouts[top].clear()
            self._dirty_killed.add(top)
            self._n_live_ands -= 1
            for fanin_lit in (f0, f1):
                fanin = lit_node(fanin_lit)
                self._disconnect(fanin_lit, top)
                if self.is_and(fanin) and self._refs[fanin] == 0:
                    stack.append(fanin)

    # ------------------------------------------------------------------
    # Dirty journal
    # ------------------------------------------------------------------

    def drain_dirty(self) -> DirtyJournal:
        """Return and clear the epoch's structural-damage journal.

        An epoch is everything since the previous drain (or construction).
        The engine drains once per committed replacement — reported up
        through ``commit_tree`` — and maps the killed set through its
        candidate index to find exactly the snapshots that went stale.
        Sequential operator passes drain once at entry, retiring the
        previous epoch; between drains the journal is bounded by the
        allocated slot count (ids live in sets), never by the number of
        edits.
        """
        journal = DirtyJournal(
            frozenset(self._dirty_killed), frozenset(self._dirty_rewired)
        )
        self._dirty_killed.clear()
        self._dirty_rewired.clear()
        return journal

    # ------------------------------------------------------------------
    # Level maintenance
    # ------------------------------------------------------------------

    def _update_level(self, node: int) -> None:
        """Recompute ``node``'s level and propagate changes to fanouts."""
        fanin0, fanin1 = self._fanin0, self._fanin1
        level, fanouts = self._level, self._fanouts
        worklist = [node]
        while worklist:
            top = worklist.pop()
            f0 = fanin0[top]
            if f0 < 0:  # not an AND node (is_and inlined)
                continue
            l0 = level[f0 >> 1]
            l1 = level[fanin1[top] >> 1]
            new_level = (l0 if l0 >= l1 else l1) + 1
            if new_level != level[top]:
                level[top] = new_level
                worklist.extend(fanouts[top])

    def max_level(self) -> int:
        """Depth of the network: maximum level over PO drivers."""
        if not self._pos:
            return 0
        return max(self._level[lit_node(lit)] for lit in self._pos)

    # ------------------------------------------------------------------
    # Cloning / compaction
    # ------------------------------------------------------------------

    def structural_digest(self) -> str:
        """Canonical 128-bit hex digest of the PO-reachable structure.

        Independent of node numbering, names and dangling logic: two
        strash-equivalent networks digest equal however they were
        built.  See :func:`repro.aig.digest.structural_digest` — this
        is the key the content-addressed serving cache hashes on.
        """
        from .digest import structural_digest

        return structural_digest(self)

    def clone(self, name: str | None = None) -> "AIG":
        """Deep copy with dead nodes compacted away and ids renumbered
        into topological order."""
        from .traversal import topological_order

        out = AIG(name if name is not None else self.name)
        old2new: dict[int, int] = {0: CONST0}
        for pi_node, pi_name in zip(self._pis, self._pi_names):
            old2new[pi_node] = out.add_pi(pi_name)
        for node in topological_order(self):
            f0, f1 = self._fanin0[node], self._fanin1[node]
            a = old2new[lit_node(f0)] ^ (f0 & 1)
            b = old2new[lit_node(f1)] ^ (f1 & 1)
            old2new[node] = out.add_and(a, b)
        for lit, po_name in zip(self._pos, self._po_names):
            out.add_po(old2new[lit_node(lit)] ^ (lit & 1), po_name)
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _alloc(self, f0: int, f1: int, level: int) -> int:
        node = len(self._fanin0)
        self._fanin0.append(f0)
        self._fanin1.append(f1)
        self._level.append(level)
        self._refs.append(0)
        self._fanouts.append([])
        self.edit_stamp += 1
        return node

    def _connect(self, fanin_lit: int, fanout: int) -> None:
        node = lit_node(fanin_lit)
        self._refs[node] += 1
        self._fanouts[node].append(fanout)

    def _disconnect(self, fanin_lit: int, fanout: int) -> None:
        node = lit_node(fanin_lit)
        self._refs[node] -= 1
        try:
            self._fanouts[node].remove(fanout)
        except ValueError as exc:  # pragma: no cover - structural corruption
            raise AigError(f"fanout list of {node} missing {fanout}") from exc

    def _check_lit(self, lit: int) -> None:
        node = lit_node(lit)
        if node < 0 or node >= len(self._fanin0) or self._fanin0[node] == _DEAD_MARK:
            raise AigError(f"literal {lit} references a dead or missing node")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AIG(name={self.name!r}, pis={self.n_pis}, pos={self.n_pos}, "
            f"ands={self.n_ands}, level={self.max_level()})"
        )


def _simplify_and(a: int, b: int) -> int | None:
    """Trivial AND simplifications; None when a real node is required."""
    if a == b:
        return a
    if (a ^ b) == 1:  # x & ~x
        return CONST0
    if a == CONST0 or b == CONST0:
        return CONST0
    if a == 1:  # const true
        return b
    if b == 1:
        return a
    return None


def from_functions(n_inputs: int, build: "callable", name: str = "aig") -> AIG:
    """Helper: build an AIG by calling ``build(g, input_lits) -> po_lits``."""
    g = AIG(name)
    inputs = [g.add_pi() for _ in range(n_inputs)]
    outputs = build(g, inputs)
    for lit in outputs:
        g.add_po(lit)
    return g


def iter_fanin_lits(g: AIG, node: int) -> Iterable[int]:
    """Fanin literals of ``node`` (empty for PIs and the constant)."""
    if g.is_and(node):
        return g.fanin_lits(node)
    return ()
