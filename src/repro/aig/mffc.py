"""Maximum fanout-free cone (MFFC) computation via reference counting.

The MFFC of a node is the set of nodes that become unreferenced when the
node is removed — exactly the nodes the refactor operator gets to delete
for free when it replaces the node's function.  Following ABC, the size is
computed with a dereference/re-reference sweep over the live reference
counts, which is both fast and exact.

The refactor pipeline uses the *cut-bounded* variant: the sweep stops at
the cut leaves, because the replacement cone is rebuilt on top of those
leaves and therefore keeps them alive.
"""

from __future__ import annotations

from .graph import AIG
from .literal import lit_node


def mffc_deref(g: AIG, root: int, boundary: set[int] | None = None) -> list[int]:
    """Dereference ``root``'s cone; return the freed nodes (root first).

    Reference counts are left decremented — callers must either commit the
    deletion or call :func:`mffc_ref` with the same arguments to restore.
    ``boundary`` nodes are never dereferenced (cut leaves).
    """
    freed = [root]
    stack = [root]
    refs = g._refs
    while stack:
        node = stack.pop()
        f0, f1 = g.fanin_lits(node)
        for fanin_lit in (f0, f1):
            fanin = lit_node(fanin_lit)
            if not g.is_and(fanin) or (boundary is not None and fanin in boundary):
                continue
            refs[fanin] -= 1
            if refs[fanin] == 0:
                freed.append(fanin)
                stack.append(fanin)
    return freed


def mffc_ref(g: AIG, root: int, boundary: set[int] | None = None) -> int:
    """Re-reference ``root``'s cone (inverse of :func:`mffc_deref`)."""
    count = 1
    stack = [root]
    refs = g._refs
    while stack:
        node = stack.pop()
        f0, f1 = g.fanin_lits(node)
        for fanin_lit in (f0, f1):
            fanin = lit_node(fanin_lit)
            if not g.is_and(fanin) or (boundary is not None and fanin in boundary):
                continue
            if refs[fanin] == 0:
                count += 1
                stack.append(fanin)
            refs[fanin] += 1
    return count


def mffc_nodes(g: AIG, root: int, boundary: set[int] | None = None) -> list[int]:
    """The MFFC of ``root`` as a node list (root included), side-effect free."""
    freed = mffc_deref(g, root, boundary)
    restored = mffc_ref(g, root, boundary)
    if restored != len(freed):  # pragma: no cover - structural corruption
        raise AssertionError("mffc ref/deref mismatch")
    return freed


def mffc_size(g: AIG, root: int, boundary: set[int] | None = None) -> int:
    """Number of AND nodes freed if ``root`` were removed."""
    return len(mffc_nodes(g, root, boundary))
