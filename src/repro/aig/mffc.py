"""Maximum fanout-free cone (MFFC) computation via reference counting.

The MFFC of a node is the set of nodes that become unreferenced when the
node is removed — exactly the nodes the refactor operator gets to delete
for free when it replaces the node's function.  Following ABC, the size is
computed with a dereference/re-reference sweep over the live reference
counts, which is both fast and exact.

The refactor pipeline uses the *cut-bounded* variant: the sweep stops at
the cut leaves, because the replacement cone is rebuilt on top of those
leaves and therefore keeps them alive.
"""

from __future__ import annotations

from ..errors import AigError
from .graph import AIG


def mffc_deref(g: AIG, root: int, boundary: set[int] | None = None) -> list[int]:
    """Dereference ``root``'s cone; return the freed nodes (root first).

    Reference counts are left decremented — callers must either commit the
    deletion or call :func:`mffc_ref` with the same arguments to restore.
    ``boundary`` nodes are never dereferenced (cut leaves).
    """
    if not g.is_and(root):
        raise AigError(f"node {root} is not an AND node")
    freed = [root]
    stack = [root]
    refs = g._refs
    fanin0, fanin1 = g._fanin0, g._fanin1
    while stack:
        node = stack.pop()
        # Inner loop on the raw parallel arrays: this sweep runs twice per
        # gain check on every candidate, so accessor/tuple overhead counts.
        for fanin in (fanin0[node] >> 1, fanin1[node] >> 1):
            if fanin0[fanin] < 0 or (boundary is not None and fanin in boundary):
                continue
            refs[fanin] -= 1
            if refs[fanin] == 0:
                freed.append(fanin)
                stack.append(fanin)
    return freed


def mffc_ref(g: AIG, root: int, boundary: set[int] | None = None) -> int:
    """Re-reference ``root``'s cone (inverse of :func:`mffc_deref`)."""
    if not g.is_and(root):
        raise AigError(f"node {root} is not an AND node")
    count = 1
    stack = [root]
    refs = g._refs
    fanin0, fanin1 = g._fanin0, g._fanin1
    while stack:
        node = stack.pop()
        for fanin in (fanin0[node] >> 1, fanin1[node] >> 1):
            if fanin0[fanin] < 0 or (boundary is not None and fanin in boundary):
                continue
            if refs[fanin] == 0:
                count += 1
                stack.append(fanin)
            refs[fanin] += 1
    return count


def mffc_nodes(g: AIG, root: int, boundary: set[int] | None = None) -> list[int]:
    """The MFFC of ``root`` as a node list (root included), side-effect free."""
    freed = mffc_deref(g, root, boundary)
    restored = mffc_ref(g, root, boundary)
    if restored != len(freed):  # pragma: no cover - structural corruption
        raise AssertionError("mffc ref/deref mismatch")
    return freed


def mffc_size(g: AIG, root: int, boundary: set[int] | None = None) -> int:
    """Number of AND nodes freed if ``root`` were removed."""
    return len(mffc_nodes(g, root, boundary))
