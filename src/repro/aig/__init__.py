"""And-Inverter Graph substrate.

The foundation every other subsystem builds on: the strashed graph itself,
literal helpers, traversals, levels, MFFC accounting, simulation, file I/O
and invariant validation.
"""

from .digest import structural_digest
from .graph import AIG, from_functions
from .levels import RequiredLevels, levels_histogram
from .literal import (
    CONST0,
    CONST1,
    lit_is_compl,
    lit_node,
    lit_not,
    lit_regular,
    lit_with_compl,
    lit_xor_compl,
    make_lit,
)
from .mffc import mffc_deref, mffc_nodes, mffc_ref, mffc_size
from .simulate import cone_truth, full_mask, node_values, simulate, var_mask
from .stats import AigStats, stats
from .strash import cleanup, strash
from .traversal import (
    cone_nodes,
    support,
    topological_order,
    transitive_fanin,
    transitive_fanout,
)
from .validate import check, is_valid

__all__ = [
    "AIG",
    "AigStats",
    "CONST0",
    "CONST1",
    "RequiredLevels",
    "check",
    "cleanup",
    "cone_nodes",
    "cone_truth",
    "from_functions",
    "full_mask",
    "is_valid",
    "levels_histogram",
    "lit_is_compl",
    "lit_node",
    "lit_not",
    "lit_regular",
    "lit_with_compl",
    "lit_xor_compl",
    "make_lit",
    "mffc_deref",
    "mffc_nodes",
    "mffc_ref",
    "mffc_size",
    "node_values",
    "simulate",
    "stats",
    "strash",
    "structural_digest",
    "support",
    "topological_order",
    "transitive_fanin",
    "transitive_fanout",
    "var_mask",
]
