"""AIGER format reader/writer (ASCII ``aag`` and binary ``aig``).

Implements the AIGER 1.9 combinational subset: header, inputs, outputs,
AND gates, symbol table and comments.  Latches are rejected (the library
is combinational-only, as is the paper's setting).
"""

from __future__ import annotations

import io
from pathlib import Path

from ..errors import AigerFormatError
from .graph import AIG
from .literal import lit_node


def write_ascii(g: AIG, path: str | Path) -> None:
    """Write ``g`` as ASCII AIGER (``aag``)."""
    g = g.clone()  # compact ids so the header M equals I + A
    with open(path, "w", encoding="ascii") as f:
        n_ands = g.n_ands
        max_var = g.n_pis + n_ands
        f.write(f"aag {max_var} {g.n_pis} 0 {g.n_pos} {n_ands}\n")
        for pi in g.pis:
            f.write(f"{pi * 2}\n")
        for lit in g.pos:
            f.write(f"{lit}\n")
        for node in g.iter_ands():
            f0, f1 = g.fanin_lits(node)
            f.write(f"{node * 2} {max(f0, f1)} {min(f0, f1)}\n")
        for i in range(g.n_pis):
            f.write(f"i{i} {g.pi_name(i)}\n")
        for i in range(g.n_pos):
            f.write(f"o{i} {g.po_name(i)}\n")
        f.write(f"c\n{g.name}\n")


def _encode_delta(out: io.BytesIO, delta: int) -> None:
    while delta >= 0x80:
        out.write(bytes([(delta & 0x7F) | 0x80]))
        delta >>= 7
    out.write(bytes([delta]))


def _decode_delta(buf: bytes, pos: int) -> tuple[int, int]:
    value, shift = 0, 0
    while True:
        if pos >= len(buf):
            raise AigerFormatError("truncated delta encoding")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def write_binary(g: AIG, path: str | Path) -> None:
    """Write ``g`` as binary AIGER (``aig``)."""
    g = g.clone()
    n_ands = g.n_ands
    max_var = g.n_pis + n_ands
    body = io.BytesIO()
    body.write(f"aig {max_var} {g.n_pis} 0 {g.n_pos} {n_ands}\n".encode("ascii"))
    for lit in g.pos:
        body.write(f"{lit}\n".encode("ascii"))
    for node in g.iter_ands():
        f0, f1 = g.fanin_lits(node)
        lhs = node * 2
        rhs0, rhs1 = max(f0, f1), min(f0, f1)
        if not lhs > rhs0 >= rhs1:
            raise AigerFormatError(f"node {node} violates binary AIGER ordering")
        _encode_delta(body, lhs - rhs0)
        _encode_delta(body, rhs0 - rhs1)
    for i in range(g.n_pos):
        body.write(f"o{i} {g.po_name(i)}\n".encode("ascii"))
    body.write(f"c\n{g.name}\n".encode("ascii"))
    Path(path).write_bytes(body.getvalue())


def read(path: str | Path) -> AIG:
    """Read an AIGER file, auto-detecting ASCII vs binary."""
    data = Path(path).read_bytes()
    if data.startswith(b"aag "):
        return _read_ascii(data.decode("ascii"), str(path))
    if data.startswith(b"aig "):
        return _read_binary(data, str(path))
    raise AigerFormatError(f"{path}: not an AIGER file")


def _parse_header(line: str) -> tuple[int, int, int, int, int]:
    parts = line.split()
    if len(parts) < 6:
        raise AigerFormatError(f"bad header: {line!r}")
    m, i, l, o, a = (int(x) for x in parts[1:6])
    if l != 0:
        raise AigerFormatError("latches are not supported (combinational only)")
    if m < i + a:
        raise AigerFormatError(f"header M={m} < I+A={i + a}")
    return m, i, l, o, a


def _read_ascii(text: str, name: str) -> AIG:
    lines = text.splitlines()
    if not lines:
        raise AigerFormatError("empty file")
    _m, n_in, _l, n_out, n_and = _parse_header(lines[0])
    g = AIG(name)
    lit_map: dict[int, int] = {0: 0}
    cursor = 1
    for _ in range(n_in):
        lit = int(lines[cursor].split()[0])
        lit_map[lit] = g.add_pi()
        cursor += 1
    po_lits = [int(lines[cursor + k].split()[0]) for k in range(n_out)]
    cursor += n_out
    for _ in range(n_and):
        lhs, rhs0, rhs1 = (int(x) for x in lines[cursor].split()[:3])
        lit_map[lhs] = g.add_and(_map_lit(lit_map, rhs0), _map_lit(lit_map, rhs1))
        cursor += 1
    for k, lit in enumerate(po_lits):
        g.add_po(_map_lit(lit_map, lit), f"po{k}")
    _read_symbols(g, lines[cursor:])
    return g


def _read_binary(data: bytes, name: str) -> AIG:
    newline = data.index(b"\n")
    header = data[:newline].decode("ascii")
    _m, n_in, _l, n_out, n_and = _parse_header(header)
    g = AIG(name)
    lit_map: dict[int, int] = {0: 0}
    for k in range(n_in):
        lit_map[2 * (k + 1)] = g.add_pi()
    pos = newline + 1
    po_lits = []
    for _ in range(n_out):
        end = data.index(b"\n", pos)
        po_lits.append(int(data[pos:end]))
        pos = end + 1
    for k in range(n_and):
        lhs = 2 * (n_in + k + 1)
        delta0, pos = _decode_delta(data, pos)
        delta1, pos = _decode_delta(data, pos)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0:
            raise AigerFormatError(f"gate {lhs}: negative fanin literal")
        lit_map[lhs] = g.add_and(_map_lit(lit_map, rhs0), _map_lit(lit_map, rhs1))
    for k, lit in enumerate(po_lits):
        g.add_po(_map_lit(lit_map, lit), f"po{k}")
    _read_symbols(g, data[pos:].decode("ascii", errors="replace").splitlines())
    return g


def _map_lit(lit_map: dict[int, int], file_lit: int) -> int:
    mapped = lit_map.get(file_lit & ~1)
    if mapped is None:
        raise AigerFormatError(f"literal {file_lit} used before definition")
    return mapped ^ (file_lit & 1)


def _read_symbols(g: AIG, lines: list[str]) -> None:
    for line in lines:
        if line.startswith("c"):
            break
        if not line or line[0] not in "io":
            continue
        head, _, sym = line.partition(" ")
        if not sym:
            continue
        try:
            index = int(head[1:])
        except ValueError:
            continue
        if head[0] == "i" and index < g.n_pis:
            g._pi_names[index] = sym
        elif head[0] == "o" and index < g.n_pos:
            g._po_names[index] = sym
