"""Structural invariant checking for AIGs.

Used heavily by the test suite and callable after any transformation to
catch corruption early.  Checks:

* fanins of live ANDs are live, earlier-created, and strash-canonical
  (ordered pair, no trivial forms);
* the strash table is exactly the set of live AND nodes;
* reference counts equal fanout-list length plus PO uses;
* fanout lists contain exactly the live users;
* levels are consistent with fanin levels;
* the live-AND counter matches reality.
"""

from __future__ import annotations

from ..errors import AigError
from .graph import AIG
from .literal import lit_node


def check(g: AIG) -> None:
    """Raise :class:`AigError` describing the first violated invariant."""
    expected_refs = {node: 0 for node in range(g.n_nodes)}
    expected_fanouts: dict[int, list[int]] = {node: [] for node in range(g.n_nodes)}
    n_live = 0
    for node in range(1, g.n_nodes):
        if g.is_dead(node) or g.is_pi(node):
            continue
        if not g.is_and(node):  # pragma: no cover - unreachable by design
            raise AigError(f"node {node} has unknown type")
        n_live += 1
        f0, f1 = g.fanin_lits(node)
        if f0 >= f1:
            raise AigError(f"node {node}: fanins not strictly ordered ({f0}, {f1})")
        if lit_node(f0) == lit_node(f1):
            raise AigError(f"node {node}: duplicate fanin node")
        if f0 <= 1:
            raise AigError(f"node {node}: constant fanin not simplified")
        for fl in (f0, f1):
            fanin = lit_node(fl)
            if g.is_dead(fanin):
                raise AigError(f"node {node}: dead fanin {fanin}")
            expected_refs[fanin] += 1
            expected_fanouts[fanin].append(node)
        expected_level = 1 + max(g.level(lit_node(f0)), g.level(lit_node(f1)))
        if g.level(node) != expected_level:
            raise AigError(
                f"node {node}: level {g.level(node)} != expected {expected_level}"
            )
        if g._strash.get((f0, f1)) != node:
            raise AigError(f"node {node}: missing or wrong strash entry")
    if n_live != g.n_ands:
        raise AigError(f"live AND count {g.n_ands} != actual {n_live}")
    if len(g._strash) != n_live:
        raise AigError(
            f"strash table has {len(g._strash)} entries for {n_live} live ANDs"
        )
    for i, lit in enumerate(g.pos):
        node = lit_node(lit)
        if g.is_dead(node):
            raise AigError(f"PO {i} driven by dead node {node}")
        expected_refs[node] += 1
    for node in range(g.n_nodes):
        if g.is_dead(node):
            continue
        if g.n_refs(node) != expected_refs[node]:
            raise AigError(
                f"node {node}: refs {g.n_refs(node)} != expected {expected_refs[node]}"
            )
        if sorted(g._fanouts[node]) != sorted(expected_fanouts[node]):
            raise AigError(f"node {node}: fanout list mismatch")
    for (f0, f1), node in g._strash.items():
        if g.is_dead(node):
            raise AigError(f"strash entry ({f0},{f1}) points at dead node {node}")
        if g.fanin_lits(node) != (f0, f1):
            raise AigError(f"strash entry ({f0},{f1}) does not match node {node}")
    _check_acyclic(g)


def _check_acyclic(g: AIG) -> None:
    """DFS with coloring: a grey-to-grey edge is a combinational cycle."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = bytearray(g.n_nodes)
    for seed in range(1, g.n_nodes):
        if color[seed] != WHITE or not g.is_and(seed):
            continue
        stack: list[tuple[int, bool]] = [(seed, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                color[node] = BLACK
                continue
            if color[node] == BLACK:
                continue
            if color[node] == GREY:
                raise AigError(f"combinational cycle through node {node}")
            color[node] = GREY
            stack.append((node, True))
            for fl in g.fanin_lits(node):
                fanin = lit_node(fl)
                if g.is_and(fanin):
                    if color[fanin] == GREY:
                        raise AigError(f"combinational cycle through node {fanin}")
                    if color[fanin] == WHITE:
                        stack.append((fanin, False))


def is_valid(g: AIG) -> bool:
    """Boolean wrapper around :func:`check`."""
    try:
        check(g)
    except AigError:
        return False
    return True
