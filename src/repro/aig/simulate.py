"""Bit-parallel simulation of AIGs.

Three engines:

* :func:`simulate` — whole-network random/explicit simulation on NumPy
  ``uint64`` words (64 patterns per word), used by the CEC checker and the
  resubstitution divisor filter;
* :func:`cone_truth` — exact truth table of a cut root as a Python integer
  (arbitrary precision), used by refactor/rewrite/resub resynthesis;
* :func:`batch_cone_truths` — the multi-root batch kernel: one shared
  topological pass ranks the union of many cut cones, then each cone is
  evaluated by a flat loop over its pre-ranked interior.  This replaces
  the per-candidate recursive DFS of :func:`cone_truth` on the parallel
  engine's hot path, where a whole commit wave's survivor cones are
  evaluated back to back against the same graph.
"""

from __future__ import annotations

import numpy as np

from ..errors import TruthTableError
from .graph import AIG
from .literal import lit_node

MAX_TT_VARS = 16
"""Upper bound on cut truth-table support (2^16 bits = 8 KiB per table)."""


def simulate(
    g: AIG,
    pi_values: np.ndarray | None = None,
    n_words: int = 4,
    seed: int | None = 0,
) -> np.ndarray:
    """Simulate the whole network on 64-bit pattern words.

    ``pi_values`` has shape ``(n_pis, n_words)`` of dtype uint64; when
    omitted, random patterns are drawn from ``seed``.  Returns an array of
    shape ``(n_pos, n_words)`` with the PO values.
    """
    if pi_values is None:
        rng = np.random.default_rng(seed)
        pi_values = rng.integers(0, 2**64, size=(g.n_pis, n_words), dtype=np.uint64)
    else:
        pi_values = np.asarray(pi_values, dtype=np.uint64)
        if pi_values.shape[0] != g.n_pis:
            raise TruthTableError(
                f"expected {g.n_pis} PI rows, got {pi_values.shape[0]}"
            )
        n_words = pi_values.shape[1]
    values = node_values(g, pi_values, n_words)
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    out = np.empty((g.n_pos, n_words), dtype=np.uint64)
    for i, lit in enumerate(g.pos):
        v = values[lit_node(lit)]
        out[i] = v ^ ones if (lit & 1) else v
    return out


def node_values(g: AIG, pi_values: np.ndarray, n_words: int) -> np.ndarray:
    """Per-node simulation values, indexed by node id (dead rows are junk)."""
    from .traversal import topological_order

    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    values = np.zeros((g.n_nodes, n_words), dtype=np.uint64)
    for i, pi in enumerate(g.pis):
        values[pi] = pi_values[i]
    fanin0, fanin1 = g._fanin0, g._fanin1
    for node in topological_order(g):
        f0, f1 = fanin0[node], fanin1[node]
        a = values[f0 >> 1]
        if f0 & 1:
            a = a ^ ones
        b = values[f1 >> 1]
        if f1 & 1:
            b = b ^ ones
        values[node] = a & b
    return values


def _var_mask(var: int, n_vars: int) -> int:
    """Truth table (as int) of input variable ``var`` over ``n_vars`` inputs."""
    bits = 1 << n_vars
    if var >= n_vars:
        raise TruthTableError(f"variable {var} out of range for {n_vars} inputs")
    block = (1 << (1 << var)) - 1  # 2^(2^var) - 1: run of zeros then ones
    pattern = 0
    period = 1 << (var + 1)
    for offset in range(0, bits, period):
        pattern |= (block << (1 << var)) << offset
    return pattern


# Cache of variable masks: (var, n_vars) -> int.
_VAR_MASKS: dict[tuple[int, int], int] = {}


def var_mask(var: int, n_vars: int) -> int:
    """Cached truth table of variable ``var`` over ``n_vars`` variables."""
    key = (var, n_vars)
    mask = _VAR_MASKS.get(key)
    if mask is None:
        mask = _var_mask(var, n_vars)
        _VAR_MASKS[key] = mask
    return mask


def full_mask(n_vars: int) -> int:
    """All-ones truth table over ``n_vars`` variables."""
    return (1 << (1 << n_vars)) - 1


def cone_truth(g: AIG, root: int, leaves: list[int]) -> int:
    """Exact truth table of ``root`` as a function of ``leaves``.

    ``leaves`` are node ids forming a cut of ``root``; the table is a
    Python int with bit ``i`` = value of the root under the assignment
    encoded by ``i`` (leaf 0 is the least significant variable).  The root
    literal is taken in regular (non-complemented) phase.
    """
    n = len(leaves)
    if n > MAX_TT_VARS:
        raise TruthTableError(f"cut has {n} leaves; max is {MAX_TT_VARS}")
    ones = full_mask(n)
    values: dict[int, int] = {0: 0}
    for i, leaf in enumerate(leaves):
        values[leaf] = var_mask(i, n)
    if root in values:
        return values[root]

    fanin0, fanin1 = g._fanin0, g._fanin1
    order: list[int] = []
    stack: list[int] = [root]
    visited = set(values)
    while stack:  # iterative post-order over the cone
        node = stack[-1]
        if node in visited:
            stack.pop()
            continue
        f0, f1 = fanin0[node], fanin1[node]
        if f0 < 0:
            raise TruthTableError(f"cut of {root} does not cover node {node}")
        pending = [f for f in (f0 >> 1, f1 >> 1) if f not in visited]
        if pending:
            stack.extend(pending)
        else:
            visited.add(node)
            order.append(node)
            stack.pop()

    for node in order:
        f0, f1 = fanin0[node], fanin1[node]
        a = values[f0 >> 1]
        if f0 & 1:
            a ^= ones
        b = values[f1 >> 1]
        if f1 & 1:
            b ^= ones
        values[node] = a & b
    return values[root]


def batch_cone_truths(
    g: AIG,
    cones: list[tuple[int, tuple[int, ...] | list[int], frozenset[int] | set[int]]],
    *,
    packed: bool | None = None,
) -> list[int]:
    """Exact truth tables of many cut cones in one batch.

    Each element of ``cones`` is ``(root, leaves, interior)`` — exactly
    the data a snapshot of a reconvergence-driven cut carries: ``leaves``
    fix the variable order, ``interior`` is the cone between leaves and
    root with the root included.  Results align with the input order and
    are bit-identical to calling :func:`cone_truth` per cone.

    The win over per-cone calls is structural: cut interiors need a
    fanins-first evaluation order, and :func:`cone_truth` derives it with
    a fresh recursive DFS per root.  Here a single pass assigns a
    topological rank to every node in the *union* of the interiors
    (overlapping cones are visited once), after which each cone is just a
    sort of its pre-known interior by rank plus a flat AND/XOR loop.

    ``packed=True`` selects the vectorized route: every cone's interior
    is compiled into one level-grouped gather program over a packed
    uint64 word matrix (all tables padded to the widest cut — the
    periodic leaf patterns agree on the low bits, so truncating each
    root row back to ``2**n`` bits recovers the exact per-cone table),
    and each level is a single numpy xor/and sweep across all cones at
    once.  Both routes are bit-identical (``tests/test_kernel_parity``
    pins them against each other and against :func:`cone_truth`); the
    default (``packed=None``) picks the scalar loop, which measures
    faster at every cut width on this kernel — CPython big-int bitwise
    ops are a fused C loop, while the numpy program pays two gather
    copies per level — so the packed route exists for consumers that
    already hold packed word views (the shared-memory wave transport)
    and as the reference implementation the parity battery exercises.
    """
    fanin0, fanin1 = g._fanin0, g._fanin1
    union: set[int] = set()
    for _root, _leaves, interior in cones:
        union.update(interior)

    # One shared post-order pass over the union-induced subgraph: for any
    # interior node, its in-union fanins are ranked first.  Seeding from
    # the roots covers every interior (a cone's interior is reachable from
    # its own root without leaving the union).
    rank: dict[int, int] = {}
    next_rank = 0
    stack: list[int] = []
    for root, _leaves, _interior in cones:
        if root in rank or root not in union:
            continue
        stack.append(root)
        while stack:
            node = stack[-1]
            if node in rank:
                stack.pop()
                continue
            pending = [
                f
                for f in (fanin0[node] >> 1, fanin1[node] >> 1)
                if f in union and f not in rank
            ]
            if pending:
                stack.extend(pending)
            else:
                rank[node] = next_rank
                next_rank += 1
                stack.pop()

    if packed:
        return _batch_cone_truths_packed(g, cones, rank)

    out: list[int] = []
    rank_of = rank.__getitem__
    for root, leaves, interior in cones:
        n = len(leaves)
        if n > MAX_TT_VARS:
            raise TruthTableError(f"cut has {n} leaves; max is {MAX_TT_VARS}")
        ones = full_mask(n)
        values: dict[int, int] = {0: 0}
        for i, leaf in enumerate(leaves):
            values[leaf] = var_mask(i, n)
        if root in values:
            out.append(values[root])
            continue
        try:
            for node in sorted(interior, key=rank_of):
                f0, f1 = fanin0[node], fanin1[node]
                a = values[f0 >> 1]
                if f0 & 1:
                    a ^= ones
                b = values[f1 >> 1]
                if f1 & 1:
                    b ^= ones
                values[node] = a & b
            out.append(values[root])
        except KeyError as exc:  # pragma: no cover - structural corruption
            raise TruthTableError(
                f"cone of {root} is not closed over its leaves/interior"
            ) from exc
    return out


_WORD_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _batch_cone_truths_packed(
    g: AIG,
    cones: list[tuple[int, tuple[int, ...] | list[int], frozenset[int] | set[int]]],
    rank: dict[int, int],
) -> list[int]:
    """Vectorized route of :func:`batch_cone_truths`.

    Compiles every cone's interior into one gather program over a value
    matrix of packed uint64 words (row = one node's table in one cone),
    grouped by AND-depth level so each level is a single
    ``(V[a] ^ neg_a) & (V[b] ^ neg_b)`` numpy sweep across all cones.
    All rows are padded to the widest cut's width; truncating a root row
    to its own cone's ``2**n`` bits recovers the exact table because the
    periodic leaf patterns agree on low bits.  Bit-identical to the
    scalar loop above.
    """
    fanin0, fanin1 = g._fanin0, g._fanin1
    n_max = 0
    for _root, leaves, _interior in cones:
        n = len(leaves)
        if n > MAX_TT_VARS:
            raise TruthTableError(f"cut has {n} leaves; max is {MAX_TT_VARS}")
        if n > n_max:
            n_max = n
    n_eval = max(n_max, 6)
    n_words = max(1, (1 << n_eval) >> 6)
    rank_of = rank.__getitem__

    # Fixed rows: 0 = const0, 1 + i = leaf variable i (shared by every
    # cone; each cone reads the same periodic pattern and truncates).
    n_fixed = 1 + n_max
    a_rows: list[int] = []
    b_rows: list[int] = []
    a_neg: list[int] = []
    b_neg: list[int] = []
    level_groups: dict[int, list[int]] = {}
    root_rows: list[int] = []  # per cone; -1 marks a leaf/const root
    shortcuts: dict[int, int] = {}
    next_row = n_fixed

    for ci, (root, leaves, interior) in enumerate(cones):
        n = len(leaves)
        row_of: dict[int, int] = {0: 0}
        level_of: dict[int, int] = {0: 0}
        for i, leaf in enumerate(leaves):
            row_of[leaf] = 1 + i
            level_of[leaf] = 0
        if root in row_of:
            # Same dict-assignment semantics as the scalar loop: the last
            # duplicate leaf position wins, a leaf overrides const0.
            value = 0
            for i in range(len(leaves) - 1, -1, -1):
                if leaves[i] == root:
                    value = var_mask(i, n)
                    break
            shortcuts[ci] = value
            root_rows.append(-1)
            continue
        try:
            for node in sorted(interior, key=rank_of):
                f0, f1 = fanin0[node], fanin1[node]
                la = level_of[f0 >> 1]
                lb = level_of[f1 >> 1]
                a_rows.append(row_of[f0 >> 1])
                b_rows.append(row_of[f1 >> 1])
                a_neg.append(f0 & 1)
                b_neg.append(f1 & 1)
                level = (la if la >= lb else lb) + 1
                level_groups.setdefault(level, []).append(next_row - n_fixed)
                level_of[node] = level
                row_of[node] = next_row
                next_row += 1
            root_rows.append(row_of[root])
        except KeyError as exc:  # pragma: no cover - structural corruption
            raise TruthTableError(
                f"cone of {root} is not closed over its leaves/interior"
            ) from exc

    values = np.zeros((next_row, n_words), dtype=np.uint64)
    for i in range(n_max):
        pattern = var_mask(i, n_eval)
        values[1 + i] = np.frombuffer(
            pattern.to_bytes(n_words * 8, "little"), dtype="<u8"
        )
    if a_rows:
        a_arr = np.array(a_rows, dtype=np.int64)
        b_arr = np.array(b_rows, dtype=np.int64)
        a_mask = np.where(np.array(a_neg, dtype=bool), _WORD_ONES, np.uint64(0))
        b_mask = np.where(np.array(b_neg, dtype=bool), _WORD_ONES, np.uint64(0))
        for level in sorted(level_groups):
            idx = np.array(level_groups[level], dtype=np.int64)
            values[idx + n_fixed] = (values[a_arr[idx]] ^ a_mask[idx, None]) & (
                values[b_arr[idx]] ^ b_mask[idx, None]
            )

    out: list[int] = []
    for ci, (_root, leaves, _interior) in enumerate(cones):
        row = root_rows[ci]
        if row < 0:
            out.append(shortcuts[ci])
        else:
            out.append(
                int.from_bytes(values[row].tobytes(), "little")
                & full_mask(len(leaves))
            )
    return out
