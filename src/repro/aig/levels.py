"""Required-level (reverse level) computation.

The *required level* of a node is the latest level it may sit at without
increasing the network depth: ``required(po_driver) = depth`` and
``required(n) = min over fanouts f of required(f) - 1``.  The refactor
operator in level-preserving mode (ABC's ``refactor -l``) rejects any
commit whose new root would exceed its required level.
"""

from __future__ import annotations

from .graph import AIG
from .literal import lit_node


class RequiredLevels:
    """Snapshot of required levels for all live nodes.

    Recomputed per optimization pass (matching ABC, which starts reverse
    levels once per operator invocation); ``is_stale`` reports whether the
    graph changed since the snapshot was taken.
    """

    def __init__(self, g: AIG, slack: int = 0) -> None:
        self._g = g
        self._stamp = g.edit_stamp
        depth = g.max_level() + slack
        self.depth = depth
        required = {node: depth for node in g.pis}
        required[0] = depth
        for lit in g.pos:
            required[lit_node(lit)] = depth
        from .traversal import topological_order

        # Reverse topological sweep.
        for node in reversed(topological_order(g)):
            req = required.get(node, depth)
            required[node] = req
            f0, f1 = g.fanin_lits(node)
            for fanin in (lit_node(f0), lit_node(f1)):
                prev = required.get(fanin, depth)
                if req - 1 < prev:
                    required[fanin] = req - 1
        self._required = required

    def required(self, node: int) -> int:
        """Required level of ``node``; nodes created after the snapshot get
        the network depth (i.e. no constraint beyond global depth)."""
        return self._required.get(node, self.depth)

    @property
    def is_stale(self) -> bool:
        return self._stamp != self._g.edit_stamp


def levels_histogram(g: AIG) -> dict[int, int]:
    """Number of live AND nodes at each level (for stats/debugging)."""
    hist: dict[int, int] = {}
    for node in g.iter_ands():
        lvl = g.level(node)
        hist[lvl] = hist.get(lvl, 0) + 1
    return hist
