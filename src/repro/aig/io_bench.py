"""BENCH netlist format support (ISCAS-style).

Writes an AIG as a BENCH netlist of ``AND``/``NOT`` gates and reads the
common combinational gate vocabulary (AND/OR/NAND/NOR/NOT/BUF/XOR/XNOR,
with arbitrary arity), converting to AIG on the fly.
"""

from __future__ import annotations

from functools import reduce
from pathlib import Path

from ..errors import BenchFormatError
from .graph import AIG
from .literal import lit_node, lit_not


def to_text(g: AIG) -> str:
    """Render ``g`` as BENCH netlist text.

    The rendering is a pure function of the graph structure (node ids,
    fanin literals, PO order), so two structurally identical networks
    produce byte-identical text — the serving layer relies on this to
    certify that streamed results match blocking per-circuit runs.
    """
    g = g.clone()
    lines = [f"# {g.name}"]
    for i in range(g.n_pis):
        lines.append(f"INPUT(n{g.pis[i] * 2})")
    for i in range(g.n_pos):
        lines.append(f"OUTPUT(po{i})")
    lines.append("n0 = gnd")
    emitted_inverters: set[int] = set()

    def lit_name(lit: int) -> str:
        if lit & 1:
            inv = f"n{lit}"
            if lit not in emitted_inverters:
                emitted_inverters.add(lit)
                lines.append(f"{inv} = NOT(n{lit & ~1})")
            return inv
        return f"n{lit}"

    for node in g.iter_ands():
        f0, f1 = g.fanin_lits(node)
        a, b = lit_name(f0), lit_name(f1)
        lines.append(f"n{node * 2} = AND({a}, {b})")
    for i, lit in enumerate(g.pos):
        lines.append(f"po{i} = BUF({lit_name(lit)})")
    return "\n".join(lines) + "\n"


def write(g: AIG, path: str | Path) -> None:
    """Write ``g`` as a BENCH netlist."""
    Path(path).write_text(to_text(g), encoding="ascii")


_GATES = {
    "AND": lambda g, lits: reduce(g.add_and, lits),
    "NAND": lambda g, lits: lit_not(reduce(g.add_and, lits)),
    "OR": lambda g, lits: reduce(g.add_or, lits),
    "NOR": lambda g, lits: lit_not(reduce(g.add_or, lits)),
    "XOR": lambda g, lits: reduce(g.add_xor, lits),
    "XNOR": lambda g, lits: lit_not(reduce(g.add_xor, lits)),
    "NOT": lambda g, lits: lit_not(lits[0]),
    "BUF": lambda g, lits: lits[0],
    "BUFF": lambda g, lits: lits[0],
}


def read(path: str | Path) -> AIG:
    """Read a BENCH netlist file into an AIG (named after the file stem)."""
    return from_text(Path(path).read_text(encoding="ascii"), name=Path(path).stem)


def from_text(text: str, name: str = "aig") -> AIG:
    """Parse BENCH netlist text into an AIG.

    The inverse of :func:`to_text` (round trips are structurally
    identical), and the wire format the serving tier uses: requests
    ship circuits as BENCH text, shard worker processes parse them
    here, so no AIG object ever crosses a process boundary.
    """
    g = AIG(name)
    signals: dict[str, int] = {"gnd": 0, "vdd": 1}
    pending: list[tuple[str, str, list[str]]] = []
    outputs: list[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("INPUT("):
            name = line[line.index("(") + 1 : line.rindex(")")].strip()
            signals[name] = g.add_pi(name)
        elif upper.startswith("OUTPUT("):
            outputs.append(line[line.index("(") + 1 : line.rindex(")")].strip())
        elif "=" in line:
            lhs, rhs = (part.strip() for part in line.split("=", 1))
            if "(" not in rhs:
                alias = rhs.strip()
                pending.append((lhs, "BUF", [alias]))
                continue
            gate = rhs[: rhs.index("(")].strip().upper()
            args = [
                a.strip()
                for a in rhs[rhs.index("(") + 1 : rhs.rindex(")")].split(",")
                if a.strip()
            ]
            if gate not in _GATES:
                raise BenchFormatError(f"unsupported gate {gate!r} in {raw!r}")
            pending.append((lhs, gate, args))
        else:
            raise BenchFormatError(f"cannot parse line: {raw!r}")
    # Gates may be listed out of order; iterate until fixpoint.
    remaining = pending
    while remaining:
        progressed = False
        deferred = []
        for lhs, gate, args in remaining:
            if all(a in signals for a in args):
                signals[lhs] = _GATES[gate](g, [signals[a] for a in args])
                progressed = True
            else:
                deferred.append((lhs, gate, args))
        if not progressed:
            missing = {a for _, _, args in deferred for a in args if a not in signals}
            raise BenchFormatError(f"undefined signals: {sorted(missing)[:5]}")
        remaining = deferred
    for name in outputs:
        if name not in signals:
            raise BenchFormatError(f"undefined output {name!r}")
        g.add_po(signals[name], name)
    return g
