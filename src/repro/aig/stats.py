"""Network statistics in the shape of the paper's Tables I/II."""

from __future__ import annotations

from dataclasses import dataclass

from .graph import AIG


@dataclass(frozen=True)
class AigStats:
    """Size/shape summary of an AIG (the paper's per-design columns)."""

    name: str
    n_ands: int
    level: int
    n_pis: int
    n_pos: int

    def row(self) -> tuple:
        return (self.name, self.n_ands, self.level, self.n_pis, self.n_pos)


def stats(g: AIG) -> AigStats:
    """Collect :class:`AigStats` for ``g``."""
    return AigStats(
        name=g.name,
        n_ands=g.n_ands,
        level=g.max_level(),
        n_pis=g.n_pis,
        n_pos=g.n_pos,
    )
