"""Strash rebuild and cleanup utilities.

``strash`` re-hashes a network from scratch (also constant-propagating and
deduplicating), which is how ABC normalizes a freshly read netlist.
``cleanup`` removes dangling logic not reachable from any PO.
"""

from __future__ import annotations

from .graph import AIG
from .literal import lit_node


def strash(g: AIG, name: str | None = None) -> AIG:
    """Rebuild ``g`` bottom-up through the structural hash table.

    Equivalent to :meth:`AIG.clone` today (the incremental API keeps the
    network strashed at all times) but additionally drops logic that no PO
    depends on.
    """
    out = AIG(name if name is not None else g.name)
    old2new: dict[int, int] = {0: 0}
    for pi_node, pi_name in zip(g.pis, [g.pi_name(i) for i in range(g.n_pis)]):
        old2new[pi_node] = out.add_pi(pi_name)
    from .traversal import topological_order

    needed = _reachable_from_pos(g)
    for node in topological_order(g):
        if node not in needed:
            continue
        f0, f1 = g.fanin_lits(node)
        a = old2new[lit_node(f0)] ^ (f0 & 1)
        b = old2new[lit_node(f1)] ^ (f1 & 1)
        old2new[node] = out.add_and(a, b)
    for i, lit in enumerate(g.pos):
        out.add_po(old2new[lit_node(lit)] ^ (lit & 1), g.po_name(i))
    return out


def cleanup(g: AIG) -> int:
    """Delete live AND nodes unreachable from the POs, in place.

    Returns the number of nodes removed.  (The incremental editing API
    garbage-collects eagerly, so this normally removes nothing; it exists
    for networks built by hand.)
    """
    needed = _reachable_from_pos(g)
    before = g.n_ands
    for node in reversed(g.and_ids()):
        if node not in needed and not g.is_dead(node) and g.n_refs(node) == 0:
            g._reap(node)
    return before - g.n_ands


def _reachable_from_pos(g: AIG) -> set[int]:
    seen: set[int] = set()
    stack = [lit_node(lit) for lit in g.pos]
    while stack:
        node = stack.pop()
        if node in seen or not g.is_and(node):
            continue
        seen.add(node)
        f0, f1 = g.fanin_lits(node)
        stack.append(lit_node(f0))
        stack.append(lit_node(f1))
    return seen
