"""AIGER-style literal encoding.

A *literal* packs a node index and a complement flag into one integer:
node ``i`` is referenced by literal ``2*i`` (regular) or ``2*i + 1``
(complemented).  Node 0 is the structural constant, so literal 0 is
constant false and literal 1 is constant true.  This is the exact
convention of the AIGER format and of ABC's internal AIG package.
"""

from __future__ import annotations

CONST0 = 0
"""Literal for constant false."""

CONST1 = 1
"""Literal for constant true."""


def make_lit(node: int, complemented: bool = False) -> int:
    """Build a literal from a node index and a complement flag."""
    return (node << 1) | int(complemented)


def lit_node(lit: int) -> int:
    """Node index referenced by ``lit``."""
    return lit >> 1


def lit_is_compl(lit: int) -> bool:
    """True when ``lit`` is the complemented phase of its node."""
    return bool(lit & 1)


def lit_not(lit: int) -> int:
    """Complement of ``lit``."""
    return lit ^ 1


def lit_regular(lit: int) -> int:
    """The non-complemented literal of the same node."""
    return lit & ~1


def lit_with_compl(lit: int, complemented: bool) -> int:
    """``lit`` with its complement bit forced to ``complemented``."""
    return (lit & ~1) | int(complemented)


def lit_xor_compl(lit: int, complemented: bool) -> int:
    """``lit`` complemented iff ``complemented`` is true."""
    return lit ^ int(complemented)
