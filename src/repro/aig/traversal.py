"""Graph traversals: topological orders, fan-in/fan-out cones."""

from __future__ import annotations

from .graph import AIG
from .literal import lit_node


def topological_order(g: AIG) -> list[int]:
    """Live AND ids in topological (fanins-first) order.

    Creation order is topological for freshly built graphs, but node
    replacement can rewire an old fanout onto a newer node, so edited
    graphs need this explicit DFS post-order (ABC behaves the same way).
    """
    fanin0, fanin1 = g._fanin0, g._fanin1
    n = g.n_nodes
    visited = bytearray(n)
    order: list[int] = []
    for seed in range(1, n):
        if visited[seed] or fanin0[seed] < 0:
            continue
        stack = [seed]
        while stack:
            node = stack[-1]
            if visited[node]:
                stack.pop()
                continue
            pending = []
            for fl in (fanin0[node], fanin1[node]):
                fanin = fl >> 1
                if not visited[fanin] and fanin0[fanin] >= 0:
                    pending.append(fanin)
            if pending:
                stack.extend(pending)
            else:
                visited[node] = 1
                order.append(node)
                stack.pop()
    return order


def transitive_fanin(g: AIG, roots: list[int], include_pis: bool = True) -> set[int]:
    """All nodes in the transitive fanin cone of ``roots`` (inclusive)."""
    seen: set[int] = set()
    stack = [r for r in roots]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        if not include_pis and not g.is_and(node):
            continue
        seen.add(node)
        if g.is_and(node):
            f0, f1 = g.fanin_lits(node)
            stack.append(lit_node(f0))
            stack.append(lit_node(f1))
    if not include_pis:
        seen = {n for n in seen if g.is_and(n)}
    return seen


def transitive_fanout(g: AIG, roots: list[int]) -> set[int]:
    """All AND nodes in the transitive fanout cone of ``roots`` (inclusive)."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(g.iter_fanouts(node))
    return seen


def cone_nodes(g: AIG, root: int, leaves: set[int]) -> list[int]:
    """AND nodes strictly between ``leaves`` and ``root`` (root included).

    Returned in topological (ascending id) order.  ``leaves`` themselves are
    excluded.  This is the node set the paper calls *the cut* when it
    counts ``cut size`` (Fig. 2: the triangle's interior plus the root).
    """
    cone: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in cone or node in leaves or not g.is_and(node):
            continue
        cone.add(node)
        f0, f1 = g.fanin_lits(node)
        stack.append(lit_node(f0))
        stack.append(lit_node(f1))
    return sorted(cone)


def support(g: AIG, root: int) -> set[int]:
    """PI nodes in the structural fanin cone of ``root``."""
    return {n for n in transitive_fanin(g, [root]) if g.is_pi(n)}
