"""Canonical structural digests for content-addressed result caching.

:func:`structural_digest` maps an :class:`repro.aig.AIG` to a 128-bit
hex digest that depends only on the *structure reachable from the
primary outputs* — the AND/inverter DAG shape, the identity of each
primary input (by PI position), and the ordered PO driver literals.  It
is deliberately independent of

* **node numbering** — two strash-equivalent networks built in different
  construction orders (or re-parsed from text, or renumbered by
  :meth:`AIG.clone` / :func:`repro.aig.strash.strash`) digest equal;
* **names** — PI/PO/graph names never enter the hash (BENCH rendering
  ignores them too, so a cached result is reusable across spellings);
* **dangling logic** — nodes no PO depends on are invisible, exactly as
  a strash round would drop them.

The construction is a Merkle fold: every node's digest is a
``blake2b-128`` of its fanins' digests plus the edge complement bits,
with the two fanin keys sorted *by digest bytes* (not by literal value,
which would leak node numbering); the graph digest folds the PI count
and each PO's ``(driver digest, phase)`` in PO order.  Equal digests
therefore mean isomorphic PO cones up to the collision resistance of
blake2b — the serving tier's content-addressed store
(:mod:`repro.serve.store`) keys on this, so repeat traffic of
re-submitted cores costs one hash instead of a resynthesis run.
"""

from __future__ import annotations

import hashlib

from .graph import AIG
from .literal import lit_node
from .traversal import topological_order

_DIGEST_SIZE = 16  # 128-bit per-node and per-graph digests


def _h(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=_DIGEST_SIZE).digest()


def structural_digest(g: AIG) -> str:
    """The canonical 128-bit structural digest of ``g``, as hex.

    A pure function of the PO-reachable structure: node numbering,
    names and dangling logic never influence the result (see the module
    docstring for the exact invariances).
    """
    digests: dict[int, bytes] = {0: _h(b"C")}
    for index, pi in enumerate(g.pis):
        digests[pi] = _h(b"I" + index.to_bytes(4, "little"))
    for node in topological_order(g):
        f0, f1 = g.fanin_lits(node)
        key0 = digests[lit_node(f0)] + bytes([f0 & 1])
        key1 = digests[lit_node(f1)] + bytes([f1 & 1])
        if key1 < key0:
            key0, key1 = key1, key0
        digests[node] = _h(b"A" + key0 + key1)
    graph = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    graph.update(b"G" + g.n_pis.to_bytes(4, "little"))
    for lit in g.pos:
        graph.update(digests[lit_node(lit)] + bytes([lit & 1]))
    return graph.hexdigest()
