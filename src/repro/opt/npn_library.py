"""Precomputed implementations for 4-input NPN classes.

The rewrite operator replaces 4-input cuts with stored subgraphs chosen
from the 222 NPN equivalence classes (Mishchenko's DAC'06 scheme).  Here
each class representative is synthesized once — ISOP of the cheaper
polarity, algebraically factored — and cached; concrete cut instances are
obtained by permuting/complementing the leaves per the recorded NPN
transform.

Construction is lazy: a class is synthesized the first time a cut mapping
to it is seen, so importing the library costs nothing and a full
enumeration is never required in the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..factor.factoring import factor
from ..factor.tree import FactorTree
from ..tt.isop import isop_exact
from ..tt.npn import Transform, npn_canonize

N_CUT_VARS = 4
_FULL = 0xFFFF


@dataclass(frozen=True)
class LibraryEntry:
    """Implementation of one canonical class function."""

    canonical: int
    tree: FactorTree  # computes either the function or its complement...
    inverted: bool  # ...as indicated here

    def n_literals(self) -> int:
        return self.tree.n_literals()


class NpnLibrary:
    """Lazy cache of canonical-class implementations."""

    def __init__(self) -> None:
        self._entries: dict[int, LibraryEntry] = {}
        self._canon_cache: dict[int, tuple[int, Transform]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, tt: int) -> tuple[LibraryEntry, Transform]:
        """Implementation + transform for an arbitrary 4-var function.

        The returned transform ``(perm, input_flips, output_flip)``
        satisfies ``apply_transform(entry.canonical, transform) == tt``:
        canonical variable ``j`` must be driven by cut leaf ``perm[j]``,
        complemented iff bit ``j`` of ``input_flips``; the root inverts
        iff ``output_flip`` (xor ``entry.inverted``).
        """
        tt &= _FULL
        cached = self._canon_cache.get(tt)
        if cached is None:
            cached = npn_canonize(tt)
            self._canon_cache[tt] = cached
        canonical, transform = cached
        entry = self._entries.get(canonical)
        if entry is None:
            entry = _synthesize(canonical)
            self._entries[canonical] = entry
        return entry, transform

    def leaf_literals(
        self, leaf_lits: list[int], transform: Transform
    ) -> tuple[list[int], bool]:
        """Arrange concrete cut-leaf literals for the canonical tree.

        Returns ``(ordered_leaf_lits, extra_output_inversion)``.
        """
        perm, input_flips, output_flip = transform
        arranged = [
            leaf_lits[perm[j]] ^ (input_flips >> j & 1) for j in range(N_CUT_VARS)
        ]
        return arranged, output_flip


def _synthesize(canonical: int) -> LibraryEntry:
    """Factored implementation of a canonical function, cheaper polarity."""
    direct = factor(isop_exact(canonical, N_CUT_VARS))
    complement = factor(isop_exact(canonical ^ _FULL, N_CUT_VARS))
    if complement.n_literals() < direct.n_literals():
        return LibraryEntry(canonical, complement, inverted=True)
    return LibraryEntry(canonical, direct, inverted=False)


_DEFAULT: NpnLibrary | None = None


def default_library() -> NpnLibrary:
    """Process-wide shared library instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = NpnLibrary()
    return _DEFAULT
