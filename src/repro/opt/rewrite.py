"""DAG-aware AIG rewriting (Mishchenko et al., DAC'06).

For each node, enumerate its 4-input cuts, canonicalize each cut
function into its NPN class, instantiate the library's precomputed
factored implementation on the cut leaves, and commit the candidate with
the best non-negative gain (MFFC freed minus strash-aware nodes added).

Cuts are enumerated once per pass on the entering network; cuts
invalidated by earlier commits in the same pass are detected (dead
leaves / uncovered cones) and skipped, which matches the greedy one-pass
character of the original.

The per-node work is split into three reusable phases shared with the
conflict-wave engine (:mod:`repro.engine.operators`):

* **snapshot** — :func:`usable_node_cuts` filters a node's enumerated
  cuts down to the live, >= 2-leaf ones (counting the stale rest);
* **evaluate** — :func:`evaluate_cut` is the pure
  ``truth table -> (library entry, NPN transform)`` lookup, the step the
  engine batches and caches per wave;
* **commit** — :func:`commit_scored` gain-checks every scored cut
  against the *current* graph (MFFC, strash-aware node count, optional
  required-level bound) and commits the best, exactly once.

The sequential :func:`rewrite` composes the three per node; the wave
scheduler runs snapshot once per candidate, evaluate once per wave and
commit serially at replay.  Both paths therefore share one
implementation of every graph-facing decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..aig.graph import AIG
from ..aig.levels import RequiredLevels
from ..aig.literal import lit_node, lit_not, make_lit
from ..aig.mffc import mffc_nodes
from ..aig.simulate import cone_truth
from ..cuts.enumerate import enumerate_cuts, node_cuts
from ..errors import TruthTableError
from ..factor.to_aig import build_tree, count_tree
from .npn_library import NpnLibrary, default_library

N_LIBRARY_VARS = 4
"""Library cut width: every scored cut is padded to this many variables."""


@dataclass
class RewriteParams:
    k: int = 4
    max_cuts: int = 8
    zero_cost: bool = False
    preserve_levels: bool = False


@dataclass
class RewriteStats:
    nodes_visited: int = 0
    cuts_tried: int = 0
    commits: int = 0
    gain_total: int = 0
    stale_cuts: int = 0
    time_total: float = 0.0


def rewrite(
    g: AIG,
    params: RewriteParams | None = None,
    library: NpnLibrary | None = None,
) -> RewriteStats:
    """One rewrite pass over ``g`` in place."""
    params = params or RewriteParams()
    if library is None:  # NB: a fresh library is empty and therefore falsy
        library = default_library()
    stats = RewriteStats()
    g.drain_dirty()  # sequential pass: retire the previous journal epoch
    with obs.span("opt.rewrite") as pass_span:
        required = RequiredLevels(g) if params.preserve_levels else None
        all_cuts = enumerate_cuts(g, params.k, params.max_cuts)
        for node in g.and_ids():
            if g.is_dead(node):
                continue
            stats.nodes_visited += 1
            _rewrite_node(g, node, all_cuts, library, params, required, stats)
        pass_span.set(nodes=stats.nodes_visited, commits=stats.commits)
    stats.time_total = pass_span.duration
    return stats


def usable_node_cuts(
    g: AIG,
    node: int,
    all_cuts,
) -> tuple[list[list[int]], int]:
    """Snapshot phase: the node's live, non-trivial cuts as sorted leaves.

    Returns ``(cuts, n_stale)`` where ``n_stale`` counts enumerated cuts
    dropped because a leaf died since enumeration (earlier commits of the
    same pass).  Single-leaf cuts are silently skipped, as in the
    original sweep.
    """
    cuts: list[list[int]] = []
    n_stale = 0
    for cut in node_cuts(g, node, all_cuts):
        if len(cut) < 2:
            continue
        leaves = sorted(cut)
        if any(g.is_dead(leaf) for leaf in leaves):
            n_stale += 1
            continue
        cuts.append(leaves)
    return cuts, n_stale


def evaluate_cut(tt: int, n_leaves: int, library: NpnLibrary, cache=None):
    """Evaluate phase: library entry + NPN transform for one cut function.

    Pure in ``(tt, n_leaves)`` — no graph access — which is what lets the
    wave engine batch it per wave.  ``cache`` — when given — routes the
    resolution through a cross-pass memo layer
    (:meth:`repro.engine.cache.ResynthCache.library_lookup`), which is
    how the engine makes every distinct function canonize once per flow;
    both paths run this one pad + lookup implementation.
    """
    tt4 = pad_tt(tt, n_leaves)
    if cache is not None:
        return cache.library_lookup(tt4, library)
    return library.lookup(tt4)


def commit_scored(
    g: AIG,
    node: int,
    scored: list,
    library: NpnLibrary,
    params: RewriteParams,
    required: RequiredLevels | None,
    dirty: set[int] | None = None,
) -> int | None:
    """Commit phase: gain-check every scored cut, commit the best.

    ``scored`` is a list of ``(leaves, entry, transform)`` triples from
    :func:`evaluate_cut`; everything graph-dependent — the cut-bounded
    MFFC, the strash-aware node count, the required-level bound and the
    final build/replace — is evaluated here, against the graph as it is
    *now*, which is what makes the function safe to defer to the wave
    engine's serial replay.  Returns the realized gain (AND nodes
    removed) or ``None`` when no cut commits.

    ``dirty`` — when given — accumulates the node kills this commit
    journaled, mirroring :func:`repro.opt.refactor.commit_tree`.
    """
    best = None  # ((gain, -cost), tree, arranged_lits, out_invert, leaves)
    for leaves, entry, transform in scored:
        padded = list(leaves) + [0] * (N_LIBRARY_VARS - len(leaves))
        leaf_lits = [make_lit(leaf) for leaf in padded]
        arranged, flip = library.leaf_literals(leaf_lits, transform)
        out_invert = flip ^ entry.inverted
        mffc = mffc_nodes(g, node, boundary=set(leaves))
        saved = len(mffc)
        max_added = saved if params.zero_cost else saved - 1
        if max_added < 0:
            continue
        result = count_tree(g, entry.tree, arranged, set(mffc), max_added)
        if result is None:
            continue
        if (
            required is not None
            and result.cost > 0
            and result.root_level > required.required(node)
        ):
            continue
        gain = saved - result.cost
        key = (gain, -result.cost)
        if best is None or key > best[0]:
            best = (key, entry.tree, arranged, out_invert, leaves)
    if best is None:
        return None
    _key, tree, arranged, out_invert, _leaves = best
    built = build_tree(g, tree, arranged, avoid_root=node)
    if built is None or lit_node(built) == node:
        return None
    before = g.n_ands
    g.replace(node, lit_not(built) if out_invert else built)
    if dirty is not None:
        dirty.update(g.drain_dirty().killed)
    return before - g.n_ands


def _rewrite_node(
    g: AIG,
    node: int,
    all_cuts,
    library: NpnLibrary,
    params: RewriteParams,
    required: RequiredLevels | None,
    stats: RewriteStats,
) -> bool:
    cuts, n_stale = usable_node_cuts(g, node, all_cuts)
    stats.stale_cuts += n_stale
    scored = []
    for leaves in cuts:
        try:
            tt = cone_truth(g, node, leaves)
        except TruthTableError:
            stats.stale_cuts += 1
            continue
        stats.cuts_tried += 1
        entry, transform = evaluate_cut(tt, len(leaves), library)
        scored.append((leaves, entry, transform))
    gain = commit_scored(g, node, scored, library, params, required)
    if gain is None:
        return False
    stats.commits += 1
    stats.gain_total += gain
    return True


def pad_tt(tt: int, n_leaves: int) -> int:
    """Extend a k<4-leaf truth table to 4 variables (new vars are don't-
    affect: the function simply ignores them)."""
    width = 1 << n_leaves
    while width < 16:
        tt = tt | (tt << width)
        width *= 2
    return tt & 0xFFFF
