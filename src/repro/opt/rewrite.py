"""DAG-aware AIG rewriting (Mishchenko et al., DAC'06).

For each node, enumerate its 4-input cuts, canonicalize each cut
function into its NPN class, instantiate the library's precomputed
factored implementation on the cut leaves, and commit the candidate with
the best non-negative gain (MFFC freed minus strash-aware nodes added).

Cuts are enumerated once per pass on the entering network; cuts
invalidated by earlier commits in the same pass are detected (dead
leaves / uncovered cones) and skipped, which matches the greedy one-pass
character of the original.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..aig.graph import AIG
from ..aig.levels import RequiredLevels
from ..aig.literal import lit_node, lit_not, make_lit
from ..aig.mffc import mffc_nodes
from ..aig.simulate import cone_truth
from ..cuts.enumerate import enumerate_cuts, node_cuts
from ..errors import TruthTableError
from ..factor.to_aig import build_tree, count_tree
from .npn_library import NpnLibrary, default_library


@dataclass
class RewriteParams:
    k: int = 4
    max_cuts: int = 8
    zero_cost: bool = False
    preserve_levels: bool = False


@dataclass
class RewriteStats:
    nodes_visited: int = 0
    cuts_tried: int = 0
    commits: int = 0
    gain_total: int = 0
    stale_cuts: int = 0
    time_total: float = 0.0


def rewrite(
    g: AIG,
    params: RewriteParams | None = None,
    library: NpnLibrary | None = None,
) -> RewriteStats:
    """One rewrite pass over ``g`` in place."""
    params = params or RewriteParams()
    library = library or default_library()
    stats = RewriteStats()
    g.drain_dirty()  # sequential pass: retire the previous journal epoch
    start = time.perf_counter()
    required = RequiredLevels(g) if params.preserve_levels else None
    all_cuts = enumerate_cuts(g, params.k, params.max_cuts)
    for node in g.and_ids():
        if g.is_dead(node):
            continue
        stats.nodes_visited += 1
        _rewrite_node(g, node, all_cuts, library, params, required, stats)
    stats.time_total = time.perf_counter() - start
    return stats


def _rewrite_node(
    g: AIG,
    node: int,
    all_cuts,
    library: NpnLibrary,
    params: RewriteParams,
    required: RequiredLevels | None,
    stats: RewriteStats,
) -> bool:
    best = None  # (gain, -cost, tree, arranged_lits, out_invert, mffc_leaves)
    for cut in node_cuts(g, node, all_cuts):
        if len(cut) < 2:
            continue
        leaves = sorted(cut)
        if any(g.is_dead(leaf) for leaf in leaves):
            stats.stale_cuts += 1
            continue
        try:
            tt = cone_truth(g, node, leaves)
        except TruthTableError:
            stats.stale_cuts += 1
            continue
        stats.cuts_tried += 1
        padded = leaves + [0] * (4 - len(leaves))
        tt4 = _pad_tt(tt, len(leaves))
        entry, transform = library.lookup(tt4)
        leaf_lits = [make_lit(leaf) for leaf in padded]
        arranged, flip = library.leaf_literals(leaf_lits, transform)
        out_invert = flip ^ entry.inverted
        mffc = mffc_nodes(g, node, boundary=set(leaves))
        saved = len(mffc)
        max_added = saved if params.zero_cost else saved - 1
        if max_added < 0:
            continue
        result = count_tree(g, entry.tree, arranged, set(mffc), max_added)
        if result is None:
            continue
        if (
            required is not None
            and result.cost > 0
            and result.root_level > required.required(node)
        ):
            continue
        gain = saved - result.cost
        key = (gain, -result.cost)
        if best is None or key > best[0]:
            best = (key, entry.tree, arranged, out_invert, leaves)
    if best is None:
        return False
    _key, tree, arranged, out_invert, _leaves = best
    built = build_tree(g, tree, arranged, avoid_root=node)
    if built is None or lit_node(built) == node:
        return False
    before = g.n_ands
    g.replace(node, lit_not(built) if out_invert else built)
    stats.commits += 1
    stats.gain_total += before - g.n_ands
    return True


def _pad_tt(tt: int, n_leaves: int) -> int:
    """Extend a k<4-leaf truth table to 4 variables (new vars are don't-
    affect: the function simply ignores them)."""
    width = 1 << n_leaves
    while width < 16:
        tt = tt | (tt << width)
        width *= 2
    return tt & 0xFFFF
