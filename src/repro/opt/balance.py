"""AND-tree balancing (ABC's ``balance``).

Collects maximal multi-input AND super-gates (descending through
non-complemented, single-fanout fanins) and rebuilds each as a balanced
tree, combining the lowest-level operands first.  Produces a new network,
like ABC.
"""

from __future__ import annotations

import heapq

from ..aig.graph import AIG
from ..aig.literal import lit_node
from ..aig.traversal import topological_order


def balance(g: AIG, name: str | None = None) -> AIG:
    """Depth-balanced rebuild of ``g``."""
    out = AIG(name if name is not None else g.name)
    new_lit: dict[int, int] = {0: 0}
    for i, pi in enumerate(g.pis):
        new_lit[pi] = out.add_pi(g.pi_name(i))

    order = topological_order(g)
    needed = _shared_or_po_driven(g)
    for node in order:
        if node in new_lit or node not in needed:
            continue
        new_lit[node] = _build_balanced(g, out, node, new_lit, needed)
    for i, lit in enumerate(g.pos):
        driver = lit_node(lit)
        if driver not in new_lit:  # driver was an unshared interior node
            new_lit[driver] = _build_balanced(g, out, driver, new_lit, needed)
        out.add_po(new_lit[driver] ^ (lit & 1), g.po_name(i))
    return out


def _shared_or_po_driven(g: AIG) -> set[int]:
    """Nodes that must exist as explicit signals in the balanced network:
    PO drivers, complemented-edge targets, and multi-fanout nodes."""
    needed: set[int] = set()
    for lit in g.pos:
        needed.add(lit_node(lit))
    for node in g.iter_ands():
        for fl in g.fanin_lits(node):
            fanin = lit_node(fl)
            if not g.is_and(fanin):
                continue
            if (fl & 1) or g.n_refs(fanin) > 1:
                needed.add(fanin)
    return needed


def _build_balanced(
    g: AIG,
    out: AIG,
    root: int,
    new_lit: dict[int, int],
    needed: set[int],
) -> int:
    """Rebuild the AND super-gate rooted at ``root`` as a balanced tree."""
    if not g.is_and(root):
        return new_lit[root]
    # Gather super-gate operand literals (old-graph literals).
    operands: list[int] = []
    stack = list(g.fanin_lits(root))
    while stack:
        lit = stack.pop()
        node = lit_node(lit)
        expandable = (
            g.is_and(node)
            and not (lit & 1)
            and node not in needed
        )
        if expandable:
            stack.extend(g.fanin_lits(node))
        else:
            operands.append(lit)
    # Map operands into the new graph (building shared subtrees on demand).
    mapped: list[int] = []
    for lit in operands:
        node = lit_node(lit)
        if node not in new_lit:
            new_lit[node] = _build_balanced(g, out, node, new_lit, needed)
        mapped.append(new_lit[node] ^ (lit & 1))
    # Balanced combine: cheapest levels first.
    heap = [(out.level(lit_node(lit)), i, lit) for i, lit in enumerate(mapped)]
    heapq.heapify(heap)
    tiebreak = len(heap)
    while len(heap) > 1:
        _l0, _i0, a = heapq.heappop(heap)
        _l1, _i1, b = heapq.heappop(heap)
        combined = out.add_and(a, b)
        heapq.heappush(heap, (out.level(lit_node(combined)), tiebreak, combined))
        tiebreak += 1
    return heap[0][2]
