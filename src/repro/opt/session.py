"""Flow sessions: explicit lifecycle for the resources a script shares.

``run_flow`` used to thread ``classifier`` / ``engine_workers`` /
``engine_executor`` / a resynthesis cache through an if/elif chain as
ad-hoc kwargs.  :class:`OptSession` replaces that plumbing with one
owner: a context manager that holds the per-flow resources — the
cross-pass :class:`repro.engine.ResynthCache`, the NPN library, an
optional classifier handle, and (when parallel commands ask for one) a
:class:`repro.engine.ResynthExecutor` worker pool — and executes
scripts against a declarative :class:`repro.opt.registry.CommandRegistry`.
Resources are created **lazily on first demand** (``b; b`` allocates
nothing) and owned resources are closed on exit; externally provided
ones (a serving layer's shard pool, a shared classifier service client)
are used but never closed.

One session may run many scripts — and, as the serving layer does, many
circuits concurrently: per-run state lives in a thread-private
:class:`FlowContext`, while the shared cache/library/pool are safe to
share because their entries are pure (exact cache hits are bit-identical
to recomputation).  :class:`SessionStats` records what the session
provisioned and what it had to drop — most notably shared executors
discarded because a script pinned a conflicting ``-w`` (previously a
silent no-trace event).

``repro.opt.run_flow`` is a thin wrapper: one throwaway session per
call, byte-identical to the historical behavior.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from .. import obs
from ..aig.graph import AIG
from ..errors import DeadlineExceeded, ReproError
from .flow import FlowReport, FlowStep
from .refactor import RefactorParams
from .registry import CommandFlags, CommandRegistry, ResolvedCommand, default_registry


@dataclass
class DroppedExecutor:
    """One shared-executor discard (script pin vs pool width conflict)."""

    command: str
    pinned_workers: int
    executor_workers: int
    external: bool  # True when the dropped pool was caller-provided


class SessionStats:
    """What a session provisioned, reused and dropped across its runs.

    Backed by the :mod:`repro.obs` metrics registry: each session owns a
    process-unique ``session`` label and its counters/gauges live as
    registry series (``session_runs_total``, ``session_commands_total``,
    ``session_executors_dropped_total``, ``session_resource_created``),
    so drop records and provisioning flags appear in Prometheus/JSONL
    exports with no second bookkeeping path.  The historical public
    attributes (``runs``, ``commands``, ``cache_created``, ...) remain
    as read-through views over those series; ``dropped_executors`` keeps
    the detailed per-drop records (the registry carries the count).
    """

    def __init__(self) -> None:
        self.label = obs.next_label("session")
        labels = {"session": self.label}
        metrics = obs.metrics()
        self.dropped_executors: list[DroppedExecutor] = []
        self._runs = metrics.counter("session_runs_total", **labels)
        self._commands = metrics.counter("session_commands_total", **labels)
        self._drops = metrics.counter("session_executors_dropped_total", **labels)
        self._created = {
            kind: metrics.gauge("session_resource_created", resource=kind, **labels)
            for kind in ("cache", "library", "executor")
        }

    # -- recording (callers hold the session lock where concurrency applies)

    def record_run(self) -> None:
        self._runs.add(1)

    def record_command(self) -> None:
        self._commands.add(1)

    def record_drop(self, drop: DroppedExecutor) -> None:
        self.dropped_executors.append(drop)
        self._drops.add(1)

    def mark_created(self, kind: str) -> None:
        self._created[kind].set(1)

    # -- read-through views (the historical dataclass attributes) ------------

    @property
    def runs(self) -> int:
        return int(self._runs.value)

    @property
    def commands(self) -> int:
        return int(self._commands.value)

    @property
    def cache_created(self) -> bool:
        return bool(self._created["cache"].value)

    @property
    def library_created(self) -> bool:
        return bool(self._created["library"].value)

    @property
    def executor_created(self) -> bool:
        return bool(self._created["executor"].value)

    @property
    def executors_dropped(self) -> int:
        return len(self.dropped_executors)


class FlowContext:
    """Per-run view of a session (the ``ctx`` of ``CommandSpec.execute``).

    Thread-private: it carries the run's active classifier (a serving
    layer runs one session per shard but a *different* fused classifier
    client per circuit) and the current command string for diagnostics,
    while delegating every shared resource to the owning session.
    """

    def __init__(self, session: "OptSession", classifier, deadline=None) -> None:
        self.session = session
        self.classifier = classifier
        self.deadline = deadline  # the run's latency budget (or None)
        self.command = ""  # raw spelling of the step being executed
        self.executor_dropped = False  # set when a shared pool is discarded
        self._run_cache = None  # lazily created under per_run_cache

    @property
    def resynth_cache(self):
        if self.session.per_run_cache:
            if self._run_cache is None:
                from ..engine import ResynthCache

                self._run_cache = ResynthCache(self.session.cache_entries)
                self.session.stats.mark_created("cache")
            return self._run_cache
        return self.session.resynth_cache

    @property
    def npn_library(self):
        return self.session.npn_library

    def engine_resources(self, flags: CommandFlags, pooled: bool):
        """Resolve ``(workers, executor)`` for one parallel command.

        Precedence (unchanged from the pre-session flow layer): an
        explicit ``-w N`` always wins — a shared executor of a different
        width is **dropped** rather than silently overriding the pinned
        count, and the drop is now recorded on the session stats and on
        the step.  Without ``-w``, the session-level ``engine_workers``
        default applies, and an attached executor's width governs as
        usual.  ``pooled`` commands (the refactor engine family) may
        lazily materialize the session's own pool; width-only consumers
        (wave rewrite) never cause one to exist.
        """
        session = self.session
        workers = flags.workers if flags.workers is not None else 0
        explicit = workers > 0
        if not explicit and session.engine_workers is not None:
            workers = session.engine_workers
        executor = session._external_executor
        external = executor is not None
        if not external:
            # The session's own pool serves pooled commands and — like
            # an attached external pool always did — acts as a width
            # source for width-only consumers (wave rewrite), but only
            # pooled unpinned steps may *materialize* it (at the
            # session's default width).
            executor = session._own_executor
            if executor is None and pooled and not explicit:
                executor = session._materialize_executor()
        if explicit and executor is not None and executor.workers != workers:
            self._record_drop(workers, executor.workers, external=external)
            executor = None
        return workers, executor

    def _record_drop(self, pinned: int, pool_width: int, external: bool) -> None:
        """Log one bypassed pool: the pin wins, but never silently.

        Historically a width-mismatched shared executor was discarded
        with no trace; now the discard lands on the session stats and on
        the step (``FlowStep.executor_dropped``), whether the bypassed
        pool was caller-attached (``external``) or session-owned.
        """
        with self.session._lock:
            self.session.stats.record_drop(
                DroppedExecutor(
                    command=self.command,
                    pinned_workers=pinned,
                    executor_workers=pool_width,
                    external=external,
                )
            )
        self.executor_dropped = True


class OptSession:
    """Owns one flow's shared resources; runs scripts via the registry.

    Parameters: ``classifier`` is the default classifier handle for
    commands that declare ``needs_classifier`` (a per-``run`` override
    exists for serving).  ``engine_workers`` is the worker count applied
    to parallel commands with no explicit ``-w``.  ``engine_executor``
    attaches an externally owned pool (used, never closed); without one
    the session materializes its own on first pooled command — sized by
    ``engine_workers`` (falling back to the core count) — and closes it
    on exit.  ``library`` pins the NPN library (default: the process-wide
    shared instance, created lazily on first rewrite-family command).
    ``registry`` selects the command set (default: the process registry).

    ``per_run_cache=True`` gives each :meth:`run` a private resynthesis
    cache instead of the session-wide one.  Steps of one script still
    share it (the ``elf; elf`` warm start), but nothing leaks between
    runs: the serving layer uses this so a served circuit's *content*
    never depends on what the shard's other circuits seeded — the wave
    engine's NPN layer can factor a class representative differently
    than the concrete table would have been, so at ``workers >= 2`` a
    cross-run shared cache would make results timing-dependent.  (Exact
    entries — all a sequential or ``workers=1`` step ever takes — are
    bit-identical to recomputation, so sharing is safe there; the
    default stays session-wide.)

    ``cache_entries`` bounds every resynthesis cache this session
    creates (session-wide or per-run) to an LRU of that many entries per
    layer — see :class:`repro.engine.ResynthCache`.  Long-lived shard
    sessions in the serving tier set it so cache memory stays flat under
    unbounded circuit traffic; ``None`` (the default) is unbounded.

    Explicit lifecycle: use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        classifier=None,
        engine_workers: int | None = None,
        engine_executor=None,
        library=None,
        registry: CommandRegistry | None = None,
        per_run_cache: bool = False,
        cache_entries: int | None = None,
    ) -> None:
        self.classifier = classifier
        self.engine_workers = engine_workers
        self.per_run_cache = per_run_cache
        self.cache_entries = cache_entries
        self.registry = registry if registry is not None else default_registry()
        self.stats = SessionStats()
        self._external_executor = engine_executor
        self._own_executor = None
        self._cache = None
        self._library = library
        self._lock = threading.Lock()
        self._closed = False

    # -- shared resources, created lazily on first demand --------------------

    @property
    def resynth_cache(self):
        """The session's cross-pass resynthesis cache (created on demand)."""
        if self._cache is None:
            from ..engine import ResynthCache

            with self._lock:
                if self._cache is None:
                    self._cache = ResynthCache(self.cache_entries)
                    self.stats.mark_created("cache")
        return self._cache

    @property
    def cache_materialized(self) -> bool:
        """Whether any command has demanded the resynthesis cache yet."""
        return self._cache is not None

    @property
    def npn_library(self):
        """The session's NPN library handle (created on demand)."""
        if self._library is None:
            from .npn_library import default_library

            with self._lock:
                if self._library is None:
                    self._library = default_library()
                    self.stats.mark_created("library")
        return self._library

    @property
    def executor_is_external(self) -> bool:
        return self._external_executor is not None

    @property
    def engine_executor(self):
        """The worker pool this session's pooled commands would share
        (external if attached, else the session-owned one) — ``None``
        until a pooled command or :meth:`warm_engine` materializes it."""
        if self._external_executor is not None:
            return self._external_executor
        return self._own_executor

    def _materialize_executor(self, width: int | None = None):
        """Create (or return) the session-owned pool.

        Default width is ``engine_workers`` (else one per core); widths
        of one return ``None`` — a width-1 pool would only shadow the
        engine's bit-identical sequential delegation.
        """
        if width is None:
            width = self.engine_workers
        if width is None or width <= 0:
            width = os.cpu_count() or 1
        if width <= 1:
            return None
        if self._own_executor is None:
            from ..engine import ResynthExecutor

            with self._lock:
                if self._own_executor is None:
                    self._own_executor = ResynthExecutor(width, RefactorParams())
                    self.stats.mark_created("executor")
        return self._own_executor

    def warm_engine(self, width: int) -> bool:
        """Pre-fork the session's pool at ``width``; True when one is live.

        Serving layers call this from a still-single-threaded moment:
        forking a process pool while sibling threads run is
        undefined-behaviour territory on POSIX, so the fork is
        front-loaded.  With an external executor attached this is a
        no-op (the caller owns that pool's lifecycle).  A session pool
        that already exists at a *different* width is closed and
        replaced at ``width`` — the whole point is that later steps find
        a matching pool — which is another reason this belongs in a
        single-threaded moment.
        """
        if self._external_executor is not None:
            return True
        if width <= 1:
            return False
        with self._lock:
            if (
                self._own_executor is not None
                and self._own_executor.workers != width
            ):
                self._own_executor.close()
                self._own_executor = None
        executor = self._materialize_executor(width)
        return executor is not None and executor.warm()

    # -- execution ------------------------------------------------------------

    def run(
        self, g: AIG, script: str, classifier=None, deadline=None
    ) -> tuple[AIG, FlowReport]:
        """Execute a ``;``-separated script on ``g``; returns (g, report).

        Empty commands (``;;``, stray whitespace) are skipped.  Each
        step resolves through the registry — unknown commands and
        unsupported flags raise :class:`repro.errors.ReproError`, naming
        the raw spelling — then executes with this session's resources.
        ``classifier`` overrides the session default for this run only
        (the serving layer runs per-circuit fused clients through one
        shard session this way).

        ``deadline`` (a :class:`repro.resilience.Deadline`) bounds the
        whole run: it is checked between steps and threaded into every
        engine command, so expiry anywhere raises
        :class:`repro.errors.DeadlineExceeded` with ``partial`` set to
        the best network committed so far (steps complete serially and
        engine commits are serial, so the partial is always a
        consistent, CEC-verifiable prefix of the full flow) and
        ``report`` covering the completed steps.
        """
        if self._closed:
            raise ReproError("OptSession is closed")
        ctx = FlowContext(
            self,
            classifier if classifier is not None else self.classifier,
            deadline=deadline,
        )
        report = FlowReport(script=script)
        with self._lock:  # shard sessions run circuits concurrently
            self.stats.record_run()
        metrics = obs.metrics()
        with obs.span("flow.run", script=script, session=self.stats.label) as run_span:
            try:
                for raw in script.split(";"):
                    command = raw.strip()
                    if not command:
                        continue
                    if deadline is not None:
                        deadline.check("flow.command")
                    resolved = self.registry.resolve(command)
                    self._check_resources(resolved, ctx)
                    ctx.command = command
                    ctx.executor_dropped = False
                    with self._lock:
                        self.stats.record_command()
                    ands_before = g.n_ands
                    # The per-command span both feeds the trace timeline and
                    # *is* the step timing (FlowStep.runtime and therefore
                    # FlowReport.runtime_of read its duration) — one clock
                    # for reports and telemetry.
                    with obs.span(
                        "flow.command", command=command, normalized=resolved.canonical
                    ) as step_span:
                        g, detail = resolved.spec.execute(g, ctx, resolved.flags)
                        step_span.set(n_ands=g.n_ands)
                    head = resolved.head
                    metrics.counter("flow_commands_total", command=head).add(1)
                    metrics.histogram("flow_command_seconds", command=head).observe(
                        step_span.duration
                    )
                    metrics.counter("flow_command_and_delta_total", command=head).add(
                        abs(g.n_ands - ands_before)
                    )
                    report.steps.append(
                        FlowStep(
                            command=command,
                            runtime=step_span.duration,
                            n_ands=g.n_ands,
                            level=g.max_level(),
                            detail=detail,
                            normalized=resolved.canonical,
                            executor_dropped=ctx.executor_dropped,
                        )
                    )
            except DeadlineExceeded as error:
                # An interrupted engine pass left ``g`` at its committed
                # prefix; earlier completed steps are all on the report.
                error.partial = g
                error.report = report
                raise
            run_span.set(steps=len(report.steps), n_ands=g.n_ands)
        return g, report

    def probe(
        self, g: AIG, script: str, classifier=None, deadline=None
    ) -> tuple[AIG, FlowReport]:
        """Run ``script`` on a snapshot of ``g``: measure without committing.

        ``g`` itself is never mutated — the script executes on a clone,
        so rolling a probe back is just dropping the returned graph and
        keeping ``g``.  The tuner (:mod:`repro.tune`) uses this to score
        candidate commands against the same committed state repeatedly;
        callers that like the outcome adopt the returned graph as their
        new state.  Semantics (resources, deadline threading, the
        :class:`repro.errors.DeadlineExceeded` partial contract) are
        exactly those of :meth:`run` applied to the clone.
        """
        return self.run(g.clone(), script, classifier=classifier, deadline=deadline)

    def _check_resources(self, resolved: ResolvedCommand, ctx: FlowContext) -> None:
        if resolved.spec.needs_classifier and ctx.classifier is None:
            raise ReproError(
                f"flow step {resolved.head!r} requires a classifier"
            )

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release owned resources (idempotent); external ones are kept."""
        self._closed = True
        executor, self._own_executor = self._own_executor, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "OptSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
