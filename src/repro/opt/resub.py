"""Resubstitution: re-express a node using existing divisors.

For each node, collect divisor candidates whose function is defined over
the node's reconvergence-driven cut (cone-internal nodes outside the
MFFC, the leaves themselves, and fanout-closure nodes built purely from
existing divisors), then try:

* 0-resub — an existing divisor (either phase) already computes the
  node's function: gain = MFFC size;
* 1-resub — some AND/OR of two divisors (any phases) does: gain =
  MFFC size - 1 (or more when the gate already exists).

Truth tables over the cut leaves are exact, so every accepted move is
functionally safe by construction; gains use the same MFFC accounting as
refactor.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..aig.graph import AIG
from ..aig.literal import lit_node, lit_not, make_lit
from ..aig.mffc import mffc_nodes
from ..aig.simulate import cone_truth, full_mask, var_mask
from ..cuts.reconv import reconv_cut


@dataclass
class ResubParams:
    max_leaves: int = 8
    max_divisors: int = 60
    zero_cost: bool = False


@dataclass
class ResubStats:
    nodes_visited: int = 0
    zero_resubs: int = 0
    one_resubs: int = 0
    gain_total: int = 0
    time_total: float = 0.0

    @property
    def commits(self) -> int:
        return self.zero_resubs + self.one_resubs


def resub(g: AIG, params: ResubParams | None = None) -> ResubStats:
    """One resubstitution pass over ``g`` in place."""
    params = params or ResubParams()
    stats = ResubStats()
    g.drain_dirty()  # sequential pass: retire the previous journal epoch
    with obs.span("opt.resub") as pass_span:
        for node in g.and_ids():
            if g.is_dead(node):
                continue
            stats.nodes_visited += 1
            _resub_node(g, node, params, stats)
        pass_span.set(nodes=stats.nodes_visited, commits=stats.commits)
    stats.time_total = pass_span.duration
    return stats


def _resub_node(g: AIG, node: int, params: ResubParams, stats: ResubStats) -> bool:
    cut = reconv_cut(g, node, params.max_leaves, collect_features=False)
    leaves = cut.leaves
    n = len(leaves)
    if n < 2:
        return False
    ones = full_mask(n)
    target = cone_truth(g, node, leaves)
    mffc = set(mffc_nodes(g, node, boundary=set(leaves)))
    saved = len(mffc)

    divisors = _collect_divisors(g, node, cut, mffc, params.max_divisors, n)

    # 0-resub: a divisor already computes the function (either phase).
    for div_node, div_tt in divisors:
        if div_node == node:
            continue
        if div_tt == target:
            inverted = False
        elif div_tt ^ ones == target:
            inverted = True
        else:
            continue
        if saved <= 0:
            continue
        before = g.n_ands
        g.replace(
            node,
            lit_not(make_lit(div_node)) if inverted else make_lit(div_node),
        )
        stats.zero_resubs += 1
        stats.gain_total += before - g.n_ands
        return True

    # 1-resub: AND of two divisors in some phase combination.
    min_saved = 1 if params.zero_cost else 2
    if saved < min_saved:
        return False
    candidates = [(d, tt) for d, tt in divisors if d != node]
    for i in range(len(candidates)):
        d1, t1 = candidates[i]
        for j in range(i + 1, len(candidates)):
            d2, t2 = candidates[j]
            for phase1 in (0, 1):
                a = t1 ^ (ones if phase1 else 0)
                for phase2 in (0, 1):
                    b = t2 ^ (ones if phase2 else 0)
                    product = a & b
                    if product == target:
                        out_phase = 0
                    elif product ^ ones == target:
                        out_phase = 1
                    else:
                        continue
                    lit1 = make_lit(d1, bool(phase1))
                    lit2 = make_lit(d2, bool(phase2))
                    # Cost: 0 when the AND already exists outside the MFFC.
                    hit = g.lookup_and(lit1, lit2)
                    cost = 0 if (hit is not None and lit_node(hit) not in mffc) else 1
                    gain = saved - cost
                    if gain < (0 if params.zero_cost else 1):
                        continue
                    new_lit = g.add_and(lit1, lit2)
                    if lit_node(new_lit) == node:
                        continue
                    before = g.n_ands
                    g.replace(node, lit_not(new_lit) if out_phase else new_lit)
                    stats.one_resubs += 1
                    stats.gain_total += before - g.n_ands
                    return True
    return False


def _collect_divisors(
    g: AIG,
    node: int,
    cut,
    mffc: set[int],
    max_divisors: int,
    n_leaves: int,
) -> list[tuple[int, int]]:
    """Divisor nodes with their truth tables over the cut leaves.

    Closure construction keeps every divisor's support inside the cut, so
    no divisor can lie in the node's transitive fanout (which would create
    a cycle on commit).
    """
    tts: dict[int, int] = {}
    result: list[tuple[int, int]] = []
    for i, leaf in enumerate(cut.leaves):
        tts[leaf] = var_mask(i, n_leaves)
        result.append((leaf, tts[leaf]))
    # Cone-internal nodes outside the MFFC (fanins are inside the cone).
    for inner in sorted(cut.interior):
        if inner in mffc or inner == node:
            continue
        value = _tt_from_fanins(g, inner, tts, n_leaves)
        if value is not None:
            tts[inner] = value
            result.append((inner, value))
    # One closure round: fanouts whose both fanins are known divisors.
    frontier = list(tts)
    for known in frontier:
        if len(result) >= max_divisors:
            break
        for fanout in g.iter_fanouts(known):
            if fanout in tts or fanout in mffc or fanout == node or g.is_dead(fanout):
                continue
            value = _tt_from_fanins(g, fanout, tts, n_leaves)
            if value is not None:
                tts[fanout] = value
                result.append((fanout, value))
                if len(result) >= max_divisors:
                    break
    return result[:max_divisors]


def _tt_from_fanins(
    g: AIG, node: int, tts: dict[int, int], n_leaves: int
) -> int | None:
    f0, f1 = g.fanin_lits(node)
    t0 = tts.get(f0 >> 1)
    t1 = tts.get(f1 >> 1)
    if t0 is None or t1 is None:
        return None
    ones = full_mask(n_leaves)
    if f0 & 1:
        t0 ^= ones
    if f1 & 1:
        t1 ^= ones
    return t0 & t1
