"""Logic optimization operators: refactor, rewrite, resubstitution,
balance, and flow scripting."""

from .balance import balance
from .flow import COMPRESS2, RESYN2, FlowReport, FlowStep, canonical_command, run_flow
from .npn_library import LibraryEntry, NpnLibrary, default_library
from .refactor import RefactorParams, RefactorStats, commit_tree, refactor, refactor_node
from .resub import ResubParams, ResubStats, resub
from .rewrite import RewriteParams, RewriteStats, rewrite

__all__ = [
    "COMPRESS2",
    "FlowReport",
    "FlowStep",
    "LibraryEntry",
    "NpnLibrary",
    "RESYN2",
    "RefactorParams",
    "RefactorStats",
    "ResubParams",
    "ResubStats",
    "RewriteParams",
    "RewriteStats",
    "balance",
    "canonical_command",
    "commit_tree",
    "default_library",
    "refactor",
    "refactor_node",
    "resub",
    "rewrite",
    "run_flow",
]
