"""Logic optimization operators: refactor, rewrite, resubstitution,
balance, and flow scripting (registry-driven, session-owned resources)."""

from .balance import balance
from .flow import (
    COMPRESS2,
    NAMED_SCRIPTS,
    RESYN2,
    FlowReport,
    FlowStep,
    canonical_command,
    run_flow,
)
from .npn_library import LibraryEntry, NpnLibrary, default_library
from .refactor import RefactorParams, RefactorStats, commit_tree, refactor, refactor_node
from .registry import (
    CommandFlags,
    CommandRegistry,
    CommandSpec,
    ResolvedCommand,
    ScriptNeeds,
    default_registry,
)
from .resub import ResubParams, ResubStats, resub
from .rewrite import RewriteParams, RewriteStats, rewrite
from .session import DroppedExecutor, FlowContext, OptSession, SessionStats

__all__ = [
    "COMPRESS2",
    "CommandFlags",
    "CommandRegistry",
    "CommandSpec",
    "DroppedExecutor",
    "FlowContext",
    "FlowReport",
    "FlowStep",
    "LibraryEntry",
    "NAMED_SCRIPTS",
    "NpnLibrary",
    "OptSession",
    "RESYN2",
    "RefactorParams",
    "RefactorStats",
    "ResolvedCommand",
    "ResubParams",
    "ResubStats",
    "RewriteParams",
    "RewriteStats",
    "ScriptNeeds",
    "SessionStats",
    "balance",
    "canonical_command",
    "commit_tree",
    "default_library",
    "default_registry",
    "refactor",
    "refactor_node",
    "resub",
    "rewrite",
    "run_flow",
]
