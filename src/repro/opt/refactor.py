"""The refactor operator (ABC's ``abcRefactor.c`` flow, in Python).

For every AND node (Algorithm 1 of the paper):

1. form a reconvergence-driven cut (default leaf limit 10);
2. compute the cut function's truth table;
3. derive an ISOP, algebraically factor it (both polarities, keep the
   cheaper), and *count* — against the structural hash table — how many
   fresh nodes the factored form would need;
4. commit when that beats the MFFC the replacement frees
   (``gain = nodes removed - nodes added > 0``; ``== 0`` accepted in
   zero-cost mode), optionally rejecting commits that would push the root
   past its required level.

Per-phase wall-clock buckets are recorded because the whole point of ELF
is where refactor's time goes: most cuts fail step 3/4, and pruning them
is the paper's contribution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs
from ..aig.graph import AIG
from ..aig.levels import RequiredLevels
from ..aig.literal import lit_node, lit_not, make_lit
from ..aig.mffc import mffc_nodes
from ..aig.simulate import cone_truth, full_mask
from ..cuts.features import CutFeatures
from ..cuts.reconv import reconv_cut
from ..factor.factoring import factor
from ..factor.to_aig import build_tree, count_tree
from ..tt.isop import isop_exact

DataCollector = "callable[[CutFeatures, bool], None]"


@dataclass
class RefactorParams:
    """Knobs of the refactor operator (ABC's ``refactor`` defaults).

    ``preserve_levels`` mirrors ABC's ``-l`` update-level mode; the
    paper's experiments run with it off (their reported levels drift
    slightly), which is also the default here.
    """

    max_leaves: int = 10
    zero_cost: bool = False
    preserve_levels: bool = False
    try_complement: bool = True
    method: str = "quick"


@dataclass
class RefactorStats:
    """Counters and timing buckets of one refactor pass."""

    nodes_visited: int = 0
    cuts_formed: int = 0
    commits: int = 0
    gain_total: int = 0
    fail_gain: int = 0  # resynthesis done, but not cheaper
    fail_level: int = 0  # rejected by required-level check
    fail_poison: int = 0  # build would have reused the replaced root
    fail_trivial: int = 0  # degenerate cuts
    pruned: int = 0  # skipped by a classifier (ELF only)
    time_total: float = 0.0
    time_cut: float = 0.0
    time_truth: float = 0.0
    time_resynth: float = 0.0  # isop + factoring + counting
    time_commit: float = 0.0
    time_inference: float = 0.0  # classifier time (ELF only)

    @property
    def fails(self) -> int:
        return self.fail_gain + self.fail_level + self.fail_poison + self.fail_trivial

    @property
    def failure_rate(self) -> float:
        """Fraction of formed cuts that did not get committed."""
        if self.cuts_formed == 0:
            return 0.0
        return 1.0 - self.commits / self.cuts_formed


def refactor(
    g: AIG,
    params: RefactorParams | None = None,
    collector=None,
    cache: dict | None = None,
) -> RefactorStats:
    """Run one refactor pass over ``g`` in place.

    ``collector(features, committed)`` — when given — receives the six
    ELF features and the commit outcome of every visited node; this is how
    classifier training data is harvested (paper SS IV-A).

    ``cache`` plugs in an externally owned resynthesis cache (anything
    with dict-like ``get``/``__setitem__`` keyed ``(tt, n_leaves)``, e.g.
    :class:`repro.engine.ResynthCache`).  Entries are pure functions of
    the key *and* the factoring knobs (``try_complement``, ``method``),
    so sharing a cache across passes — the ``rf; ...; rfz`` steps of one
    flow — changes nothing but runtime **provided every sharer uses the
    same factoring knobs**; do not share one cache across differing
    ``RefactorParams`` factoring settings.
    """
    params = params or RefactorParams()
    stats = RefactorStats()
    g.drain_dirty()  # sequential pass: retire the previous journal epoch
    with obs.span("opt.refactor") as pass_span:
        required = RequiredLevels(g) if params.preserve_levels else None
        want_features = collector is not None
        if cache is None:
            cache = {}
        for node in g.and_ids():
            if g.is_dead(node):
                continue
            stats.nodes_visited += 1
            t0 = time.perf_counter()
            cut = reconv_cut(g, node, params.max_leaves, collect_features=want_features)
            stats.time_cut += time.perf_counter() - t0
            stats.cuts_formed += 1
            committed = refactor_node(g, node, cut, params, required, stats, cache)
            if collector is not None:
                collector(cut.features, committed)
        pass_span.set(nodes=stats.nodes_visited, commits=stats.commits)
    stats.time_total = pass_span.duration
    return stats


def _resynthesize(
    tt: int,
    n_leaves: int,
    params: RefactorParams,
    cache: dict | None,
) -> tuple:
    """ISOP + algebraic factoring of the cut function, cached by table.

    Following ABC's ``Kit_TruthIsop(..., fTryBoth)``, the polarity is
    chosen at the ISOP level (fewer literals wins) and only that polarity
    is factored.  Cut functions repeat heavily inside a circuit (e.g. the
    full-adder cones of a multiplier), so one pass-level cache entry
    serves many nodes.
    """
    key = (tt, n_leaves)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    cubes = isop_exact(tt, n_leaves)
    inverted = False
    if params.try_complement:
        complement = isop_exact(tt ^ full_mask(n_leaves), n_leaves)
        if sum(c.bit_count() for c in complement) < sum(c.bit_count() for c in cubes):
            cubes = complement
            inverted = True
    tree = factor(cubes, method=params.method)
    entry = (tree, inverted)
    if cache is not None:
        cache[key] = entry
    return entry


def refactor_node(
    g: AIG,
    node: int,
    cut,
    params: RefactorParams,
    required: RequiredLevels | None,
    stats: RefactorStats,
    cache: dict | None = None,
) -> bool:
    """Attempt to refactor one node given its cut; returns commit status."""
    leaves = cut.leaves
    n_leaves = len(leaves)
    if n_leaves < 2:
        stats.fail_trivial += 1
        return False

    t0 = time.perf_counter()
    tt = cone_truth(g, node, leaves)
    stats.time_truth += time.perf_counter() - t0

    return commit_tree(
        g,
        node,
        leaves,
        params,
        required,
        stats,
        lambda: _resynthesize(tt, n_leaves, params, cache),
    )


def commit_tree(
    g: AIG,
    node: int,
    leaves: list[int],
    params: RefactorParams,
    required: RequiredLevels | None,
    stats: RefactorStats,
    resolve,
    dirty: set[int] | None = None,
) -> bool:
    """Gain-check and commit a factored replacement for ``node``.

    ``resolve()`` lazily supplies the ``(tree, inverted)`` pair — the
    sequential operator resynthesizes on demand, the parallel engine hands
    over a form precomputed in a worker process.  It is only invoked when
    the MFFC leaves any budget for new nodes, preserving the sequential
    operator's exact skip behavior.

    ``dirty`` — when given — accumulates the nodes this commit killed
    (drained from the graph's dirty journal), which is how the engine's
    scheduler learns, in O(damage), which later-wave snapshots one commit
    invalidated.
    """
    t0 = time.perf_counter()
    mffc = mffc_nodes(g, node, boundary=set(leaves))
    saved = len(mffc)
    max_added = saved if params.zero_cost else saved - 1
    best = None  # (cost, root_level, tree, inverted, existing_lit)
    level_rejected = False
    if max_added >= 0:
        tree, inverted = resolve()
        forbidden = set(mffc)
        leaf_lits = [make_lit(leaf) for leaf in leaves]
        result = count_tree(g, tree, leaf_lits, forbidden, max_added)
        if result is not None:
            if (
                required is not None
                and result.cost > 0
                and result.root_level > required.required(node)
            ):
                level_rejected = True
            else:
                best = (
                    result.cost,
                    result.root_level,
                    tree,
                    inverted,
                    result.existing_lit,
                )
    stats.time_resynth += time.perf_counter() - t0

    if best is None:
        if level_rejected:
            stats.fail_level += 1
        else:
            stats.fail_gain += 1
        return False
    cost, _root_level, tree, inverted, existing = best

    t0 = time.perf_counter()
    try:
        if existing is not None:
            if lit_node(existing) == node:
                stats.fail_gain += 1
                return False
            new_lit = lit_not(existing) if inverted else existing
        else:
            built = build_tree(
                g, tree, [make_lit(leaf) for leaf in leaves], avoid_root=node
            )
            if built is None:
                stats.fail_poison += 1
                return False
            if lit_node(built) == node:  # rebuilt the same node
                stats.fail_gain += 1
                return False
            new_lit = lit_not(built) if inverted else built
        before = g.n_ands
        g.replace(node, new_lit)
        stats.commits += 1
        stats.gain_total += before - g.n_ands
        if dirty is not None:
            dirty.update(g.drain_dirty().killed)
    finally:
        stats.time_commit += time.perf_counter() - t0
    return True
