"""Optimization flow scripting (ABC-style command sequences).

``run_flow(g, "resyn2")`` executes the classic
``b; rw; rf; b; rw; rwz; b; rfz; rwz; b`` sequence, recording per-step
node counts, depths and runtimes — this powers the paper's claim that
refactor consumes 20-40% of a resyn2-style flow despite running only
twice (SS II).  ELF steps (``elf``/``elfz``) slot into the same scripts
when a classifier is supplied, and every operator with a wave engine
has a parallel spelling (``pf``/``pelf``/``prw`` + zero-cost variants).

Steps record both the raw command as spelled in the script and its
*normalized* form (aliases resolved: ``f`` -> ``rf``, ``fz`` -> ``rfz``);
:meth:`FlowReport.runtime_of` / :meth:`FlowReport.fraction_of` match on
the normalized form, so alias spellings count toward their operator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..aig.graph import AIG
from ..errors import ReproError
from .balance import balance
from .refactor import RefactorParams, refactor
from .resub import ResubParams, resub
from .rewrite import RewriteParams, rewrite

RESYN2 = "b; rw; rf; b; rw; rwz; b; rfz; rwz; b"
"""The classic ABC resyn2 script."""

COMPRESS2 = "b -l; rw -l; rf -l; b -l; rw -l; rwz -l; b -l; rfz -l; rwz -l; b -l"

# Alternate spellings -> canonical command names (the ELF paper spells
# refactor ``f``).  Normalization keeps any flags untouched.
_ALIASES = {"f": "rf", "fz": "rfz"}


def canonical_command(command: str) -> str:
    """``command`` with its operator alias resolved (flags preserved)."""
    parts = command.split()
    if not parts:
        return command.strip()
    parts[0] = _ALIASES.get(parts[0], parts[0])
    return " ".join(parts)


@dataclass
class FlowStep:
    """Outcome of one flow command.

    ``command`` keeps the raw spelling from the script; ``normalized``
    is the alias-resolved form the report's accounting matches on (it
    defaults from ``command`` when not given).
    """

    command: str
    runtime: float
    n_ands: int
    level: int
    detail: object = None
    normalized: str = ""

    def __post_init__(self) -> None:
        if not self.normalized:
            self.normalized = canonical_command(self.command)


@dataclass
class FlowReport:
    """Per-step trace of a flow execution."""

    script: str
    steps: list[FlowStep] = field(default_factory=list)

    @property
    def total_runtime(self) -> float:
        return sum(s.runtime for s in self.steps)

    def runtime_of(self, prefix: str) -> float:
        """Total runtime of steps whose *normalized* command starts with
        ``prefix`` — so ``runtime_of("rf")`` counts ``f``/``fz`` steps too."""
        return sum(s.runtime for s in self.steps if s.normalized.startswith(prefix))

    def fraction_of(self, prefix: str) -> float:
        total = self.total_runtime
        return 0.0 if total == 0 else self.runtime_of(prefix) / total


def run_flow(
    g: AIG,
    script: str = RESYN2,
    classifier=None,
    engine_workers: int | None = None,
    engine_executor=None,
) -> tuple[AIG, FlowReport]:
    """Execute a ``;``-separated command script; returns (network, report).

    Commands: ``b`` (balance), ``rw``/``rwz`` (rewrite / zero-cost),
    ``rf``/``rfz`` (refactor / zero-cost; ``f``/``fz`` are aliases),
    ``rs``/``rsz`` (resub / zero-cost), ``elf``/``elfz`` (ELF-pruned
    refactor; needs ``classifier``), ``pf``/``pfz`` (conflict-wave
    parallel refactor), ``pelf``/``pelfz`` (parallel ELF; needs
    ``classifier``) and ``prw``/``prwz`` (conflict-wave parallel
    rewrite).  A ``-l`` suffix preserves levels where the operator
    supports it; the parallel commands accept ``-w N`` to pin the worker
    count (default: one per core).

    The server hooks: ``engine_workers`` is the worker count applied to
    parallel commands that carry no explicit ``-w`` (so a serving layer
    can pin determinism-critical runs to one worker without rewriting
    scripts), and ``engine_executor`` is a shared
    :class:`repro.engine.ResynthExecutor` reused by every parallel
    refactor step instead of forking a pool per step (it overrides the
    worker count and is left open; ``prw`` reads only its width —
    rewrite evaluation never dispatches to the pool).

    Every refactor- and rewrite-family step of one script shares a
    single cross-pass :class:`repro.engine.ResynthCache`, so e.g. the
    second ``elf`` of ``elf; elf`` starts with every factored form the
    first derived, and every ``prw`` wave reuses the script's cached
    NPN-library resolutions (the flow builds all refactor params with
    the same factoring knobs, which is what makes the cache sound to
    share).  Sequential steps take exact hits only — bit-identical to
    running uncached — while the wave engine also reuses NPN-equivalent
    4-leaf forms.
    """
    from ..engine import ResynthCache

    report = FlowReport(script=script)
    resynth_cache = ResynthCache()
    for raw in script.split(";"):
        command = raw.strip()
        if not command:
            continue
        t0 = time.perf_counter()
        g, detail = _execute(
            g, command, classifier, engine_workers, engine_executor, resynth_cache
        )
        report.steps.append(
            FlowStep(
                command=command,
                runtime=time.perf_counter() - t0,
                n_ands=g.n_ands,
                level=g.max_level(),
                detail=detail,
                normalized=canonical_command(command),
            )
        )
    return g, report


def _execute(
    g: AIG,
    command: str,
    classifier,
    engine_workers=None,
    engine_executor=None,
    resynth_cache=None,
):
    parts = canonical_command(command).split()
    op = parts[0]
    preserve = "-l" in parts[1:]
    if op == "b":
        return balance(g), None
    if op in ("rw", "rwz"):
        stats = rewrite(
            g, RewriteParams(zero_cost=op.endswith("z"), preserve_levels=preserve)
        )
        return g, stats
    if op in ("rf", "rfz"):
        stats = refactor(
            g,
            RefactorParams(zero_cost=op.endswith("z"), preserve_levels=preserve),
            cache=resynth_cache,
        )
        return g, stats
    if op in ("rs", "rsz"):
        return g, resub(g, ResubParams(zero_cost=op.endswith("z")))
    if op in ("elf", "elfz"):
        if classifier is None:
            raise ReproError(f"flow step {op!r} requires a classifier")
        from ..elf.operator import ElfParams, elf_refactor

        stats = elf_refactor(
            g,
            classifier,
            ElfParams(
                refactor=RefactorParams(
                    zero_cost=op.endswith("z"), preserve_levels=preserve
                )
            ),
            cache=resynth_cache,
        )
        return g, stats
    if op in ("pf", "pfz", "pelf", "pelfz"):
        if op.startswith("pelf") and classifier is None:
            raise ReproError(f"flow step {op!r} requires a classifier")
        from ..engine import EngineParams, engine_refactor

        workers, executor = _resolve_engine_workers(
            parts[1:], engine_workers, engine_executor
        )
        stats = engine_refactor(
            g,
            EngineParams(
                refactor=RefactorParams(
                    zero_cost=op.endswith("z"), preserve_levels=preserve
                ),
                workers=workers,
                executor=executor,
                resynth_cache=resynth_cache,
            ),
            classifier=classifier if op.startswith("pelf") else None,
        )
        return g, stats
    if op in ("prw", "prwz"):
        from ..engine import RewriteEngineParams, engine_rewrite

        workers, executor = _resolve_engine_workers(
            parts[1:], engine_workers, engine_executor
        )
        stats = engine_rewrite(
            g,
            RewriteEngineParams(
                rewrite=RewriteParams(
                    zero_cost=op.endswith("z"), preserve_levels=preserve
                ),
                workers=workers,
                executor=executor,
                resynth_cache=resynth_cache,
            ),
        )
        return g, stats
    raise ReproError(f"unknown flow command {command!r}")


def _resolve_engine_workers(args: list[str], engine_workers, engine_executor):
    """Worker count + executor for one parallel step.

    A script's explicit ``-w N`` always wins: a shared executor of a
    different width is dropped rather than silently overriding the
    pinned count (``pf -w 1`` / ``prw -w 1`` must stay the bit-identical
    mode).  Without ``-w``, the server-level ``engine_workers`` applies,
    and a shared executor's width governs as usual.
    """
    workers = _parse_workers(args)
    explicit = workers > 0
    if not explicit and engine_workers is not None:
        workers = engine_workers
    executor = engine_executor
    if explicit and executor is not None and executor.workers != workers:
        executor = None
    return workers, executor


def _parse_workers(args: list[str]) -> int:
    """Extract the ``-w N`` worker count; 0 means auto (cpu count)."""
    for i, arg in enumerate(args):
        if arg == "-w":
            if i + 1 >= len(args) or not args[i + 1].isdigit():
                raise ReproError("-w requires an integer worker count")
            return int(args[i + 1])
    return 0
