"""Optimization flow scripting (ABC-style command sequences).

``run_flow(g, "resyn2")`` executes the classic
``b; rw; rf; b; rw; rwz; b; rfz; rwz; b`` sequence, recording per-step
node counts, depths and runtimes — this powers the paper's claim that
refactor consumes 20-40% of a resyn2-style flow despite running only
twice (SS II).  ELF steps (``elf``/``elfz``) slot into the same scripts
when a classifier is supplied, and every operator with a wave engine
has a parallel spelling (``pf``/``pelf``/``prw`` + zero-cost variants).

The execution machinery lives elsewhere: commands are *registered*
:class:`repro.opt.registry.CommandSpec` entries (not a switch), and the
resources a script shares — resynthesis cache, NPN library, classifier,
engine worker pool — are owned by a :class:`repro.opt.session.OptSession`.
:func:`run_flow` is the one-shot convenience wrapper (one throwaway
session per call); long-lived callers, the serving layer, and anyone
registering new commands should hold a session directly.

Steps record both the raw command as spelled in the script and its
*normalized* form (aliases resolved: ``f`` -> ``rf``, ``fz`` -> ``rfz``);
:meth:`FlowReport.runtime_of` / :meth:`FlowReport.fraction_of` match on
the normalized form, so alias spellings count toward their operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..aig.graph import AIG
from .registry import CommandRegistry, default_registry

RESYN2 = "b; rw; rf; b; rw; rwz; b; rfz; rwz; b"
"""The classic ABC resyn2 script."""

COMPRESS2 = "b -l; rw -l; rf -l; b -l; rw -l; rwz -l; b -l; rfz -l; rwz -l; b -l"

NAMED_SCRIPTS = {"resyn2": RESYN2, "compress2": COMPRESS2}
"""Scripts addressable by name (the CLI accepts these spellings)."""


def canonical_command(command: str, registry: CommandRegistry | None = None) -> str:
    """``command`` with its operator alias resolved (flags preserved).

    Lenient: unknown commands come back unchanged — strictness lives in
    :meth:`repro.opt.registry.CommandRegistry.resolve`.
    """
    registry = registry if registry is not None else default_registry()
    return registry.canonical(command)


@dataclass
class FlowStep:
    """Outcome of one flow command.

    ``command`` keeps the raw spelling from the script; ``normalized``
    is the alias-resolved form the report's accounting matches on (it
    defaults from ``command`` when not given).  ``executor_dropped``
    records that a shared engine executor was discarded because this
    step pinned a conflicting ``-w`` (the pin wins; see
    :meth:`repro.opt.session.FlowContext.engine_resources`).
    """

    command: str
    runtime: float
    n_ands: int
    level: int
    detail: object = None
    normalized: str = ""
    executor_dropped: bool = False

    def __post_init__(self) -> None:
        if not self.normalized:
            self.normalized = canonical_command(self.command)


@dataclass
class FlowReport:
    """Per-step trace of a flow execution."""

    script: str
    steps: list[FlowStep] = field(default_factory=list)

    @property
    def total_runtime(self) -> float:
        return sum(s.runtime for s in self.steps)

    def runtime_of(self, prefix: str) -> float:
        """Total runtime of steps whose *normalized* command starts with
        ``prefix`` — so ``runtime_of("rf")`` counts ``f``/``fz`` steps too."""
        return sum(s.runtime for s in self.steps if s.normalized.startswith(prefix))

    def fraction_of(self, prefix: str) -> float:
        total = self.total_runtime
        return 0.0 if total == 0 else self.runtime_of(prefix) / total


def run_flow(
    g: AIG,
    script: str = RESYN2,
    classifier=None,
    engine_workers: int | None = None,
    engine_executor=None,
    registry: CommandRegistry | None = None,
) -> tuple[AIG, FlowReport]:
    """Execute a ``;``-separated command script; returns (network, report).

    Commands: ``b`` (balance), ``rw``/``rwz`` (rewrite / zero-cost),
    ``rf``/``rfz`` (refactor / zero-cost; ``f``/``fz`` are aliases),
    ``rs``/``rsz`` (resub / zero-cost), ``elf``/``elfz`` (ELF-pruned
    refactor; needs ``classifier``), ``pf``/``pfz`` (conflict-wave
    parallel refactor), ``pelf``/``pelfz`` (parallel ELF; needs
    ``classifier``) and ``prw``/``prwz`` (conflict-wave parallel
    rewrite) — plus anything else registered on ``registry`` (default:
    the process-wide :func:`repro.opt.registry.default_registry`).
    ``-l`` preserves levels where the operator supports it; the parallel
    commands accept ``-w N`` to pin the worker count (0 = one per core).
    Unknown commands *and unsupported flags* raise
    :class:`repro.errors.ReproError`.

    This is the one-shot convenience wrapper over
    :class:`repro.opt.session.OptSession` — equivalent to running
    ``script`` inside ``OptSession(classifier=classifier, ...)``, so all
    session guarantees apply: every refactor- and rewrite-family step of
    the script shares one cross-pass
    :class:`repro.engine.ResynthCache` (created lazily on first demand;
    e.g. the second ``elf`` of ``elf; elf`` starts with every factored
    form the first derived), ``engine_workers`` is the worker count for
    parallel commands with no explicit ``-w``, and ``engine_executor``
    attaches a shared :class:`repro.engine.ResynthExecutor` (its width
    governs unpinned parallel refactor steps; a conflicting explicit
    ``-w`` drops it for that step — recorded on the step — and ``prw``
    reads only its width).  Callers running many scripts, or many
    circuits, should hold an :class:`~repro.opt.session.OptSession`
    directly and reuse its warm resources.
    """
    from .session import OptSession

    with OptSession(
        classifier=classifier,
        engine_workers=engine_workers,
        engine_executor=engine_executor,
        registry=registry,
    ) as session:
        return session.run(g, script)
