"""Optimization flow scripting (ABC-style command sequences).

``run_flow(g, "resyn2")`` executes the classic
``b; rw; rf; b; rw; rwz; b; rfz; rwz; b`` sequence, recording per-step
node counts, depths and runtimes — this powers the paper's claim that
refactor consumes 20-40% of a resyn2-style flow despite running only
twice (SS II).  ELF steps (``elf``/``elfz``) slot into the same scripts
when a classifier is supplied.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..aig.graph import AIG
from ..errors import ReproError
from .balance import balance
from .refactor import RefactorParams, refactor
from .resub import ResubParams, resub
from .rewrite import RewriteParams, rewrite

RESYN2 = "b; rw; rf; b; rw; rwz; b; rfz; rwz; b"
"""The classic ABC resyn2 script."""

COMPRESS2 = "b -l; rw -l; rf -l; b -l; rw -l; rwz -l; b -l; rfz -l; rwz -l; b -l"


@dataclass
class FlowStep:
    """Outcome of one flow command."""

    command: str
    runtime: float
    n_ands: int
    level: int
    detail: object = None


@dataclass
class FlowReport:
    """Per-step trace of a flow execution."""

    script: str
    steps: list[FlowStep] = field(default_factory=list)

    @property
    def total_runtime(self) -> float:
        return sum(s.runtime for s in self.steps)

    def runtime_of(self, prefix: str) -> float:
        """Total runtime of steps whose command starts with ``prefix``."""
        return sum(s.runtime for s in self.steps if s.command.startswith(prefix))

    def fraction_of(self, prefix: str) -> float:
        total = self.total_runtime
        return 0.0 if total == 0 else self.runtime_of(prefix) / total


def run_flow(
    g: AIG,
    script: str = RESYN2,
    classifier=None,
    engine_workers: int | None = None,
    engine_executor=None,
) -> tuple[AIG, FlowReport]:
    """Execute a ``;``-separated command script; returns (network, report).

    Commands: ``b`` (balance), ``rw``/``rwz`` (rewrite / zero-cost),
    ``rf``/``rfz`` (refactor / zero-cost; ``f``/``fz`` are aliases),
    ``rs`` (resub), ``elf``/``elfz`` (ELF-pruned refactor; needs
    ``classifier``), ``pf``/``pfz`` (conflict-wave parallel refactor)
    and ``pelf``/``pelfz`` (parallel ELF; needs ``classifier``).  A
    ``-l`` suffix preserves levels where the operator supports it; the
    parallel commands accept ``-w N`` to pin the worker count (default:
    one per core).

    The server hooks: ``engine_workers`` is the worker count applied to
    parallel commands that carry no explicit ``-w`` (so a serving layer
    can pin determinism-critical runs to one worker without rewriting
    scripts), and ``engine_executor`` is a shared
    :class:`repro.engine.ResynthExecutor` reused by every parallel step
    instead of forking a pool per step (it overrides the worker count
    and is left open).

    Every refactor-family step of one script shares a single
    cross-pass :class:`repro.engine.ResynthCache`, so e.g. the second
    ``elf`` of ``elf; elf`` starts with every factored form the first
    derived (the flow builds all refactor params with the same factoring
    knobs, which is what makes the cache sound to share).  Sequential
    steps take exact hits only — bit-identical to running uncached —
    while the wave engine also reuses NPN-equivalent 4-leaf forms.
    """
    from ..engine import ResynthCache

    report = FlowReport(script=script)
    resynth_cache = ResynthCache()
    for raw in script.split(";"):
        command = raw.strip()
        if not command:
            continue
        t0 = time.perf_counter()
        g, detail = _execute(
            g, command, classifier, engine_workers, engine_executor, resynth_cache
        )
        report.steps.append(
            FlowStep(
                command=command,
                runtime=time.perf_counter() - t0,
                n_ands=g.n_ands,
                level=g.max_level(),
                detail=detail,
            )
        )
    return g, report


def _execute(
    g: AIG,
    command: str,
    classifier,
    engine_workers=None,
    engine_executor=None,
    resynth_cache=None,
):
    parts = command.split()
    op = parts[0]
    preserve = "-l" in parts[1:]
    if op == "b":
        return balance(g), None
    if op in ("rw", "rwz"):
        stats = rewrite(
            g, RewriteParams(zero_cost=op.endswith("z"), preserve_levels=preserve)
        )
        return g, stats
    if op in ("f", "fz"):  # ELF-paper spelling of the refactor command
        op = "r" + op
    if op in ("rf", "rfz"):
        stats = refactor(
            g,
            RefactorParams(zero_cost=op.endswith("z"), preserve_levels=preserve),
            cache=resynth_cache,
        )
        return g, stats
    if op == "rs":
        return g, resub(g, ResubParams(zero_cost=False))
    if op in ("elf", "elfz"):
        if classifier is None:
            raise ReproError(f"flow step {op!r} requires a classifier")
        from ..elf.operator import ElfParams, elf_refactor

        stats = elf_refactor(
            g,
            classifier,
            ElfParams(
                refactor=RefactorParams(
                    zero_cost=op.endswith("z"), preserve_levels=preserve
                )
            ),
            cache=resynth_cache,
        )
        return g, stats
    if op in ("pf", "pfz", "pelf", "pelfz"):
        if op.startswith("pelf") and classifier is None:
            raise ReproError(f"flow step {op!r} requires a classifier")
        from ..engine import EngineParams, engine_refactor

        workers = _parse_workers(parts[1:])
        explicit = workers > 0
        if not explicit and engine_workers is not None:
            workers = engine_workers
        # A script's explicit ``-w N`` always wins: a shared executor of a
        # different width is dropped rather than silently overriding the
        # pinned count (``pf -w 1`` must stay the bit-identical mode).
        executor = engine_executor
        if explicit and executor is not None and executor.workers != workers:
            executor = None
        stats = engine_refactor(
            g,
            EngineParams(
                refactor=RefactorParams(
                    zero_cost=op.endswith("z"), preserve_levels=preserve
                ),
                workers=workers,
                executor=executor,
                resynth_cache=resynth_cache,
            ),
            classifier=classifier if op.startswith("pelf") else None,
        )
        return g, stats
    raise ReproError(f"unknown flow command {command!r}")


def _parse_workers(args: list[str]) -> int:
    """Extract the ``-w N`` worker count; 0 means auto (cpu count)."""
    for i, arg in enumerate(args):
        if arg == "-w":
            if i + 1 >= len(args) or not args[i + 1].isdigit():
                raise ReproError("-w requires an integer worker count")
            return int(args[i + 1])
    return 0
