"""Declarative flow-command registry (the extensible half of ``run_flow``).

ABC scales to dozens of operators because commands are *registered*, not
switch-cased; this module gives the flow layer the same shape.  Every
command a script may name is a :class:`CommandSpec`: its canonical name,
aliases, flag schema (``-l`` / ``-w N`` support plus the ``<cmd>z``
zero-cost pairing), declared resource requirements (classifier, engine
worker pool, shared resynthesis cache) and an ``execute(g, ctx, flags)``
callable.  :class:`CommandRegistry` resolves raw command strings against
the registered specs with **strict flag validation** — an unsupported
flag raises :class:`repro.errors.ReproError` instead of being silently
dropped — and :func:`default_registry` holds the built-in command set
(``b``, ``rw/rwz``, ``rf/rfz`` + ``f/fz``, ``rs/rsz``, ``elf/elfz``,
``pf/pfz``, ``pelf/pelfz``, ``prw/prwz``).

Adding an operator no longer touches ``opt/flow.py``: build a spec and
``register`` it — on :func:`default_registry` for process-wide effect,
or on a :meth:`CommandRegistry.copy` handed to one
:class:`repro.opt.session.OptSession`.  The session supplies the ``ctx``
argument (classifier handle, lazily created cache/library, engine
worker resolution); see ``docs/engine.md`` for a worked example.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import ReproError
from .balance import balance
from .refactor import RefactorParams, refactor
from .resub import ResubParams, resub
from .rewrite import RewriteParams, rewrite


@dataclass(frozen=True)
class CommandFlags:
    """Parsed per-command flags, validated against the spec's schema.

    ``workers`` is ``None`` when the command carried no ``-w``; ``0``
    (an explicit ``-w 0``) behaves exactly like omitting ``-w`` — the
    session's ``engine_workers`` default applies first, then auto (one
    worker per core) — so only ``-w N`` with ``N >= 1`` pins a step.
    """

    zero_cost: bool = False
    preserve_levels: bool = False
    workers: int | None = None


@dataclass(frozen=True)
class CommandSpec:
    """One registered flow command: schema, resource needs, behavior.

    ``execute(g, ctx, flags)`` receives the network, the session's
    :class:`repro.opt.session.FlowContext` and the parsed
    :class:`CommandFlags`; it returns ``(network, detail)`` where
    ``detail`` lands on the step's :attr:`repro.opt.FlowStep.detail`.

    Schema fields: ``zero_cost_pair`` additionally registers the
    ``<name>z`` spelling of the name and of every alias (resolved into
    ``flags.zero_cost``); ``supports_levels`` admits ``-l``;
    ``supports_workers`` admits ``-w N``.  Resource fields are
    *declarative* so the session (and the serving layer) can provision
    without running anything: ``needs_classifier`` makes the session
    reject the command when no classifier is attached,
    ``needs_engine_pool`` marks commands that dispatch resynthesis to a
    :class:`repro.engine.ResynthExecutor` (the serving layer pre-forks
    pools for these), and ``uses_cache`` marks commands that share the
    session's cross-pass :class:`repro.engine.ResynthCache`.
    """

    name: str
    execute: Callable
    aliases: tuple[str, ...] = ()
    zero_cost_pair: bool = False
    supports_levels: bool = False
    supports_workers: bool = False
    needs_classifier: bool = False
    needs_engine_pool: bool = False
    uses_cache: bool = False
    help: str = ""

    def spellings(self) -> Iterator[tuple[str, bool]]:
        """Every accepted head token as ``(spelling, zero_cost)``."""
        for head in (self.name, *self.aliases):
            yield head, False
            if self.zero_cost_pair:
                yield head + "z", True


@dataclass(frozen=True)
class ResolvedCommand:
    """A raw command string bound to its spec and validated flags."""

    raw: str
    canonical: str  # alias-resolved head + the flags as spelled
    spec: CommandSpec
    flags: CommandFlags

    @property
    def head(self) -> str:
        """The canonical head spelling (``rfz`` for raw ``fz``)."""
        return self.canonical.split()[0]


@dataclass
class ScriptNeeds:
    """Resource requirements of a whole script, from the specs alone."""

    classifier: bool = False
    engine_pool: bool = False
    max_explicit_workers: int = 0


class CommandRegistry:
    """Spelling -> :class:`CommandSpec` table with strict resolution."""

    def __init__(self) -> None:
        self._specs: dict[str, CommandSpec] = {}
        self._lookup: dict[str, tuple[CommandSpec, bool]] = {}

    def register(self, spec: CommandSpec) -> CommandSpec:
        """Add ``spec``; every spelling (aliases, ``z`` pair) must be free."""
        spellings = list(spec.spellings())
        for spelling, _ in spellings:
            if spelling in self._lookup:
                raise ReproError(
                    f"flow command spelling {spelling!r} is already registered"
                )
        for spelling, zero in spellings:
            self._lookup[spelling] = (spec, zero)
        self._specs[spec.name] = spec
        return spec

    def copy(self) -> "CommandRegistry":
        """Independent registry with the same specs (for per-session use)."""
        dup = CommandRegistry()
        dup._specs = dict(self._specs)
        dup._lookup = dict(self._lookup)
        return dup

    def specs(self) -> list[CommandSpec]:
        return list(self._specs.values())

    def __contains__(self, spelling: str) -> bool:
        return spelling in self._lookup

    def canonical(self, command: str) -> str:
        """Alias-resolved form of ``command`` (flags kept as spelled).

        Lenient by design: an unknown head comes back unchanged, so
        report normalization never raises — :meth:`resolve` is where
        unknown commands become errors.
        """
        tokens = command.split()
        if not tokens:
            return command.strip()
        hit = self._lookup.get(tokens[0])
        if hit is not None:
            spec, zero = hit
            tokens[0] = spec.name + ("z" if zero else "")
        return " ".join(tokens)

    def resolve(self, command: str) -> ResolvedCommand:
        """Parse one raw command; strict about spellings *and* flags."""
        raw = command.strip()
        tokens = raw.split()
        if not tokens:
            raise ReproError("empty flow command")
        hit = self._lookup.get(tokens[0])
        if hit is None:
            raise ReproError(f"unknown flow command {raw!r}")
        spec, zero = hit
        preserve = False
        workers: int | None = None
        i = 1
        while i < len(tokens):
            token = tokens[i]
            if token == "-l" and spec.supports_levels:
                preserve = True
            elif token == "-w" and spec.supports_workers:
                i += 1
                if i >= len(tokens) or not tokens[i].isdigit():
                    raise ReproError("-w requires an integer worker count")
                workers = int(tokens[i])
            elif token in ("-l", "-w"):
                raise ReproError(
                    f"flow command {tokens[0]!r} does not support the "
                    f"{token!r} flag"
                )
            else:
                raise ReproError(
                    f"flow command {tokens[0]!r} got unknown argument {token!r}"
                )
            i += 1
        head = spec.name + ("z" if zero else "")
        return ResolvedCommand(
            raw=raw,
            canonical=" ".join([head] + tokens[1:]),
            spec=spec,
            flags=CommandFlags(
                zero_cost=zero, preserve_levels=preserve, workers=workers
            ),
        )

    def normalize_script(self, script: str) -> str:
        """Canonical spelling of ``script``: aliases resolved, one flag form.

        Strict (unlike :meth:`canonical`): every command must resolve,
        so unknown commands and unsupported flags raise
        :class:`repro.errors.ReproError` here rather than producing a
        key that could never execute.  Two scripts normalize equal iff
        they resolve to the same command sequence with the same flags —
        ``"f ; fz"`` and ``"rf; rfz"`` coincide, ``"rf"`` and ``"rf -l"``
        do not.  The content-addressed serving cache keys on this, so
        alias traffic shares entries and flag changes miss correctly.
        """
        parts = [
            self.resolve(part).canonical
            for part in script.split(";")
            if part.strip()
        ]
        return "; ".join(parts)

    @property
    def version(self) -> str:
        """Digest of the registered command surface (names, flags, needs).

        Changes whenever a command is added, renamed, re-aliased or its
        schema/resource declaration changes — the serving cache includes
        it in every key, so results computed under one command set are
        never served under another.  Behavioral changes *inside* an
        operator are out of scope (bump by registering under a new
        name, or clear the store on deploy).
        """
        h = hashlib.blake2b(digest_size=8)
        for spelling in sorted(self._lookup):
            spec, zero = self._lookup[spelling]
            h.update(
                (
                    f"{spelling}:{spec.name}:{int(zero)}:"
                    f"{int(spec.supports_levels)}{int(spec.supports_workers)}"
                    f"{int(spec.needs_classifier)}{int(spec.needs_engine_pool)}"
                    f"{int(spec.uses_cache)};"
                ).encode("ascii")
            )
        return h.hexdigest()

    def script_requirements(self, script: str) -> ScriptNeeds:
        """Aggregate resource needs of ``script`` without executing it.

        Lenient: commands that fail to resolve contribute nothing (the
        error surfaces when the script actually runs), so provisioning
        layers can size resources for any script they are handed.
        """
        needs = ScriptNeeds()
        for part in script.split(";"):
            if not part.strip():
                continue
            try:
                resolved = self.resolve(part)
            except ReproError:
                continue
            needs.classifier |= resolved.spec.needs_classifier
            needs.engine_pool |= resolved.spec.needs_engine_pool
            if resolved.spec.needs_engine_pool and resolved.flags.workers:
                needs.max_explicit_workers = max(
                    needs.max_explicit_workers, resolved.flags.workers
                )
        return needs


# --- built-in command behaviors --------------------------------------------
# Heavy subsystems (elf, engine) are imported lazily inside the callables,
# exactly like the old if/elif chain did, to keep import order acyclic.


def _refactor_params(flags: CommandFlags) -> RefactorParams:
    return RefactorParams(
        zero_cost=flags.zero_cost, preserve_levels=flags.preserve_levels
    )


def _exec_balance(g, ctx, flags):
    return balance(g), None


def _exec_rewrite(g, ctx, flags):
    stats = rewrite(
        g,
        RewriteParams(
            zero_cost=flags.zero_cost, preserve_levels=flags.preserve_levels
        ),
        library=ctx.npn_library,
    )
    return g, stats


def _exec_refactor(g, ctx, flags):
    stats = refactor(g, _refactor_params(flags), cache=ctx.resynth_cache)
    return g, stats


def _exec_resub(g, ctx, flags):
    return g, resub(g, ResubParams(zero_cost=flags.zero_cost))


def _exec_elf(g, ctx, flags):
    from ..elf.operator import ElfParams, elf_refactor

    stats = elf_refactor(
        g,
        ctx.classifier,
        ElfParams(refactor=_refactor_params(flags)),
        cache=ctx.resynth_cache,
    )
    return g, stats


def _make_engine_refactor(elf: bool):
    def execute(g, ctx, flags):
        from ..engine import EngineParams, engine_refactor

        workers, executor = ctx.engine_resources(flags, pooled=True)
        stats = engine_refactor(
            g,
            EngineParams(
                refactor=_refactor_params(flags),
                workers=workers,
                executor=executor,
                resynth_cache=ctx.resynth_cache,
                deadline=ctx.deadline,
            ),
            classifier=ctx.classifier if elf else None,
        )
        return g, stats

    return execute


def _exec_engine_rewrite(g, ctx, flags):
    from ..engine import RewriteEngineParams, engine_rewrite

    # Rewrite evaluation never dispatches to the pool; a shared executor
    # is accepted as a *width source* only (pooled=False: the session
    # will not materialize one for this command's sake).
    workers, executor = ctx.engine_resources(flags, pooled=False)
    stats = engine_rewrite(
        g,
        RewriteEngineParams(
            rewrite=RewriteParams(
                zero_cost=flags.zero_cost, preserve_levels=flags.preserve_levels
            ),
            workers=workers,
            executor=executor,
            resynth_cache=ctx.resynth_cache,
            library=ctx.npn_library,
            deadline=ctx.deadline,
        ),
    )
    return g, stats


def _build_default_registry() -> CommandRegistry:
    registry = CommandRegistry()
    registry.register(
        CommandSpec(
            name="b",
            execute=_exec_balance,
            # Balance is depth-optimal by construction, so ``-l`` asks
            # for something it already guarantees; accepted for ABC
            # script compatibility (COMPRESS2 spells ``b -l``).
            supports_levels=True,
            help="AND-tree balancing (depth-optimal associativity)",
        )
    )
    registry.register(
        CommandSpec(
            name="rw",
            execute=_exec_rewrite,
            zero_cost_pair=True,
            supports_levels=True,
            help="cut rewriting against the NPN library",
        )
    )
    registry.register(
        CommandSpec(
            name="rf",
            execute=_exec_refactor,
            aliases=("f",),
            zero_cost_pair=True,
            supports_levels=True,
            uses_cache=True,
            help="reconvergence-driven refactoring (paper spelling: f)",
        )
    )
    registry.register(
        CommandSpec(
            name="rs",
            execute=_exec_resub,
            zero_cost_pair=True,
            help="resubstitution (no level-preserving mode: -l rejected)",
        )
    )
    registry.register(
        CommandSpec(
            name="elf",
            execute=_exec_elf,
            zero_cost_pair=True,
            supports_levels=True,
            needs_classifier=True,
            uses_cache=True,
            help="classifier-pruned refactoring (the paper's operator)",
        )
    )
    registry.register(
        CommandSpec(
            name="pf",
            execute=_make_engine_refactor(elf=False),
            zero_cost_pair=True,
            supports_levels=True,
            supports_workers=True,
            needs_engine_pool=True,
            uses_cache=True,
            help="conflict-wave parallel refactoring",
        )
    )
    registry.register(
        CommandSpec(
            name="pelf",
            execute=_make_engine_refactor(elf=True),
            zero_cost_pair=True,
            supports_levels=True,
            supports_workers=True,
            needs_classifier=True,
            needs_engine_pool=True,
            uses_cache=True,
            help="conflict-wave parallel ELF",
        )
    )
    registry.register(
        CommandSpec(
            name="prw",
            execute=_exec_engine_rewrite,
            zero_cost_pair=True,
            supports_levels=True,
            supports_workers=True,
            uses_cache=True,
            help="conflict-wave parallel rewriting (never pools)",
        )
    )
    return registry


_DEFAULT: CommandRegistry | None = None


def default_registry() -> CommandRegistry:
    """The process-wide registry of built-in flow commands.

    Registering here makes a command available to every subsequent
    session and ``run_flow`` call of the process; tests and experiments
    that want isolation should ``copy()`` first and hand the copy to
    ``OptSession(registry=...)``.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = _build_default_registry()
    return _DEFAULT
