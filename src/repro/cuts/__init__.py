"""Cut computation: reconvergence-driven cuts, k-feasible enumeration,
and the ELF feature vectors collected during cut construction."""

from .enumerate import cut_cone, enumerate_cuts, node_cuts
from .features import FEATURE_NAMES, N_FEATURES, CutFeatures, stack_features
from .reconv import DEFAULT_MAX_LEAVES, ReconvCut, reconv_cut

__all__ = [
    "CutFeatures",
    "DEFAULT_MAX_LEAVES",
    "FEATURE_NAMES",
    "N_FEATURES",
    "ReconvCut",
    "cut_cone",
    "enumerate_cuts",
    "node_cuts",
    "reconv_cut",
    "stack_features",
]
