"""Reconvergence-driven cut computation (ABC's ``abcReconv.c`` scheme).

Starting from ``leaves = {root}``, repeatedly expand the leaf whose
replacement by its fanins grows the leaf set the least
(``cost = fanins not yet visited - 1``), until no expansion fits within
the leaf limit.  This is the cut construction the refactor operator uses
(default limit 10, ABC's ``nNodeSizeMax``).

The paper's six features are accumulated with simple counters while the
cut grows, making feature extraction essentially free (SS III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..aig.graph import AIG
from ..aig.literal import lit_node
from .features import CutFeatures

DEFAULT_MAX_LEAVES = 10


@dataclass
class ReconvCut:
    """A reconvergence-driven cut rooted at ``root``.

    ``leaves`` are in discovery order (this fixes the truth-table variable
    order); ``interior`` is the cone between leaves and root, root
    included, leaves excluded.
    """

    root: int
    leaves: list[int]
    interior: set[int]
    features: CutFeatures | None = field(default=None)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def size(self) -> int:
        return len(self.interior)


def reconv_cut(
    g: AIG,
    root: int,
    max_leaves: int = DEFAULT_MAX_LEAVES,
    collect_features: bool = True,
) -> ReconvCut:
    """Grow a reconvergence-driven cut for ``root``.

    ``root`` must be a live AND node.
    """
    leaves: list[int] = [root]
    visited: set[int] = {root}
    interior: set[int] = set()
    # Feature accumulators.
    cut_fanout = 0
    n_reconv = 0
    edges_into_cone: dict[int, int] = {}
    fanin0, fanin1 = g._fanin0, g._fanin1
    refs = g._refs

    while True:
        best_leaf = -1
        best_cost = 1 << 30
        for leaf in leaves:
            f0 = fanin0[leaf]
            if f0 < 0:  # PI or constant: not expandable
                continue
            f1 = fanin1[leaf]
            cost = -1
            if (f0 >> 1) not in visited:
                cost += 1
            if (f1 >> 1) not in visited:
                cost += 1
            if cost < best_cost:
                best_cost = cost
                best_leaf = leaf
                if cost <= 0:
                    break  # free expansion: take it immediately
        if best_leaf < 0 or len(leaves) + best_cost > max_leaves:
            break
        # Expand: move best_leaf into the interior, add unseen fanins.
        leaves.remove(best_leaf)
        interior.add(best_leaf)
        if collect_features:
            # Outward edges of the expanded node: its total fanout minus
            # edges to nodes already inside the cone (zero-copy iteration).
            inside = sum(1 for f in g.iter_fanouts(best_leaf) if f in interior)
            cut_fanout += refs[best_leaf] - inside
            for fanin_lit in (fanin0[best_leaf], fanin1[best_leaf]):
                fanin = fanin_lit >> 1
                count = edges_into_cone.get(fanin, 0) + 1
                edges_into_cone[fanin] = count
                if count == 2:
                    n_reconv += 1
                if fanin in interior:
                    # This edge was counted as outgoing when ``fanin`` was
                    # expanded (the current node was not interior yet);
                    # it just became cone-internal.
                    cut_fanout -= 1
        for fanin_lit in (fanin0[best_leaf], fanin1[best_leaf]):
            fanin = fanin_lit >> 1
            if fanin not in visited:
                visited.add(fanin)
                leaves.append(fanin)

    features = None
    if collect_features:
        features = CutFeatures(
            root_fanout=refs[root],
            root_level=g._level[root],
            cut_fanout=cut_fanout,
            cut_size=len(interior),
            n_reconvergent=n_reconv,
            n_leaves=len(leaves),
        )
    return ReconvCut(root=root, leaves=leaves, interior=interior, features=features)
