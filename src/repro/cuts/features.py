"""The six structural cut features of the ELF classifier (paper SS III-C).

The features are accumulated *during* cut construction (see
:mod:`repro.cuts.reconv`) so that feature collection adds almost no
runtime on top of forming the cut — the property the paper relies on to
keep inference cheaper than resynthesis.

Feature semantics, following Fig. 2 of the paper:

``root_fanout``
    Outgoing edges of the cut's root node.
``root_level``
    Level of the root within the AIG.
``cut_fanout``
    Total outgoing edges from cone-interior nodes (root included) to
    nodes outside the cone.  The root's own fanout is part of this.
``cut_size``
    Number of nodes inside the cone (root included, leaves excluded) —
    the triangle's interior in Fig. 2.
``n_reconvergent``
    Nodes with two or more edges into the cone interior: any such node
    starts two distinct paths that reconverge at (or before) the root,
    which is exactly the paper's local reconvergence.
``n_leaves``
    Number of cut leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FEATURE_NAMES = (
    "root_fanout",
    "root_level",
    "cut_fanout",
    "cut_size",
    "n_reconvergent",
    "n_leaves",
)

N_FEATURES = len(FEATURE_NAMES)


@dataclass(frozen=True)
class CutFeatures:
    """The 6-dimensional feature vector of one cut."""

    root_fanout: int
    root_level: int
    cut_fanout: int
    cut_size: int
    n_reconvergent: int
    n_leaves: int

    def as_tuple(self) -> tuple[int, int, int, int, int, int]:
        return (
            self.root_fanout,
            self.root_level,
            self.cut_fanout,
            self.cut_size,
            self.n_reconvergent,
            self.n_leaves,
        )

    def as_array(self) -> np.ndarray:
        return np.array(self.as_tuple(), dtype=np.float64)


def stack_features(features: list[CutFeatures]) -> np.ndarray:
    """Batch feature vectors into one ``(n, 6)`` matrix.

    This is the paper's batching trick: all cut data is packed into a
    single tensor before inference so the classifier runs as one
    vectorized matmul instead of n tiny ones.
    """
    if not features:
        return np.zeros((0, N_FEATURES), dtype=np.float64)
    return np.array([f.as_tuple() for f in features], dtype=np.float64)
