"""Bottom-up k-feasible cut enumeration (for the rewrite operator).

Classic priority-cut scheme: the cut set of an AND node is the pairwise
merge of its fanins' cut sets, filtered to at most ``k`` leaves,
dominance-pruned and truncated to the ``max_cuts`` best (smallest) cuts.
Every node also keeps its trivial cut ``{node}``.
"""

from __future__ import annotations

from ..aig.graph import AIG
from ..aig.literal import lit_node

DEFAULT_K = 4
DEFAULT_MAX_CUTS = 8


def enumerate_cuts(
    g: AIG,
    k: int = DEFAULT_K,
    max_cuts: int = DEFAULT_MAX_CUTS,
) -> dict[int, list[frozenset[int]]]:
    """Cut sets for every live node (PIs get only their trivial cut).

    Returns ``{node: [cut, ...]}`` where each cut is a frozenset of leaf
    node ids; the trivial cut is always last.
    """
    from ..aig.traversal import topological_order

    cuts: dict[int, list[frozenset[int]]] = {0: [frozenset({0})]}
    for pi in g.pis:
        cuts[pi] = [frozenset({pi})]
    for node in topological_order(g):
        f0, f1 = g.fanin_lits(node)
        merged = _merge(cuts[lit_node(f0)], cuts[lit_node(f1)], k, max_cuts)
        merged.append(frozenset({node}))
        cuts[node] = merged
    return cuts


def node_cuts(
    g: AIG,
    node: int,
    all_cuts: dict[int, list[frozenset[int]]],
) -> list[frozenset[int]]:
    """Cuts of ``node`` excluding the trivial cut."""
    return [c for c in all_cuts[node] if c != frozenset({node})]


def _merge(
    cuts0: list[frozenset[int]],
    cuts1: list[frozenset[int]],
    k: int,
    max_cuts: int,
) -> list[frozenset[int]]:
    candidates: set[frozenset[int]] = set()
    for c0 in cuts0:
        for c1 in cuts1:
            union = c0 | c1
            if len(union) <= k:
                candidates.add(union)
    # Dominance pruning: drop any cut that is a superset of another.
    ordered = sorted(candidates, key=len)
    kept: list[frozenset[int]] = []
    for cut in ordered:
        if not any(other < cut for other in kept):
            kept.append(cut)
        if len(kept) >= max_cuts:
            break
    return kept


def cut_cone(g: AIG, root: int, cut: frozenset[int]) -> list[int]:
    """AND nodes between ``cut`` and ``root`` (root included), topological."""
    cone: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in cone or node in cut or not g.is_and(node):
            continue
        cone.add(node)
        f0, f1 = g.fanin_lits(node)
        stack.append(lit_node(f0))
        stack.append(lit_node(f1))
    return sorted(cone)
