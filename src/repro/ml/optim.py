"""First-order optimizers over lists of parameter arrays."""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


class Adam:
    """Adam (Kingma & Ba) with the standard bias correction."""

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float = 0.1,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise TrainingError("gradient list length mismatch")
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1 - b1**self._t
        bc2 = 1 - b2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class SGD:
    """Plain SGD with optional momentum (ablation baseline)."""

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise TrainingError("gradient list length mismatch")
        for p, g, v in zip(self.params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v
