"""A minimal graph convolutional network over cut subgraphs.

The paper rejects GCNs for this task because per-cut inference costs
roughly 30x the resynthesis it would save (SS III-B).  This module exists
to *reproduce that comparison*: it builds the normalized-adjacency
message-passing forward pass for one cut's cone and the benchmark
harness times it against the batched MLP.
"""

from __future__ import annotations

import numpy as np

from ..aig.graph import AIG
from ..aig.literal import lit_node
from ..cuts.reconv import ReconvCut
from ..errors import TrainingError


class CutGCN:
    """Two-layer GCN with mean pooling and a sigmoid head."""

    def __init__(self, n_features: int = 4, hidden: int = 16, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        bound1 = float(np.sqrt(6.0 / (n_features + hidden)))
        bound2 = float(np.sqrt(6.0 / (hidden + hidden)))
        self.w1 = rng.uniform(-bound1, bound1, size=(n_features, hidden))
        self.w2 = rng.uniform(-bound2, bound2, size=(hidden, hidden))
        self.w_out = rng.uniform(-1.0, 1.0, size=(hidden,))
        self.n_features = n_features

    @property
    def n_parameters(self) -> int:
        return self.w1.size + self.w2.size + self.w_out.size

    def forward(self, adjacency: np.ndarray, features: np.ndarray) -> float:
        """Probability for one cut graph.

        ``adjacency`` is the (symmetric, unnormalized) n x n matrix;
        ``features`` is n x n_features.
        """
        if adjacency.shape[0] != features.shape[0]:
            raise TrainingError("adjacency/features size mismatch")
        a_hat = _normalize_adjacency(adjacency)
        h = np.maximum(a_hat @ features @ self.w1, 0.0)
        h = np.maximum(a_hat @ h @ self.w2, 0.0)
        pooled = h.mean(axis=0)
        z = float(pooled @ self.w_out)
        return 1.0 / (1.0 + np.exp(-z)) if z >= 0 else float(
            np.exp(z) / (1.0 + np.exp(z))
        )


def cut_graph_tensors(g: AIG, cut: ReconvCut) -> tuple[np.ndarray, np.ndarray]:
    """Adjacency and per-node features for a cut's cone + leaves.

    Node features: [is_leaf, is_root, level, fanout] — the structural
    information a GCN would have to learn to aggregate on its own.
    """
    nodes = sorted(cut.interior) + list(cut.leaves)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    adjacency = np.zeros((n, n), dtype=np.float64)
    features = np.zeros((n, 4), dtype=np.float64)
    leaf_set = set(cut.leaves)
    for node in nodes:
        i = index[node]
        features[i, 0] = 1.0 if node in leaf_set else 0.0
        features[i, 1] = 1.0 if node == cut.root else 0.0
        features[i, 2] = g.level(node)
        features[i, 3] = g.n_fanouts(node)
        if node in cut.interior:
            for fl in g.fanin_lits(node):
                fanin = lit_node(fl)
                if fanin in index:
                    j = index[fanin]
                    adjacency[i, j] = 1.0
                    adjacency[j, i] = 1.0
    return adjacency, features


def _normalize_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Kipf-Welling normalization: D^-1/2 (A + I) D^-1/2."""
    a = adjacency + np.eye(adjacency.shape[0])
    degree = a.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-9))
    return a * inv_sqrt[:, None] * inv_sqrt[None, :]
