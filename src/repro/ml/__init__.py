"""Pure-NumPy ML stack: the paper's 325-parameter MLP, its training
recipe, metrics, datasets and the GCN cost comparison."""

from .dataset import CutDataset, DatasetCollector
from .gcn import CutGCN, cut_graph_tensors
from .losses import bce_with_logits, class_balanced_weights, focal_loss_with_logits
from .metrics import Confusion, confusion, threshold_for_recall
from .mixup import mixup_batch
from .mlp import PAPER_LAYERS, MLP
from .optim import Adam, SGD
from .sampler import WeightedRandomSampler
from .schedule import CosineAnnealingWarmRestarts
from .train import TrainConfig, TrainResult, train_classifier

__all__ = [
    "Adam",
    "Confusion",
    "CosineAnnealingWarmRestarts",
    "CutDataset",
    "CutGCN",
    "DatasetCollector",
    "MLP",
    "PAPER_LAYERS",
    "SGD",
    "TrainConfig",
    "TrainResult",
    "WeightedRandomSampler",
    "bce_with_logits",
    "class_balanced_weights",
    "confusion",
    "cut_graph_tensors",
    "focal_loss_with_logits",
    "mixup_batch",
    "threshold_for_recall",
    "train_classifier",
]
