"""Weighted random batch sampling for imbalanced datasets.

The refactoring datasets are extremely imbalanced (~1% positives, paper
Tables I/II); the paper found a weighted random sampler beat SMOTE and
one-sided selection.  Each sample is drawn with probability inversely
proportional to its class frequency, so batches are roughly class
balanced in expectation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import TrainingError


class WeightedRandomSampler:
    """Yields index batches with inverse-class-frequency sampling."""

    def __init__(
        self,
        labels: np.ndarray,
        batch_size: int = 64,
        seed: int = 0,
        replacement: bool = True,
    ) -> None:
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.size == 0:
            raise TrainingError("labels must be a non-empty 1-d array")
        if batch_size < 1:
            raise TrainingError("batch_size must be positive")
        self.n = labels.size
        self.batch_size = batch_size
        self.replacement = replacement
        self._rng = np.random.default_rng(seed)
        positives = labels > 0.5
        n_pos = int(positives.sum())
        n_neg = self.n - n_pos
        weights = np.empty(self.n, dtype=np.float64)
        weights[positives] = 1.0 / max(1, n_pos)
        weights[~positives] = 1.0 / max(1, n_neg)
        self._probs = weights / weights.sum()

    def epoch(self) -> Iterator[np.ndarray]:
        """One epoch's worth of batches (n // batch_size batches)."""
        n_batches = max(1, self.n // self.batch_size)
        for _ in range(n_batches):
            yield self._rng.choice(
                self.n,
                size=min(self.batch_size, self.n),
                replace=self.replacement,
                p=self._probs,
            )
