"""Classifier quality metrics, matching the paper's definitions.

``Recall = TP / (TP + FN)`` — fraction of truly refactorable cuts the
model keeps (drives area quality).  ``Accuracy = (TP + TN) / all`` —
drives runtime, since accurately pruned negatives are skipped work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrainingError


@dataclass(frozen=True)
class Confusion:
    """Confusion counts in the paper's Table VII/VIII layout."""

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return 1.0 if denom == 0 else self.tp / denom

    @property
    def accuracy(self) -> float:
        return 0.0 if self.total == 0 else (self.tp + self.tn) / self.total

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return 1.0 if denom == 0 else self.tp / denom

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)

    @property
    def prune_fraction(self) -> float:
        """Fraction of all nodes the classifier prunes (predicted 0)."""
        return 0.0 if self.total == 0 else (self.tn + self.fn) / self.total

    def row(self) -> tuple[float, float, int, int, int, int]:
        return (self.recall, self.accuracy, self.tp, self.tn, self.fp, self.fn)


def confusion(y_true: np.ndarray, y_pred: np.ndarray) -> Confusion:
    """Confusion counts from boolean/0-1 arrays."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise TrainingError("prediction/label shape mismatch")
    return Confusion(
        tp=int((y_true & y_pred).sum()),
        tn=int((~y_true & ~y_pred).sum()),
        fp=int((~y_true & y_pred).sum()),
        fn=int((y_true & ~y_pred).sum()),
    )


def threshold_for_recall(
    probs: np.ndarray,
    labels: np.ndarray,
    target_recall: float = 0.95,
) -> float:
    """Largest threshold whose recall on (probs, labels) meets the target.

    The paper's classifier is recall-driven: the operating point is chosen
    to keep recall high (protecting area) while pruning as much as
    possible (maximizing accuracy/runtime).  With no positive labels the
    default 0.5 is returned.
    """
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if probs.shape != labels.shape:
        raise TrainingError("probs/labels shape mismatch")
    positive_probs = np.sort(probs[labels])
    if positive_probs.size == 0:
        return 0.5
    # Keeping all probs >= t classifies ceil(recall * n_pos) positives
    # correctly when t sits just below the right quantile.
    n_pos = positive_probs.size
    max_missed = int(np.floor((1.0 - target_recall) * n_pos + 1e-9))
    index = min(max_missed, n_pos - 1)
    threshold = float(positive_probs[index])
    # Nudge below the chosen positive so >= keeps it.
    return max(0.0, threshold - 1e-12)
