"""MixUp data augmentation (Zhang et al., the paper's augmentation)."""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


def mixup_batch(
    x: np.ndarray,
    y: np.ndarray,
    alpha: float = 0.2,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convex-combine a batch with a shuffled copy of itself.

    ``lam ~ Beta(alpha, alpha)`` per batch; labels become soft targets.
    ``alpha <= 0`` disables mixing (identity).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape[0] != y.shape[0]:
        raise TrainingError("x/y batch size mismatch")
    if alpha <= 0 or x.shape[0] < 2:
        return x, y
    rng = rng or np.random.default_rng()
    lam = float(rng.beta(alpha, alpha))
    # Symmetry: keep the larger share on the original sample.
    lam = max(lam, 1.0 - lam)
    perm = rng.permutation(x.shape[0])
    x_mixed = lam * x + (1 - lam) * x[perm]
    y_mixed = lam * y + (1 - lam) * y[perm]
    return x_mixed, y_mixed
