"""A small feedforward network in pure NumPy.

The paper's classifier: 4 fully connected layers shaped
``6 -> 12 -> 12 -> 6 -> 1`` (325 parameters), ReLU hidden activations,
sigmoid output, Xavier-initialized weights with zero biases.  Training
(backprop) and the deployment trick — folding the mean-variance
normalization into the first layer so batched inference is a handful of
matmuls — both live here.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError

PAPER_LAYERS = (6, 12, 12, 6, 1)


class MLP:
    """Feedforward ReLU network with a single sigmoid output."""

    def __init__(
        self,
        layer_sizes: tuple[int, ...] = PAPER_LAYERS,
        seed: int = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise TrainingError("need at least input and output layer sizes")
        if layer_sizes[-1] != 1:
            raise TrainingError("the ELF classifier has a single output unit")
        self.layer_sizes = tuple(layer_sizes)
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for n_in, n_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            # Xavier/Glorot uniform, biases zero (paper SS IV-A).
            bound = float(np.sqrt(6.0 / (n_in + n_out)))
            self.weights.append(rng.uniform(-bound, bound, size=(n_in, n_out)))
            self.biases.append(np.zeros(n_out))

    @property
    def n_parameters(self) -> int:
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    # -- inference ---------------------------------------------------------

    def forward_logits(self, x: np.ndarray) -> np.ndarray:
        """Logits for a batch ``(n, d_in)``; returns shape ``(n,)``."""
        h = np.asarray(x, dtype=np.float64)
        if h.ndim != 2 or h.shape[1] != self.layer_sizes[0]:
            raise TrainingError(
                f"expected (n, {self.layer_sizes[0]}) input, got {h.shape}"
            )
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i != last:
                np.maximum(h, 0.0, out=h)
        return h[:, 0]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Sigmoid probabilities for a batch."""
        return _sigmoid(self.forward_logits(x))

    # -- training support ----------------------------------------------------

    def forward_cached(self, x: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Forward pass retaining pre-activation inputs for backprop.

        Returns ``(layer_inputs, logits)`` where ``layer_inputs[i]`` is the
        input fed to layer ``i``.
        """
        h = np.asarray(x, dtype=np.float64)
        inputs = []
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            inputs.append(h)
            h = h @ w + b
            if i != last:
                h = np.maximum(h, 0.0)
        return inputs, h[:, 0]

    def backprop(
        self,
        layer_inputs: list[np.ndarray],
        dlogits: np.ndarray,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Gradients of all weights/biases given dLoss/dLogits."""
        grad_w: list[np.ndarray] = [np.empty(0)] * len(self.weights)
        grad_b: list[np.ndarray] = [np.empty(0)] * len(self.biases)
        delta = dlogits[:, None]  # (n, 1)
        for i in range(len(self.weights) - 1, -1, -1):
            x_in = layer_inputs[i]
            grad_w[i] = x_in.T @ delta
            grad_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = delta @ self.weights[i].T
                # ReLU derivative: the layer-(i) input is the ReLU output
                # of layer i-1, so its positive entries mark active units.
                delta = delta * (x_in > 0.0)
        return grad_w, grad_b

    # -- parameter plumbing ---------------------------------------------------

    def get_parameters(self) -> list[np.ndarray]:
        return [a for pair in zip(self.weights, self.biases) for a in pair]

    def set_parameters(self, params: list[np.ndarray]) -> None:
        if len(params) != 2 * len(self.weights):
            raise TrainingError("parameter list length mismatch")
        for i in range(len(self.weights)):
            self.weights[i] = params[2 * i]
            self.biases[i] = params[2 * i + 1]

    def copy(self) -> "MLP":
        dup = MLP(self.layer_sizes)
        dup.weights = [w.copy() for w in self.weights]
        dup.biases = [b.copy() for b in self.biases]
        return dup

    # -- deployment ---------------------------------------------------------

    def fuse_normalization(self, mean: np.ndarray, std: np.ndarray) -> "MLP":
        """Fold ``(x - mean) / std`` into the first layer.

        Returns a network with identical outputs on *raw* features — the
        paper's merged Mean-Variance-Normalization node, which removes the
        per-batch normalization pass at inference time.
        """
        mean = np.asarray(mean, dtype=np.float64)
        std = np.asarray(std, dtype=np.float64)
        if mean.shape != (self.layer_sizes[0],) or std.shape != mean.shape:
            raise TrainingError("normalization stats shape mismatch")
        if np.any(std <= 0):
            raise TrainingError("std must be strictly positive")
        fused = self.copy()
        fused.weights[0] = self.weights[0] / std[:, None]
        fused.biases[0] = self.biases[0] - (mean / std) @ self.weights[0]
        return fused


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out
