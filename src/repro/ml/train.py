"""The training loop, mirroring the paper's recipe (SS IV-A).

Batch size 64, up to 30 epochs with early stopping (patience 10), Adam at
lr 0.1 under cosine annealing with warm restarts, BCE loss, MixUp
augmentation, and a weighted random sampler against the ~1%-positive
class imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TrainingError
from .dataset import CutDataset
from .losses import bce_with_logits, class_balanced_weights, focal_loss_with_logits
from .mixup import mixup_batch
from .mlp import PAPER_LAYERS, MLP
from .optim import Adam
from .sampler import WeightedRandomSampler
from .schedule import CosineAnnealingWarmRestarts


@dataclass
class TrainConfig:
    """Hyperparameters; defaults are the paper's."""

    layer_sizes: tuple[int, ...] = PAPER_LAYERS
    batch_size: int = 64
    epochs: int = 30
    patience: int = 10
    lr: float = 0.1
    restart_period: int = 10
    mixup_alpha: float = 0.2
    loss: str = "bce"  # "bce" | "focal" | "class_balanced"
    seed: int = 0
    max_batches_per_epoch: int = 400  # caps epoch cost on huge datasets
    validation_fraction: float = 0.1


@dataclass
class TrainResult:
    """Trained network plus its normalization stats and history."""

    model: MLP
    mean: np.ndarray
    std: np.ndarray
    history: list[dict] = field(default_factory=list)
    best_epoch: int = -1

    def fused_model(self) -> MLP:
        """Model with normalization folded in (runs on raw features)."""
        return self.model.fuse_normalization(self.mean, self.std)


def train_classifier(dataset: CutDataset, config: TrainConfig | None = None) -> TrainResult:
    """Train the ELF classifier on a (raw-feature) dataset."""
    config = config or TrainConfig()
    if len(dataset) < 4:
        raise TrainingError("dataset too small to train on")
    mean, std = dataset.standardization()
    x_all = (dataset.x - mean) / std
    y_all = dataset.y

    rng = np.random.default_rng(config.seed)
    perm = rng.permutation(len(dataset))
    n_val = max(1, int(len(dataset) * config.validation_fraction))
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    x_train, y_train = x_all[train_idx], y_all[train_idx]
    x_val, y_val = x_all[val_idx], y_all[val_idx]

    model = MLP(config.layer_sizes, seed=config.seed)
    params = model.get_parameters()
    optimizer = Adam(params, lr=config.lr)
    schedule = CosineAnnealingWarmRestarts(config.lr, t0=config.restart_period)
    sampler = WeightedRandomSampler(y_train, config.batch_size, seed=config.seed)
    cb_weights = (
        class_balanced_weights(y_train) if config.loss == "class_balanced" else None
    )

    best_val = float("inf")
    best_params = [p.copy() for p in params]
    best_epoch = -1
    bad_epochs = 0
    history: list[dict] = []
    for epoch in range(config.epochs):
        optimizer.lr = schedule.lr_at(epoch)
        epoch_loss, n_batches = 0.0, 0
        for batch_idx in sampler.epoch():
            if n_batches >= config.max_batches_per_epoch:
                break
            xb, yb = x_train[batch_idx], y_train[batch_idx]
            xb, yb = mixup_batch(xb, yb, config.mixup_alpha, rng)
            inputs, logits = model.forward_cached(xb)
            if config.loss == "focal":
                loss, dlogits = focal_loss_with_logits(logits, yb)
            elif config.loss == "class_balanced":
                loss, dlogits = bce_with_logits(logits, yb, cb_weights[batch_idx])
            else:
                loss, dlogits = bce_with_logits(logits, yb)
            grad_w, grad_b = model.backprop(inputs, dlogits)
            grads = [a for pair in zip(grad_w, grad_b) for a in pair]
            optimizer.step(grads)
            epoch_loss += loss
            n_batches += 1
        val_logits = model.forward_logits(x_val)
        # Validation uses balanced BCE so the 99%-negative majority cannot
        # mask the recall-critical positive loss.
        pos_weight = _balanced_weights(y_val)
        val_loss, _ = bce_with_logits(val_logits, y_val, pos_weight)
        history.append(
            {
                "epoch": epoch,
                "lr": optimizer.lr,
                "train_loss": epoch_loss / max(1, n_batches),
                "val_loss": val_loss,
            }
        )
        if val_loss < best_val - 1e-6:
            best_val = val_loss
            best_params = [p.copy() for p in params]
            best_epoch = epoch
            bad_epochs = 0
        else:
            bad_epochs += 1
            if bad_epochs >= config.patience:
                break
    model.set_parameters(best_params)
    return TrainResult(model=model, mean=mean, std=std, history=history, best_epoch=best_epoch)


def _balanced_weights(labels: np.ndarray) -> np.ndarray:
    positives = labels > 0.5
    n_pos = max(1, int(positives.sum()))
    n_neg = max(1, int((~positives).sum()))
    n = labels.size
    w_pos, w_neg = n / (2.0 * n_pos), n / (2.0 * n_neg)
    return np.where(positives, w_pos, w_neg)
