"""Classification losses (logit-space, numerically stable).

Binary cross entropy is the paper's production loss; focal and
class-balanced variants are included because the paper reports trying
them (SS IV-A) — the ablation bench reproduces that comparison.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


def bce_with_logits(
    logits: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Mean binary cross entropy and its gradient w.r.t. the logits.

    ``targets`` may be soft (MixUp produces values in [0, 1]).
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if logits.shape != targets.shape:
        raise TrainingError("logits/targets shape mismatch")
    n = logits.size
    if n == 0:
        raise TrainingError("empty batch")
    # log(1 + exp(z)) computed stably.
    softplus = np.logaddexp(0.0, logits)
    per_sample = softplus - targets * logits
    probs = _sigmoid(logits)
    grad = probs - targets
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        per_sample = per_sample * weights
        grad = grad * weights
    return float(per_sample.mean()), grad / n


def focal_loss_with_logits(
    logits: np.ndarray,
    targets: np.ndarray,
    gamma: float = 2.0,
    alpha: float = 0.75,
) -> tuple[float, np.ndarray]:
    """Focal loss (Lin et al.) with its gradient — hard-example weighting."""
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    p = _sigmoid(logits)
    eps = 1e-12
    pt = targets * p + (1 - targets) * (1 - p)
    at = targets * alpha + (1 - targets) * (1 - alpha)
    log_pt = np.log(np.clip(pt, eps, 1.0))
    per_sample = -at * (1 - pt) ** gamma * log_pt
    # d/dz: chain through pt = t*p + (1-t)(1-p), dpt/dz = (2t-1) p(1-p)
    dpt_dz = (2 * targets - 1) * p * (1 - p)
    dloss_dpt = -at * (
        -gamma * (1 - pt) ** (gamma - 1) * log_pt + (1 - pt) ** gamma / np.clip(pt, eps, 1.0)
    )
    grad = dloss_dpt * dpt_dz
    return float(per_sample.mean()), grad / logits.size


def class_balanced_weights(labels: np.ndarray, beta: float = 0.999) -> np.ndarray:
    """Per-sample weights from the class-balanced loss (Cui et al.)."""
    labels = np.asarray(labels)
    n_pos = max(1, int((labels > 0.5).sum()))
    n_neg = max(1, int((labels <= 0.5).sum()))
    eff_pos = (1 - beta**n_pos) / (1 - beta)
    eff_neg = (1 - beta**n_neg) / (1 - beta)
    w_pos, w_neg = 1.0 / eff_pos, 1.0 / eff_neg
    scale = 2.0 / (w_pos + w_neg)
    return np.where(labels > 0.5, w_pos * scale, w_neg * scale)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out
