"""Cut-feature datasets: collection, standardization, persistence.

A :class:`CutDataset` is the per-circuit table of 6-d feature vectors and
refactor-success labels, harvested by running the baseline operator with
a collector.  Datasets standardize with their own mean/variance (the
paper standardizes each dataset individually) and concatenate across
circuits for leave-one-out training.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..cuts.features import N_FEATURES, CutFeatures
from ..errors import TrainingError


@dataclass
class CutDataset:
    """Features ``(n, 6)`` and binary labels ``(n,)`` for one circuit."""

    x: np.ndarray
    y: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.x.ndim != 2 or self.x.shape[1] != N_FEATURES:
            raise TrainingError(f"features must be (n, {N_FEATURES})")
        if self.y.shape != (self.x.shape[0],):
            raise TrainingError("label count mismatch")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def n_positive(self) -> int:
        return int((self.y > 0.5).sum())

    @property
    def imbalance(self) -> float:
        """Fraction of positive (refactorable) samples."""
        return 0.0 if len(self) == 0 else self.n_positive / len(self)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def collector() -> "DatasetCollector":
        return DatasetCollector()

    @staticmethod
    def concatenate(datasets: list["CutDataset"], name: str = "merged") -> "CutDataset":
        if not datasets:
            raise TrainingError("cannot concatenate zero datasets")
        return CutDataset(
            np.concatenate([d.x for d in datasets]),
            np.concatenate([d.y for d in datasets]),
            name,
        )

    # -- standardization ---------------------------------------------------

    def standardization(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-feature mean and std (std floored to avoid division by 0)."""
        if len(self) == 0:
            raise TrainingError("empty dataset has no statistics")
        mean = self.x.mean(axis=0)
        std = self.x.std(axis=0)
        std[std < 1e-9] = 1.0
        return mean, std

    def standardized(self) -> tuple["CutDataset", np.ndarray, np.ndarray]:
        mean, std = self.standardization()
        return CutDataset((self.x - mean) / std, self.y, self.name), mean, std

    # -- splitting ---------------------------------------------------------

    def split(self, fraction: float = 0.9, seed: int = 0) -> tuple["CutDataset", "CutDataset"]:
        """Shuffled (train, validation) split."""
        if not 0.0 < fraction < 1.0:
            raise TrainingError("fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(self))
        cutoff = max(1, int(len(self) * fraction))
        return (
            CutDataset(self.x[perm[:cutoff]], self.y[perm[:cutoff]], self.name),
            CutDataset(self.x[perm[cutoff:]], self.y[perm[cutoff:]], self.name),
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        np.savez_compressed(path, x=self.x, y=self.y, name=np.array(self.name))

    @staticmethod
    def load(path: str | Path) -> "CutDataset":
        data = np.load(path, allow_pickle=False)
        return CutDataset(data["x"], data["y"], str(data["name"]))


class DatasetCollector:
    """Callable collector plugged into :func:`repro.opt.refactor`."""

    def __init__(self) -> None:
        self._features: list[tuple] = []
        self._labels: list[float] = []

    def __call__(self, features: CutFeatures, committed: bool) -> None:
        if features is None:
            raise TrainingError("refactor must run with feature collection on")
        self._features.append(features.as_tuple())
        self._labels.append(1.0 if committed else 0.0)

    def dataset(self, name: str = "collected") -> CutDataset:
        if not self._features:
            return CutDataset(
                np.zeros((0, N_FEATURES)), np.zeros(0), name
            )
        return CutDataset(
            np.array(self._features, dtype=np.float64),
            np.array(self._labels, dtype=np.float64),
            name,
        )
