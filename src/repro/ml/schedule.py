"""Learning-rate schedules."""

from __future__ import annotations

import math

from ..errors import TrainingError


class CosineAnnealingWarmRestarts:
    """SGDR schedule (Loshchilov & Hutter), the paper's LR scheduler.

    The learning rate decays from ``lr_max`` to ``lr_min`` along a cosine
    within each cycle; cycle ``k`` lasts ``t0 * t_mult**k`` epochs and the
    rate jumps back to ``lr_max`` at every restart.
    """

    def __init__(
        self,
        lr_max: float,
        t0: int = 10,
        t_mult: int = 1,
        lr_min: float = 0.0,
    ) -> None:
        if t0 < 1 or t_mult < 1:
            raise TrainingError("t0 and t_mult must be >= 1")
        self.lr_max = lr_max
        self.lr_min = lr_min
        self.t0 = t0
        self.t_mult = t_mult

    def lr_at(self, epoch: float) -> float:
        """Learning rate at a (possibly fractional) epoch index."""
        if epoch < 0:
            raise TrainingError("epoch must be non-negative")
        cycle_len = self.t0
        t = epoch
        while t >= cycle_len:
            t -= cycle_len
            cycle_len *= self.t_mult
        fraction = t / cycle_len
        return self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (
            1 + math.cos(math.pi * fraction)
        )
