"""Deterministic fault injection: named sites, scripted failures, no flakes.

Recovery code is only trustworthy if every path runs in CI, and worker
crashes cannot be provoked reliably from the outside (a SIGKILL from the
parent races the victim's task pickup, especially on one core).  So the
engine and serve tiers consult this registry at **named sites**, and an
installed :class:`FaultPlan` decides — deterministically, by arrival
count and context match — whether that arrival raises, kills a process,
or stalls:

========================  ====================================================
site                      consulted
========================  ====================================================
``worker.start``          in the parent, before the resynthesis pool forks
``worker.chunk``          inside a pool worker, before evaluating one chunk
                          (context: ``chunk`` = absolute chunk index)
``chunk.result``          in the parent, before each chunk-result wait
                          (context: ``chunk``, ``pids`` of the pool)
``shm.create``            before allocating a wave shared-memory segment
``classifier.fire``       before a fused classifier round dispatches
``shard.circuit``         inside a serve shard process, before running one
                          circuit (context: ``pid``, ``shard``, ``circuit``)
========================  ====================================================

Actions: ``raise`` (an :class:`InjectedFault`, a
:class:`repro.errors.RetryableError`), ``kill`` (SIGKILL — the context's
``pid``, or ``pids[value]``), ``delay`` (sleep ``value`` seconds, the
hung-worker simulation).  Triggering is exact: ``hits`` selects 1-based
arrival numbers at the site, ``match`` pins a context key (so
``worker.chunk`` faults can target chunk 0 and *only* chunk 0, which is
what makes killed-worker tests reproducible on any scheduler).  Arrival
counters are per process; forked workers inherit the installed plan and
count their own arrivals.

Inactive injection is one ``None`` check per site — cheap enough to stay
compiled in (the ``faults-idle`` row of ``BENCH_engine.json`` pins the
overhead < 1%).  Plans install programmatically (:func:`install`,
:func:`injected`) or from the ``REPRO_FAULTS`` environment variable,
e.g. ``REPRO_FAULTS="worker.chunk=kill#chunk=0;shm.create=raise@1"``.
Every triggered fault is counted: ``faults_injected_total{site,action}``.
"""

from __future__ import annotations

import os
import re
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .. import obs
from ..errors import ReproError, RetryableError

ENV_VAR = "REPRO_FAULTS"

_SPEC_RE = re.compile(
    r"^(?P<site>[\w.]+)=(?P<action>raise|kill|delay)"
    r"(?:\((?P<value>[^)]*)\))?"
    r"(?:@(?P<hits>[\d,]+))?"
    r"(?:#(?P<key>\w+)=(?P<val>[\w.-]+))?$"
)


class InjectedFault(RetryableError):
    """The error a ``raise`` fault throws at its site (retryable)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted failure: where, what, and exactly when.

    ``hits`` are 1-based arrival numbers at ``site`` that trigger (empty
    = every arrival); ``match`` further requires ``ctx[key] == value``
    (compared as strings, so specs stay env-encodable); ``value`` is the
    action parameter — delay seconds, or the pool-pid index for ``kill``
    when the context carries ``pids`` rather than a single ``pid``.
    """

    site: str
    action: str  # "raise" | "kill" | "delay"
    hits: frozenset[int] = frozenset()
    match: tuple[str, str] | None = None
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ("raise", "kill", "delay"):
            raise ReproError(f"unknown fault action {self.action!r}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``site=action[(value)][@hits][#key=val]`` spec."""
        m = _SPEC_RE.match(text.strip())
        if m is None:
            raise ReproError(f"malformed fault spec {text!r}")
        hits = m.group("hits")
        return cls(
            site=m.group("site"),
            action=m.group("action"),
            hits=frozenset(int(h) for h in hits.split(",")) if hits else frozenset(),
            match=(m.group("key"), m.group("val")) if m.group("key") else None,
            value=float(m.group("value")) if m.group("value") else 0.0,
        )

    def triggers(self, hit: int, ctx: dict) -> bool:
        if self.hits and hit not in self.hits:
            return False
        if self.match is not None:
            key, value = self.match
            if key not in ctx or str(ctx[key]) != value:
                return False
        return True


@dataclass
class FaultPlan:
    """An installed set of :class:`FaultSpec` with per-site arrival state."""

    specs: tuple[FaultSpec, ...] = ()
    _hits: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Plan from a ``;``-separated spec string (the env encoding)."""
        specs = tuple(
            FaultSpec.parse(part) for part in text.split(";") if part.strip()
        )
        return cls(specs=specs)

    def arrivals(self, site: str) -> int:
        """How many times ``site`` has been consulted in this process."""
        with self._lock:
            return self._hits.get(site, 0)

    def fire(self, site: str, **ctx) -> None:
        """Account one arrival at ``site``; perform any triggered action."""
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
        for spec in self.specs:
            if spec.site != site or not spec.triggers(hit, ctx):
                continue
            obs.counter("faults_injected_total", site=site, action=spec.action).add(1)
            if spec.action == "delay":
                time.sleep(spec.value)
            elif spec.action == "kill":
                _kill(spec, ctx, site)
            else:
                raise InjectedFault(f"injected fault at {site} (hit {hit})")


def _kill(spec: FaultSpec, ctx: dict, site: str) -> None:
    if "pid" in ctx:
        pid = int(ctx["pid"])
    elif ctx.get("pids"):
        pids = list(ctx["pids"])
        pid = int(pids[int(spec.value) % len(pids)])
    else:
        raise ReproError(f"kill fault at {site} needs a pid/pids context")
    os.kill(pid, signal.SIGKILL)


_active: FaultPlan | None = None
_env_checked = False


def install(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Install ``plan`` (or a spec string) process-wide; ``None`` clears."""
    global _active, _env_checked
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _active = plan
    _env_checked = True  # explicit installs override the env var
    return plan


def clear() -> None:
    """Remove any installed plan (and forget the env override)."""
    global _active, _env_checked
    _active = None
    _env_checked = False


def active() -> FaultPlan | None:
    """The installed plan, lazily adopting ``REPRO_FAULTS`` once."""
    global _active, _env_checked
    if _active is None and not _env_checked:
        _env_checked = True
        text = os.environ.get(ENV_VAR, "").strip()
        if text:
            _active = FaultPlan.parse(text)
    return _active


def fire(site: str, **ctx) -> None:
    """Consult the registry at ``site`` (no-op unless a plan is live)."""
    plan = active()
    if plan is not None:
        plan.fire(site, **ctx)


@contextmanager
def injected(plan: FaultPlan | str):
    """Install ``plan`` for a ``with`` block, restoring the prior plan."""
    previous = _active
    installed = install(plan)
    try:
        yield installed
    finally:
        install(previous)
        if previous is None:
            clear()
