"""Recovery policy: retry budgets, backoff and the degradation ladder.

One small, dependency-free decision module so every layer recovers the
same way.  Failures are classified by the :mod:`repro.errors` taxonomy
(``RetryableError`` vs ``FatalError``); *how many times* and *how hard*
to retry is a :class:`RetryPolicy`; *what to fall back to* is the
degradation ladder::

    shm  ->  pickle  ->  sequential

Each rung trades throughput for robustness: shared-memory wave segments
are the fast path, pickled chunk messages survive ``/dev/shm``
exhaustion and mapping faults, and in-process sequential execution —
bit-identical to the pooled path by construction (PR 1) — is the floor
that can only fail if the computation itself is broken.

Every decision is counted on the :mod:`repro.obs` registry so recovery
is visible in any Prometheus/JSONL export:

* ``engine_worker_deaths_total`` — pool workers found dead (SIGKILL/OOM);
* ``engine_worker_hangs_total`` — chunks that blew their per-chunk
  deadline with the worker still alive;
* ``engine_retries_total`` — pool respawn + re-dispatch rounds;
* ``engine_degradations_total{to=...}`` — ladder steps taken;
* ``serve_deadline_exceeded_total`` / ``engine_deadline_exceeded_total``
  — budgets that expired (recorded where they were observed).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs

DEGRADATION_LADDER = ("shm", "pickle", "sequential")
"""Transport rungs, fastest first; recovery only ever moves right."""


def next_rung(current: str) -> str:
    """The ladder rung below ``current`` (the floor maps to itself)."""
    try:
        index = DEGRADATION_LADDER.index(current)
    except ValueError:  # "auto" and friends sit at the top of the ladder
        index = 0
    return DEGRADATION_LADDER[min(index + 1, len(DEGRADATION_LADDER) - 1)]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry budget with capped exponential backoff.

    ``allows(attempt)`` gates retry round ``attempt`` (0-based: the
    first *retry* is attempt 0); ``backoff(attempt)`` is how long to
    sleep before it.  The defaults keep recovery sub-second: two
    respawn attempts, 50 ms doubling to 100 ms.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0

    def allows(self, attempt: int) -> bool:
        """Whether retry round ``attempt`` (0-based) is inside budget."""
        return attempt < self.max_retries

    def backoff(self, attempt: int) -> float:
        """Pre-retry sleep for round ``attempt``, capped at the maximum."""
        return min(
            self.backoff_s * self.backoff_factor ** max(0, attempt),
            self.max_backoff_s,
        )


DEFAULT_RETRY_POLICY = RetryPolicy()


# -- counted decisions (the one bookkeeping path for every layer) ------------


def record_worker_death(n: int = 1) -> None:
    """Account ``n`` pool workers found dead during recovery."""
    if n > 0:
        obs.counter("engine_worker_deaths_total").add(n)


def record_worker_hang(n: int = 1) -> None:
    """Account ``n`` chunks lost to a hung (still-alive) worker."""
    if n > 0:
        obs.counter("engine_worker_hangs_total").add(n)


def record_retry() -> None:
    """Account one pool respawn + re-dispatch round."""
    obs.counter("engine_retries_total").add(1)


def record_degradation(to: str) -> None:
    """Account one ladder step (``to`` is the rung landed on)."""
    obs.counter("engine_degradations_total", to=to).add(1)


def record_deadline(layer: str) -> None:
    """Account one expired budget, labeled by the observing layer."""
    obs.counter(f"{layer}_deadline_exceeded_total").add(1)
