"""Latency budgets: the ``Deadline`` object threaded through the stack.

A :class:`Deadline` is an absolute expiry instant on a monotonic clock,
created once at the outermost layer (``serve`` builds one per circuit
from ``ServeParams.circuit_timeout_s``) and handed *down* — session to
wave pass to resynthesis executor — so every tier shares one budget
instead of composing per-layer timeouts that can sum past the SLA.
Checkpoints call :meth:`Deadline.check`, which raises
:class:`repro.errors.DeadlineExceeded` naming the site; blocking waits
bound themselves with :meth:`Deadline.bound` so a hung pool worker can
never sleep past the budget.

Expiry is graceful, never a hang and never a torn result: wave commits
are serial, so the layer that observes expiry abandons only *uncommitted*
work — the graph at that instant reflects a consistent prefix of commits
(CEC-verifiable), which the flow layer attaches to the exception as
``DeadlineExceeded.partial``.

The clock is injectable (``clock=time.monotonic`` by default) so tests
drive expiry deterministically by call count instead of real sleeping.
"""

from __future__ import annotations

import math
import time

from ..errors import DeadlineExceeded


class Deadline:
    """A monotonic latency budget; ``None`` seconds means unlimited.

    Instances are immutable in spirit (the expiry instant never moves)
    and safe to share across threads: every method is a pure read of the
    injected clock against the fixed expiry.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, seconds: float | None = None, clock=time.monotonic) -> None:
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def after(cls, seconds: float | None, clock=time.monotonic) -> "Deadline":
        """Budget expiring ``seconds`` from now (``None`` = never)."""
        return cls(seconds, clock=clock)

    @property
    def unlimited(self) -> bool:
        return self._expires_at is None

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited, clamped at 0.0)."""
        if self._expires_at is None:
            return math.inf
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def check(self, site: str = "") -> None:
        """Raise :class:`repro.errors.DeadlineExceeded` if expired."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline exceeded at {site or 'checkpoint'}", site=site
            )

    def bound(self, timeout: float) -> float:
        """``timeout`` clipped to the remaining budget (never negative).

        The bounding wait should treat a 0.0 return as "already expired"
        and fail fast rather than block.
        """
        return min(timeout, self.remaining())

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        if self._expires_at is None:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining():.3f}s)"
