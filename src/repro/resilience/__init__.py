"""``repro.resilience`` — the fault-tolerance spine of the engine/serve tiers.

Three small modules, shared by every layer that can fail:

* :mod:`repro.resilience.deadline` — :class:`Deadline` latency budgets,
  created at the serve tier and threaded down through
  :meth:`repro.opt.OptSession.run`, the wave scheduler and the
  resynthesis executor, so one SLA bounds the whole stack and expiry
  surfaces as a typed :class:`repro.errors.DeadlineExceeded` carrying
  the best consistent prefix result instead of a hang.
* :mod:`repro.resilience.policy` — :class:`RetryPolicy` budgets/backoff
  and the degradation ladder (``shm -> pickle -> sequential``), with
  every recovery decision counted on the :mod:`repro.obs` registry.
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  registry (:func:`repro.resilience.faults.fire` at named sites) that
  makes every recovery path CI-testable without flakes.

See ``docs/robustness.md`` for the failure model and guarantees.
"""

from .deadline import Deadline
from .faults import FaultPlan, FaultSpec, InjectedFault
from .policy import (
    DEFAULT_RETRY_POLICY,
    DEGRADATION_LADDER,
    RetryPolicy,
    next_rung,
    record_deadline,
    record_degradation,
    record_retry,
    record_worker_death,
    record_worker_hang,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "DEGRADATION_LADDER",
    "Deadline",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "next_rung",
    "record_deadline",
    "record_degradation",
    "record_retry",
    "record_worker_death",
    "record_worker_hang",
]
