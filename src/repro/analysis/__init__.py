"""Explainability: exact t-SNE and exact Shapley values (Figs. 3-4)."""

from .shap import mean_abs_shap, shap_direction, shapley_values
from .tsne import trustworthiness, tsne

__all__ = [
    "mean_abs_shap",
    "shap_direction",
    "shapley_values",
    "trustworthiness",
    "tsne",
]
