"""Exact t-SNE (van der Maaten & Hinton) in NumPy.

Used to regenerate the paper's Figure 3: a 2-d embedding of the 6-d cut
feature space with refactored/unrefactored coloring.  This is the exact
O(n^2) formulation with perplexity calibration by bisection, adaptive
enough for the few thousand points the figure uses.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


def tsne(
    x: np.ndarray,
    perplexity: float = 30.0,
    n_iter: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
) -> np.ndarray:
    """2-d embedding of ``x`` (shape ``(n, d)``)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise TrainingError("tsne expects a 2-d array")
    n = x.shape[0]
    if n < 5:
        raise TrainingError("tsne needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    p = _joint_probabilities(x, perplexity)
    rng = np.random.default_rng(seed)
    y = rng.normal(scale=1e-2, size=(n, 2))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)

    p_eff = p * 4.0  # early exaggeration
    for iteration in range(n_iter):
        if iteration == 100:
            p_eff = p
        grad = _gradient(p_eff, y)
        momentum = 0.5 if iteration < 100 else 0.8
        flips = np.sign(grad) != np.sign(velocity)
        gains = np.where(flips, gains + 0.2, gains * 0.8)
        np.clip(gains, 0.01, None, out=gains)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y


def _joint_probabilities(x: np.ndarray, perplexity: float) -> np.ndarray:
    distances = _pairwise_sq_distances(x)
    n = x.shape[0]
    target_entropy = np.log(perplexity)
    p_cond = np.zeros((n, n))
    for i in range(n):
        p_cond[i] = _calibrate_row(distances[i], i, target_entropy)
    p = (p_cond + p_cond.T) / (2.0 * n)
    return np.maximum(p, 1e-12)


def _calibrate_row(row: np.ndarray, i: int, target_entropy: float) -> np.ndarray:
    """Bisection on the Gaussian precision to match the target entropy."""
    beta, beta_min, beta_max = 1.0, 0.0, np.inf
    for _ in range(50):
        affinity = np.exp(-row * beta)
        affinity[i] = 0.0
        total = affinity.sum()
        if total <= 0:
            beta /= 2.0
            beta_max = beta * 2.0
            continue
        prob = affinity / total
        entropy = -np.sum(prob[prob > 0] * np.log(prob[prob > 0]))
        error = entropy - target_entropy
        if abs(error) < 1e-5:
            break
        if error > 0:
            beta_min = beta
            beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
        else:
            beta_max = beta
            beta = (beta + beta_min) / 2.0
    affinity = np.exp(-row * beta)
    affinity[i] = 0.0
    total = affinity.sum()
    return affinity / total if total > 0 else affinity


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    sq = (x * x).sum(axis=1)
    d = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.maximum(d, 0.0, out=d)
    return d


def _gradient(p: np.ndarray, y: np.ndarray) -> np.ndarray:
    d = _pairwise_sq_distances(y)
    inv = 1.0 / (1.0 + d)
    np.fill_diagonal(inv, 0.0)
    q = np.maximum(inv / inv.sum(), 1e-12)
    pq = (p - q) * inv
    return 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)


def trustworthiness(x: np.ndarray, y: np.ndarray, k: int = 5) -> float:
    """How well the embedding preserves k-NN structure (1 = perfect).

    Standard trustworthiness measure; the test suite uses it to validate
    the embedding quality quantitatively.
    """
    n = x.shape[0]
    dx = _pairwise_sq_distances(np.asarray(x, dtype=np.float64))
    dy = _pairwise_sq_distances(np.asarray(y, dtype=np.float64))
    np.fill_diagonal(dx, np.inf)
    np.fill_diagonal(dy, np.inf)
    rank_x = dx.argsort(axis=1).argsort(axis=1)
    nn_y = dy.argsort(axis=1)[:, :k]
    penalty = 0.0
    for i in range(n):
        for j in nn_y[i]:
            r = rank_x[i, j]
            if r >= k:
                penalty += r - k + 1
    norm = n * k * (2 * n - 3 * k - 1) / 2.0
    return 1.0 - 2.0 * penalty / norm if norm > 0 else 1.0
