"""Exact Shapley values for low-dimensional models (the paper's Fig. 4).

With only six features, the 2^6 = 64 feature coalitions can be enumerated
exactly, so no Kernel-SHAP sampling approximation is needed: for each
sample and feature we average the model-output change of adding the
feature over all coalitions, with the exact Shapley weights.  Missing
features are marginalized by substituting background-data means
(the standard "interventional" value function).
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from ..errors import TrainingError


def shapley_values(
    predict,
    x: np.ndarray,
    background: np.ndarray,
) -> np.ndarray:
    """Exact Shapley values, shape ``(n_samples, n_features)``.

    ``predict`` maps ``(m, d)`` feature batches to ``(m,)`` outputs;
    ``background`` supplies the reference distribution (its mean is used
    for switched-off features).
    """
    x = np.asarray(x, dtype=np.float64)
    background = np.asarray(background, dtype=np.float64)
    if x.ndim != 2 or background.ndim != 2 or x.shape[1] != background.shape[1]:
        raise TrainingError("x/background must be 2-d with equal feature count")
    d = x.shape[1]
    if d > 16:
        raise TrainingError("exact Shapley enumeration is limited to 16 features")
    reference = background.mean(axis=0)

    subsets = _all_subsets(d)
    # Evaluate the model once per (sample, subset) via one big batch.
    n = x.shape[0]
    batch = np.empty((n * len(subsets), d))
    for s_index, subset in enumerate(subsets):
        rows = batch[s_index * n : (s_index + 1) * n]
        rows[:] = reference
        if subset:
            cols = list(subset)
            rows[:, cols] = x[:, cols]
    outputs = np.asarray(predict(batch), dtype=np.float64).reshape(len(subsets), n)
    value = {subset: outputs[i] for i, subset in enumerate(subsets)}

    phi = np.zeros((n, d))
    return _accumulate(phi, value, d)


def _accumulate(phi: np.ndarray, value: dict, d: int) -> np.ndarray:
    for feature in range(d):
        others = [f for f in range(d) if f != feature]
        for size in range(d):
            weight = 1.0 / (d * comb(d - 1, size))
            for subset in combinations(others, size):
                without = frozenset(subset)
                with_f = frozenset(subset + (feature,))
                phi[:, feature] += weight * (value[with_f] - value[without])
    return phi


def _all_subsets(d: int) -> list[frozenset]:
    subsets = []
    for size in range(d + 1):
        for subset in combinations(range(d), size):
            subsets.append(frozenset(subset))
    return subsets


def mean_abs_shap(phi: np.ndarray) -> np.ndarray:
    """Per-feature mean |SHAP| (the usual global importance summary)."""
    return np.abs(phi).mean(axis=0)


def shap_direction(phi: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Correlation between feature value and SHAP value per feature.

    Positive: high feature values push toward "will refactor" — the
    directional reading of the paper's beeswarm plot.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros(x.shape[1])
    for j in range(x.shape[1]):
        xs, ps = x[:, j], phi[:, j]
        if xs.std() < 1e-12 or ps.std() < 1e-12:
            out[j] = 0.0
        else:
            out[j] = float(np.corrcoef(xs, ps)[0, 1])
    return out
