"""Experiment harness: caching, table rendering and per-table drivers."""

from .cache import cache_dir, cached_classifier, cached_dataset, clear_cache
from .experiments import (
    DEFAULT_TRAIN_CONFIG,
    EngineScalingRow,
    RedundancyRow,
    ServeThroughputRow,
    StatsRow,
    comparison_rows,
    engine_scaling,
    feature_matrix,
    global_classifier,
    loo_classifiers,
    model_quality,
    redundancy_rows,
    serve_throughput,
    suite_datasets,
    suite_statistics,
)
from .tables import format_table, write_report

__all__ = [
    "DEFAULT_TRAIN_CONFIG",
    "EngineScalingRow",
    "RedundancyRow",
    "ServeThroughputRow",
    "StatsRow",
    "cache_dir",
    "cached_classifier",
    "cached_dataset",
    "clear_cache",
    "comparison_rows",
    "engine_scaling",
    "feature_matrix",
    "format_table",
    "global_classifier",
    "loo_classifiers",
    "model_quality",
    "redundancy_rows",
    "serve_throughput",
    "suite_datasets",
    "suite_statistics",
    "write_report",
]
