"""Experiment drivers for every table and figure in the paper.

Each function produces the data behind one artifact of the evaluation
(SS IV); the files under ``benchmarks/`` call these, time the interesting
part, and render paper-vs-measured tables.  Heavy shared artifacts
(datasets, leave-one-out classifiers) go through the on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..aig.graph import AIG
from ..elf.classifier import ElfClassifier
from ..elf.pipeline import (
    ComparisonRow,
    collect_dataset,
    compare,
    evaluate_classifier,
    train_leave_one_out,
)
from ..elf.operator import ElfParams
from ..ml.dataset import CutDataset
from ..ml.metrics import Confusion
from ..ml.train import TrainConfig
from ..opt.refactor import RefactorParams, refactor
from .cache import cached_classifier, cached_dataset

DEFAULT_TRAIN_CONFIG = TrainConfig(epochs=30, patience=10, seed=0)
TARGET_RECALL = 0.98


@dataclass
class StatsRow:
    """One row of Table I/II: design statistics + refactorability."""

    design: str
    n_ands: int
    level: int
    n_pis: int
    n_pos: int
    refactored: int
    refactored_pct: float


def suite_statistics(suite: dict[str, AIG]) -> list[StatsRow]:
    """Tables I/II: run baseline refactor to count refactorable nodes."""
    rows = []
    for name, g in suite.items():
        stats = refactor(g.clone())
        rows.append(
            StatsRow(
                design=name,
                n_ands=g.n_ands,
                level=g.max_level(),
                n_pis=g.n_pis,
                n_pos=g.n_pos,
                refactored=stats.commits,
                refactored_pct=100.0 * stats.commits / max(1, stats.nodes_visited),
            )
        )
    return rows


def suite_datasets(suite: dict[str, AIG], tag: str) -> dict[str, CutDataset]:
    """Collect (cached) per-circuit feature/label datasets."""
    return {
        name: cached_dataset(f"{tag}_{name}", lambda g=g, n=name: collect_dataset(g, name=n))
        for name, g in suite.items()
    }


def loo_classifiers(
    datasets: dict[str, CutDataset],
    tag: str,
    config: TrainConfig | None = None,
    target_recall: float = TARGET_RECALL,
) -> dict[str, ElfClassifier]:
    """One leave-one-out classifier per test design (cached)."""
    config = config or DEFAULT_TRAIN_CONFIG
    return {
        name: cached_classifier(
            f"{tag}_loo_{name}",
            lambda n=name: train_leave_one_out(datasets, n, config, target_recall),
        )
        for name in datasets
    }


def global_classifier(
    datasets: dict[str, CutDataset],
    tag: str,
    config: TrainConfig | None = None,
    target_recall: float = TARGET_RECALL,
) -> ElfClassifier:
    """Classifier trained on *all* given datasets (used for Table VI,
    where the test circuits contribute no training data at all)."""
    config = config or DEFAULT_TRAIN_CONFIG
    from ..elf.classifier import ElfClassifier as _Elf
    from ..ml.train import train_classifier

    def build():
        nonempty = [d for d in datasets.values() if len(d) > 0]
        standardized = [d.standardized()[0] for d in nonempty]
        merged = CutDataset.concatenate(standardized, "all")
        result = train_classifier(merged, config)
        return _Elf.from_training(
            result,
            target_recall,
            calibration=[d.x for d in nonempty],
            calibration_labels=[d.y for d in nonempty],
        )

    return cached_classifier(f"{tag}_global", build)


def comparison_rows(
    suite: dict[str, AIG],
    classifiers: dict[str, ElfClassifier],
    elf_applications: int = 1,
    params: ElfParams | None = None,
    engine_workers: int | None = None,
) -> list[ComparisonRow]:
    """Tables III/IV/V: baseline refactor vs ELF per design.

    ``engine_workers`` additionally runs the conflict-wave engine per
    design and fills each row's ``engine_*`` columns.
    """
    rows = []
    for name, g in suite.items():
        rows.append(
            compare(
                g,
                classifiers[name],
                params,
                elf_applications=elf_applications,
                engine_workers=engine_workers,
            )
        )
    return rows


@dataclass
class EngineScalingRow:
    """One (design, workers) measurement of the conflict-wave engine.

    ``workers == 0`` encodes the sequential baseline the speedups are
    normalized against; ``operator`` names the wave operator measured
    (``"refactor"`` or ``"rewrite"``).
    """

    design: str
    workers: int
    runtime: float
    n_ands: int
    level: int
    speedup: float  # sequential runtime / this runtime
    n_waves: int = 0
    n_stale: int = 0  # structurally 0 since the sequential fallback died
    n_resnapshotted: int = 0  # cross-wave incremental snapshot refreshes
    dedup_rate: float = 0.0  # evaluation tasks eliminated by dedup/cache
    commits: int = 0
    operator: str = "refactor"
    graph: AIG | None = None  # the optimized clone (for CEC by callers)


def engine_scaling(
    g: AIG,
    workers_list: tuple[int, ...] = (1, 2, 4),
    params=None,
    classifier: ElfClassifier | None = None,
    operator: str = "refactor",
) -> list[EngineScalingRow]:
    """Sequential sweep vs the wave engine at each worker count.

    Every run starts from a fresh clone.  The first returned row
    (``workers == 0``) is the sequential baseline; every engine row
    carries its speedup against it.  ``operator`` selects the wave
    operator: ``"refactor"`` (optionally classifier-pruned) or
    ``"rewrite"``; rewrite runs use a private NPN library per timed run
    so no run starts with another's canonization cache.

    Runtimes are the operators' own ``stats.time_total``, which the
    :mod:`repro.obs` span instrumentation fills — the benchmark no
    longer keeps a hand-rolled clock around each run, so its numbers
    are exactly the timings a trace export of the same run shows.
    """
    from ..engine import (
        EngineParams,
        RewriteEngineParams,
        engine_refactor,
        engine_rewrite,
    )
    from ..opt.npn_library import NpnLibrary
    from ..opt.rewrite import rewrite as rewrite_pass
    from ..tt.isop import clear_isop_memo

    if operator not in ("refactor", "rewrite"):
        raise ValueError(f"unknown engine_scaling operator {operator!r}")
    if operator == "rewrite":
        rewrite_params = params or RewriteEngineParams()

        def run_baseline(clone):
            return rewrite_pass(clone, rewrite_params.rewrite, library=NpnLibrary())

        def run_engine(clone, workers):
            return engine_rewrite(
                clone,
                RewriteEngineParams(
                    rewrite=rewrite_params.rewrite,
                    workers=workers,
                    library=NpnLibrary(),
                ),
            )

    else:
        engine_params = params or EngineParams()

        def run_baseline(clone):
            return refactor(clone, engine_params.refactor)

        def run_engine(clone, workers):
            return engine_refactor(
                clone,
                EngineParams(refactor=engine_params.refactor, workers=workers),
                classifier=classifier,
            )

    # One untimed full-size pass first: the first big pass of a process
    # pays one-time costs (bytecode warmup, allocator arena growth) that
    # would otherwise be billed entirely to whichever run goes first —
    # historically the sequential baseline, inflating every speedup.
    run_baseline(g.clone())

    baseline_g = g.clone()
    # Every timed run starts with a cold process-wide ISOP memo, so the
    # comparison is mode vs mode, not cold-cache vs warm-cache.
    clear_isop_memo()
    baseline_stats = run_baseline(baseline_g)
    baseline_runtime = baseline_stats.time_total
    rows = [
        EngineScalingRow(
            design=g.name,
            workers=0,
            runtime=baseline_runtime,
            n_ands=baseline_g.n_ands,
            level=baseline_g.max_level(),
            speedup=1.0,
            commits=baseline_stats.commits,
            operator=operator,
            graph=baseline_g,
        )
    ]
    for workers in workers_list:
        engine_g = g.clone()
        clear_isop_memo()
        stats = run_engine(engine_g, workers)
        runtime = stats.time_total
        rows.append(
            EngineScalingRow(
                design=g.name,
                workers=workers,
                runtime=runtime,
                n_ands=engine_g.n_ands,
                level=engine_g.max_level(),
                speedup=baseline_runtime / runtime if runtime > 0 else float("inf"),
                n_waves=stats.n_waves,
                n_stale=stats.n_stale,
                n_resnapshotted=stats.n_resnapshotted,
                dedup_rate=stats.dedup_rate,
                commits=stats.commits,
                operator=operator,
                graph=engine_g,
            )
        )
    return rows


@dataclass
class ServeThroughputRow:
    """One circuit's outcome in a sharded serving run.

    ``order`` is the streamed completion index; ``identical`` records
    whether the streamed BENCH text matched a blocking per-circuit
    ``run_flow`` byte for byte (``None`` when the check was skipped —
    it is only a guarantee at ``workers=1``).
    """

    design: str
    shard: int
    order: int
    runtime: float
    n_ands_before: int
    n_ands: int
    level: int
    identical: bool | None = None
    error: str | None = None
    cached: bool = False  # answered by the content-addressed store


def serve_throughput(
    suite: dict[str, AIG],
    flow: str = "rf",
    n_shards: int = 2,
    workers: int = 1,
    classifier: ElfClassifier | None = None,
    check_identity: bool = True,
    store=None,
):
    """Sharded serving of ``suite`` + optional byte-identity audit.

    Returns ``(rows, report)``: one :class:`ServeThroughputRow` per
    circuit in completion order, plus the underlying
    :class:`repro.serve.ServeReport` (shard plan, per-shard classifier
    fusion stats, wall time / circuits-per-second).  With
    ``check_identity`` every streamed result is re-derived by a blocking
    sequential ``run_flow`` and compared byte for byte — the serving
    layer's correctness contract at ``workers=1``.  ``store`` (a
    :class:`repro.serve.ResultStore`) fronts the run with the
    content-addressed cache; the audit then also certifies that cache
    *hits* are byte-identical to a fresh blocking derivation.
    """
    from ..aig.io_bench import to_text
    from ..opt.session import OptSession
    from ..serve import ServeParams, serve_suite

    params = ServeParams(
        flow=flow, n_shards=n_shards, workers=workers, keep_graphs=False
    )
    report = serve_suite(suite, params, classifier=classifier, store=store)
    rows = []
    # One blocking session re-derives every circuit, with per-run caches
    # mirroring the serving layer's: nothing warm can leak between
    # circuits and mask (or cause) a mismatch.
    with OptSession(
        classifier=classifier, engine_workers=workers, per_run_cache=True
    ) as audit:
        for result in report.results:
            identical = None
            if check_identity and result.ok:
                blocking, _ = audit.run(suite[result.name].clone(), flow)
                identical = to_text(blocking) == result.bench_text
            rows.append(
                ServeThroughputRow(
                    design=result.name,
                    shard=result.shard,
                    order=result.order,
                    runtime=result.runtime,
                    n_ands_before=result.n_ands_before,
                    n_ands=result.n_ands,
                    level=result.level,
                    identical=identical,
                    error=result.error,
                    cached=result.cached,
                )
            )
    return rows, report


def model_quality(
    datasets: dict[str, CutDataset],
    classifiers: dict[str, ElfClassifier],
) -> dict[str, Confusion]:
    """Tables VII/VIII: per-design confusion counts on unseen circuits."""
    return {
        name: evaluate_classifier(datasets[name], classifiers[name])
        for name in datasets
    }


@dataclass
class RedundancyRow:
    """Figure 1's quantities for one design."""

    design: str
    fail_pct: float  # cuts that fail resynthesis (original refactor)
    elf_prune_pct: float  # nodes ELF omits
    commit_pct: float


def redundancy_rows(
    suite: dict[str, AIG],
    classifiers: dict[str, ElfClassifier],
) -> list[RedundancyRow]:
    """Figure 1: how much work the original flow wastes, how much ELF prunes."""
    from ..elf.operator import elf_refactor

    rows = []
    for name, g in suite.items():
        base = refactor(g.clone())
        elf_stats = elf_refactor(g.clone(), classifiers[name])
        visited = max(1, elf_stats.nodes_visited)
        rows.append(
            RedundancyRow(
                design=name,
                fail_pct=100.0 * base.failure_rate,
                elf_prune_pct=100.0 * elf_stats.pruned / visited,
                commit_pct=100.0 * base.commits / max(1, base.cuts_formed),
            )
        )
    return rows


def feature_matrix(
    datasets: dict[str, CutDataset],
    max_per_design: int = 400,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Balanced-ish sample of features/labels across designs (Fig. 3)."""
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for ds in datasets.values():
        n = len(ds)
        if n == 0:
            continue
        take = min(n, max_per_design)
        # Keep all positives (they are rare), sample the negatives.
        positives = np.flatnonzero(ds.y > 0.5)
        negatives = np.flatnonzero(ds.y <= 0.5)
        n_neg = max(0, take - positives.size)
        chosen_neg = rng.choice(negatives, size=min(n_neg, negatives.size), replace=False)
        index = np.concatenate([positives, chosen_neg])
        xs.append(ds.x[index])
        ys.append(ds.y[index])
    return np.concatenate(xs), np.concatenate(ys)
