"""On-disk caching for expensive experiment artifacts.

Benchmark tables share work: six leave-one-out classifiers, sixteen
harvested datasets, etc.  This cache keys artifacts by name and stores
them under ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``), so one
benchmark run trains everything and the rest reuse it.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..elf.classifier import ElfClassifier
from ..ml.dataset import CutDataset


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", "")
    # parents: [0]=harness, [1]=repro, [2]=src, [3]=repository root
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".repro_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached_dataset(key: str, build) -> CutDataset:
    """Load dataset ``key`` or build and persist it."""
    path = cache_dir() / f"dataset_{key}.npz"
    if path.exists():
        return CutDataset.load(path)
    dataset = build()
    dataset.save(path)
    return dataset


def cached_classifier(key: str, build) -> ElfClassifier:
    """Load classifier ``key`` or train and persist it."""
    path = cache_dir() / f"classifier_{key}.npz"
    if path.exists():
        return ElfClassifier.load(path)
    classifier = build()
    classifier.save(path)
    return classifier


def clear_cache() -> int:
    """Delete all cached artifacts; returns the number of files removed."""
    removed = 0
    for path in cache_dir().glob("*.npz"):
        path.unlink()
        removed += 1
    return removed
