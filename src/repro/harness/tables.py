"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from pathlib import Path


def format_table(
    headers: list[str],
    rows: list[list],
    title: str | None = None,
) -> str:
    """Monospace table with auto-sized columns."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_report(name: str, content: str) -> Path:
    """Store a table under ``benchmarks/results/`` and return the path."""
    results = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    results.mkdir(parents=True, exist_ok=True)
    path = results / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0.00"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}" if abs(value) < 1 else f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10000 else str(value)
    return str(value)
