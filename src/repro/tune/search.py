"""Budgeted per-circuit flow search: an anytime bandit over the registry.

The repo ran one fixed recipe (``resyn2``/``compress2``) for every
circuit, but different graph families reward different command orders.
:func:`tune` searches the space of registry command sequences for *this*
circuit under an explicit wall-clock budget, and **always returns the
best committed script so far** — expiry degrades quality, never
correctness and never a typed error.

The loop is a UCB-style portfolio bandit:

1. **Warm start.**  The learned recipe for the circuit's feature bucket
   (:class:`repro.tune.recipes.RecipeBook`, if attached) and then the
   ``baselines`` scripts (default: ``resyn2``) are replayed
   command-by-command through :meth:`repro.opt.session.OptSession.probe`.
   Each replayed command both advances the committed state and seeds the
   corresponding arm's statistics — under a tiny budget the result is
   exactly the best prefix of the best known recipe, and with enough
   budget the tuner starts *at* the fixed-flow quality and spends the
   remainder beating it.
2. **Bandit probes.**  Arms are single registry commands and short
   command bigrams (classifier- and pool-free, so probes are
   deterministic and self-contained).  Each pull probes the arm on a
   snapshot of the committed graph and scores it by **AND-reduction per
   second**, read off the probe's :class:`repro.opt.FlowReport` span
   durations; UCB (seeded RNG tie-break, priors from the circuit
   fingerprint) picks the next arm.  Improving probes are committed;
   zero-gain "enabler" probes (balancing, zero-cost variants) are
   committed at most once per plateau; regressions are rolled back by
   dropping the snapshot.
3. **Stop** on budget expiry (a :class:`repro.resilience.Deadline`),
   probe exhaustion, a dry plateau, or script-length cap — whichever
   comes first.

Determinism: arm *selection* depends only on the seed, the pull history
and the observed AND gains divided by the configured cost model.  The
default ``cost_model="measured"`` reads real span durations (the honest
gain-per-second objective); ``"nodes"`` substitutes a deterministic
size-proportional cost so that two fresh processes with the same seed,
circuit and probe budget produce byte-identical scripts and identical
pull sequences — the contract ``tests/test_tune.py`` pins.

Everything lands on the :mod:`repro.obs` registry: ``tune_probes_total``,
``tune_commits_total``, ``tune_arms_pulled_total{arm=...}``, the
``tune_seconds``/``tune_probe_seconds`` histograms and the best-gain
trajectory (``tune_best_gain_pct``, one observation per improvement).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .. import obs
from ..aig.graph import AIG
from ..errors import DeadlineExceeded, ReproError
from ..opt.flow import NAMED_SCRIPTS
from ..opt.registry import CommandRegistry
from ..opt.session import OptSession
from ..resilience import Deadline
from .features import CircuitFeatures, feature_bucket, fingerprint
from .recipes import Recipe, RecipeBook

_EPS = 1e-9


def default_arms(registry: CommandRegistry) -> tuple[str, ...]:
    """The portfolio: classifier- and pool-free commands plus bigrams.

    Commands that need a classifier, dispatch to a worker pool or take
    ``-w`` are excluded — probe content must not depend on attached
    resources or worker timing.  Order follows registry registration
    order, so the arm list (and therefore every seeded search) is
    deterministic for a given registry.
    """
    unigrams: list[str] = []
    for spec in registry.specs():
        if spec.needs_classifier or spec.needs_engine_pool or spec.supports_workers:
            continue
        unigrams.append(spec.name)
        if spec.zero_cost_pair:
            unigrams.append(spec.name + "z")
    pool = set(unigrams)
    bigrams = [
        "; ".join(pair)
        for pair in (
            ("b", "rw"),
            ("rw", "rf"),
            ("b", "rwz"),
            ("rwz", "rfz"),
            ("rf", "rs"),
        )
        if all(head in pool for head in pair)
    ]
    return tuple(unigrams + bigrams)


def seed_priors(arms: tuple[str, ...], features: CircuitFeatures) -> dict[str, float]:
    """Fingerprint -> prior reward per arm (one pseudo-pull each).

    Deep graphs (``depth_ratio`` high) favor balancing, reconvergent
    graphs favor the refactor family, and rewriting gets a broad small
    prior because it is cheap almost everywhere.  Priors only order the
    first sweep of pulls — real rewards dominate after one pull per arm.
    """
    priors: dict[str, float] = {}
    for arm in arms:
        heads = [part.strip().split()[0] for part in arm.split(";") if part.strip()]
        prior = 0.1
        if features.depth_ratio > 2.5 and "b" in heads:
            prior += 0.3
        if features.reconvergence_rate > 0.4 and any(
            head.startswith("rf") for head in heads
        ):
            prior += 0.3
        if features.avg_cut_size > 6.0 and any(
            head.startswith("rf") for head in heads
        ):
            prior += 0.15
        if any(head.startswith("rw") for head in heads):
            prior += 0.15
        priors[arm] = prior
    return priors


@dataclass
class TuneParams:
    """Search configuration (defaults are serve-tier friendly).

    ``budget_s`` is the wall-clock budget (``None`` = unlimited — then
    ``max_probes``/``patience`` terminate the search).  ``cost_model``
    sets the denominator of the reward: ``"measured"`` (span seconds,
    the production objective), ``"nodes"`` (size-proportional,
    deterministic across processes) or ``"unit"`` (pure gain).
    ``baselines`` are replayed as warm-start trajectories (names resolve
    through :data:`repro.opt.flow.NAMED_SCRIPTS`); ``recipes`` attaches
    a :class:`repro.tune.recipes.RecipeBook` whose bucket recipe, when
    present, is replayed *before* the baselines and which receives the
    winning script afterwards (``record_recipe``).
    """

    seed: int = 0
    budget_s: float | None = None
    max_probes: int = 64
    max_script_commands: int = 24
    patience: int = 12  # consecutive non-improving probes before stopping
    explore: float = 0.5  # UCB exploration constant
    cost_model: str = "measured"  # "measured" | "nodes" | "unit"
    arms: tuple[str, ...] | None = None
    baselines: tuple[str, ...] = ("resyn2",)
    recipes: RecipeBook | None = None
    record_recipe: bool = True


@dataclass(frozen=True)
class ProbeRecord:
    """One probe: what was tried, what it cost, whether it stuck."""

    script: str
    origin: str  # "recipe" | "baseline" | "bandit"
    n_ands_before: int
    n_ands_after: int
    cost: float
    committed: bool


@dataclass
class TuneResult:
    """Outcome of one search — the best committed script and its graph."""

    script: str
    graph: AIG
    n_ands: int
    level: int
    n_ands_before: int
    level_before: int
    probes: int
    pulls: tuple[str, ...]  # bandit arm-pull sequence, in order
    probe_log: tuple[ProbeRecord, ...] = ()
    elapsed_s: float = 0.0
    bucket: str = ""
    recipe_hit: bool = False

    @property
    def gain_pct(self) -> float:
        if self.n_ands_before <= 0:
            return 0.0
        return 100.0 * (self.n_ands_before - self.n_ands) / self.n_ands_before


class _ArmStats:
    """Running reward/cost statistics of one arm."""

    __slots__ = ("reward_total", "cost_total", "pulls")

    def __init__(self, prior_reward: float) -> None:
        self.reward_total = prior_reward  # one pseudo-pull from the prior
        self.cost_total = 0.0
        self.pulls = 1

    @property
    def mean(self) -> float:
        return self.reward_total / self.pulls

    @property
    def mean_cost(self) -> float:
        real_pulls = self.pulls - 1
        return self.cost_total / real_pulls if real_pulls > 0 else 0.0


def _probe_cost(report, n_ands_before: int, cost_model: str) -> float:
    if cost_model == "measured":
        return max(report.total_runtime, _EPS)
    if cost_model == "nodes":
        return max(1.0, float(n_ands_before)) / 1000.0
    if cost_model == "unit":
        return 1.0
    raise ReproError(f"unknown tune cost model {cost_model!r}")


def _split(script: str) -> list[str]:
    return [part.strip() for part in script.split(";") if part.strip()]


def tune(
    g: AIG,
    params: TuneParams | None = None,
    session: OptSession | None = None,
    classifier=None,
) -> TuneResult:
    """Search a flow for ``g`` within the budget; never raises on expiry.

    ``session`` reuses a caller's warm :class:`repro.opt.OptSession`
    (the serve tier passes its shard session); without one, a throwaway
    session is created and closed.  ``g`` itself is never mutated —
    every probe runs on a snapshot — and the returned graph is a
    committed probe output, CEC-equivalent to ``g`` by operator
    construction.
    """
    params = params or TuneParams()
    own_session = session is None
    if own_session:
        session = OptSession(classifier=classifier)
    try:
        return _search(g, params, session)
    finally:
        if own_session:
            session.close()


def _search(g: AIG, params: TuneParams, session: OptSession) -> TuneResult:
    registry = session.registry
    metrics = obs.metrics()
    rng = random.Random(params.seed)
    deadline = Deadline.after(params.budget_s)
    features = fingerprint(g)
    bucket = feature_bucket(features)
    arms = tuple(params.arms if params.arms is not None else default_arms(registry))
    if not arms:
        raise ReproError("tune needs at least one arm")
    stats = {arm: _ArmStats(prior) for arm, prior in seed_priors(arms, features).items()}
    by_head = {}  # first command of each unigram arm, for replay crediting
    for arm in arms:
        parts = _split(arm)
        if len(parts) == 1:
            by_head[parts[0]] = arm

    recipe = params.recipes.lookup(bucket) if params.recipes is not None else None
    if params.recipes is not None:
        metrics.counter(
            "tune_recipe_hits_total" if recipe else "tune_recipe_misses_total"
        ).add(1)

    current = g
    committed: list[str] = []
    best_graph, best_script = g, ()
    probes = 0
    pulls: list[str] = []
    probe_log: list[ProbeRecord] = []
    # Zero-gain enabler commits allowed once per arm per plateau — the
    # set resets whenever a probe actually reduces the AND count.
    zero_committed: set[str] = set()

    def out_of_budget() -> bool:
        # An empty network is a floor, not a plateau — stop immediately.
        return (
            probes >= params.max_probes or deadline.expired or current.n_ands == 0
        )

    def probe(script: str, origin: str):
        """One snapshot-run-measure cycle; returns None on deadline expiry."""
        nonlocal probes
        probes += 1
        metrics.counter("tune_probes_total").add(1)
        before = current.n_ands
        try:
            out, report = session.probe(current, script, deadline=deadline)
        except DeadlineExceeded:
            # Mid-probe expiry: the snapshot's partial is discarded (the
            # committed state is untouched) and the search winds down.
            return None
        cost = _probe_cost(report, before, params.cost_model)
        metrics.histogram("tune_probe_seconds").observe(report.total_runtime)
        # Credit replayed commands to their arm so the bandit phase
        # starts from the warm-start evidence instead of flat priors.
        arm = script if script in stats else by_head.get(script)
        if arm is not None:
            stat = stats[arm]
            stat.pulls += 1
            stat.reward_total += _reward(before, out.n_ands, cost)
            stat.cost_total += cost
        return out, cost

    def commit(script: str, out: AIG, origin: str, cost: float) -> None:
        nonlocal current, best_graph, best_script
        gained = out.n_ands < current.n_ands
        current = out
        committed.extend(_split(script))
        metrics.counter("tune_commits_total").add(1)
        probe_log.append(
            ProbeRecord(
                script=script,
                origin=origin,
                n_ands_before=probe_before,
                n_ands_after=out.n_ands,
                cost=cost,
                committed=True,
            )
        )
        if gained:
            zero_committed.clear()
        if out.n_ands < best_graph.n_ands:
            best_graph = out
            best_script = tuple(committed)
            gain_pct = 100.0 * (g.n_ands - out.n_ands) / max(1, g.n_ands)
            metrics.histogram("tune_best_gain_pct").observe(gain_pct)

    def reject(script: str, origin: str, after: int, cost: float) -> None:
        probe_log.append(
            ProbeRecord(
                script=script,
                origin=origin,
                n_ands_before=probe_before,
                n_ands_after=after,
                cost=cost,
                committed=False,
            )
        )

    with obs.span("tune.search", circuit=g.name, bucket=bucket) as span:
        # -- phase 1: warm-start trajectories (recipe, then baselines) --------
        trajectories: list[tuple[str, str]] = []
        if recipe is not None:
            trajectories.append(("recipe", recipe.script))
        for base in params.baselines:
            trajectories.append(
                ("baseline", NAMED_SCRIPTS.get(base.strip().lower(), base))
            )
        expired = False
        for origin, script in trajectories:
            for command in _split(script):
                if out_of_budget():
                    expired = True
                    break
                probe_before = current.n_ands
                outcome = probe(command, origin)
                if outcome is None:
                    expired = True
                    break
                out, cost = outcome
                # Replay semantics: commit any step that does not make
                # the network bigger (the scripts' own contract — no
                # registry operator increases the AND count).
                if out.n_ands <= current.n_ands:
                    commit(command, out, origin, cost)
                else:  # pragma: no cover - defensive (operators never grow)
                    reject(command, origin, out.n_ands, cost)
            if expired:
                break

        # -- phase 2: bandit probes -------------------------------------------
        dry = 0
        while (
            not expired
            and not out_of_budget()
            and dry < params.patience
            and len(committed) < params.max_script_commands
        ):
            arm = _select(arms, stats, probes, params.explore, deadline, rng)
            if arm is None:
                break
            pulls.append(arm)
            metrics.counter("tune_arms_pulled_total", arm=arm).add(1)
            probe_before = current.n_ands
            outcome = probe(arm, "bandit")
            if outcome is None:
                break
            out, cost = outcome
            if out.n_ands < current.n_ands:
                commit(arm, out, "bandit", cost)
                dry = 0
                continue
            dry += 1
            if (
                out.n_ands == current.n_ands
                and _is_enabler(arm)
                and arm not in zero_committed
            ):
                # Balancing / zero-cost arms can unlock later gains
                # without reducing the count themselves; allow each one
                # back in once per plateau.
                zero_committed.add(arm)
                commit(arm, out, "bandit", cost)
            else:
                reject(arm, "bandit", out.n_ands, cost)

        script = "; ".join(best_script)
        span.set(
            probes=probes,
            commits=len(committed),
            n_ands=best_graph.n_ands,
            script=script,
        )
    metrics.histogram("tune_seconds").observe(span.duration)
    result = TuneResult(
        script=script,
        graph=best_graph,
        n_ands=best_graph.n_ands,
        level=best_graph.max_level(),
        n_ands_before=g.n_ands,
        level_before=g.max_level(),
        probes=probes,
        pulls=tuple(pulls),
        probe_log=tuple(probe_log),
        elapsed_s=span.duration,
        bucket=bucket,
        recipe_hit=recipe is not None,
    )
    if (
        params.recipes is not None
        and params.record_recipe
        and result.script
        and result.gain_pct > 0.0
    ):
        params.recipes.record(
            bucket,
            Recipe(
                script=result.script,
                gain_pct=result.gain_pct,
                n_ands=g.n_ands,
                probes=probes,
                source=g.name,
            ),
        )
    return result


def _reward(before: int, after: int, cost: float) -> float:
    return (before - after) / max(1, before) / max(cost, _EPS)


def _is_enabler(arm: str) -> bool:
    """Arms worth committing at zero gain: balance and zero-cost variants."""
    heads = [part.split()[0] for part in _split(arm)]
    return all(head == "b" or head.endswith("z") for head in heads)


def _select(
    arms: tuple[str, ...],
    stats: dict[str, _ArmStats],
    total_pulls: int,
    explore: float,
    deadline: Deadline,
    rng: random.Random,
) -> str | None:
    """UCB arm choice; seeded-RNG tie-break; cost-infeasible arms skipped.

    The value scale is normalized by the best mean reward so the
    exploration constant is dimensionless (rewards are gain-per-cost,
    whose magnitude varies wildly across circuits).  An arm whose mean
    measured cost exceeds the remaining budget is skipped — pulling it
    could only produce a discarded partial.
    """
    remaining = deadline.remaining()
    scale = max(max(stats[arm].mean for arm in arms), _EPS)
    best_value, candidates = None, []
    for index, arm in enumerate(arms):
        stat = stats[arm]
        if stat.mean_cost > 0.0 and stat.mean_cost > remaining:
            continue
        value = stat.mean / scale + explore * math.sqrt(
            math.log(total_pulls + 2) / stat.pulls
        )
        value = round(value, 12)  # kill float noise so ties are real ties
        if best_value is None or value > best_value:
            best_value, candidates = value, [arm]
        elif value == best_value:
            candidates.append(arm)
    if not candidates:
        return None
    return candidates[0] if len(candidates) == 1 else rng.choice(candidates)
