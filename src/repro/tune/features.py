"""Cheap circuit fingerprints: the priors of the flow tuner.

EPFL-style arithmetic, industrial control and layered-random graphs
reward very different command orders, so the tuner needs to know *what
kind* of circuit it is looking at before spending budget on probes.
:func:`fingerprint` computes a :class:`CircuitFeatures` summary in one
cheap pass: global size/depth statistics, a normalized level histogram
(where the logic mass sits between the PIs and the deepest PO cone),
and aggregate **cut-structure** features read off the ELF classifier's
existing per-cut feature machinery (:mod:`repro.cuts.reconv` /
:mod:`repro.cuts.features`) over a deterministic node sample — the same
six quantities the paper's classifier uses to predict refactor gain,
reused here at circuit granularity to predict which *operator family*
pays.

Two consumers:

* :func:`repro.tune.search.seed_priors` turns a fingerprint into
  per-arm prior pulls (deep graphs seed ``b``, reconvergent graphs seed
  the refactor family, everything seeds ``rw``);
* :func:`feature_bucket` quantizes the fingerprint into a coarse string
  key (size octave x depth regime x reconvergence regime) under which
  :class:`repro.tune.recipes.RecipeBook` persists winning scripts, so a
  later circuit of the same shape starts from a learned recipe instead
  of a cold search.

Everything here is deterministic: the node sample is evenly spaced over
``and_ids()`` (no RNG), so one circuit always produces one fingerprint
and one bucket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..aig.graph import AIG
from ..cuts.reconv import DEFAULT_MAX_LEAVES, reconv_cut

N_LEVEL_BUCKETS = 8
DEFAULT_CUT_SAMPLE = 64


@dataclass(frozen=True)
class CircuitFeatures:
    """One circuit's tuner-facing summary (see module docstring)."""

    n_pis: int
    n_pos: int
    n_ands: int
    max_level: int
    # Fraction of AND nodes per level octile, PIs->deepest (sums to 1.0
    # on non-empty graphs): front-loaded mass means shallow/wide logic,
    # back-loaded mass means deep chains that balancing can shorten.
    level_histogram: tuple[float, ...]
    # Aggregates of the ELF cut features over the node sample.
    avg_cut_size: float
    avg_cut_leaves: float
    avg_cut_fanout: float
    avg_root_fanout: float
    # Fraction of sampled cuts containing local reconvergence — the
    # paper's signal that refactoring (vs rewriting) has material to work
    # with.
    reconvergence_rate: float
    n_sampled: int

    @property
    def depth_ratio(self) -> float:
        """Depth relative to the balanced ideal ``log2(n_ands)``.

        ~1 means already balanced; >>1 means long chains (``b`` and the
        zero-cost variants are likely to pay).
        """
        if self.n_ands <= 1:
            return 1.0
        return self.max_level / max(1.0, math.log2(self.n_ands))


def fingerprint(
    g: AIG, cut_sample: int = DEFAULT_CUT_SAMPLE, max_leaves: int = DEFAULT_MAX_LEAVES
) -> CircuitFeatures:
    """Compute the deterministic :class:`CircuitFeatures` of ``g``.

    ``cut_sample`` bounds how many reconvergence-driven cuts are grown
    (evenly spaced over the AND nodes, no randomness); the cost is a few
    milliseconds even on 10k-node graphs — negligible next to a single
    probe pass.
    """
    ands = g.and_ids()
    max_level = g.max_level()
    histogram = [0.0] * N_LEVEL_BUCKETS
    if ands and max_level > 0:
        for node in ands:
            bucket = min(
                N_LEVEL_BUCKETS - 1, (g.level(node) * N_LEVEL_BUCKETS) // (max_level + 1)
            )
            histogram[bucket] += 1.0
        histogram = [count / len(ands) for count in histogram]
    sampled = []
    if ands:
        n = min(cut_sample, len(ands))
        step = len(ands) / n
        seen = set()
        for i in range(n):
            node = ands[int(i * step)]
            if node in seen:
                continue
            seen.add(node)
            cut = reconv_cut(g, node, max_leaves=max_leaves, collect_features=True)
            if cut.features is not None:
                sampled.append(cut.features)
    if sampled:
        inv = 1.0 / len(sampled)
        avg_cut_size = sum(f.cut_size for f in sampled) * inv
        avg_cut_leaves = sum(f.n_leaves for f in sampled) * inv
        avg_cut_fanout = sum(f.cut_fanout for f in sampled) * inv
        avg_root_fanout = sum(f.root_fanout for f in sampled) * inv
        reconvergence_rate = sum(1 for f in sampled if f.n_reconvergent > 0) * inv
    else:
        avg_cut_size = avg_cut_leaves = avg_cut_fanout = avg_root_fanout = 0.0
        reconvergence_rate = 0.0
    return CircuitFeatures(
        n_pis=g.n_pis,
        n_pos=g.n_pos,
        n_ands=g.n_ands,
        max_level=max_level,
        level_histogram=tuple(histogram),
        avg_cut_size=avg_cut_size,
        avg_cut_leaves=avg_cut_leaves,
        avg_cut_fanout=avg_cut_fanout,
        avg_root_fanout=avg_root_fanout,
        reconvergence_rate=reconvergence_rate,
        n_sampled=len(sampled),
    )


def feature_bucket(features: CircuitFeatures) -> str:
    """Coarse shape key the recipe book files winning scripts under.

    Three quantized axes — size octave (``log2`` of the AND count,
    capped), depth regime (near-balanced / moderate / chain-dominated)
    and reconvergence regime (sparse / mixed / dense) — so circuits that
    reward the same command order share a bucket while a 100-node
    testcase never poisons the prior of a 100k-node design.
    """
    size = min(20, int(math.log2(max(1, features.n_ands))))
    if features.depth_ratio < 1.6:
        depth = 0
    elif features.depth_ratio < 3.5:
        depth = 1
    else:
        depth = 2
    if features.reconvergence_rate < 0.25:
        reconv = 0
    elif features.reconvergence_rate < 0.6:
        reconv = 1
    else:
        reconv = 2
    return f"s{size}-d{depth}-r{reconv}"
