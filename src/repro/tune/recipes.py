"""Recipe persistence: winning scripts survive the process that found them.

A tuner that forgets everything between runs re-pays the whole search
for every circuit of a shape it has already solved.  The
:class:`RecipeBook` is the learned half of the tuner: winning scripts
are filed under their circuit's :func:`repro.tune.features.feature_bucket`
key, so a later run on a similar circuit replays the learned script as
its warm-start trajectory (see :class:`repro.tune.search.TuneParams`)
and spends its budget *improving* on it instead of rediscovering it.

Storage model — deliberately boring:

* scripts are normalized through
  :meth:`repro.opt.registry.CommandRegistry.normalize_script` before
  storage, so ``"f; fz"`` and ``"rf; rfz"`` are one recipe and a recipe
  that no longer resolves is rejected at :meth:`RecipeBook.record` time;
* the on-disk format is one JSON object
  (``{"format": 1, "registry": <version>, "recipes": {bucket: {...}}}``)
  written atomically (tmp file + ``os.replace``), human-diffable and
  safe against a crash mid-write;
* the file is fenced by
  :attr:`repro.opt.registry.CommandRegistry.version` exactly like the
  serving result store: recipes learned under one command surface are
  discarded, not misapplied, when the registry changes;
* a bucket keeps its **best** recipe only — :meth:`record` replaces an
  entry just when the new gain strictly beats the stored one, so a noisy
  late run cannot regress a bucket.

``path=None`` gives an in-memory book (the serve tier's default: shard
processes tune independently and the service decides what to persist).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from ..errors import ReproError
from ..opt.registry import CommandRegistry, default_registry

RECIPE_FORMAT = 1


@dataclass(frozen=True)
class Recipe:
    """One learned flow: the script plus the evidence it earned."""

    script: str  # normalized command sequence
    gain_pct: float  # AND reduction (%) it achieved when recorded
    n_ands: int  # size of the circuit it was learned on
    probes: int  # search effort that produced it
    source: str = ""  # circuit name, for humans reading the JSON


class RecipeBook:
    """Bucket-keyed best-recipe store with optional JSON persistence."""

    def __init__(
        self,
        path: str | Path | None = None,
        registry: CommandRegistry | None = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.registry = registry if registry is not None else default_registry()
        self._lock = threading.Lock()
        self._recipes: dict[str, Recipe] = {}
        if self.path is not None and self.path.is_file():
            self._load()

    # -- persistence ----------------------------------------------------------

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # unreadable/corrupt: start empty, next save rewrites it
        if payload.get("format") != RECIPE_FORMAT:
            return
        if payload.get("registry") != self.registry.version:
            # Learned under a different command surface: a stored script
            # may no longer resolve (or resolve to different behavior).
            return
        for bucket, entry in payload.get("recipes", {}).items():
            try:
                recipe = Recipe(
                    script=str(entry["script"]),
                    gain_pct=float(entry["gain_pct"]),
                    n_ands=int(entry["n_ands"]),
                    probes=int(entry["probes"]),
                    source=str(entry.get("source", "")),
                )
                self.registry.normalize_script(recipe.script)
            except (KeyError, TypeError, ValueError, ReproError):
                continue  # skip malformed entries, keep the rest
            self._recipes[bucket] = recipe

    def save(self) -> None:
        """Write the book to ``path`` atomically (no-op when in-memory)."""
        if self.path is None:
            return
        payload = {
            "format": RECIPE_FORMAT,
            "registry": self.registry.version,
            "recipes": {
                bucket: asdict(recipe)
                for bucket, recipe in sorted(self._recipes.items())
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)

    # -- access ---------------------------------------------------------------

    def lookup(self, bucket: str) -> Recipe | None:
        with self._lock:
            return self._recipes.get(bucket)

    def record(self, bucket: str, recipe: Recipe, save: bool = True) -> bool:
        """File ``recipe`` under ``bucket`` if it beats the stored one.

        The script is normalized first (raising
        :class:`repro.errors.ReproError` when it does not resolve — an
        unexecutable recipe must never be persisted).  Returns True when
        the book changed; ``save=False`` defers the disk write for
        callers batching several records.
        """
        normalized = self.registry.normalize_script(recipe.script)
        recipe = Recipe(
            script=normalized,
            gain_pct=recipe.gain_pct,
            n_ands=recipe.n_ands,
            probes=recipe.probes,
            source=recipe.source,
        )
        with self._lock:
            existing = self._recipes.get(bucket)
            if existing is not None and existing.gain_pct >= recipe.gain_pct:
                return False
            self._recipes[bucket] = recipe
            if save:
                self.save()
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._recipes)

    def buckets(self) -> list[str]:
        with self._lock:
            return sorted(self._recipes)
