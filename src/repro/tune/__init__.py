"""``repro.tune`` — budgeted per-circuit flow search (the script tuner).

The fixed ``resyn2``/``compress2`` recipes leave gains on the table:
different circuit families reward different command orders.  This
package finds a per-circuit script under an explicit wall-clock budget:

* :mod:`repro.tune.features` — a cheap deterministic circuit fingerprint
  (size/level histogram + the ELF classifier's cut-structure features)
  that seeds search priors and keys learned recipes;
* :mod:`repro.tune.search` — the anytime UCB bandit over registry
  commands and bigrams, probing on a warm
  :class:`repro.opt.OptSession` (snapshot, measure, roll back), scoring
  arms by AND-reduction-per-second and always returning the best
  committed script when the :class:`repro.resilience.Deadline` expires;
* :mod:`repro.tune.recipes` — JSON persistence of winning scripts keyed
  by feature bucket, so similar circuits warm-start from learned flows.

Entry points: :func:`tune` in library code, ``python -m repro tune`` on
the command line, and ``quality_budget_s`` on
:class:`repro.serve.ServeParams` / the serve protocol for "best result
within N seconds" service requests.  See ``docs/tuning.md``.
"""

from .features import CircuitFeatures, feature_bucket, fingerprint
from .recipes import Recipe, RecipeBook
from .search import (
    ProbeRecord,
    TuneParams,
    TuneResult,
    default_arms,
    seed_priors,
    tune,
)

__all__ = [
    "CircuitFeatures",
    "ProbeRecord",
    "Recipe",
    "RecipeBook",
    "TuneParams",
    "TuneResult",
    "default_arms",
    "feature_bucket",
    "fingerprint",
    "seed_priors",
    "tune",
]
