"""Command-line flow runner: ``python -m repro SCRIPT INPUT.bench``.

Runs an ABC-style flow script on a BENCH netlist without writing any
Python — a thin wrapper over :class:`repro.opt.OptSession`::

    python -m repro "resyn2" input.bench -o out.bench
    python -m repro "b; rw; rf" input.bench          # BENCH to stdout
    python -m repro "pf -w 4; b" input.bench -o out.bench -w 2
    python -m repro "pf -w 2; b" input.bench --trace trace.json

``SCRIPT`` is either a literal ``;``-separated command script or a named
script (``resyn2``, ``compress2`` — case-insensitive).  ``-w N`` is the
session's ``engine_workers`` passthrough: the worker count applied to
parallel commands that carry no explicit per-command ``-w``.  The
optimized network goes to ``-o`` (or stdout when omitted); the per-step
report table goes to stderr unless ``-q`` silences it.  Commands that
need a classifier (``elf``/``pelf``) are not servable from the CLI —
train and deploy those through the Python API.

``--trace FILE`` enables :mod:`repro.obs` span recording for the run and
writes the trace on exit — Chrome trace-event JSON (open in
``chrome://tracing`` / Perfetto) or JSONL when ``FILE`` ends in
``.jsonl``.  ``--metrics FILE`` writes the metrics registry (flow
command timings, wave/worker counters) in Prometheus text format.

``python -m repro serve --socket PATH`` starts the long-lived
optimization service instead (:mod:`repro.serve.service`): shard worker
processes behind a unix-socket JSON-lines protocol, fronted by a
content-addressed result cache and admission control.  See
``docs/serving.md`` for the wire protocol and ``--help`` for knobs::

    python -m repro serve --socket /tmp/repro.sock --script "b; rf" \\
        --shards 4 --queue-limit 32 --metrics serve-metrics.prom

``python -m repro tune INPUT.bench --budget 5`` searches for a
per-circuit flow script instead of running a fixed one
(:mod:`repro.tune`): an anytime bandit over the registry commands that
always returns the best committed result when the budget expires.
``--recipes FILE`` persists winning scripts across invocations keyed by
circuit shape; see ``docs/tuning.md``::

    python -m repro tune input.bench --budget 5 -o out.bench \\
        --recipes recipes.json --seed 7

Exit status: 0 on success, 2 for usage/flow errors (unknown command,
unsupported flag, malformed input).
"""

from __future__ import annotations

import argparse
import sys

from . import obs
from .aig.io_bench import read, to_text, write
from .errors import ReproError
from .opt import NAMED_SCRIPTS
from .opt.session import OptSession


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run an ABC-style optimization flow on a BENCH netlist.",
    )
    parser.add_argument(
        "script",
        help="flow script ('b; rw; rf; ...') or a named script "
        f"({', '.join(sorted(NAMED_SCRIPTS))})",
    )
    parser.add_argument("input", help="input circuit (BENCH format)")
    parser.add_argument(
        "-o",
        "--output",
        help="write the optimized BENCH here (default: stdout)",
    )
    parser.add_argument(
        "-w",
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for parallel commands without an explicit -w "
        "(default: one per core; 1 = bit-identical sequential mode)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the per-step report table",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record spans and write a trace file (Chrome trace JSON, "
        "or JSONL when FILE ends in .jsonl)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the metrics registry in Prometheus text format",
    )
    return parser


def _render_report(report) -> str:
    from .harness.tables import format_table

    rows = [
        [step.command, f"{step.runtime:.3f}", step.n_ands, step.level]
        for step in report.steps
    ]
    rows.append(["total", f"{report.total_runtime:.3f}", "", ""])
    return format_table(
        ["Step", "Runtime s", "And", "Level"],
        rows,
        title=f"flow: {report.script}",
    )


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the long-lived optimization service on a unix socket.",
    )
    parser.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="unix domain socket path to listen on",
    )
    parser.add_argument(
        "--script",
        default="b; rf",
        help="default flow script served when a request names none "
        "(default: 'b; rf')",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="shard worker processes (default: 2)",
    )
    parser.add_argument(
        "-w",
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="engine workers per shard session (default: 1, the "
        "bit-identical sequential mode)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        metavar="N",
        help="admission bound: optimize requests in flight beyond N are "
        "rejected typed, not queued (default: 16)",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        metavar="N",
        help="content-addressed result cache capacity (LRU, default: 256)",
    )
    parser.add_argument(
        "--engine-cache-entries",
        type=int,
        default=4096,
        metavar="N",
        help="per-layer LRU bound of each shard's resynthesis caches "
        "(default: 4096)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-circuit latency budget (default: none)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the metrics registry (Prometheus text) on shutdown",
    )
    return parser


def build_tune_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Search for a per-circuit flow script under a time budget.",
    )
    parser.add_argument("input", help="input circuit (BENCH format)")
    parser.add_argument(
        "-o",
        "--output",
        help="write the tuned BENCH here (default: stdout)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock search budget; the best committed result so far "
        "is returned when it expires (default: no budget — the probe "
        "limit terminates the search)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="bandit RNG seed (default: 0)",
    )
    parser.add_argument(
        "--probes",
        type=int,
        default=64,
        metavar="N",
        help="maximum probe passes (default: 64)",
    )
    parser.add_argument(
        "--recipes",
        metavar="FILE",
        help="JSON recipe book: warm-start from (and record back) winning "
        "scripts keyed by circuit shape",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the tuning summary",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the metrics registry in Prometheus text format",
    )
    return parser


def tune_main(argv: list[str]) -> int:
    from .tune import RecipeBook, TuneParams, tune

    args = build_tune_parser().parse_args(argv)
    try:
        g = read(args.input)
        recipes = RecipeBook(args.recipes) if args.recipes else None
        result = tune(
            g,
            TuneParams(
                seed=args.seed,
                budget_s=args.budget,
                max_probes=args.probes,
                recipes=recipes,
            ),
        )
        if args.output:
            write(result.graph, args.output)
        else:
            sys.stdout.write(to_text(result.graph))
        if args.metrics:
            obs.export_metrics(args.metrics)
    except (ReproError, OSError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(
            f"repro: tuned {g.name or args.input}: "
            f"{result.n_ands_before} -> {result.n_ands} ANDs "
            f"({result.gain_pct:.1f}%), level {result.level_before} -> "
            f"{result.level}, {result.probes} probes in {result.elapsed_s:.2f}s",
            file=sys.stderr,
        )
        print(f"repro: script: {result.script}", file=sys.stderr)
        if args.recipes:
            print(
                f"repro: recipes: {args.recipes} [bucket {result.bucket}, "
                f"{'hit' if result.recipe_hit else 'miss'}]",
                file=sys.stderr,
            )
    if args.output:
        print(f"repro: wrote {args.output}", file=sys.stderr)
    return 0


def serve_main(argv: list[str]) -> int:
    from .serve.service import ServiceConfig, run_service

    args = build_serve_parser().parse_args(argv)
    config = ServiceConfig(
        socket_path=args.socket,
        script=args.script,
        n_shards=args.shards,
        workers=args.workers,
        max_pending=args.queue_limit,
        cache_entries=args.cache_entries,
        engine_cache_entries=args.engine_cache_entries,
        circuit_timeout_s=args.timeout,
        metrics_path=args.metrics,
    )
    try:
        print(f"repro: serving on {args.socket}", file=sys.stderr)
        run_service(config)
    except (ReproError, OSError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "tune":
        return tune_main(argv[1:])
    args = build_parser().parse_args(argv)
    script = NAMED_SCRIPTS.get(args.script.strip().lower(), args.script)
    if args.trace:
        obs.configure(enabled=True)
    try:
        g = read(args.input)
        with OptSession(engine_workers=args.workers) as session:
            out, report = session.run(g, script)
        if args.output:
            write(out, args.output)
        else:
            sys.stdout.write(to_text(out))
        if args.trace:
            obs.export_trace(args.trace)
        if args.metrics:
            obs.export_metrics(args.metrics)
    except (ReproError, OSError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(_render_report(report), file=sys.stderr)
    if args.trace:
        print(f"repro: trace written to {args.trace}", file=sys.stderr)
    if args.metrics:
        print(f"repro: metrics written to {args.metrics}", file=sys.stderr)
    if args.output:
        print(f"repro: wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
