"""Streamed execution of a flow over a sharded circuit suite.

:func:`serve_stream` is the serving entry point: it shards the suite
(:mod:`repro.serve.shard`), provisions each shard's shared resources
(:mod:`repro.serve.pool`), runs the requested flow on every circuit, and
yields a :class:`ServeResult` per circuit **in completion order** — a
fast circuit on shard 0 is delivered while a slow circuit on shard 1 is
still refactoring, so consumers (dashboards, downstream tooling, the
throughput benchmark) never block on the slowest shard.

Two properties the tests pin down:

* **Content determinism.**  Completion *order* depends on timing, but
  each circuit's *result* does not: flows run on private clones, fused
  classification preserves per-circuit semantics exactly, and at
  ``workers=1`` every engine command delegates to the sequential
  operators — so a served circuit's BENCH text is byte-identical to a
  blocking ``run_flow`` on that circuit alone.
* **Isolation.**  A circuit whose flow raises reports the error in its
  result; the other circuits of the shard still complete (the failed
  circuit deregisters from the classifier barrier on the way out).

:func:`serve_suite` is the blocking wrapper: it drains the stream and
returns a :class:`ServeReport` with the plan, per-shard fusion
statistics and aggregate throughput.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field
from typing import Iterator

from .. import obs
from ..aig.graph import AIG
from ..aig.io_bench import to_text
from ..errors import DeadlineExceeded
from ..opt.flow import FlowReport
from ..opt.session import OptSession
from ..resilience import Deadline, policy
from ..tune import RecipeBook, TuneParams, tune
from .pool import FusionStats, SharedClassifierService, script_requirements
from .shard import ShardPlan, assign_shards


@dataclass
class ServeParams:
    """Serving-run configuration.

    ``flow`` is any :func:`repro.opt.flow.run_flow` script.  ``workers``
    is applied to parallel commands without an explicit ``-w`` (and
    sizes the per-shard engine pool); ``workers=1`` is the deterministic
    mode whose outputs are bit-identical to sequential runs.
    ``fuse_classifier=False`` gives every circuit a private classifier
    call (the ablation the occupancy stats are compared against).
    ``keep_graphs=False`` drops result graphs to bound memory on large
    suites (the BENCH text, enough for verification, is always kept).

    ``circuit_timeout_s`` is the per-circuit latency budget: a
    :class:`repro.resilience.Deadline` threaded through the session into
    every engine pass and pooled chunk wait, so one pathological circuit
    (or a hung worker) cannot stall its shard.  A circuit that blows the
    budget still yields a *valid* result — engine commits are serial, so
    the best committed prefix is CEC-equivalent to the input — marked
    ``deadline_exceeded`` and counted ``serve_deadline_exceeded_total``.
    ``None`` (the default) serves without a budget.

    ``engine_cache_entries`` bounds every per-run resynthesis cache a
    serving session creates (LRU entries per layer, see
    :class:`repro.engine.ResynthCache`); ``None`` is unbounded — fine
    for one suite, set it on long-lived services.

    ``quality_budget_s`` switches the run into **tuned** mode: instead
    of executing ``flow``, each circuit gets a per-circuit script search
    (:func:`repro.tune.tune`) under that wall-clock budget and yields
    the best committed result when it expires — never an error, never a
    torn network (see ``docs/tuning.md``).  Tuned results carry the
    chosen script on ``ServeResult.tuned_script`` and are **never**
    entered into a content-addressed store: their content depends on the
    wall clock, so caching one would freeze a timing accident.
    """

    flow: str = "rf"
    n_shards: int = 2
    workers: int = 1
    fuse_classifier: bool = True
    keep_graphs: bool = True
    circuit_timeout_s: float | None = None
    engine_cache_entries: int | None = None
    quality_budget_s: float | None = None


@dataclass
class ServeResult:
    """Outcome of serving one circuit."""

    name: str
    shard: int
    order: int = -1  # completion index over the whole run, set on yield
    runtime: float = 0.0
    n_ands_before: int = 0
    level_before: int = 0
    n_ands: int = 0
    level: int = 0
    report: FlowReport | None = None
    graph: AIG | None = None
    bench_text: str | None = None
    error: str | None = None
    # True when the circuit's budget expired: the result then holds the
    # best committed prefix (valid and CEC-clean), not the full flow.
    deadline_exceeded: bool = False
    # True when the result came out of a content-addressed ResultStore
    # (shard is -1 then: no shard ever saw the request).
    cached: bool = False
    # The script the tuner chose (quality-budget mode only, else None).
    tuned_script: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ServeReport:
    """Aggregate view of a completed serving run."""

    plan: ShardPlan
    results: list[ServeResult] = field(default_factory=list)
    fusion: dict[int, FusionStats] = field(default_factory=dict)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def circuits_per_second(self) -> float:
        return len(self.results) / self.wall_time if self.wall_time > 0 else 0.0

    def result_of(self, name: str) -> ServeResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)


def serve_stream(
    suite: dict[str, AIG],
    params: ServeParams | None = None,
    classifier=None,
    cost: dict[str, int] | None = None,
    fusion_out: dict[int, FusionStats] | None = None,
    plan: ShardPlan | None = None,
    store=None,
) -> Iterator[ServeResult]:
    """Serve ``suite`` through ``params.flow``; yield results as they land.

    Input graphs are never mutated (each circuit runs on a clone).
    ``fusion_out`` (shard index -> :class:`FusionStats`) is populated as
    shards spin up, letting callers read occupancy after the stream is
    drained; :func:`serve_suite` does exactly that, and also passes the
    ``plan`` it reports so the two never diverge.

    ``store`` (a :class:`repro.serve.store.ResultStore`) puts the
    content-addressed cache in front: hits are yielded first (``cached``
    set, ``shard`` -1, bench text byte-identical to the original miss),
    misses run normally and their clean results are inserted on
    completion.  Deadline-expired and errored results never enter the
    store.
    """
    params = params or ServeParams()
    if params.quality_budget_s is not None:
        # Tuned content depends on the wall clock: the store can neither
        # answer nor learn from a quality-budget run.
        store = None
    if plan is None:
        plan = assign_shards(suite, params.n_shards, cost)
    cache_keys: dict[str, tuple] = {}
    cache_hits: list[ServeResult] = []
    if store is not None:
        for name, g in suite.items():
            cache_keys[name] = store.key(g, params.flow)
            hit = store.lookup(cache_keys[name])
            if hit is not None:
                cache_hits.append(
                    ServeResult(
                        name=name,
                        shard=-1,
                        n_ands_before=g.n_ands,
                        level_before=g.max_level(),
                        n_ands=hit.n_ands,
                        level=hit.level,
                        bench_text=hit.bench_text,
                        cached=True,
                    )
                )
        if cache_hits:
            suite = {
                name: g
                for name, g in suite.items()
                if name not in {r.name for r in cache_hits}
            }
            plan = assign_shards(suite, params.n_shards, cost)
    needs = script_requirements(params.flow)
    fuse = classifier is not None and params.fuse_classifier and needs.classifier
    # The shard pool must cover the script's own -w pins as well as the
    # serve-level default, so no engine pass ever forks a pool from
    # inside a circuit thread (scripts mixing *different* explicit -w
    # widths still fall back to private per-pass pools; prefer one
    # engine width per served flow).
    pool_workers = params.workers if params.workers > 0 else (os.cpu_count() or 1)
    pool_workers = max(pool_workers, needs.max_explicit_workers)
    results: queue.Queue[ServeResult] = queue.Queue()
    threads: list[threading.Thread] = []
    sessions: list[OptSession] = []
    for shard_index, names in enumerate(plan.shards):
        service = None
        if fuse and len(names) > 0:
            service = SharedClassifierService(classifier, list(names))
            if fusion_out is not None:
                fusion_out[shard_index] = service.stats
        # One session per shard: every circuit of the shard shares its
        # NPN library and (when the flow pools) its worker processes.
        # Caches are per run (= per circuit): the wave engine's NPN
        # cache layer is content-affecting, so cross-circuit sharing
        # would make served results depend on thread timing — the
        # content-determinism guarantee above forbids that.  The pool
        # is forked now, while the process is still single-threaded.
        session = OptSession(
            classifier=classifier,
            engine_workers=params.workers if params.workers > 0 else None,
            per_run_cache=True,
            cache_entries=params.engine_cache_entries,
        )
        if needs.engine_pool and pool_workers > 1:
            session.warm_engine(pool_workers)
        sessions.append(session)
        # Quality-budget mode: the shard shares one in-memory recipe
        # book, so a tuned circuit warm-starts from scripts its shard
        # siblings already discovered (thread-safe; never persisted).
        recipes = RecipeBook() if params.quality_budget_s is not None else None
        for name in names:
            threads.append(
                threading.Thread(
                    target=_serve_one,
                    name=f"serve-{name}",
                    args=(
                        name,
                        suite[name],
                        shard_index,
                        params,
                        session,
                        service,
                        results,
                        store,
                        cache_keys.get(name),
                        recipes,
                    ),
                    daemon=True,
                )
            )
    started: list[threading.Thread] = []
    try:
        order = 0
        for hit in cache_hits:
            hit.order = order
            order += 1
            obs.counter("serve_circuits_total", outcome="ok").add(1)
            yield hit
        for thread in threads:
            thread.start()
            started.append(thread)
        for _ in range(len(started)):
            result = results.get()
            result.order = order
            order += 1
            yield result
    finally:
        # Join only what actually started (joining an unstarted thread
        # raises, which would mask the original error and skip closing
        # the sessions — leaking their pre-forked worker pools).
        for thread in started:
            thread.join()
        for session in sessions:
            session.close()


def serve_suite(
    suite: dict[str, AIG],
    params: ServeParams | None = None,
    classifier=None,
    cost: dict[str, int] | None = None,
    store=None,
) -> ServeReport:
    """Blocking serve: drain :func:`serve_stream`, return the full report.

    ``store`` forwards to :func:`serve_stream`'s content-addressed cache
    front; the reported ``plan`` still covers the whole suite (it is the
    logical assignment — cache hits simply never reach their shard).
    """
    params = params or ServeParams()
    plan = assign_shards(suite, params.n_shards, cost)
    fusion: dict[int, FusionStats] = {}
    with obs.span(
        "serve.suite", circuits=len(suite), shards=len(plan.shards), flow=params.flow
    ) as suite_span:
        results = list(
            serve_stream(
                suite,
                params,
                classifier,
                cost,
                fusion_out=fusion,
                plan=None if store is not None else plan,
                store=store,
            )
        )
        suite_span.set(ok=all(r.ok for r in results))
    return ServeReport(
        plan=plan,
        results=results,
        fusion=fusion,
        wall_time=suite_span.duration,
    )


def _serve_one(
    name: str,
    g: AIG,
    shard: int,
    params: ServeParams,
    session: OptSession,
    service: SharedClassifierService | None,
    results: "queue.Queue[ServeResult]",
    store=None,
    cache_key: tuple | None = None,
    recipes: RecipeBook | None = None,
) -> None:
    """Thread body: run the flow on a clone, push one result, always.

    ``session`` is the *shard's* shared session (cache, library, pool);
    the per-circuit fused classifier client — when the shard fuses —
    rides in as this run's classifier override.  A clean (non-error,
    non-deadline) result is inserted into ``store`` under ``cache_key``
    when a content-addressed cache fronts this run.  With
    ``params.quality_budget_s`` set the fixed flow is replaced by a
    per-circuit tuner search sharing the shard's ``recipes`` book;
    budget expiry yields the best committed result, never an error.
    """
    result = ServeResult(
        name=name,
        shard=shard,
        n_ands_before=g.n_ands,
        level_before=g.max_level(),
    )
    client = service.client(name) if service is not None else None
    deadline = None
    if params.circuit_timeout_s is not None:
        deadline = Deadline.after(params.circuit_timeout_s)
    # The span doubles as the latency clock: ``result.runtime`` is its
    # duration, and the registry histogram below is what the throughput
    # benchmark and a Prometheus scrape read.
    span = obs.span("serve.circuit", circuit=name, shard=shard)
    try:
        with span:
            if params.quality_budget_s is not None:
                tuned = tune(
                    g,
                    TuneParams(budget_s=params.quality_budget_s, recipes=recipes),
                    session=session,
                )
                out = tuned.graph
                result.tuned_script = tuned.script
            else:
                out, report = session.run(
                    g.clone(), params.flow, classifier=client, deadline=deadline
                )
                result.report = report
            result.n_ands = out.n_ands
            result.level = out.max_level()
            result.bench_text = to_text(out)
            if params.keep_graphs:
                result.graph = out
            span.set(n_ands=out.n_ands)
    except DeadlineExceeded as error:
        # The budget expired mid-flow.  The session attached the best
        # committed prefix — a valid, CEC-clean network — so the circuit
        # still yields a usable (if less optimized) result.
        policy.record_deadline("serve")
        result.deadline_exceeded = True
        result.report = error.report
        out = error.partial
        if out is not None:
            result.n_ands = out.n_ands
            result.level = out.max_level()
            result.bench_text = to_text(out)
            if params.keep_graphs:
                result.graph = out
    except Exception as error:
        obs.counter(
            "serve_circuit_errors_total", type=type(error).__name__
        ).add(1)
        result.error = f"{type(error).__name__}: {error}"
    finally:
        if client is not None:
            client.finish()
        if (
            store is not None
            and cache_key is not None
            and result.ok
            and not result.deadline_exceeded
            and result.bench_text is not None
        ):
            from .store import CachedResult

            store.insert(
                cache_key,
                CachedResult(
                    bench_text=result.bench_text,
                    n_ands=result.n_ands,
                    level=result.level,
                    n_ands_before=result.n_ands_before,
                    level_before=result.level_before,
                ),
            )
        result.runtime = span.duration
        metrics = obs.metrics()
        metrics.histogram("serve_circuit_seconds", shard=str(shard)).observe(
            result.runtime
        )
        metrics.counter(
            "serve_circuits_total", outcome="ok" if result.ok else "error"
        ).add(1)
        results.put(result)
