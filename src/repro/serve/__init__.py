"""Sharded multi-circuit serving.

The engine (:mod:`repro.engine`) parallelizes one refactor pass over one
network; this subsystem serves a whole *suite* of circuits in flight:

* :mod:`repro.serve.shard` — deterministic LPT partition of the suite
  across shards (:func:`assign_shards` / :class:`ShardPlan`).
* :mod:`repro.serve.pool` — shard-shared resources: one classifier
  service per shard fusing ELF inference batches *across* circuits
  (:class:`SharedClassifierService`, exact per-circuit semantics) and
  one engine worker pool reused by every parallel flow step.
* :mod:`repro.serve.stream` — the orchestrator: :func:`serve_stream`
  yields per-circuit results in completion order instead of blocking on
  the slowest shard; :func:`serve_suite` drains it into a
  :class:`ServeReport` with throughput and batch-occupancy statistics.
* :mod:`repro.serve.store` — the content-addressed result cache
  (:class:`ResultStore`): finished results keyed by ``(structural
  digest, normalized script, registry version)``, fronting both serve
  paths so repeat structures cost a hash instead of a flow.
* :mod:`repro.serve.proc` — process-sharded execution
  (:func:`serve_suite_procs`): one warm session per shard *process*,
  with dead-shard respawn and in-process degradation.
* :mod:`repro.serve.service` — the long-lived entrypoint
  (``python -m repro serve``): an asyncio JSON-lines service over a
  unix socket with admission control in front of the shard processes.

Quick use::

    from repro.circuits import epfl_suite
    from repro.serve import ServeParams, serve_suite

    report = serve_suite(epfl_suite("tiny"), ServeParams(flow="rf", n_shards=2))
    for r in report.results:          # completion order
        print(r.order, r.name, r.n_ands_before, "->", r.n_ands)

At ``workers=1`` every served result is byte-identical (BENCH text) to a
blocking ``run_flow`` on that circuit alone; see ``docs/serving.md``.
"""

from .pool import (
    FusedClassifierClient,
    FusionStats,
    SharedClassifierService,
    max_explicit_workers,
    needs_classifier,
    needs_engine_pool,
    script_requirements,
)
from .proc import ShardHost, ShardSupervisor, serve_suite_procs
from .shard import ShardPlan, assign_shards
from .store import CachedResult, ResultStore
from .stream import ServeParams, ServeReport, ServeResult, serve_stream, serve_suite

__all__ = [
    "CachedResult",
    "FusedClassifierClient",
    "FusionStats",
    "ResultStore",
    "ServeParams",
    "ServeReport",
    "ServeResult",
    "SharedClassifierService",
    "ShardHost",
    "ShardPlan",
    "ShardSupervisor",
    "assign_shards",
    "max_explicit_workers",
    "needs_classifier",
    "needs_engine_pool",
    "script_requirements",
    "serve_stream",
    "serve_suite",
    "serve_suite_procs",
]
