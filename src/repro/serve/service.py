"""The long-lived optimization service behind ``python -m repro serve``.

An asyncio JSON-lines server on a unix domain socket: each request line
is a JSON object with an ``op``, each response is one JSON line.  The
service composes the serving stack end to end —

* **admission control** in front: at most ``max_pending`` optimize
  requests are admitted at once; excess traffic gets an immediate typed
  rejection (``{"ok": false, "error": {"type": "overloaded", ...}}``,
  counted on ``serve_rejected_total``) instead of an unbounded queue —
  under overload the service stays responsive and callers learn to back
  off *now*, not at timeout.
* a **content-addressed result cache** (:class:`repro.serve.store.ResultStore`)
  keyed ``(structural digest, normalized script, registry version)``:
  repeat structures — whatever their node numbering or names — are
  answered from memory, byte-identical to the original miss.
* **shard worker processes** (:class:`repro.serve.proc.ShardHost`): each
  shard owns a warm :class:`repro.opt.OptSession` in its own process;
  misses are dispatched to the least-loaded shard.  A dead shard is
  respawned with only its unfinished requests re-run
  (:class:`repro.serve.proc.ShardSupervisor`), degrading to in-process
  execution when the retry budget runs out — a request admitted is a
  request answered.

Wire protocol (one JSON object per line)::

    {"op": "ping"}
    {"op": "optimize", "name": "adder", "bench": "<BENCH text>",
     "script": "b; rf"}                     # script optional
    {"op": "optimize", "name": "adder", "bench": "<BENCH text>",
     "quality_budget_s": 2.0}                # tuned: best result in 2 s
    {"op": "stats"}                          # cache + shard occupancy
    {"op": "metrics"}                        # Prometheus text exposition
    {"op": "shutdown"}

Responses carry ``ok`` plus op-specific fields; an optimize response
has ``bench``, ``n_ands``, ``level``, ``cached`` and ``runtime``.
``quality_budget_s`` routes the request through the per-circuit tuner
(:mod:`repro.tune`) instead of a fixed script: the shard searches for
the best flow it can find within the budget and the response carries
the chosen script as ``tuned_script``.  Budget expiry is *not* an error
— the response is the best committed result so far — and tuned results
bypass the content-addressed cache entirely (their content depends on
the wall clock, so caching one would freeze a timing accident).
Request latency lands on the ``serve_request_seconds`` histogram
(labeled by outcome: ``hit`` / ``miss`` / ``tuned`` / ``rejected`` /
``error``);
``--metrics FILE`` exports the full registry in Prometheus text format
on shutdown.  :func:`request` is the matching blocking client used by
the demo tool and the tests.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import queue
import socket
import threading
import time
from dataclasses import dataclass

from .. import obs
from ..aig.io_bench import from_text
from ..errors import ReproError
from ..opt.registry import default_registry
from .pool import script_requirements
from .proc import ShardHost, ShardSupervisor, _run_one
from .store import CachedResult, ResultStore
from .stream import ServeParams

_POLL_S = 0.2  # drain-thread wakeup to scan for dead shard processes


@dataclass
class ServiceConfig:
    """Startup configuration of one service instance.

    ``script`` is the default flow (requests may override per call);
    ``max_pending`` is the admission bound — optimize requests in flight
    beyond it are rejected, not queued.  ``cache_entries`` sizes the
    content-addressed result store; ``engine_cache_entries`` bounds each
    shard session's resynthesis caches (both LRU).  ``metrics_path``
    exports Prometheus text on shutdown.
    """

    socket_path: str = "repro-serve.sock"
    script: str = "b; rf"
    n_shards: int = 2
    workers: int = 1
    max_pending: int = 16
    cache_entries: int = 256
    engine_cache_entries: int | None = 4096
    circuit_timeout_s: float | None = None
    metrics_path: str | None = None

    def params(self) -> ServeParams:
        return ServeParams(
            flow=self.script,
            n_shards=self.n_shards,
            workers=self.workers,
            circuit_timeout_s=self.circuit_timeout_s,
            engine_cache_entries=self.engine_cache_entries,
        )


class OptimizeService:
    """The running service: shard processes, cache, admission, protocol.

    Lifecycle: :meth:`start` forks the shard processes (while the
    process is still single-threaded — the same rule the thread path
    follows for engine pools), then starts the drain thread and the
    unix-socket server; :meth:`serve_forever` blocks until a
    ``shutdown`` op arrives; :meth:`stop` tears everything down
    idempotently.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.params = config.params()
        self.registry = default_registry()
        self.store = ResultStore(config.cache_entries, registry=self.registry)
        self.hosts: list[ShardHost] = []
        self.supervisor: ShardSupervisor | None = None
        self._outbox = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._drain: threading.Thread | None = None
        self._stopping = threading.Event()
        self._shutdown_requested: asyncio.Event | None = None
        self._futures: dict[int, asyncio.Future] = {}
        self._next_req = 0
        self._pending = 0
        self._fallback = None  # in-process session for shard-less configs

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Fork shards, start the drain thread and the socket server."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        ctx = multiprocessing.get_context("fork")
        self._outbox = ctx.Queue()
        for shard_index in range(max(1, self.config.n_shards)):
            host = ShardHost(
                ctx, shard_index, self.params, None, self._outbox
            )
            host.spawn()
            self.hosts.append(host)
        self.supervisor = ShardSupervisor(self.hosts, self.params)
        self._drain = threading.Thread(
            target=self._drain_loop, name="serve-drain", daemon=True
        )
        self._drain.start()
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.config.socket_path
        )

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` op (or cancellation), then stop."""
        await self.start()
        try:
            await self._shutdown_requested.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Tear down server, drain thread and shard processes (idempotent)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._drain is not None:
            self._drain.join(timeout=5.0)
        if self.supervisor is not None:
            self.supervisor.close()
        for future in self._futures.values():
            if not future.done():
                future.cancel()
        self._futures.clear()
        if self.config.metrics_path is not None:
            obs.export_metrics(self.config.metrics_path)

    # -- shard plumbing -------------------------------------------------------

    def _drain_loop(self) -> None:
        """Bridge shard results back into the event loop; watch for deaths."""
        while not self._stopping.is_set():
            try:
                req_id, payload = self._outbox.get(timeout=_POLL_S)
            except queue.Empty:
                self.supervisor.check()
                continue
            for host in self.hosts:
                host.complete(req_id)
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(self._resolve, req_id, payload)

    def _resolve(self, req_id: int, payload: dict) -> None:
        future = self._futures.pop(req_id, None)
        if future is not None and not future.done():
            future.set_result(payload)

    def _least_loaded(self) -> ShardHost:
        return min(self.hosts, key=lambda host: (len(host.inflight), host.shard))

    # -- protocol -------------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        """One connection: serve JSON-lines requests until EOF."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                    response = await self._dispatch(message)
                except Exception as error:
                    obs.counter(
                        "serve_request_errors_total", type=type(error).__name__
                    ).add(1)
                    response = {
                        "ok": False,
                        "error": {"type": "bad_request", "detail": str(error)},
                    }
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            obs.counter("serve_client_disconnects_total").add(1)
        finally:
            writer.close()

    async def _dispatch(self, message: dict) -> dict:
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "optimize":
            return await self._optimize(message)
        if op == "stats":
            return self._stats()
        if op == "metrics":
            return {"ok": True, "text": obs.prometheus_text(obs.metrics())}
        if op == "shutdown":
            self._shutdown_requested.set()
            return {"ok": True, "op": "shutdown"}
        return {"ok": False, "error": {"type": "unknown_op", "op": op}}

    async def _optimize(self, message: dict) -> dict:
        started = time.perf_counter()
        outcome = "error"
        try:
            response = await self._optimize_inner(message)
            if response["ok"]:
                if response.get("tuned_script") is not None:
                    outcome = "tuned"
                else:
                    outcome = "hit" if response["cached"] else "miss"
            elif response["error"]["type"] == "overloaded":
                outcome = "rejected"
            return response
        finally:
            obs.histogram("serve_request_seconds", outcome=outcome).observe(
                time.perf_counter() - started
            )

    async def _optimize_inner(self, message: dict) -> dict:
        script = message.get("script") or self.config.script
        name = message.get("name") or "circuit"
        bench = message.get("bench")
        if not isinstance(bench, str) or not bench.strip():
            return {
                "ok": False,
                "error": {"type": "bad_request", "detail": "missing bench text"},
            }
        quality_budget_s = message.get("quality_budget_s")
        if quality_budget_s is not None:
            if (
                isinstance(quality_budget_s, bool)
                or not isinstance(quality_budget_s, (int, float))
                or quality_budget_s <= 0
            ):
                return {
                    "ok": False,
                    "error": {
                        "type": "bad_request",
                        "detail": "quality_budget_s must be a positive number",
                    },
                }
            quality_budget_s = float(quality_budget_s)
            return await self._optimize_tuned(name, bench, quality_budget_s)
        try:
            # normalize_script is the *strict* resolver — an unknown
            # command or flag must become a typed rejection here, not a
            # generic failure when the cache key is built downstream
            # (script_requirements alone skips unresolvable commands).
            self.registry.normalize_script(script)
            needs = script_requirements(script, self.registry)
        except ReproError as error:
            return {"ok": False, "error": {"type": "bad_script", "detail": str(error)}}
        if needs.classifier:
            # Shard sessions run classifier-less; a script that requires
            # one can never be served here — reject it typed, up front.
            return {
                "ok": False,
                "error": {"type": "unsupported", "detail": "script needs a classifier"},
            }
        # Admission control: bound what is in flight, reject the rest.
        if self._pending >= self.config.max_pending:
            obs.counter("serve_rejected_total").add(1)
            return {
                "ok": False,
                "error": {
                    "type": "overloaded",
                    "pending": self._pending,
                    "limit": self.config.max_pending,
                },
            }
        self._pending += 1
        try:
            g = from_text(bench, name=name)
            key = self.store.key(g, script)
            hit = self.store.lookup(key)
            if hit is not None:
                return {
                    "ok": True,
                    "name": name,
                    "cached": True,
                    "bench": hit.bench_text,
                    "n_ands": hit.n_ands,
                    "level": hit.level,
                    "n_ands_before": g.n_ands,
                    "level_before": g.max_level(),
                    "runtime": 0.0,
                }
            payload = await self._run_sharded(name, bench, script)
            if payload.get("error") is not None:
                return {
                    "ok": False,
                    "name": name,
                    "error": {"type": "flow_error", "detail": payload["error"]},
                }
            response = {
                "ok": True,
                "name": name,
                "cached": False,
                "bench": payload.get("bench_text"),
                "n_ands": payload.get("n_ands", 0),
                "level": payload.get("level", 0),
                "n_ands_before": payload.get("n_ands_before", g.n_ands),
                "level_before": payload.get("level_before", 0),
                "deadline_exceeded": payload["deadline_exceeded"],
                "runtime": payload.get("runtime", 0.0),
            }
            if (
                payload.get("bench_text") is not None
                and not payload["deadline_exceeded"]
            ):
                self.store.insert(
                    key,
                    CachedResult(
                        bench_text=payload["bench_text"],
                        n_ands=payload.get("n_ands", 0),
                        level=payload.get("level", 0),
                        n_ands_before=payload.get("n_ands_before", g.n_ands),
                        level_before=payload.get("level_before", 0),
                    ),
                )
            return response
        finally:
            self._pending -= 1

    async def _optimize_tuned(self, name: str, bench: str, budget_s: float) -> dict:
        """Quality-budget request: tuner search on a shard, never cached.

        The store is bypassed in both directions — a cached fixed-flow
        result could be worse than what the budget buys, and a tuned
        result's content depends on the wall clock.  Budget expiry comes
        back as a normal ``ok`` response holding the best committed
        result; only a real flow failure is a typed error.
        """
        if self._pending >= self.config.max_pending:
            obs.counter("serve_rejected_total").add(1)
            return {
                "ok": False,
                "error": {
                    "type": "overloaded",
                    "pending": self._pending,
                    "limit": self.config.max_pending,
                },
            }
        self._pending += 1
        try:
            g = from_text(bench, name=name)
            payload = await self._run_sharded(
                name, bench, None, quality_budget_s=budget_s
            )
            if payload.get("error") is not None:
                return {
                    "ok": False,
                    "name": name,
                    "error": {"type": "flow_error", "detail": payload["error"]},
                }
            return {
                "ok": True,
                "name": name,
                "cached": False,
                "bench": payload.get("bench_text"),
                "n_ands": payload.get("n_ands", 0),
                "level": payload.get("level", 0),
                "n_ands_before": payload.get("n_ands_before", g.n_ands),
                "level_before": payload.get("level_before", 0),
                "deadline_exceeded": payload["deadline_exceeded"],
                "tuned_script": payload.get("tuned_script", ""),
                "quality_budget_s": budget_s,
                "runtime": payload.get("runtime", 0.0),
            }
        finally:
            self._pending -= 1

    async def _run_sharded(
        self,
        name: str,
        bench: str,
        script: str | None,
        quality_budget_s: float | None = None,
    ) -> dict:
        req_id = self._next_req
        self._next_req += 1
        future: asyncio.Future = self._loop.create_future()
        self._futures[req_id] = future
        host = self._least_loaded()
        host.submit(req_id, name, bench, script, quality_budget_s)
        return await future

    def _stats(self) -> dict:
        return {
            "ok": True,
            "pending": self._pending,
            "shards": {
                str(host.shard): {
                    "inflight": len(host.inflight),
                    "alive": host.process is not None and host.process.is_alive(),
                    "respawns": host.attempts,
                }
                for host in self.hosts
            },
            "cache": {
                "hits": self.store.hits,
                "misses": self.store.misses,
                "evictions": self.store.evictions,
                "entries": len(self.store),
                "hit_rate": self.store.hit_rate,
            },
        }


def run_service(config: ServiceConfig) -> None:
    """Blocking entrypoint: run one service until shutdown (the CLI body)."""
    asyncio.run(OptimizeService(config).serve_forever())


def request(socket_path: str, payload: dict, timeout: float = 60.0) -> dict:
    """Blocking client: send one op, return the decoded response.

    The counterpart of the wire protocol above, used by
    ``tools/serve_demo.py`` and the service tests; one connection per
    call keeps it trivially correct (batch users should hold their own
    connection and stream lines).
    """
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(json.dumps(payload).encode() + b"\n")
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
    return json.loads(buffer)
