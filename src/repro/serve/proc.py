"""Process-sharded serving: one warm worker process per shard.

:func:`repro.serve.serve_stream` runs every circuit in a thread of the
calling process — right for a library call, wrong for a long-lived
service, where one interpreter would serialize every Python-level sweep
on the GIL and one crashed circuit could take the whole server down.
This module moves each shard into its **own process**:

* :class:`ShardHost` owns one forked shard worker: a private inbox
  queue, the worker process, and the ``inflight`` ledger of submitted
  but unfinished circuits — exactly what a respawn must re-run.
* :func:`_shard_worker_main` is the child body: it builds one warm
  :class:`repro.opt.OptSession` (per-run caches, optional pre-forked
  engine pool) and serves circuits off its inbox until told to stop.
  Circuits cross the boundary as BENCH text — the serving wire format —
  never as pickled AIG objects.
* :func:`serve_suite_procs` is the orchestrator: it shards the suite
  (same deterministic LPT plan as the thread path), checks each circuit
  against an optional content-addressed :class:`~repro.serve.store.ResultStore`,
  dispatches the misses, and supervises the shard processes.

Failure model (the thread path has nothing to recover; this path does):
a shard process that dies — SIGKILL, OOM, a segfaulting extension —
is detected by the supervisor (``inflight`` non-empty, process dead),
counted (``serve_shard_deaths_total``), and respawned with **only its
unfinished circuits** resubmitted; completed results were already
streamed and are never recomputed.  Respawns follow the engine's
:class:`repro.resilience.RetryPolicy` budget; a shard that keeps dying
degrades to in-process sequential execution in the supervisor
(``record_degradation``), which also breaks deterministic kill loops
injected at the ``shard.circuit`` fault site — the site fires in shard
children only, never in the supervisor.  At ``workers=1`` every
recovery path re-derives byte-identical results, so a suite served
through kills matches a clean run exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from typing import Iterable

from .. import obs
from ..aig.io_bench import from_text, to_text
from ..errors import DeadlineExceeded
from ..opt.session import OptSession
from ..resilience import DEFAULT_RETRY_POLICY, Deadline, RetryPolicy, policy
from ..resilience.faults import active as faults_active
from ..resilience.faults import fire, install
from ..tune import RecipeBook, TuneParams, tune
from .pool import script_requirements
from .shard import ShardPlan, assign_shards
from .store import CachedResult, ResultStore
from .stream import ServeParams, ServeReport, ServeResult

_POLL_S = 0.2  # supervisor wakeup to scan for dead shard processes


def _shard_worker_main(
    shard_index: int,
    params: ServeParams,
    classifier,
    fault_plan,
    inbox,
    outbox,
) -> None:
    """Child process body: serve circuits off ``inbox`` until ``None``.

    Work items are ``(req_id, name, bench_text, script, quality_budget_s)``
    — ``script`` of ``None`` means the configured default flow, and a
    non-``None`` ``quality_budget_s`` routes the circuit through the
    tuner instead (the shard keeps one in-memory recipe book, so tuned
    circuits warm-start from their shard siblings' winning scripts).
    Each reply is ``(req_id, payload_dict)`` on ``outbox``.  Errors
    never escape a circuit: they come back as the payload's ``error``
    field, so the process survives anything short of a crash — and a
    crash is exactly what the supervisor's respawn path is for.
    """
    install(fault_plan)  # forked children inherit, spawned ones would not
    needs = script_requirements(params.flow)
    session = OptSession(
        classifier=classifier,
        engine_workers=params.workers if params.workers > 0 else None,
        per_run_cache=True,
        cache_entries=params.engine_cache_entries,
    )
    pool_workers = params.workers if params.workers > 0 else (os.cpu_count() or 1)
    pool_workers = max(pool_workers, needs.max_explicit_workers)
    if needs.engine_pool and pool_workers > 1:
        session.warm_engine(pool_workers)
    recipes = RecipeBook()
    with session:
        while True:
            item = inbox.get()
            if item is None:
                return
            req_id, name, bench_text, script, quality_budget_s = item
            fire("shard.circuit", pid=os.getpid(), shard=shard_index, circuit=name)
            payload = _run_one(
                session,
                params,
                name,
                bench_text,
                script,
                quality_budget_s=quality_budget_s,
                recipes=recipes,
            )
            outbox.put((req_id, payload))


def _run_one(
    session: OptSession,
    params: ServeParams,
    name: str,
    bench_text: str,
    script: str | None = None,
    quality_budget_s: float | None = None,
    recipes: RecipeBook | None = None,
) -> dict:
    """Run one circuit through ``session``; always return a payload dict.

    A quality budget (per-request ``quality_budget_s``, falling back to
    ``params.quality_budget_s``) replaces the fixed script with a tuner
    search: the payload then carries the chosen flow as
    ``tuned_script``, and budget expiry produces the best committed
    result instead of a ``deadline_exceeded`` marker — the tuner's
    whole contract is best-so-far, not all-or-nothing.
    """
    started = time.perf_counter()
    payload: dict = {"name": name, "error": None, "deadline_exceeded": False}
    if quality_budget_s is None:
        quality_budget_s = params.quality_budget_s
    try:
        g = from_text(bench_text, name=name)
        payload["n_ands_before"] = g.n_ands
        payload["level_before"] = g.max_level()
        if quality_budget_s is not None:
            tuned = tune(
                g,
                TuneParams(budget_s=quality_budget_s, recipes=recipes),
                session=session,
            )
            payload["tuned_script"] = tuned.script
            payload["n_ands"] = tuned.n_ands
            payload["level"] = tuned.level
            payload["bench_text"] = to_text(tuned.graph)
            payload["runtime"] = time.perf_counter() - started
            return payload
        deadline = None
        if params.circuit_timeout_s is not None:
            deadline = Deadline.after(params.circuit_timeout_s)
        out, _report = session.run(g, script or params.flow, deadline=deadline)
    except DeadlineExceeded as error:
        policy.record_deadline("serve")
        payload["deadline_exceeded"] = True
        out = error.partial
    except Exception as error:
        obs.counter("serve_circuit_errors_total", type=type(error).__name__).add(1)
        payload["error"] = f"{type(error).__name__}: {error}"
        out = None
    if out is not None:
        payload["n_ands"] = out.n_ands
        payload["level"] = out.max_level()
        payload["bench_text"] = to_text(out)
    payload["runtime"] = time.perf_counter() - started
    return payload


class ShardHost:
    """Supervisor-side handle of one shard process.

    Owns the spawn/respawn lifecycle and the ``inflight`` ledger
    (req_id -> (name, bench_text, script, quality_budget_s)) that makes
    recovery exact: a respawn
    resubmits precisely the submitted-but-unfinished circuits, nothing
    more.  Each (re)spawn gets a **fresh** inbox queue — a queue whose
    feeder thread died with a SIGKILLed reader is not trustworthy — while
    the shared ``outbox`` stays, so results the dead process already
    delivered remain delivered.
    """

    def __init__(self, ctx, shard_index: int, params: ServeParams, classifier, outbox) -> None:
        self.ctx = ctx
        self.shard = shard_index
        self.params = params
        self.classifier = classifier
        self.outbox = outbox
        self.inflight: dict[int, tuple[str, str, str | None, float | None]] = {}
        self.attempts = 0  # respawns consumed against the retry budget
        self.process = None
        self.inbox = None
        self._occupancy = obs.metrics().gauge(
            "serve_shard_occupancy", shard=str(shard_index)
        )

    def spawn(self) -> None:
        """Fork the shard worker (fresh inbox; inflight is resubmitted)."""
        self.inbox = self.ctx.Queue()
        self.process = self.ctx.Process(
            target=_shard_worker_main,
            name=f"repro-shard-{self.shard}",
            args=(
                self.shard,
                self.params,
                self.classifier,
                faults_active(),
                self.inbox,
                self.outbox,
            ),
            daemon=True,
        )
        self.process.start()
        for req_id, (name, bench_text, script, budget) in self.inflight.items():
            self.inbox.put((req_id, name, bench_text, script, budget))

    def submit(
        self,
        req_id: int,
        name: str,
        bench_text: str,
        script: str | None = None,
        quality_budget_s: float | None = None,
    ) -> None:
        self.inflight[req_id] = (name, bench_text, script, quality_budget_s)
        self._occupancy.set(len(self.inflight))
        self.inbox.put((req_id, name, bench_text, script, quality_budget_s))

    def complete(self, req_id: int) -> None:
        self.inflight.pop(req_id, None)
        self._occupancy.set(len(self.inflight))

    @property
    def dead(self) -> bool:
        """True when circuits are owed but the process is gone."""
        return bool(self.inflight) and (
            self.process is None or not self.process.is_alive()
        )

    def respawn(self) -> None:
        """Replace a dead worker; only the inflight ledger is re-run."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        if self.process is not None:
            self.process.join()
        obs.counter("serve_shard_respawns_total", shard=str(self.shard)).add(1)
        self.spawn()

    def stop(self) -> None:
        """Graceful shutdown: sentinel, join, then force if needed."""
        if self.process is None:
            return
        if self.process.is_alive():
            try:
                self.inbox.put(None)
            except Exception:  # lint-faults: queue already torn down — force-kill below
                pass
            self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.process = None


class ShardSupervisor:
    """Death detection + recovery shared by the suite path and the service.

    Watches a set of :class:`ShardHost` instances; :meth:`check` scans
    for dead hosts and either respawns them (within the
    :class:`~repro.resilience.RetryPolicy` budget, with backoff) or
    degrades their unfinished circuits to in-process sequential
    execution — emitting the results on the shared outbox exactly as the
    worker would have, so the drain loop cannot tell recovery happened.
    """

    def __init__(
        self,
        hosts: Iterable[ShardHost],
        params: ServeParams,
        classifier=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.hosts = list(hosts)
        self.params = params
        self.classifier = classifier
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self._fallback_session: OptSession | None = None

    def check(self) -> None:
        """Scan every host; recover the dead ones (see class docstring)."""
        for host in self.hosts:
            if not host.dead:
                continue
            policy.record_worker_death()
            obs.counter("serve_shard_deaths_total", shard=str(host.shard)).add(1)
            host.attempts += 1
            if self.retry.allows(host.attempts):
                time.sleep(self.retry.backoff(host.attempts))
                policy.record_retry()
                host.respawn()
            else:
                self._degrade(host)

    def _degrade(self, host: ShardHost) -> None:
        """Run a hopeless shard's unfinished circuits in this process.

        Sequential, no fault sites consulted (``shard.circuit`` fires in
        shard children only) — so a scripted kill that murders every
        respawn still terminates here, with byte-identical results at
        ``workers=1``.
        """
        policy.record_degradation("in-process")
        if self._fallback_session is None:
            self._fallback_session = OptSession(
                classifier=self.classifier,
                engine_workers=self.params.workers if self.params.workers > 0 else None,
                per_run_cache=True,
                cache_entries=self.params.engine_cache_entries,
            )
        for req_id, (name, bench_text, script, budget) in list(host.inflight.items()):
            payload = _run_one(
                self._fallback_session,
                self.params,
                name,
                bench_text,
                script,
                quality_budget_s=budget,
            )
            host.outbox.put((req_id, payload))
            # Settle the ledger here (the drain loop's complete() is a
            # no-op then): a host with an empty ledger is not "dead", so
            # the next check() pass cannot degrade it twice.
            host.complete(req_id)

    def close(self) -> None:
        for host in self.hosts:
            host.stop()
        if self._fallback_session is not None:
            self._fallback_session.close()
            self._fallback_session = None


def serve_suite_procs(
    suite: dict,
    params: ServeParams | None = None,
    classifier=None,
    store: ResultStore | None = None,
    cost: dict[str, int] | None = None,
) -> ServeReport:
    """Serve ``suite`` across shard *processes*; return a :class:`ServeReport`.

    The process analogue of :func:`repro.serve.serve_suite`: the same
    deterministic shard plan, the same per-circuit result records, but
    each shard executes in its own forked worker and survives that
    worker's death (see the module docstring for the recovery model).

    With a ``store``, every circuit is first checked against the
    content-addressed cache: hits are answered immediately (``cached``
    set, ``shard`` = -1, bench text byte-identical to the original
    miss), and every clean miss result is inserted on completion.
    Deadline-expired and errored circuits are never cached — their
    content is timing-dependent or absent.  Fused cross-circuit
    classification is a thread-path feature; here each shard's session
    calls ``classifier`` directly.
    """
    params = params or ServeParams()
    if params.quality_budget_s is not None:
        store = None  # tuned content is wall-clock-dependent: never cached
    plan = assign_shards(suite, params.n_shards, cost)
    ctx = multiprocessing.get_context("fork")
    metrics = obs.metrics()
    with obs.span(
        "serve.suite_procs", circuits=len(suite), shards=len(plan.shards), flow=params.flow
    ) as suite_span:
        results: list[ServeResult] = []
        keys: dict[str, tuple] = {}
        misses_by_shard: list[list[str]] = []
        for shard_index, names in enumerate(plan.shards):
            misses: list[str] = []
            for name in names:
                hit = None
                if store is not None:
                    keys[name] = store.key(suite[name], params.flow)
                    hit = store.lookup(keys[name])
                if hit is not None:
                    results.append(
                        ServeResult(
                            name=name,
                            shard=-1,
                            order=len(results),
                            n_ands_before=suite[name].n_ands,
                            level_before=suite[name].max_level(),
                            n_ands=hit.n_ands,
                            level=hit.level,
                            bench_text=hit.bench_text,
                            cached=True,
                        )
                    )
                    metrics.counter("serve_circuits_total", outcome="ok").add(1)
                else:
                    misses.append(name)
            misses_by_shard.append(misses)
        outbox = ctx.Queue()
        hosts = []
        req_of: dict[int, str] = {}
        shard_of_req: dict[int, ShardHost] = {}
        supervisor = None
        try:
            req_id = 0
            for shard_index, misses in enumerate(misses_by_shard):
                if not misses:
                    continue
                host = ShardHost(ctx, shard_index, params, classifier, outbox)
                host.spawn()
                hosts.append(host)
                for name in misses:
                    req_of[req_id] = name
                    shard_of_req[req_id] = host
                    host.submit(req_id, name, to_text(suite[name]))
                    req_id += 1
            supervisor = ShardSupervisor(hosts, params, classifier)
            remaining = req_id
            while remaining > 0:
                try:
                    rid, payload = outbox.get(timeout=_POLL_S)
                except queue.Empty:
                    supervisor.check()
                    continue
                host = shard_of_req[rid]
                host.complete(rid)
                result = ServeResult(
                    name=payload["name"],
                    shard=host.shard,
                    order=len(results),
                    runtime=payload.get("runtime", 0.0),
                    n_ands_before=payload.get("n_ands_before", 0),
                    level_before=payload.get("level_before", 0),
                    n_ands=payload.get("n_ands", 0),
                    level=payload.get("level", 0),
                    bench_text=payload.get("bench_text"),
                    error=payload["error"],
                    deadline_exceeded=payload["deadline_exceeded"],
                    tuned_script=payload.get("tuned_script"),
                )
                metrics.histogram(
                    "serve_circuit_seconds", shard=str(host.shard)
                ).observe(result.runtime)
                metrics.counter(
                    "serve_circuits_total", outcome="ok" if result.ok else "error"
                ).add(1)
                if (
                    store is not None
                    and result.ok
                    and not result.deadline_exceeded
                    and result.bench_text is not None
                ):
                    store.insert(
                        keys[result.name],
                        CachedResult(
                            bench_text=result.bench_text,
                            n_ands=result.n_ands,
                            level=result.level,
                            n_ands_before=result.n_ands_before,
                            level_before=result.level_before,
                        ),
                    )
                results.append(result)
                remaining -= 1
        finally:
            if supervisor is not None:
                supervisor.close()
            else:
                for host in hosts:
                    host.stop()
        suite_span.set(ok=all(r.ok for r in results))
    return ServeReport(
        plan=plan,
        results=results,
        fusion={},
        wall_time=suite_span.duration,
    )
