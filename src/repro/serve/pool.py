"""Shard-local resources: the shared classifier service and engine pool.

Within one shard all circuits are served concurrently (one thread each),
and two expensive resources are shared instead of replicated:

* **Classifier service** (:class:`SharedClassifierService`) — ELF's
  classifier is cheapest when inference is batched.  Per circuit the
  operator already fuses all cut features into one matrix (the paper's
  trick); the service goes one step further and fuses matrices *across
  the circuits of a shard*: every circuit's pending ``keep_mask``
  request is held until each still-running circuit of the shard has
  either submitted its own request or finished, then a single stacked
  forward pass (:meth:`repro.elf.ElfClassifier.fused_keep_masks`)
  answers all of them.  Each sub-batch keeps its own MVN statistics, so
  fusion preserves per-circuit decisions: probabilities match a private
  classifier call to the last ulp (BLAS may pick a different kernel for
  the stacked shape) and the resulting keep masks are bitwise-identical
  in every test — fusion changes dispatch count, not decisions.

* **Engine pool** — each shard runs its circuits through one
  :class:`repro.opt.OptSession`, whose owned
  :class:`repro.engine.ResynthExecutor` is pre-forked
  (:meth:`~repro.opt.OptSession.warm_engine`) before circuit threads
  start, so every circuit of the shard reuses the same worker processes
  (and the session's NPN library).  Resynthesis caches stay per circuit
  (``per_run_cache=True``): the wave engine's NPN cache layer is
  content-affecting, so sharing one across concurrently served circuits
  would make results depend on thread timing.

The script's resource needs (classifier, engine pool, worker pins) are
read off the command registry's declared requirements, so a command
registered via :mod:`repro.opt.registry` is provisioned for without
touching this module.

The barrier protocol makes fusion rounds deterministic: round ``r``
always contains the ``r``-th request of every circuit that issues at
least ``r`` requests, independent of thread timing, because a circuit
blocks inside round ``r`` until the round fires and the round cannot
fire while any live circuit is still working.  Occupancy statistics
(:class:`FusionStats`) are therefore reproducible run to run.
"""

from __future__ import annotations

import threading

import numpy as np

from .. import obs
from ..resilience.faults import fire


class FusionStats:
    """Occupancy record of one shard's fused classifier.

    ``rounds[k] = (n_subbatches, n_rows)``: how many circuits and how
    many feature rows round ``k`` served with a single inference.  The
    totals live in the :mod:`repro.obs` metrics registry (series labeled
    with this instance's unique ``shard`` label); ``n_calls`` /
    ``n_subbatches`` / ``n_rows`` read through to it, so a Prometheus
    export of a serving run carries occupancy without extra plumbing.
    """

    def __init__(self) -> None:
        self.label = obs.next_label("shard")
        self.rounds: list[tuple[int, int]] = []
        registry = obs.metrics()
        self._calls = registry.counter("serve_fusion_rounds_total", shard=self.label)
        self._subbatches = registry.counter(
            "serve_fusion_subbatches_total", shard=self.label
        )
        self._rows = registry.counter("serve_fusion_rows_total", shard=self.label)

    def record_round(self, n_subbatches: int, n_rows: int) -> None:
        """Account one fused dispatch serving ``n_subbatches`` circuits."""
        self.rounds.append((n_subbatches, n_rows))
        self._calls.add(1)
        self._subbatches.add(n_subbatches)
        self._rows.add(n_rows)

    @property
    def n_calls(self) -> int:
        """Fused inference dispatches actually issued."""
        return int(self._calls.value)

    @property
    def n_subbatches(self) -> int:
        """Per-circuit requests served (what unfused serving would dispatch)."""
        return int(self._subbatches.value)

    @property
    def n_rows(self) -> int:
        """Total feature rows classified."""
        return int(self._rows.value)

    @property
    def mean_occupancy(self) -> float:
        """Average circuits per fused call (1.0 = no cross-circuit fusion)."""
        return self.n_subbatches / self.n_calls if self.rounds else 0.0

    @property
    def mean_rows(self) -> float:
        """Average feature rows per fused call."""
        return self.n_rows / self.n_calls if self.rounds else 0.0

    @property
    def amortization(self) -> float:
        """Fraction of inference dispatches eliminated by fusion."""
        if self.n_subbatches == 0:
            return 0.0
        return 1.0 - self.n_calls / self.n_subbatches


class SharedClassifierService:
    """Fuses concurrent ``keep_mask`` requests from one shard's circuits.

    Construct with the real classifier and the *complete* list of
    circuit names the shard will run, **before** any circuit thread
    starts; each thread then works through a :meth:`client` proxy and
    must deregister (the proxy is a context manager) when its flow ends,
    successfully or not — a vanished client would otherwise stall the
    barrier forever.

    A failed round is survivable: pending state is reset before the
    inference dispatches, every member of the round receives the error
    (counted ``serve_classifier_round_failures_total``), and the next
    complete set of requests fuses normally — one bad round never
    poisons the shard.  The ``classifier.fire`` fault site
    (:mod:`repro.resilience.faults`) makes that path testable.
    """

    def __init__(self, classifier, names: list[str]) -> None:
        self.classifier = classifier
        self.stats = FusionStats()
        self._cond = threading.Condition()
        self._live: set[str] = set(names)
        self._pending: dict[str, np.ndarray] = {}
        self._results: dict[str, object] = {}
        if len(self._live) != len(names):
            raise ValueError("duplicate circuit names in one shard")

    def client(self, name: str) -> "FusedClassifierClient":
        """The classifier proxy circuit ``name`` should use."""
        return FusedClassifierClient(self, name)

    # -- protocol used by the clients ---------------------------------------

    def submit(self, name: str, features: np.ndarray) -> np.ndarray:
        """Block until ``features`` is classified in a fused round."""
        with self._cond:
            if name not in self._live:
                raise RuntimeError(f"client {name!r} is not registered")
            self._pending[name] = features
            self._maybe_fire()
            while name not in self._results:
                self._cond.wait()
            result = self._results.pop(name)
        if isinstance(result, BaseException):
            raise result
        return result

    def finish(self, name: str) -> None:
        """Deregister ``name``; later rounds no longer wait for it."""
        with self._cond:
            self._live.discard(name)
            self._pending.pop(name, None)
            self._maybe_fire()
            self._cond.notify_all()

    def _maybe_fire(self) -> None:
        # A round fires only when every live circuit has a request on the
        # table; fired under the lock by whichever thread completed the set.
        if not self._pending or set(self._pending) != self._live:
            return
        names = sorted(self._pending)
        batches = [self._pending[n] for n in names]
        # Reset the round's pending state *before* dispatching: whatever
        # the inference does — raise, or trip a circuit thread into
        # finishing early — the barrier is already clean for the next
        # round and no stale request can fuse into it.
        self._pending.clear()
        try:
            fire("classifier.fire", round=self.stats.n_calls + 1)
            masks = self.classifier.fused_keep_masks(batches)
            self.stats.record_round(
                len(batches), sum(int(b.shape[0]) for b in batches)
            )
            self._results.update(zip(names, masks))
        except Exception as error:  # propagate to every waiter, not one
            # Every member of the failed round gets the error (its
            # circuit reports it and deregisters); circuits *outside*
            # the round are untouched and the next complete set of
            # requests fuses normally.
            obs.counter("serve_classifier_round_failures_total").add(1)
            self._results.update({n: error for n in names})
        self._cond.notify_all()


class FusedClassifierClient:
    """Per-circuit classifier facade routed through the shared service.

    Implements the only method the operators call on a classifier
    (``keep_mask``); everything else (threshold, probabilities) proxies
    the wrapped classifier directly.
    """

    def __init__(self, service: SharedClassifierService, name: str) -> None:
        self._service = service
        self.name = name

    @property
    def threshold(self) -> float:
        return self._service.classifier.threshold

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self._service.classifier.predict_proba(features)

    def keep_mask(self, features: np.ndarray) -> np.ndarray:
        return self._service.submit(self.name, np.asarray(features, dtype=np.float64))

    def finish(self) -> None:
        self._service.finish(self.name)

    def __enter__(self) -> "FusedClassifierClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()


def script_requirements(script: str, registry=None):
    """``script``'s aggregate resource needs, read off the registry.

    Returns a :class:`repro.opt.registry.ScriptNeeds` built from the
    declared ``CommandSpec`` requirements, so commands registered after
    the fact are provisioned for without touching the serving layer.
    Unresolvable commands contribute nothing (their error surfaces when
    the flow actually runs, isolated to the circuit that ran it).
    """
    from ..opt.registry import default_registry

    registry = registry if registry is not None else default_registry()
    return registry.script_requirements(script)


def needs_classifier(script: str, registry=None) -> bool:
    """Does any command of ``script`` consult the ELF classifier?"""
    return script_requirements(script, registry).classifier


def needs_engine_pool(script: str, registry=None) -> bool:
    """Does any command of ``script`` dispatch to the engine worker pool?

    Registry-declared (``CommandSpec.needs_engine_pool``).  The built-in
    set deliberately excludes ``prw``/``prwz``: the wave-rewrite engine
    evaluates through memoized NPN-library lookups and never ships work
    to a process pool, so rewrite-only flows serve without one.
    """
    return script_requirements(script, registry).engine_pool


def max_explicit_workers(script: str, registry=None) -> int:
    """Largest explicit ``-w N`` on any pool-using command (0 when none).

    The serving layer sizes each shard's pool to cover the script's own
    worker pins, so even a ``pf -w 4`` step under ``ServeParams(workers=1)``
    finds a pre-forked pool instead of forking one inside a circuit
    thread (see :meth:`repro.opt.OptSession.warm_engine`).
    """
    return script_requirements(script, registry).max_explicit_workers
