"""Content-addressed result store: serve repeat circuits from memory.

Production synthesis traffic is heavily repetitive — the same cores,
arithmetic blocks and glue cones arrive again and again under different
node numberings and names.  :class:`ResultStore` memoizes finished
optimization results under a key that sees through that noise:

    ``(structural digest, normalized script, registry version)``

* the **structural digest** (:func:`repro.aig.structural_digest`) is a
  Merkle fold of the PO-reachable AND/inverter structure — independent
  of node numbering, construction order, names and dangling logic, so
  two strash-equivalent submissions of one function share an entry;
* the **normalized script**
  (:meth:`repro.opt.registry.CommandRegistry.normalize_script`) resolves
  aliases and flag spellings to one canonical form, so ``"f; fz"`` and
  ``"rf; rfz"`` hit the same entry while ``"rf"`` vs ``"rf -l"`` miss;
* the **registry version**
  (:attr:`repro.opt.registry.CommandRegistry.version`) fences entries to
  the command surface that produced them — registering, renaming or
  re-flagging a command invalidates every old key.

A hit returns the stored :class:`CachedResult` verbatim: its
``bench_text`` is byte-for-byte the text the original miss computed (at
``workers=1`` that text is itself byte-identical to a blocking
``run_flow``), so cache placement is invisible to result content.  One
caveat follows from keying on structure rather than names: the BENCH
header line carries the *first* submitter's circuit name — the canonical
result for a structure is whatever the first miss computed.

The store is a bounded LRU (``max_entries``), safe for concurrent
readers/writers, and fully instrumented on the :mod:`repro.obs`
registry: ``serve_cache_hits_total`` / ``serve_cache_misses_total`` /
``serve_cache_evictions_total`` counters plus a ``serve_cache_entries``
gauge, each labeled with the store's process-unique ``store`` label so
several stores (tests, benchmarks, a live service) never collide.

``spill_dir`` adds an on-disk tier under the same content addresses:
every insert also writes one digest-named JSON file (atomically), and a
memory miss lazily reloads from disk before giving up — so a restarted
service (or a memory-evicted entry) answers warm traffic from the spill
instead of re-paying the flow.  Spill files are never deleted by LRU
eviction (surviving restarts is their whole point), loads verify the
embedded key before trusting a file, and a corrupt or alien file simply
degrades to a miss.  Counted on ``serve_cache_spill_writes_total`` /
``serve_cache_spill_loads_total``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from .. import obs
from ..aig.digest import structural_digest
from ..aig.graph import AIG
from ..opt.registry import CommandRegistry, default_registry

Key = tuple[str, str, str]  # (structural digest, normalized script, registry version)


@dataclass(frozen=True)
class CachedResult:
    """The content of one store entry: what a flow run produced.

    ``bench_text`` is the canonical payload (the byte-identity contract
    lives on it); the size/level stats ride along so hits can fill a
    result record without re-parsing the text.
    """

    bench_text: str
    n_ands: int
    level: int
    n_ands_before: int
    level_before: int


class ResultStore:
    """Bounded LRU of :class:`CachedResult` keyed by content address.

    ``max_entries`` bounds the entry count (LRU eviction, counted on
    ``serve_cache_evictions_total``); ``registry`` supplies script
    normalization and the version fence — every key this store builds
    embeds *that* registry's version, so a store is coherent for exactly
    one command surface.  ``spill_dir`` enables the on-disk tier (see
    the module docstring): inserts also write digest-named JSON files
    there, and memory misses lazily reload from them.
    """

    def __init__(
        self,
        max_entries: int = 256,
        registry: CommandRegistry | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("ResultStore needs max_entries >= 1")
        self.max_entries = max_entries
        self.registry = registry if registry is not None else default_registry()
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.label = obs.next_label("store")
        labels = {"store": self.label}
        metrics = obs.metrics()
        self._hits = metrics.counter("serve_cache_hits_total", **labels)
        self._misses = metrics.counter("serve_cache_misses_total", **labels)
        self._evictions = metrics.counter("serve_cache_evictions_total", **labels)
        self._spill_writes = metrics.counter(
            "serve_cache_spill_writes_total", **labels
        )
        self._spill_loads = metrics.counter("serve_cache_spill_loads_total", **labels)
        self._entries = metrics.gauge("serve_cache_entries", **labels)
        self._lock = threading.Lock()
        self._store: dict[Key, CachedResult] = {}

    # -- keying ---------------------------------------------------------------

    def key(self, g: AIG, script: str) -> Key:
        """Content address of serving ``script`` on ``g``.

        Raises :class:`repro.errors.ReproError` when the script does not
        resolve — an unservable request must fail here, not fabricate a
        key that could never have a valid entry.
        """
        return (
            structural_digest(g),
            self.registry.normalize_script(script),
            self.registry.version,
        )

    # -- lookup / insert ------------------------------------------------------

    def lookup(self, key: Key) -> CachedResult | None:
        """Entry for ``key`` (refreshed as most-recently-used) or None.

        With a spill tier, a memory miss tries the on-disk file before
        reporting a miss; a successful reload re-enters the memory LRU
        and counts as a hit (the store *did* answer the request).
        """
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                self._store[key] = self._store.pop(key)  # MRU refresh
                self._hits.add(1)
                return entry
        entry = self._spill_load(key)
        if entry is None:
            self._misses.add(1)
            return None
        with self._lock:
            self._insert_locked(key, entry)
            self._hits.add(1)
        return entry

    def insert(self, key: Key, result: CachedResult) -> None:
        """Store ``result`` under ``key``, evicting LRU past the bound.

        Memory eviction never touches spill files — the disk tier exists
        precisely to outlive both the LRU bound and the process.
        """
        with self._lock:
            self._insert_locked(key, result)
        self._spill_write(key, result)

    def _insert_locked(self, key: Key, result: CachedResult) -> None:
        self._store.pop(key, None)  # re-insert = refresh, never double
        self._store[key] = result
        while len(self._store) > self.max_entries:
            self._store.pop(next(iter(self._store)))
            self._evictions.add(1)
        self._entries.set(len(self._store))

    # -- spill tier -----------------------------------------------------------

    def _spill_path(self, key: Key) -> Path:
        digest = hashlib.blake2b("\x1f".join(key).encode(), digest_size=16)
        return self.spill_dir / f"{digest.hexdigest()}.json"

    def _spill_write(self, key: Key, result: CachedResult) -> None:
        if self.spill_dir is None:
            return
        path = self._spill_path(key)
        payload = {"key": list(key), "result": asdict(result)}
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_text(json.dumps(payload) + "\n", encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            return  # a full/read-only disk degrades the tier, not the serve
        self._spill_writes.add(1)

    def _spill_load(self, key: Key) -> CachedResult | None:
        if self.spill_dir is None:
            return None
        try:
            payload = json.loads(self._spill_path(key).read_text(encoding="utf-8"))
            if tuple(payload["key"]) != key:  # filename collision / alien file
                return None
            entry = CachedResult(
                bench_text=str(payload["result"]["bench_text"]),
                n_ands=int(payload["result"]["n_ands"]),
                level=int(payload["result"]["level"]),
                n_ands_before=int(payload["result"]["n_ands_before"]),
                level_before=int(payload["result"]["level_before"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None  # absent or corrupt spill file = plain miss
        self._spill_loads.add(1)
        return entry

    def get(self, g: AIG, script: str) -> CachedResult | None:
        """Convenience: :meth:`key` + :meth:`lookup` in one call."""
        return self.lookup(self.key(g, script))

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: Key) -> bool:
        with self._lock:
            return key in self._store

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @property
    def spill_writes(self) -> int:
        return int(self._spill_writes.value)

    @property
    def spill_loads(self) -> int:
        return int(self._spill_loads.value)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
