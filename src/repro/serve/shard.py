"""Deterministic shard assignment for multi-circuit serving.

A serving run partitions a suite of circuits across a fixed number of
shards; each shard owns one engine pool (worker processes for cut
resynthesis) and one shared classifier service (fused ELF inference
across the shard's circuits).  The assignment is the classic LPT
(longest-processing-time-first) greedy: circuits are ordered by
descending cost estimate and each is placed on the currently lightest
shard.  Every tie — equal costs, equal loads — is broken by name /
lowest shard index, so the plan is a pure function of the suite: the
same suite always produces byte-for-byte the same plan, which makes
serving runs reproducible and lets tests pin shard-local behaviour.

The default cost estimate is the AND count: refactor-family passes sweep
every AND node, so node count is proportional to pass runtime to first
order.  Callers with better priors (e.g. measured runtimes from an
earlier serving run) can pass an explicit cost map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass(frozen=True)
class ShardPlan:
    """An immutable circuit -> shard partition.

    ``shards[i]`` lists the circuit names owned by shard ``i`` in
    assignment order; ``cost`` records the estimate each placement used.
    """

    n_shards: int
    shards: tuple[tuple[str, ...], ...]
    cost: dict[str, int] = field(default_factory=dict)

    def shard_of(self, name: str) -> int:
        """Index of the shard serving ``name``."""
        for index, members in enumerate(self.shards):
            if name in members:
                return index
        raise ReproError(f"circuit {name!r} is not in this plan")

    @property
    def names(self) -> tuple[str, ...]:
        """All circuit names in shard order."""
        return tuple(name for members in self.shards for name in members)

    def load(self, index: int) -> int:
        """Total estimated cost assigned to shard ``index``."""
        return sum(self.cost.get(name, 0) for name in self.shards[index])

    @property
    def imbalance(self) -> float:
        """Heaviest shard load over mean load (1.0 = perfectly balanced)."""
        loads = [self.load(i) for i in range(self.n_shards)]
        mean = sum(loads) / max(1, len(loads))
        return max(loads) / mean if mean > 0 else 1.0


def assign_shards(
    suite: dict[str, object],
    n_shards: int,
    cost: dict[str, int] | None = None,
) -> ShardPlan:
    """LPT-partition ``suite`` (name -> AIG) into at most ``n_shards``.

    Shard count is capped at the suite size so no shard is empty.  The
    result is deterministic: descending cost with names as tie-break,
    each circuit placed on the least-loaded (then lowest-index) shard.
    """
    if n_shards < 1:
        raise ReproError(f"n_shards must be >= 1, got {n_shards}")
    if not suite:
        return ShardPlan(n_shards=0, shards=())
    if cost is None:
        cost = {name: max(1, g.n_ands) for name, g in suite.items()}
    else:
        missing = [name for name in suite if name not in cost]
        if missing:
            raise ReproError(f"cost map is missing circuits: {missing[:5]}")
        cost = {name: max(1, int(cost[name])) for name in suite}
    n_shards = min(n_shards, len(suite))
    order = sorted(suite, key=lambda name: (-cost[name], name))
    members: list[list[str]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for name in order:
        index = min(range(n_shards), key=lambda i: (loads[i], i))
        members[index].append(name)
        loads[index] += cost[name]
    return ShardPlan(
        n_shards=n_shards,
        shards=tuple(tuple(m) for m in members),
        cost=cost,
    )
