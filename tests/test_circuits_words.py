"""Tests for the word-level circuit builder against Python int semantics."""

import pytest

from repro.aig import AIG, check
from repro.circuits.words import Word
from repro.errors import ReproError
from repro.verify import po_truth_tables


def evaluate(g, assignments):
    """Evaluate all POs of g under a dict {pi_index: bool}; returns bits."""
    from repro.aig import cone_truth, full_mask, lit_node

    index = 0
    for i in range(g.n_pis):
        if assignments.get(i, False):
            index |= 1 << i
    outs = []
    tables = po_truth_tables(g)
    for tt in tables:
        outs.append(tt >> index & 1)
    return outs


def word_value(bits):
    return sum(b << i for i, b in enumerate(bits))


def exhaustive_binary_op(build, width, reference):
    """Check a 2-operand word op against a Python reference, exhaustively."""
    g = AIG()
    a = Word.inputs(g, width, "a")
    b = Word.inputs(g, width, "b")
    build(g, a, b).outputs()
    tables = po_truth_tables(g)
    n = 2 * width
    mask = (1 << width) - 1
    for x in range(1 << width):
        for y in range(1 << width):
            index = x | (y << width)
            got = word_value([tt >> index & 1 for tt in tables])
            assert got == reference(x, y), f"x={x} y={y}: {got}"
    check(g)


def test_const_and_inputs():
    g = AIG()
    w = Word.const(g, 0b1011, 4)
    assert [b for b in w.bits] == [1, 1, 0, 1]  # LSB first
    x = Word.inputs(g, 3)
    assert g.n_pis == 3
    assert x.width == 3


def test_add_exhaustive():
    exhaustive_binary_op(
        lambda g, a, b: (a + b), 3, lambda x, y: (x + y) & 0b111
    )


def test_add_with_carry_out():
    g = AIG()
    a = Word.inputs(g, 3, "a")
    b = Word.inputs(g, 3, "b")
    total, carry = a.add_with_carry(b)
    total.outputs()
    g.add_po(carry, "c")
    tables = po_truth_tables(g)
    for x in range(8):
        for y in range(8):
            index = x | (y << 3)
            got = word_value([tt >> index & 1 for tt in tables])
            assert got == x + y


def test_sub_exhaustive():
    exhaustive_binary_op(
        lambda g, a, b: (a - b), 3, lambda x, y: (x - y) & 0b111
    )


def test_mul_exhaustive():
    exhaustive_binary_op(lambda g, a, b: a * b, 3, lambda x, y: x * y)


def test_bitwise_ops():
    exhaustive_binary_op(lambda g, a, b: a & b, 3, lambda x, y: x & y)
    exhaustive_binary_op(lambda g, a, b: a | b, 3, lambda x, y: x | y)
    exhaustive_binary_op(lambda g, a, b: a ^ b, 3, lambda x, y: x ^ y)


def test_invert_and_zext():
    g = AIG()
    a = Word.inputs(g, 3, "a")
    (~a).zext(5).outputs()
    tables = po_truth_tables(g)
    for x in range(8):
        got = word_value([tt >> x & 1 for tt in tables])
        assert got == (~x & 0b111)


def test_comparisons():
    g = AIG()
    a = Word.inputs(g, 3, "a")
    b = Word.inputs(g, 3, "b")
    g.add_po(a.ult(b), "lt")
    g.add_po(a.uge(b), "ge")
    g.add_po(a.eq(b), "eq")
    tables = po_truth_tables(g)
    for x in range(8):
        for y in range(8):
            index = x | (y << 3)
            lt, ge, eq = (tt >> index & 1 for tt in tables)
            assert lt == int(x < y)
            assert ge == int(x >= y)
            assert eq == int(x == y)


def test_reductions_and_is_zero():
    g = AIG()
    a = Word.inputs(g, 4, "a")
    g.add_po(a.is_zero())
    g.add_po(a.reduce_or())
    g.add_po(a.reduce_xor())
    tables = po_truth_tables(g)
    for x in range(16):
        z, o, p = (tt >> x & 1 for tt in tables)
        assert z == int(x == 0)
        assert o == int(x != 0)
        assert p == bin(x).count("1") % 2


def test_mux():
    g = AIG()
    a = Word.inputs(g, 2, "a")
    b = Word.inputs(g, 2, "b")
    s = g.add_pi("s")
    a.mux(s, b).outputs()
    tables = po_truth_tables(g)
    for x in range(4):
        for y in range(4):
            for sel in range(2):
                index = x | (y << 2) | (sel << 4)
                got = word_value([tt >> index & 1 for tt in tables])
                assert got == (y if sel else x)


def test_barrel_shifts():
    g = AIG()
    a = Word.inputs(g, 4, "a")
    amount = Word.inputs(g, 2, "s")
    a.barrel_shift_left(amount).outputs("l")
    a.barrel_shift_right(amount).outputs("r")
    tables = po_truth_tables(g)
    for x in range(16):
        for s in range(4):
            index = x | (s << 4)
            bits = [tt >> index & 1 for tt in tables]
            left = word_value(bits[:4])
            right = word_value(bits[4:])
            assert left == (x << s) & 0xF
            assert right == x >> s


def test_width_mismatch_raises():
    g = AIG()
    a = Word.inputs(g, 3)
    b = Word.inputs(g, 4)
    with pytest.raises(ReproError):
        _ = a & b
    with pytest.raises(ReproError):
        _ = a + b


def test_slice_concat_shift():
    g = AIG()
    a = Word.inputs(g, 4, "a")
    assert a.slice(1, 3).width == 2
    assert a.concat(Word.const(g, 0, 2)).width == 6
    assert a.shifted_left(3).width == 7
    assert a.trunc(2).width == 2
