"""Tests for the session + command-registry flow layer.

Covers the API-redesign guarantees: captured-reference byte-identity of
``run_flow`` across the session rewrite, strict flag validation, script
parsing edge cases, lazy resource creation, shared-executor drop
recording, custom-command registration without touching ``opt/flow.py``,
and the ``python -m repro`` CLI.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.aig.io_bench import read, to_text
from repro.elf import collect_dataset, train_leave_one_out
from repro.engine import ResynthExecutor
from repro.errors import ReproError
from repro.ml import TrainConfig
from repro.opt import (
    COMPRESS2,
    CommandSpec,
    OptSession,
    RESYN2,
    RefactorParams,
    balance,
    canonical_command,
    default_registry,
    run_flow,
)
from repro.serve import max_explicit_workers, needs_classifier, needs_engine_pool

from .util import random_aig

REFERENCES = Path(__file__).parent / "data" / "flow_references.json"


def reference_classifier():
    graphs = [random_aig(7, 120, 4, seed=s, name=f"f{s}") for s in (1, 2)]
    datasets = {g.name: collect_dataset(g) for g in graphs}
    return train_leave_one_out(datasets, "f1", TrainConfig(epochs=3, seed=0))


class TestCapturedReferences:
    """run_flow must be byte-identical to the pre-session flow layer.

    ``tests/data/flow_references.json`` was captured from the if/elif
    implementation (see ``capture_flow_references.py`` next to it) on
    the same deterministic inputs rebuilt here.
    """

    @pytest.fixture(scope="class")
    def references(self):
        return json.loads(REFERENCES.read_text(encoding="utf-8"))

    @pytest.fixture(scope="class")
    def graph(self, references):
        from repro.circuits import layered_random_aig

        g = layered_random_aig(n_pis=12, n_ands=700, seed=7, name="flowref")
        assert (
            hashlib.sha256(to_text(g).encode()).hexdigest()
            == references["input_sha256"]
        ), "reference input drifted; regenerate flow_references.json"
        return g

    @pytest.mark.parametrize("tag", ["resyn2", "compress2", "engine", "sequential"])
    def test_flow_matches_reference(self, tag, graph, references):
        record = references["flows"][tag]
        classifier = reference_classifier() if tag == "engine" else None
        out, report = run_flow(graph.clone(), record["script"], classifier=classifier)
        assert (
            hashlib.sha256(to_text(out).encode()).hexdigest()
            == record["bench_sha256"]
        )
        assert [
            {
                "command": s.command,
                "normalized": s.normalized,
                "n_ands": s.n_ands,
                "level": s.level,
            }
            for s in report.steps
        ] == record["steps"]


class TestStrictFlags:
    def test_rs_rejects_level_flag(self):
        g = random_aig(6, 60, 3, seed=1)
        with pytest.raises(ReproError, match="'rs'.*'-l'"):
            run_flow(g, "rs -l")

    def test_sequential_commands_reject_workers_flag(self):
        g = random_aig(6, 60, 3, seed=1)
        for command in ("rf -w 2", "rw -w 2", "elf -w 2"):
            with pytest.raises(ReproError, match="does not support"):
                run_flow(g.clone(), command)

    def test_unknown_flag_rejected(self):
        g = random_aig(6, 60, 3, seed=1)
        with pytest.raises(ReproError, match="'rw'.*'-x'"):
            run_flow(g, "rw -x")

    def test_stray_argument_rejected(self):
        g = random_aig(6, 60, 3, seed=1)
        with pytest.raises(ReproError, match="unknown argument '3'"):
            run_flow(g, "rf 3")

    def test_supported_flags_still_parse(self):
        g = random_aig(6, 60, 3, seed=2)
        _, report = run_flow(g, "b -l; rw -l; rfz -l; pf -w 1")
        assert [s.normalized for s in report.steps] == [
            "b -l",
            "rw -l",
            "rfz -l",
            "pf -w 1",
        ]


class TestScriptParsingEdgeCases:
    def test_empty_and_whitespace_scripts(self):
        g = random_aig(6, 60, 3, seed=3)
        before = to_text(g)
        for script in ("", "   ", ";;", " ; ;; "):
            out, report = run_flow(g, script)
            assert report.steps == []
            assert to_text(out) == before

    def test_double_semicolons_between_commands(self):
        g = random_aig(6, 60, 3, seed=3)
        _, report = run_flow(g, "b;; rw ;;b")
        assert [s.command for s in report.steps] == ["b", "rw", "b"]

    def test_w_zero_means_auto(self):
        # "-w 0" is explicit spelling for auto: the session default (and
        # then the core count) governs, exactly like omitting -w.
        g = random_aig(7, 120, 4, seed=4)
        _, report = run_flow(g.clone(), "pf -w 0", engine_workers=1)
        assert report.steps[0].detail.workers == 1
        assert report.steps[0].detail.delegated

    def test_w_without_argument(self):
        g = random_aig(6, 60, 3, seed=3)
        with pytest.raises(ReproError, match="-w requires an integer"):
            run_flow(g, "pf -w")
        with pytest.raises(ReproError, match="-w requires an integer"):
            run_flow(g.clone(), "pf -w two")

    def test_unknown_command_names_raw_spelling(self):
        g = random_aig(6, 60, 3, seed=3)
        with pytest.raises(ReproError, match="frobnicate -l"):
            run_flow(g, "b; frobnicate -l")
        # Aliases resolve; near-misses stay raw in the message.
        with pytest.raises(ReproError, match="'fq'"):
            run_flow(g.clone(), "fq")


class TestLazyResources:
    def test_balance_only_script_creates_nothing(self):
        g = random_aig(6, 60, 3, seed=5)
        with OptSession() as session:
            session.run(g, "b; b")
            assert not session.cache_materialized
            assert not session.stats.cache_created
            assert not session.stats.library_created
            assert not session.stats.executor_created

    def test_refactor_demands_cache_rewrite_demands_library(self):
        g = random_aig(6, 60, 3, seed=5)
        with OptSession() as session:
            session.run(g.clone(), "rf")
            assert session.cache_materialized
            assert not session.stats.library_created
        with OptSession() as session:
            session.run(g.clone(), "rw")
            assert session.stats.library_created
            assert not session.cache_materialized

    def test_cache_persists_across_runs_of_one_session(self):
        g = random_aig(7, 150, 4, seed=6)
        with OptSession() as session:
            session.run(g.clone(), "rf")
            cache = session.resynth_cache
            warm = cache.hits_exact
            session.run(g.clone(), "rf")
            assert session.resynth_cache is cache
            assert cache.hits_exact > warm

    def test_closed_session_refuses_runs(self):
        session = OptSession()
        session.close()
        with pytest.raises(ReproError, match="closed"):
            session.run(random_aig(4, 10, 2, seed=0), "b")


class TestDroppedExecutorRecording:
    def test_width_mismatch_drop_is_recorded(self):
        g = random_aig(7, 150, 4, seed=6)
        with ResynthExecutor(2, RefactorParams()) as executor:
            with OptSession(engine_executor=executor) as session:
                _, report = session.run(g.clone(), "pf -w 1; b")
                # The pin still wins (bit-identical sequential mode) ...
                assert report.steps[0].detail.workers == 1
                assert report.steps[0].detail.delegated
                # ... but the discard is no longer silent.
                assert report.steps[0].executor_dropped
                assert not report.steps[1].executor_dropped
                assert session.stats.executors_dropped == 1
                drop = session.stats.dropped_executors[0]
                assert drop.command == "pf -w 1"
                assert drop.pinned_workers == 1
                assert drop.executor_workers == 2
                assert drop.external

    def test_matching_width_is_not_a_drop(self):
        g = random_aig(7, 150, 4, seed=6)
        with ResynthExecutor(2, RefactorParams()) as executor:
            with OptSession(engine_executor=executor) as session:
                _, report = session.run(g.clone(), "pf -w 2")
                assert report.steps[0].detail.workers == 2
                assert not report.steps[0].executor_dropped
                assert session.stats.executors_dropped == 0

    def test_session_owned_pool_drop_recorded(self):
        # The serving scenario: a shard pool warmed wider than a script
        # pin must leave a trace too (external=False marks it owned).
        g = random_aig(7, 150, 4, seed=6)
        with OptSession() as session:
            assert session.warm_engine(2)
            _, report = session.run(g.clone(), "pf -w 1")
            assert report.steps[0].detail.delegated
            assert report.steps[0].executor_dropped
            drop = session.stats.dropped_executors[0]
            assert (drop.pinned_workers, drop.executor_workers) == (1, 2)
            assert not drop.external

    def test_warm_engine_replaces_mismatched_width(self):
        with OptSession() as session:
            assert session.warm_engine(2)
            assert session.engine_executor.workers == 2
            assert session.warm_engine(3)  # re-warm at a new width
            assert session.engine_executor.workers == 3
            assert not session.warm_engine(1)  # width 1: sequential mode

    def test_external_executor_not_closed_by_session(self):
        with ResynthExecutor(2, RefactorParams()) as executor:
            with OptSession(engine_executor=executor) as session:
                session.run(random_aig(6, 60, 3, seed=7), "pf -w 2")
            # session closed; the external pool must still work
            assert executor.run([(0b1000, 2)])


class TestCustomCommandRegistration:
    def test_register_and_run_without_touching_flow_py(self):
        calls = []

        def execute(g, ctx, flags):
            calls.append((flags.zero_cost, flags.preserve_levels))
            return balance(g), {"custom": True}

        registry = default_registry().copy()
        registry.register(
            CommandSpec(
                name="shuffle",
                execute=execute,
                aliases=("sh",),
                zero_cost_pair=True,
                supports_levels=True,
                help="synthetic test operator",
            )
        )
        g = random_aig(6, 60, 3, seed=8)
        with OptSession(registry=registry) as session:
            out, report = session.run(g, "b; shuffle -l; shz; sh")
        assert calls == [(False, True), (True, False), (False, False)]
        assert [s.normalized for s in report.steps] == [
            "b",
            "shuffle -l",
            "shufflez",
            "shuffle",
        ]
        assert report.steps[1].detail == {"custom": True}
        # run_flow accepts the registry too — still no flow.py edits.
        _, report = run_flow(out, "sh", registry=registry)
        assert report.steps[0].normalized == "shuffle"
        # ... and the default registry is untouched.
        with pytest.raises(ReproError, match="shuffle"):
            run_flow(out, "shuffle")

    def test_duplicate_spellings_rejected(self):
        registry = default_registry().copy()
        with pytest.raises(ReproError, match="already registered"):
            registry.register(
                CommandSpec(name="rf", execute=lambda g, ctx, flags: (g, None))
            )
        with pytest.raises(ReproError, match="'f'"):
            registry.register(
                CommandSpec(
                    name="fanout",
                    aliases=("f",),
                    zero_cost_pair=True,
                    execute=lambda g, ctx, flags: (g, None),
                )
            )

    def test_registered_requirements_drive_serving_helpers(self):
        registry = default_registry().copy()
        registry.register(
            CommandSpec(
                name="xelf",
                execute=lambda g, ctx, flags: (g, None),
                needs_classifier=True,
                needs_engine_pool=True,
                supports_workers=True,
            )
        )
        assert needs_classifier("b; xelf", registry=registry)
        assert needs_engine_pool("xelf -w 3", registry=registry)
        assert max_explicit_workers("xelf -w 3", registry=registry) == 3
        assert not needs_classifier("b; xelf")  # default registry untouched

    def test_classifier_requirement_enforced_declaratively(self):
        g = random_aig(4, 10, 2, seed=0)
        with pytest.raises(ReproError, match="'elfz' requires a classifier"):
            run_flow(g, "elfz")

    def test_canonical_command_follows_registry(self):
        registry = default_registry().copy()
        registry.register(
            CommandSpec(
                name="shuffle",
                execute=lambda g, ctx, flags: (g, None),
                aliases=("sh",),
            )
        )
        assert canonical_command("sh", registry=registry) == "shuffle"
        assert canonical_command("sh") == "sh"  # unknown there: unchanged


class TestCli:
    def run_cli(self, *args, expect=0):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == expect, proc.stderr
        return proc

    def test_flow_runs_end_to_end(self, tmp_path):
        from repro.verify import equivalent

        g = random_aig(7, 150, 4, seed=9, name="cli")
        inp = tmp_path / "in.bench"
        outp = tmp_path / "out.bench"
        inp.write_text(to_text(g), encoding="utf-8")
        proc = self.run_cli("b; rw; rf", str(inp), "-o", str(outp), "-w", "1")
        out = read(outp)
        assert equivalent(g, out)
        assert out.n_ands <= g.n_ands
        assert "flow: b; rw; rf" in proc.stderr  # report table on stderr
        # Byte-identical to the API path (same parsed input: the graph
        # name round-trips through the file, not the in-memory object).
        api_out, _ = run_flow(read(inp), "b; rw; rf", engine_workers=1)
        assert to_text(api_out) == outp.read_text(encoding="utf-8")

    def test_named_script_to_stdout(self, tmp_path):
        g = random_aig(6, 60, 3, seed=10, name="cli2")
        inp = tmp_path / "in.bench"
        inp.write_text(to_text(g), encoding="utf-8")
        proc = self.run_cli("resyn2", str(inp), "-q")
        api_out, _ = run_flow(read(inp), RESYN2)
        assert proc.stdout == to_text(api_out)
        assert proc.stderr == ""  # -q silences the report

    def test_bad_command_exits_nonzero(self, tmp_path):
        g = random_aig(4, 10, 2, seed=0)
        inp = tmp_path / "in.bench"
        inp.write_text(to_text(g), encoding="utf-8")
        proc = self.run_cli("frobnicate", str(inp), expect=2)
        assert "frobnicate" in proc.stderr

    def test_missing_input_exits_nonzero(self, tmp_path):
        proc = self.run_cli("b", str(tmp_path / "nope.bench"), expect=2)
        assert "repro:" in proc.stderr


class TestSessionServing:
    """Session semantics the serving layer depends on."""

    def test_per_run_classifier_override(self):
        clf = reference_classifier()
        g = random_aig(7, 120, 4, seed=11)
        with OptSession() as session:  # no session-level classifier
            with pytest.raises(ReproError, match="requires a classifier"):
                session.run(g.clone(), "elf")
            out, report = session.run(g.clone(), "elf", classifier=clf)
            assert report.steps[0].detail.pruned >= 0
        direct, _ = run_flow(g.clone(), "elf", classifier=clf)
        assert to_text(direct) == to_text(out)

    def test_per_run_cache_isolates_runs(self):
        g = random_aig(7, 150, 4, seed=14)
        with OptSession(per_run_cache=True) as session:
            out1, _ = session.run(g.clone(), "rf; rfz")
            assert not session.cache_materialized  # session-wide store unused
            out2, _ = session.run(g.clone(), "rf; rfz")
        assert to_text(out1) == to_text(out2)
        # Identical to the shared-cache session output (exact hits are
        # bit-identical; only cross-run *NPN* reuse is content-affecting).
        with OptSession() as session:
            session.run(g.clone(), "rf; rfz")
            warm, _ = session.run(g.clone(), "rf; rfz")
        assert to_text(warm) == to_text(out1)

    def test_own_pool_width_sizes_prw(self):
        # A warmed session pool acts as a width source for prw, exactly
        # like an attached external executor always did (rewrite never
        # dispatches to it).
        g = random_aig(7, 150, 4, seed=15)
        with OptSession() as session:
            assert session.warm_engine(2)
            _, report = session.run(g.clone(), "prw")
            assert report.steps[0].detail.workers == 2
            assert not report.steps[0].detail.delegated

    def test_compress2_known_script(self):
        g = random_aig(7, 150, 4, seed=12)
        out, report = run_flow(g.clone(), COMPRESS2)
        assert len(report.steps) == 10
        assert all(s.normalized.endswith("-l") for s in report.steps)
        assert out.max_level() <= g.max_level()
