"""Tests for the benchmark suites (EPFL-like, industrial, synthetic)."""

import pytest

from repro.aig import check
from repro.circuits import (
    EPFL_NAMES,
    SYNTHETIC_SIZES,
    epfl_circuit,
    epfl_suite,
    industrial_design,
    industrial_profiles,
    random_aig,
    synthetic_circuit,
)
from repro.errors import ReproError


class TestEpflSuite:
    def test_tiny_suite_builds_and_validates(self):
        suite = epfl_suite("tiny")
        assert set(suite) == set(EPFL_NAMES)
        for name, g in suite.items():
            assert g.name == name
            assert g.n_ands > 20
            check(g)

    def test_interface_structure_matches_paper(self):
        suite = epfl_suite("tiny")
        # div: 2w PIs -> 2w POs; sqrt: 2w PIs -> w POs; square: w -> 2w.
        assert suite["div"].n_pis == suite["div"].n_pos
        assert suite["sqrt"].n_pis == 2 * suite["sqrt"].n_pos
        assert 2 * suite["square"].n_pis == suite["square"].n_pos
        assert suite["multiplier"].n_pis == suite["multiplier"].n_pos

    def test_depth_character(self):
        suite = epfl_suite("tiny")
        # The restoring circuits are the deep ones, as in Table I.
        assert suite["div"].max_level() > suite["multiplier"].max_level()
        assert suite["sqrt"].max_level() > suite["square"].max_level()

    def test_unknown_names_rejected(self):
        with pytest.raises(ReproError):
            epfl_circuit("adder")
        with pytest.raises(ReproError):
            epfl_circuit("div", scale="gigantic")

    def test_scales_monotone(self):
        small = epfl_circuit("multiplier", "tiny")
        big = epfl_circuit("multiplier", "default")
        assert big.n_ands > 2 * small.n_ands


class TestIndustrial:
    def test_profiles_cover_ten_designs(self):
        profiles = industrial_profiles()
        assert len(profiles) == 10
        assert [p.index for p in profiles] == list(range(1, 11))

    def test_design_determinism(self):
        a = industrial_design(3)
        b = industrial_design(3)
        assert a.n_ands == b.n_ands
        assert a.n_pis == b.n_pis
        assert a.pos == b.pos

    def test_design_shape(self):
        g = industrial_design(8)
        check(g)
        profile = industrial_profiles()[7]
        assert g.max_level() <= profile.max_level + 15
        assert g.n_pis > 50  # PI-heavy, like Table II

    def test_size_factor(self):
        small = industrial_design(4, size_factor=0.5)
        full = industrial_design(4, size_factor=1.0)
        assert small.n_ands < full.n_ands

    def test_index_bounds(self):
        with pytest.raises(ValueError):
            industrial_design(0)
        with pytest.raises(ValueError):
            industrial_design(11)


class TestSynthetic:
    def test_scaled_size(self):
        g = synthetic_circuit("sixteen", scale_divisor=4000)
        expected = SYNTHETIC_SIZES["sixteen"] // 4000
        assert 0.8 * expected < g.n_ands < 1.4 * expected
        check(g)

    def test_determinism(self):
        a = synthetic_circuit("twenty", scale_divisor=8000)
        b = synthetic_circuit("twenty", scale_divisor=8000)
        assert a.n_ands == b.n_ands

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            synthetic_circuit("thirty")

    def test_no_dangling_nodes(self):
        g = synthetic_circuit("sixteen", scale_divisor=8000)
        for node in g.and_ids():
            assert g.n_refs(node) > 0, f"dangling node {node}"


class TestRandomAig:
    def test_locality_parameter(self):
        uniform = random_aig(20, 400, 10, seed=1, locality=0)
        local = random_aig(20, 400, 10, seed=1, locality=30)
        check(uniform)
        check(local)
        assert local.max_level() > 5  # locality produces chained structure
        # Narrow windows saturate under strashing, so these stay small.
        assert uniform.n_ands > 30 and local.n_ands > 30
