"""Tests for the cube/SOP representation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FactoringError
from repro.tt import (
    check_sop,
    cube_from_lits,
    cube_is_contradictory,
    cube_lits,
    cube_size,
    cube_tt,
    lit_index,
    sop_common_cube,
    sop_is_cube_free,
    sop_literal_count,
    sop_literal_frequencies,
    sop_make_cube_free,
    sop_to_string,
    sop_tt,
)
from repro.aig import full_mask, var_mask


def lits(*pairs):
    return cube_from_lits([lit_index(v, neg) for v, neg in pairs])


def test_cube_roundtrip():
    cube = lits((0, False), (2, True))
    assert cube_lits(cube) == [lit_index(0, False), lit_index(2, True)]
    assert cube_size(cube) == 2


def test_cube_tt():
    n = 3
    cube = lits((0, False), (1, True))  # a & !b
    expected = var_mask(0, n) & ~var_mask(1, n) & full_mask(n)
    assert cube_tt(cube, n) == expected
    assert cube_tt(0, n) == full_mask(n)  # empty cube = const 1


def test_sop_tt_or_of_cubes():
    n = 2
    sop = [lits((0, False)), lits((1, False))]  # a + b
    assert sop_tt(sop, n) == (var_mask(0, n) | var_mask(1, n))
    assert sop_tt([], n) == 0


def test_contradictory_cube_detection():
    assert cube_is_contradictory(lits((1, False), (1, True)))
    assert not cube_is_contradictory(lits((1, False), (2, True)))


def test_literal_statistics():
    sop = [lits((0, False), (1, False)), lits((0, False), (2, True))]
    assert sop_literal_count(sop) == 4
    freq = sop_literal_frequencies(sop)
    assert freq[lit_index(0, False)] == 2
    assert freq[lit_index(1, False)] == 1


def test_common_cube_and_cube_free():
    sop = [lits((0, False), (1, False)), lits((0, False), (2, False))]
    common = sop_common_cube(sop)
    assert cube_lits(common) == [lit_index(0, False)]
    assert not sop_is_cube_free(sop)
    cube, rest = sop_make_cube_free(sop)
    assert cube == common
    assert sop_is_cube_free(rest)


def test_to_string():
    sop = [lits((0, False), (1, True)), lits((2, False))]
    assert sop_to_string(sop, 3) == "c + a!b"
    assert sop_to_string([], 3) == "0"
    assert sop_to_string([0], 3) == "1"


def test_check_sop_rejects_bad_cubes():
    with pytest.raises(FactoringError):
        check_sop([lits((5, False))], 3)
    with pytest.raises(FactoringError):
        check_sop([lits((1, False), (1, True))], 3)


@given(st.lists(st.integers(0, 2**6 - 1).filter(
    lambda c: not cube_is_contradictory(c)), max_size=6))
def test_common_cube_divides_all(cubes):
    common = sop_common_cube(cubes)
    for cube in cubes:
        assert cube & common == common
