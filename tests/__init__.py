"""Test package marker: the suite uses relative imports (``from .util
import ...``), which need ``tests`` to be a proper package."""
