"""Tests for dataset handling and the training loop."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml import CutDataset, DatasetCollector, TrainConfig, train_classifier
from repro.cuts import CutFeatures
from repro.opt import refactor

from .util import random_aig


def synthetic_dataset(n=600, seed=0, separation=3.0):
    """Linearly separable-ish 6-d dataset with ~15% positives."""
    rng = np.random.default_rng(seed)
    y = (rng.random(n) < 0.15).astype(float)
    x = rng.normal(size=(n, 6))
    x[y > 0.5, 0] += separation  # feature 0 carries the signal
    x[y > 0.5, 4] -= separation
    return CutDataset(x, y, "synthetic")


class TestDataset:
    def test_shapes_and_validation(self):
        with pytest.raises(TrainingError):
            CutDataset(np.zeros((3, 5)), np.zeros(3))
        with pytest.raises(TrainingError):
            CutDataset(np.zeros((3, 6)), np.zeros(2))
        ds = CutDataset(np.zeros((3, 6)), np.array([1.0, 0, 0]))
        assert len(ds) == 3
        assert ds.n_positive == 1
        assert ds.imbalance == pytest.approx(1 / 3)

    def test_concatenate(self):
        a = CutDataset(np.zeros((2, 6)), np.zeros(2), "a")
        b = CutDataset(np.ones((3, 6)), np.ones(3), "b")
        merged = CutDataset.concatenate([a, b])
        assert len(merged) == 5
        assert merged.n_positive == 3
        with pytest.raises(TrainingError):
            CutDataset.concatenate([])

    def test_standardization(self):
        ds = synthetic_dataset()
        std_ds, mean, std = ds.standardized()
        assert np.allclose(std_ds.x.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(std_ds.x.std(axis=0), 1, atol=1e-9)
        assert mean.shape == (6,) and std.shape == (6,)

    def test_standardization_constant_feature(self):
        x = np.zeros((10, 6))
        ds = CutDataset(x, np.zeros(10))
        _, _mean, std = ds.standardized()
        assert np.all(std == 1.0)  # floored, no division by zero

    def test_split(self):
        ds = synthetic_dataset(100)
        train, val = ds.split(0.8, seed=1)
        assert len(train) == 80 and len(val) == 20

    def test_save_load_roundtrip(self, tmp_path):
        ds = synthetic_dataset(50)
        path = tmp_path / "ds.npz"
        ds.save(path)
        loaded = CutDataset.load(path)
        assert np.array_equal(loaded.x, ds.x)
        assert np.array_equal(loaded.y, ds.y)
        assert loaded.name == ds.name

    def test_collector_integration(self):
        g = random_aig(7, 120, 4, seed=3)
        collector = DatasetCollector()
        stats = refactor(g, collector=collector)
        ds = collector.dataset("rand")
        assert len(ds) == stats.nodes_visited
        assert ds.n_positive == stats.commits
        assert ds.x.min() >= 0  # all features are counts/levels

    def test_collector_requires_features(self):
        collector = DatasetCollector()
        with pytest.raises(TrainingError):
            collector(None, True)

    def test_empty_collector(self):
        ds = DatasetCollector().dataset()
        assert len(ds) == 0


class TestTraining:
    def test_learns_separable_data(self):
        ds = synthetic_dataset(800, seed=1)
        result = train_classifier(ds, TrainConfig(epochs=15, seed=0))
        fused = result.fused_model()
        probs = 1 / (1 + np.exp(-fused.forward_logits(ds.x)))
        preds = probs >= 0.5
        labels = ds.y > 0.5
        recall = (preds & labels).sum() / max(1, labels.sum())
        accuracy = (preds == labels).mean()
        assert recall > 0.85
        assert accuracy > 0.8

    def test_history_and_early_stopping(self):
        ds = synthetic_dataset(400)
        config = TrainConfig(epochs=30, patience=3, seed=2)
        result = train_classifier(ds, config)
        assert 1 <= len(result.history) <= 30
        assert result.best_epoch >= 0
        assert all("val_loss" in h for h in result.history)

    def test_rejects_tiny_dataset(self):
        with pytest.raises(TrainingError):
            train_classifier(CutDataset(np.zeros((2, 6)), np.zeros(2)))

    def test_alternative_losses_run(self):
        ds = synthetic_dataset(300)
        for loss in ("focal", "class_balanced"):
            result = train_classifier(ds, TrainConfig(epochs=3, loss=loss))
            assert len(result.history) >= 1

    def test_deterministic_given_seed(self):
        ds = synthetic_dataset(300)
        r1 = train_classifier(ds, TrainConfig(epochs=3, seed=5))
        r2 = train_classifier(ds, TrainConfig(epochs=3, seed=5))
        assert np.allclose(
            r1.model.weights[0], r2.model.weights[0]
        )
