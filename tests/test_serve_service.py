"""Tests for the production serve front: shard processes + service.

Covers the contracts the service is built on: `serve_suite_procs`
results are byte-identical to blocking derivation at ``workers=1``
(cold, warm-through-cache, and across an injected shard-process kill
with only that shard's circuits re-run), and the asyncio service
applies admission control and typed validation before any shard sees a
request.
"""

import asyncio
import multiprocessing
import os
import time

import pytest

from repro import obs
from repro.aig.io_bench import to_text
from repro.harness import serve_throughput
from repro.opt import run_flow
from repro.resilience import faults
from repro.serve import ResultStore, ServeParams, serve_suite_procs
from repro.serve.service import (
    OptimizeService,
    ServiceConfig,
    request,
    run_service,
)

from .util import random_aig

FLOW = "b; rf"


def small_suite(n=4, seed0=70):
    return {
        f"c{i}": random_aig(6, 80 + 20 * i, 3, seed=seed0 + i, name=f"c{i}")
        for i in range(n)
    }


def blocking_texts(suite, flow=FLOW):
    out = {}
    for name, g in suite.items():
        result, _ = run_flow(g.clone(), flow)
        out[name] = to_text(result)
    return out


class TestServeSuiteProcs:
    def test_byte_identical_to_blocking(self):
        suite = small_suite()
        report = serve_suite_procs(suite, ServeParams(flow=FLOW, n_shards=2, workers=1))
        expected = blocking_texts(suite)
        assert sorted(r.name for r in report.results) == sorted(suite)
        for r in report.results:
            assert r.ok and not r.cached
            assert r.bench_text == expected[r.name], r.name

    def test_warm_pass_serves_every_circuit_from_cache(self):
        suite = small_suite()
        store = ResultStore()
        params = ServeParams(flow=FLOW, n_shards=2, workers=1)
        cold = serve_suite_procs(suite, params, store=store)
        warm = serve_suite_procs(suite, params, store=store)
        cold_text = {r.name: r.bench_text for r in cold.results}
        assert all(not r.cached for r in cold.results)
        for r in warm.results:
            assert r.cached and r.shard == -1
            assert r.bench_text == cold_text[r.name]
        assert store.hits == len(suite) and store.misses == len(suite)

    def test_shard_kill_recovers_byte_identical(self):
        suite = small_suite()
        params = ServeParams(flow=FLOW, n_shards=2, workers=1)
        clean = {r.name: r.bench_text for r in serve_suite_procs(suite, params).results}

        metrics = obs.metrics()
        deaths0 = metrics.total("serve_shard_deaths_total")
        respawns0 = metrics.total("serve_shard_respawns_total")
        degraded0 = metrics.total("engine_degradations_total")
        # A *persistent* kill: the shard process dies on every arrival of
        # c2, respawn included, so the retry budget must exhaust and the
        # supervisor must degrade that shard's leftovers in-process (the
        # fault site fires in shard children only — that is what
        # guarantees termination).
        with faults.injected("shard.circuit=kill#circuit=c2"):
            report = serve_suite_procs(suite, params)

        assert sorted(r.name for r in report.results) == sorted(suite)
        for r in report.results:
            assert r.ok, (r.name, r.error)
            assert r.bench_text == clean[r.name], r.name
        assert metrics.total("serve_shard_deaths_total") - deaths0 >= 2
        assert metrics.total("serve_shard_respawns_total") - respawns0 >= 1
        assert metrics.total("engine_degradations_total") - degraded0 >= 1

    def test_concurrent_shards_audit_through_cache(self):
        suite = small_suite()
        store = ResultStore()
        cold_rows, _ = serve_throughput(
            suite, flow=FLOW, n_shards=2, workers=1, store=store
        )
        warm_rows, _ = serve_throughput(
            suite, flow=FLOW, n_shards=2, workers=1, store=store
        )
        assert all(row.identical for row in cold_rows)
        assert all(row.identical and row.cached for row in warm_rows)


class TestServiceValidation:
    """Protocol-level checks that never need a running shard."""

    def _optimize(self, service, message):
        return asyncio.run(service._optimize_inner(message))

    def test_overload_rejection_is_typed(self):
        service = OptimizeService(ServiceConfig(max_pending=0))
        before = obs.metrics().total("serve_rejected_total")
        bench = to_text(random_aig(5, 30, 2, seed=1))
        response = self._optimize(service, {"op": "optimize", "bench": bench})
        assert not response["ok"]
        assert response["error"]["type"] == "overloaded"
        assert response["error"]["limit"] == 0
        assert obs.metrics().total("serve_rejected_total") - before == 1

    def test_missing_bench_is_bad_request(self):
        service = OptimizeService(ServiceConfig())
        response = self._optimize(service, {"op": "optimize"})
        assert not response["ok"] and response["error"]["type"] == "bad_request"

    def test_unknown_command_is_bad_script(self):
        service = OptimizeService(ServiceConfig())
        bench = to_text(random_aig(5, 30, 2, seed=2))
        response = self._optimize(
            service, {"op": "optimize", "bench": bench, "script": "frobnicate"}
        )
        assert not response["ok"] and response["error"]["type"] == "bad_script"

    def test_classifier_script_is_unsupported(self):
        service = OptimizeService(ServiceConfig())
        bench = to_text(random_aig(5, 30, 2, seed=3))
        response = self._optimize(
            service, {"op": "optimize", "bench": bench, "script": "elf"}
        )
        assert not response["ok"] and response["error"]["type"] == "unsupported"

    def test_unknown_op(self):
        service = OptimizeService(ServiceConfig())
        response = asyncio.run(service._dispatch({"op": "nope"}))
        assert not response["ok"] and response["error"]["type"] == "unknown_op"


@pytest.mark.slow
class TestServiceEndToEnd:
    def test_miss_then_byte_identical_hit_over_socket(self, tmp_path):
        socket_path = str(tmp_path / "serve.sock")
        config = ServiceConfig(
            socket_path=socket_path, script=FLOW, n_shards=1, workers=1
        )
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=run_service, args=(config,))
        proc.start()
        g = random_aig(6, 90, 3, seed=5, name="e2e")
        bench = to_text(g)
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                assert proc.is_alive(), "service process exited early"
                if os.path.exists(socket_path):
                    try:
                        if request(socket_path, {"op": "ping"}, timeout=2.0).get("ok"):
                            break
                    except OSError:
                        pass
                time.sleep(0.05)
            else:
                pytest.fail("service did not become ready")

            first = request(socket_path, {"op": "optimize", "name": "e2e", "bench": bench})
            assert first["ok"] and first["cached"] is False
            expected, _ = run_flow(g.clone(), FLOW)
            assert first["bench"] == to_text(expected)

            second = request(socket_path, {"op": "optimize", "name": "e2e", "bench": bench})
            assert second["ok"] and second["cached"] is True
            assert second["bench"] == first["bench"]

            stats = request(socket_path, {"op": "stats"})
            assert stats["cache"]["hits"] == 1 and stats["cache"]["misses"] == 1

            metrics = request(socket_path, {"op": "metrics"})
            assert "serve_cache_hits_total" in metrics["text"]

            request(socket_path, {"op": "shutdown"})
            proc.join(timeout=15)
            assert proc.exitcode == 0
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join()
