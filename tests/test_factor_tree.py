"""Tests for factored-form trees."""

from repro.factor import FactorTree
from repro.tt import cube_from_lits, lit_index
from repro.aig import full_mask, var_mask


def test_literal_tree():
    t = FactorTree.lit(2, negative=True)
    assert t.n_literals() == 1
    assert t.support() == {2}
    n = 3
    assert t.eval_tt(n) == (~var_mask(2, n) & full_mask(n))
    assert t.to_string() == "!c"


def test_constants():
    assert FactorTree.const0().eval_tt(2) == 0
    assert FactorTree.const1().eval_tt(2) == 0b1111
    assert FactorTree.const0().n_literals() == 0


def test_and_or_semantics():
    n = 2
    a, b = FactorTree.lit(0), FactorTree.lit(1)
    assert FactorTree.and_([a, b]).eval_tt(n) == 0b1000
    assert FactorTree.or_([a, b]).eval_tt(n) == 0b1110


def test_flattening_and_constant_folding():
    a, b, c = FactorTree.lit(0), FactorTree.lit(1), FactorTree.lit(2)
    nested = FactorTree.and_([a, FactorTree.and_([b, c])])
    assert len(nested.children) == 3
    assert FactorTree.and_([a, FactorTree.const1()]) == a
    assert FactorTree.and_([a, FactorTree.const0()]).kind == "const0"
    assert FactorTree.or_([a, FactorTree.const1()]).kind == "const1"
    assert FactorTree.or_([a, FactorTree.const0()]) == a
    assert FactorTree.and_([]).kind == "const1"
    assert FactorTree.or_([]).kind == "const0"


def test_from_cube_and_sop():
    n = 3
    cube = cube_from_lits([lit_index(0, False), lit_index(1, True)])
    t = FactorTree.from_cube(cube)
    assert t.n_literals() == 2
    assert t.eval_tt(n) == (var_mask(0, n) & ~var_mask(1, n) & full_mask(n))
    sop = FactorTree.from_sop([cube, cube_from_lits([lit_index(2, False)])])
    assert sop.kind == "or"
    assert sop.n_literals() == 3
    assert FactorTree.from_cube(0).kind == "const1"
    assert FactorTree.from_sop([]).kind == "const0"


def test_to_string():
    a, b, c = FactorTree.lit(0), FactorTree.lit(1, True), FactorTree.lit(2)
    t = FactorTree.or_([FactorTree.and_([a, b]), c])
    assert t.to_string() == "a!b + c"
    t2 = FactorTree.and_([FactorTree.or_([a, c]), b])
    assert t2.to_string() == "(a + c)!b"
