"""Tests for k-feasible cut enumeration."""

from repro.aig import AIG, cone_truth, lit_node
from repro.cuts import cut_cone, enumerate_cuts, node_cuts

from .util import random_aig


def test_trivial_cuts_present():
    g = random_aig(5, 20, 2, seed=0)
    cuts = enumerate_cuts(g, k=4)
    for node in g.and_ids():
        assert frozenset({node}) in cuts[node]
    for pi in g.pis:
        assert cuts[pi] == [frozenset({pi})]


def test_fanin_cut_present():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    g.add_po(y)
    cuts = enumerate_cuts(g, k=4)
    ny = lit_node(y)
    assert frozenset({lit_node(x), lit_node(c)}) in cuts[ny]
    assert frozenset({lit_node(a), lit_node(b), lit_node(c)}) in cuts[ny]


def test_cut_size_bounded():
    g = random_aig(8, 80, 4, seed=2)
    for k in (3, 4, 5):
        cuts = enumerate_cuts(g, k=k)
        for node, node_cut_list in cuts.items():
            for cut in node_cut_list:
                assert len(cut) <= k


def test_no_dominated_cuts():
    g = random_aig(7, 60, 3, seed=4)
    cuts = enumerate_cuts(g, k=4, max_cuts=100)
    for node in g.and_ids():
        nontrivial = node_cuts(g, node, cuts)
        for i, c1 in enumerate(nontrivial):
            for c2 in nontrivial[i + 1 :]:
                assert not (c1 < c2 or c2 < c1)


def test_cuts_are_real_cuts():
    """Truth table over every enumerated cut must be computable."""
    g = random_aig(6, 50, 3, seed=6)
    cuts = enumerate_cuts(g, k=4)
    for node in g.and_ids()[:25]:
        for cut in node_cuts(g, node, cuts):
            tt = cone_truth(g, node, sorted(cut))
            assert 0 <= tt < (1 << (1 << len(cut)))


def test_cut_cone():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    g.add_po(y)
    cone = cut_cone(g, lit_node(y), frozenset({lit_node(a), lit_node(b), lit_node(c)}))
    assert cone == sorted([lit_node(x), lit_node(y)])


def test_max_cuts_truncation():
    g = random_aig(8, 80, 4, seed=8)
    cuts = enumerate_cuts(g, k=4, max_cuts=3)
    for node in g.and_ids():
        # trivial cut + at most 3 merged cuts
        assert len(cuts[node]) <= 4
