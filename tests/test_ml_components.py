"""Tests for losses, optimizers, schedule, mixup, sampler, metrics."""

import math

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml import (
    Adam,
    SGD,
    CosineAnnealingWarmRestarts,
    WeightedRandomSampler,
    bce_with_logits,
    class_balanced_weights,
    confusion,
    focal_loss_with_logits,
    mixup_batch,
    threshold_for_recall,
)


class TestLosses:
    def test_bce_known_values(self):
        logits = np.array([0.0, 0.0])
        targets = np.array([1.0, 0.0])
        loss, grad = bce_with_logits(logits, targets)
        assert abs(loss - math.log(2)) < 1e-12
        assert np.allclose(grad, [(0.5 - 1) / 2, 0.5 / 2])

    def test_bce_gradient_direction(self):
        logits = np.array([2.0])
        _, grad_pos = bce_with_logits(logits, np.array([1.0]))
        _, grad_neg = bce_with_logits(logits, np.array([0.0]))
        assert grad_pos[0] < 0  # push logit up for positives
        assert grad_neg[0] > 0

    def test_bce_weights(self):
        logits = np.array([1.0, 1.0])
        targets = np.array([1.0, 1.0])
        loss_u, _ = bce_with_logits(logits, targets)
        loss_w, _ = bce_with_logits(logits, targets, np.array([2.0, 2.0]))
        assert abs(loss_w - 2 * loss_u) < 1e-12

    def test_bce_validation(self):
        with pytest.raises(TrainingError):
            bce_with_logits(np.zeros(3), np.zeros(2))
        with pytest.raises(TrainingError):
            bce_with_logits(np.zeros(0), np.zeros(0))

    def test_bce_extreme_logits_stable(self):
        loss, grad = bce_with_logits(
            np.array([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss) and np.all(np.isfinite(grad))
        assert loss < 1e-6

    def test_focal_reduces_easy_example_weight(self):
        easy = focal_loss_with_logits(np.array([5.0]), np.array([1.0]))[0]
        hard = focal_loss_with_logits(np.array([-5.0]), np.array([1.0]))[0]
        assert hard > 100 * easy

    def test_focal_gradient_finite_difference(self):
        logits = np.array([0.3, -0.7, 1.2])
        targets = np.array([1.0, 0.0, 1.0])
        _, grad = focal_loss_with_logits(logits, targets)
        eps = 1e-6
        for i in range(3):
            up = logits.copy()
            up[i] += eps
            down = logits.copy()
            down[i] -= eps
            numeric = (
                focal_loss_with_logits(up, targets)[0]
                - focal_loss_with_logits(down, targets)[0]
            ) / (2 * eps)
            assert abs(numeric - grad[i]) < 1e-5

    def test_class_balanced_weights_shape(self):
        labels = np.array([1.0] + [0.0] * 99)
        weights = class_balanced_weights(labels)
        assert weights.shape == labels.shape
        assert weights[0] > weights[1]  # minority upweighted


class TestOptimizers:
    def test_adam_minimizes_quadratic(self):
        param = np.array([5.0])
        opt = Adam([param], lr=0.1)
        for _ in range(500):
            opt.step([2 * param])  # d/dx x^2
        assert abs(param[0]) < 1e-2

    def test_sgd_with_momentum(self):
        param = np.array([5.0])
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(300):
            opt.step([2 * param])
        assert abs(param[0]) < 1e-2

    def test_length_mismatch(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(TrainingError):
            opt.step([np.zeros(2), np.zeros(2)])


class TestSchedule:
    def test_peak_and_trough(self):
        s = CosineAnnealingWarmRestarts(lr_max=0.1, t0=10)
        assert abs(s.lr_at(0) - 0.1) < 1e-12
        assert s.lr_at(9.999) < 0.002
        # Warm restart: back to max at the cycle boundary.
        assert abs(s.lr_at(10) - 0.1) < 1e-12

    def test_t_mult_stretches_cycles(self):
        s = CosineAnnealingWarmRestarts(lr_max=1.0, t0=4, t_mult=2)
        # cycles: [0,4), [4,12), [12,28)
        assert abs(s.lr_at(4) - 1.0) < 1e-12
        assert abs(s.lr_at(12) - 1.0) < 1e-12
        assert s.lr_at(8) == pytest.approx(0.5, abs=1e-9)

    def test_monotone_within_cycle(self):
        s = CosineAnnealingWarmRestarts(lr_max=0.1, t0=10)
        values = [s.lr_at(e) for e in np.linspace(0, 9.99, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(TrainingError):
            CosineAnnealingWarmRestarts(0.1, t0=0)
        s = CosineAnnealingWarmRestarts(0.1)
        with pytest.raises(TrainingError):
            s.lr_at(-1)


class TestMixup:
    def test_convex_combination(self):
        rng = np.random.default_rng(0)
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        xm, ym = mixup_batch(x, y, alpha=1.0, rng=rng)
        assert np.all((xm >= 0) & (xm <= 1))
        assert np.all((ym >= 0) & (ym <= 1))

    def test_disabled_alpha(self):
        x = np.arange(6, dtype=float).reshape(3, 2)
        y = np.array([0.0, 1.0, 0.0])
        xm, ym = mixup_batch(x, y, alpha=0.0)
        assert np.array_equal(xm, x) and np.array_equal(ym, y)

    def test_major_share_stays_original(self):
        rng = np.random.default_rng(3)
        x = np.eye(4)
        y = np.array([1.0, 0.0, 0.0, 0.0])
        xm, _ = mixup_batch(x, y, alpha=0.4, rng=rng)
        # lam >= 0.5 guaranteed: diagonal dominates.
        assert np.all(np.diag(xm) >= 0.5 - 1e-12)

    def test_validation(self):
        with pytest.raises(TrainingError):
            mixup_batch(np.zeros((3, 2)), np.zeros(2))


class TestSampler:
    def test_balances_classes(self):
        labels = np.array([1.0] * 10 + [0.0] * 990)
        sampler = WeightedRandomSampler(labels, batch_size=64, seed=0)
        positives = 0
        total = 0
        for batch in sampler.epoch():
            positives += int((labels[batch] > 0.5).sum())
            total += len(batch)
        fraction = positives / total
        assert 0.35 < fraction < 0.65  # ~balanced despite 1% base rate

    def test_epoch_batch_count(self):
        sampler = WeightedRandomSampler(np.zeros(130) + 1, batch_size=64)
        batches = list(sampler.epoch())
        assert len(batches) == 2
        assert all(len(b) == 64 for b in batches)

    def test_validation(self):
        with pytest.raises(TrainingError):
            WeightedRandomSampler(np.zeros(0))
        with pytest.raises(TrainingError):
            WeightedRandomSampler(np.ones(5), batch_size=0)


class TestMetrics:
    def test_confusion_counts(self):
        y_true = np.array([1, 1, 0, 0, 1, 0])
        y_pred = np.array([1, 0, 0, 1, 1, 0])
        c = confusion(y_true, y_pred)
        assert (c.tp, c.fn, c.fp, c.tn) == (2, 1, 1, 2)
        assert c.recall == pytest.approx(2 / 3)
        assert c.accuracy == pytest.approx(4 / 6)
        assert c.prune_fraction == pytest.approx(3 / 6)

    def test_degenerate_cases(self):
        c = confusion(np.zeros(4), np.zeros(4))
        assert c.recall == 1.0  # no positives to miss
        assert c.accuracy == 1.0

    def test_threshold_for_recall_exact(self):
        probs = np.array([0.9, 0.8, 0.7, 0.2, 0.1, 0.05])
        labels = np.array([1, 1, 1, 0, 0, 0])
        t = threshold_for_recall(probs, labels, target_recall=1.0)
        assert ((probs >= t) == labels.astype(bool)).all()

    def test_threshold_allows_missing_some(self):
        probs = np.array([0.9, 0.5, 0.1, 0.3])
        labels = np.array([1, 1, 1, 0])
        t = threshold_for_recall(probs, labels, target_recall=0.66)
        kept = probs >= t
        recall = (kept & labels.astype(bool)).sum() / 3
        assert recall >= 0.66

    def test_threshold_no_positives(self):
        assert threshold_for_recall(np.array([0.3]), np.array([0.0])) == 0.5
