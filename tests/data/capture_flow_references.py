"""Regenerate ``flow_references.json`` (the flow byte-identity anchors).

Run from the repo root::

    PYTHONPATH=src:tests python tests/data/capture_flow_references.py

The captured file pins ``run_flow`` outputs — BENCH text hash plus every
step's (command, normalized, n_ands, level) — for the reference flows, so
refactors of the flow/session layer can prove they changed nothing.
Regenerate only when an *intentional* behavior change lands, and say so
in the commit message.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.aig.io_bench import to_text
from repro.circuits import layered_random_aig
from repro.elf import collect_dataset, train_leave_one_out
from repro.ml import TrainConfig
from repro.opt import COMPRESS2, RESYN2, run_flow

from tests.util import random_aig


def reference_graph():
    return layered_random_aig(n_pis=12, n_ands=700, seed=7, name="flowref")


def reference_classifier():
    graphs = [random_aig(7, 120, 4, seed=s, name=f"f{s}") for s in (1, 2)]
    datasets = {g.name: collect_dataset(g) for g in graphs}
    return train_leave_one_out(datasets, "f1", TrainConfig(epochs=3, seed=0))


FLOWS = {
    "resyn2": (RESYN2, False),
    "compress2": (COMPRESS2, False),
    "engine": ("pf -w 1; prw -w 1; pelf -w 1", True),
    # Bare sequential operators (no balance steps): the tightest pin on
    # the truth/ISOP/factoring kernels the engine and resyn2 both share.
    "sequential": ("rf; rw; rfz; rwz", False),
}


def capture() -> dict:
    classifier = reference_classifier()
    records = {}
    for tag, (script, needs_classifier) in FLOWS.items():
        g = reference_graph()
        out, report = run_flow(
            g, script, classifier=classifier if needs_classifier else None
        )
        records[tag] = {
            "script": script,
            "bench_sha256": hashlib.sha256(to_text(out).encode()).hexdigest(),
            "steps": [
                {
                    "command": s.command,
                    "normalized": s.normalized,
                    "n_ands": s.n_ands,
                    "level": s.level,
                }
                for s in report.steps
            ],
        }
    return {
        "input_sha256": hashlib.sha256(
            to_text(reference_graph()).encode()
        ).hexdigest(),
        "flows": records,
    }


if __name__ == "__main__":
    path = Path(__file__).with_name("flow_references.json")
    path.write_text(json.dumps(capture(), indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
