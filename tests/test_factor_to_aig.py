"""Tests for strash-aware counting and building of factored forms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, check, cone_truth, lit_node, lit_not
from repro.factor import FactorTree, build_tree, count_tree, factor
from repro.tt import isop_exact


def fresh_graph(n_leaves):
    g = AIG()
    leaves = [g.add_pi() for _ in range(n_leaves)]
    return g, leaves


def test_count_empty_and_constants():
    g, leaves = fresh_graph(2)
    result = count_tree(g, FactorTree.const0(), leaves, set(), 10)
    assert result.cost == 0
    assert result.existing_lit == 0
    result = count_tree(g, FactorTree.const1(), leaves, set(), 10)
    assert result.existing_lit == 1


def test_count_single_literal_is_free():
    g, leaves = fresh_graph(2)
    result = count_tree(g, FactorTree.lit(1, True), leaves, set(), 10)
    assert result.cost == 0
    assert result.existing_lit == lit_not(leaves[1])


def test_count_fresh_and():
    g, leaves = fresh_graph(2)
    tree = FactorTree.and_([FactorTree.lit(0), FactorTree.lit(1)])
    result = count_tree(g, tree, leaves, set(), 10)
    assert result.cost == 1
    assert result.root_level == 1
    assert result.existing_lit is None


def test_count_reuses_existing_node():
    g, leaves = fresh_graph(2)
    existing = g.add_and(leaves[0], leaves[1])
    g.add_po(existing)
    tree = FactorTree.and_([FactorTree.lit(0), FactorTree.lit(1)])
    result = count_tree(g, tree, leaves, set(), 10)
    assert result.cost == 0
    assert result.existing_lit == existing


def test_count_respects_forbidden_set():
    g, leaves = fresh_graph(2)
    existing = g.add_and(leaves[0], leaves[1])
    g.add_po(existing)
    tree = FactorTree.and_([FactorTree.lit(0), FactorTree.lit(1)])
    result = count_tree(g, tree, leaves, {lit_node(existing)}, 10)
    assert result.cost == 1


def test_count_budget_abort():
    g, leaves = fresh_graph(4)
    tree = FactorTree.and_([FactorTree.lit(i) for i in range(4)])
    assert count_tree(g, tree, leaves, set(), 2) is None
    assert count_tree(g, tree, leaves, set(), 3) is not None


def test_count_shares_repeated_subtrees():
    g, leaves = fresh_graph(3)
    ab = FactorTree.and_([FactorTree.lit(0), FactorTree.lit(1)])
    # (a&b&c) + (a&b): the a&b node is shared in the virtual strash.
    tree = FactorTree.or_([FactorTree.and_([ab, FactorTree.lit(2)]), ab])
    result = count_tree(g, tree, leaves, set(), 10)
    # a&b, (a&b)&c, or-node = 3, not 4.
    assert result.cost == 3


def test_build_simple_and_matches_count():
    g, leaves = fresh_graph(3)
    tree = factor(isop_exact(0b10000000, 3), n_vars=3)  # a&b&c
    predicted = count_tree(g, tree, leaves, set(), 10)
    before = g.n_ands
    root = build_tree(g, tree, leaves, avoid_root=-1)
    assert g.n_ands - before == predicted.cost
    tt = cone_truth(g, lit_node(root), [lit_node(l) for l in leaves])
    assert (tt ^ (0xFF if root & 1 else 0)) == 0b10000000
    check(g)


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 2**16 - 1))
def test_build_tree_function_correct(tt):
    g, leaves = fresh_graph(4)
    tree = factor(isop_exact(tt, 4), n_vars=4)
    root = build_tree(g, tree, leaves, avoid_root=-1)
    assert root is not None
    built = cone_truth(g, lit_node(root), [lit_node(l) for l in leaves])
    if root & 1:
        built ^= 0xFFFF
    assert built == tt
    check(g)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**16 - 1))
def test_count_matches_build_on_fresh_graph(tt):
    """With nothing to reuse and nothing forbidden, cost == nodes built."""
    g, leaves = fresh_graph(4)
    tree = factor(isop_exact(tt, 4), n_vars=4)
    predicted = count_tree(g, tree, leaves, set(), 1 << 20)
    before = g.n_ands
    root = build_tree(g, tree, leaves, avoid_root=-1)
    assert root is not None
    assert g.n_ands - before == predicted.cost


def test_build_poison_abort_restores_graph():
    # The function being built IS the avoid_root node: build must abort
    # and leave no garbage behind.
    g, leaves = fresh_graph(2)
    existing = g.add_and(leaves[0], leaves[1])
    g.add_po(existing)
    tree = FactorTree.and_([FactorTree.lit(0), FactorTree.lit(1)])
    nodes_before = g.n_ands
    root = build_tree(g, tree, leaves, avoid_root=lit_node(existing))
    assert root is None
    assert g.n_ands == nodes_before
    check(g)


def test_build_poison_cleanup_of_partial_work():
    # Tree = (a&b) | c where a&b resolves to avoid_root: the OR wrapper
    # must not leave dangling nodes after the abort.
    g, leaves = fresh_graph(3)
    existing = g.add_and(leaves[0], leaves[1])
    g.add_po(existing)
    tree = FactorTree.or_(
        [
            FactorTree.and_([FactorTree.lit(0), FactorTree.lit(1)]),
            FactorTree.lit(2),
        ]
    )
    before = g.n_ands
    root = build_tree(g, tree, leaves, avoid_root=lit_node(existing))
    assert root is None
    assert g.n_ands == before
    check(g)


def test_or_tree_via_demorgan():
    g, leaves = fresh_graph(2)
    tree = FactorTree.or_([FactorTree.lit(0), FactorTree.lit(1)])
    root = build_tree(g, tree, leaves, avoid_root=-1)
    tt = cone_truth(g, lit_node(root), [lit_node(l) for l in leaves])
    if root & 1:
        tt ^= 0xF
    assert tt == 0b1110
