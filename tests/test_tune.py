"""Tests for the budgeted flow tuner (`repro.tune`).

Pins the subsystem's contracts: deterministic fingerprints and feature
buckets; the arm portfolio excludes resource-dependent commands; the
recipe book normalizes, keeps best-only, persists atomically and fences
on the registry version; `OptSession.probe` never mutates its input;
the search matches or beats fixed resyn2 given the budget, degrades to
best-so-far (never an error) on expiry, and — the headline determinism
contract — two **fresh processes** with the same seed, circuit and
probe budget under `cost_model="nodes"` produce a byte-identical script
and an identical arm-pull sequence.  Also pins the
`FlowReport.fraction_of` zero-runtime guard (0.0, not a division error)
and the serve-tier rule that quality-budget results bypass the
content-addressed store entirely.
"""

import asyncio
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.aig import AIG
from repro.aig.io_bench import to_text
from repro.circuits.random_aig import layered_random_aig
from repro.errors import ReproError
from repro.opt import RESYN2, OptSession, run_flow
from repro.opt.flow import FlowReport, FlowStep
from repro.opt.registry import CommandSpec, default_registry
from repro.serve import ResultStore, ServeParams, serve_suite
from repro.serve.service import OptimizeService, ServiceConfig
from repro.tune import (
    Recipe,
    RecipeBook,
    TuneParams,
    TuneResult,
    default_arms,
    feature_bucket,
    fingerprint,
    seed_priors,
    tune,
)
from repro.verify import equivalent

from .util import random_aig

REPO_ROOT = Path(__file__).resolve().parent.parent


def layered(seed=7):
    return layered_random_aig(n_pis=10, n_ands=300, seed=seed)


class TestFingerprint:
    def test_deterministic_and_clone_invariant(self):
        g = layered()
        a, b = fingerprint(g), fingerprint(g.clone(name="other"))
        assert a == b
        assert feature_bucket(a) == feature_bucket(b)
        assert fingerprint(g) == a  # same graph, same answer, every time

    def test_level_histogram_normalized(self):
        f = fingerprint(layered())
        assert len(f.level_histogram) == 8
        assert abs(sum(f.level_histogram) - 1.0) < 1e-9
        assert f.n_sampled > 0

    def test_empty_logic_fingerprints_cleanly(self):
        g = AIG("wire")
        g.add_po(g.add_pi())
        f = fingerprint(g)
        assert f.n_ands == 0 and f.depth_ratio == 1.0
        assert feature_bucket(f) == "s0-d0-r0"


class TestDefaultArms:
    def test_portfolio_is_resource_free(self):
        arms = default_arms(default_registry())
        for core in ("b", "rw", "rwz", "rf", "rfz", "rs", "rsz"):
            assert core in arms
        assert "b; rw" in arms and "rw; rf" in arms
        # Classifier/pool/worker commands must never become arms: probe
        # content would then depend on attached resources.
        heads = {part.strip() for arm in arms for part in arm.split(";")}
        assert heads.isdisjoint({"elf", "elfz", "pf", "pelf", "prw", "prwz"})

    def test_priors_cover_every_arm(self):
        arms = default_arms(default_registry())
        priors = seed_priors(arms, fingerprint(layered()))
        assert set(priors) == set(arms)
        assert all(p > 0.0 for p in priors.values())


class TestRecipeBook:
    def _recipe(self, script="b; rf", gain=10.0):
        return Recipe(script=script, gain_pct=gain, n_ands=100, probes=8)

    def test_record_keeps_best_only(self):
        book = RecipeBook()
        assert book.record("s8-d1-r1", self._recipe(gain=10.0))
        assert not book.record("s8-d1-r1", self._recipe(gain=5.0))
        assert book.lookup("s8-d1-r1").gain_pct == 10.0
        assert book.record("s8-d1-r1", self._recipe(gain=20.0))
        assert book.lookup("s8-d1-r1").gain_pct == 20.0
        assert len(book) == 1 and book.buckets() == ["s8-d1-r1"]

    def test_scripts_normalized_on_record(self):
        book = RecipeBook()
        book.record("s8-d1-r1", self._recipe(script="f; fz"))
        expected = default_registry().normalize_script("f; fz")
        assert book.lookup("s8-d1-r1").script == expected

    def test_unresolvable_recipe_rejected(self):
        with pytest.raises(ReproError):
            RecipeBook().record("s8-d1-r1", self._recipe(script="frobnicate"))

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "recipes.json"
        book = RecipeBook(path=path)
        book.record("s8-d1-r1", self._recipe())
        reloaded = RecipeBook(path=path)
        assert reloaded.lookup("s8-d1-r1") == book.lookup("s8-d1-r1")

    def test_registry_version_fences_the_file(self, tmp_path):
        path = tmp_path / "recipes.json"
        RecipeBook(path=path).record("s8-d1-r1", self._recipe())
        patched = default_registry().copy()
        patched.register(
            CommandSpec(name="zzz", execute=lambda g, ctx, flags: (g, None))
        )
        assert len(RecipeBook(path=path, registry=patched)) == 0
        assert len(RecipeBook(path=path)) == 1  # same surface still loads

    def test_corrupt_file_starts_empty(self, tmp_path):
        path = tmp_path / "recipes.json"
        path.write_text("{not json", encoding="utf-8")
        book = RecipeBook(path=path)
        assert len(book) == 0
        book.record("s8-d1-r1", self._recipe())  # and the next save heals it
        assert len(RecipeBook(path=path)) == 1


class TestProbeAndReport:
    def test_probe_never_mutates_the_input(self):
        g = random_aig(7, 120, 3, seed=21)
        before = to_text(g)
        with OptSession() as session:
            out, report = session.probe(g, "b; rf")
        assert to_text(g) == before
        assert out is not g and len(report.steps) == 2

    def test_empty_report_fractions_are_zero(self):
        # The fraction_of zero-runtime guard: an empty (or all-zero)
        # report answers 0.0, it does not divide by zero.
        report = FlowReport(script="rf")
        assert report.total_runtime == 0.0
        assert report.runtime_of("rf") == 0.0
        assert report.fraction_of("rf") == 0.0

    def test_zero_runtime_steps_fraction_is_zero(self):
        report = FlowReport(script="rf")
        report.steps.append(FlowStep(command="rf", runtime=0.0, n_ands=5, level=2))
        assert report.fraction_of("rf") == 0.0


class TestTuneSearch:
    PARAMS = dict(budget_s=None, max_probes=24, cost_model="nodes")

    def test_matches_or_beats_fixed_resyn2_cec_clean(self):
        g = layered()
        before = to_text(g)
        baseline, _ = run_flow(g.clone(), RESYN2)
        result = tune(g, TuneParams(seed=0, **self.PARAMS))
        assert to_text(g) == before  # input untouched
        assert result.n_ands <= baseline.n_ands
        assert equivalent(g, result.graph)
        assert result.n_ands_before == g.n_ands and result.gain_pct >= 0.0
        if result.script:
            default_registry().normalize_script(result.script)  # servable

    def test_expiry_returns_best_so_far_never_raises(self):
        g = layered(seed=9)
        result = tune(g, TuneParams(seed=0, budget_s=0.0001))
        assert result.n_ands <= g.n_ands
        assert equivalent(g, result.graph)

    def test_same_seed_same_search(self):
        g = layered(seed=13)
        a = tune(g, TuneParams(seed=5, **self.PARAMS))
        b = tune(g, TuneParams(seed=5, **self.PARAMS))
        assert a.script == b.script
        assert a.pulls == b.pulls
        assert a.n_ands == b.n_ands

    def test_recipe_warm_start_hits_the_bucket(self):
        g = layered(seed=17)
        book = RecipeBook()
        first = tune(g, TuneParams(seed=0, budget_s=None, max_probes=40,
                                   cost_model="nodes", recipes=book))
        assert not first.recipe_hit
        assert first.gain_pct > 0.0 and len(book) == 1
        again = tune(g, TuneParams(seed=1, budget_s=None, max_probes=40,
                                   cost_model="nodes", recipes=book))
        assert again.recipe_hit and again.bucket == first.bucket
        assert again.n_ands <= first.n_ands
        assert equivalent(g, again.graph)

    def test_gain_pct_guards_empty_circuits(self):
        g = AIG("wire")
        g.add_po(g.add_pi())
        empty = TuneResult(script="", graph=g, n_ands=0, level=0,
                           n_ands_before=0, level_before=0, probes=0, pulls=())
        assert empty.gain_pct == 0.0

    def test_unknown_cost_model_is_typed(self):
        with pytest.raises(ReproError):
            tune(layered(), TuneParams(budget_s=None, max_probes=4,
                                       cost_model="bogus"))


CHILD_SCRIPT = """\
import sys

from repro.circuits.random_aig import layered_random_aig
from repro.tune import TuneParams, tune

g = layered_random_aig(n_pis=10, n_ands=300, seed=7)
result = tune(
    g, TuneParams(seed=11, budget_s=None, max_probes=24, cost_model="nodes")
)
sys.stdout.write(result.script + "\\n")
sys.stdout.write("|".join(result.pulls) + "\\n")
sys.stdout.write(str(result.n_ands) + "\\n")
"""


class TestCrossProcessDeterminism:
    def test_two_fresh_processes_agree_byte_for_byte(self, tmp_path):
        """Same seed + circuit + probe budget => byte-identical script and
        identical arm-pull sequence across two fresh interpreters."""
        child = tmp_path / "tune_child.py"
        child.write_text(CHILD_SCRIPT, encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        runs = [
            subprocess.run(
                [sys.executable, str(child)],
                capture_output=True,
                env=env,
                cwd=str(tmp_path),
                timeout=120,
                check=True,
            )
            for _ in range(2)
        ]
        assert runs[0].stdout == runs[1].stdout
        script, pulls, n_ands = runs[0].stdout.decode().splitlines()
        assert script  # the search committed something
        assert int(n_ands) >= 0
        default_registry().normalize_script(script)


class TestServeQualityBudget:
    def _suite(self, n=3, seed0=90):
        return {
            f"t{i}": random_aig(6, 80 + 20 * i, 3, seed=seed0 + i, name=f"t{i}")
            for i in range(n)
        }

    def test_tuned_serving_bypasses_the_store(self):
        suite = self._suite()
        store = ResultStore()
        report = serve_suite(
            suite, ServeParams(quality_budget_s=0.5, n_shards=2), store=store
        )
        assert report.ok
        for r in report.results:
            assert r.ok and not r.cached
            assert r.tuned_script is not None
            assert equivalent(suite[r.name], r.graph), r.name
        # Tuned content depends on the wall clock: the store must neither
        # answer nor learn from a quality-budget run.
        assert len(store) == 0
        assert store.hits == 0 and store.misses == 0

    def test_tiny_budget_still_serves_every_circuit(self):
        suite = self._suite(seed0=95)
        report = serve_suite(suite, ServeParams(quality_budget_s=0.001, n_shards=1))
        for r in report.results:
            assert r.ok, (r.name, r.error)  # expiry degrades, never errors
            assert equivalent(suite[r.name], r.graph), r.name

    def test_service_validates_quality_budget(self):
        service = OptimizeService(ServiceConfig())
        bench = to_text(random_aig(5, 30, 2, seed=1))
        for bad in (-1, 0, True, "2.0"):
            response = asyncio.run(
                service._optimize_inner(
                    {"op": "optimize", "bench": bench, "quality_budget_s": bad}
                )
            )
            assert not response["ok"], bad
            assert response["error"]["type"] == "bad_request"
            assert "quality_budget_s" in response["error"]["detail"]
