"""Tests for the unified tracing + metrics subsystem (``repro.obs``).

Covers the registry (instruments, snapshot/merge transport), the span
core (nesting, disabled fast path), every exporter's format contract,
worker-process delta merging against sequential ground truth, and the
end-to-end trace of a ``pf -w 2`` flow (span hierarchy, phase coverage,
counter/stats agreement, CLI ``--trace``).
"""

import json
import math
import os
import threading

import pytest

from repro import obs
from repro.circuits import layered_random_aig
from repro.engine import ResynthExecutor, resynthesize_batch
from repro.obs.core import DisabledSpan, Span, Tracer
from repro.obs.metrics import MetricsRegistry, parse_series_key, _series_key
from repro.opt import RefactorParams, run_flow


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts (and leaves) with tracing off and empty stores."""
    obs.configure(enabled=False)
    obs.reset()
    yield
    obs.configure(enabled=False)
    obs.reset()


class TestSeriesKeys:
    def test_round_trip(self):
        key = _series_key("m_total", {"b": "2", "a": "1"})
        assert key == "m_total{a=1,b=2}"
        assert parse_series_key(key) == ("m_total", {"a": "1", "b": "2"})

    def test_no_labels(self):
        assert _series_key("m", {}) == "m"
        assert parse_series_key("m") == ("m", {})


class TestMetricsRegistry:
    def test_counter_get_or_create_and_total(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits_total", op="rf")
        c1.add(2)
        assert reg.counter("hits_total", op="rf") is c1
        reg.counter("hits_total", op="rw").add(3)
        assert reg.value("hits_total", op="rf") == 2
        assert reg.total("hits_total") == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c_total").add(-1)

    def test_gauge_set_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("occupancy")
        g.set(3)
        g.add(-1)
        assert g.value == 2.0

    def test_histogram_moments_and_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds")
        for v in (0.0004, 0.02, 0.02, 7.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(7.0404)
        assert h.min == pytest.approx(0.0004)
        assert h.max == pytest.approx(7.0)
        assert h.mean == pytest.approx(7.0404 / 4)
        cumulative = h.cumulative()
        assert cumulative[-1] == (math.inf, 4)
        # Cumulative counts never decrease and end at the total.
        counts = [n for _, n in cumulative]
        assert counts == sorted(counts)

    def test_snapshot_merge_round_trip(self):
        a = MetricsRegistry()
        a.counter("c_total", op="x").add(4)
        a.gauge("g").set(9)
        a.histogram("h_seconds").observe(0.3)
        b = MetricsRegistry()
        b.merge(a.snapshot())
        assert b.snapshot() == a.snapshot()

    def test_merge_accumulates_counters(self):
        a = MetricsRegistry()
        a.counter("c_total").add(2)
        snap = a.snapshot()
        b = MetricsRegistry()
        b.counter("c_total").add(1)
        b.merge(snap)
        b.merge(snap)
        assert b.value("c_total") == 5

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.counter("c_total").add(1)
        reg.merge(None)
        reg.merge({})
        assert reg.value("c_total") == 1

    def test_merge_histograms_folds_moments(self):
        a = MetricsRegistry()
        a.histogram("h").observe(1.0)
        a.histogram("h").observe(3.0)
        b = MetricsRegistry()
        b.histogram("h").observe(2.0)
        b.merge(a.snapshot())
        h = b.histogram("h")
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.min == pytest.approx(1.0)
        assert h.max == pytest.approx(3.0)

    def test_thread_safety_of_counter_adds(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("c_total").add(1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("c_total") == 4000


class TestSpans:
    def test_disabled_by_default_times_but_records_nothing(self):
        assert not obs.enabled()
        with obs.span("x") as sp:
            pass
        assert isinstance(sp, DisabledSpan)
        assert sp.duration >= 0.0
        assert len(obs.tracer()) == 0

    def test_enabled_records_with_attrs(self):
        obs.configure(enabled=True)
        with obs.span("phase", items=3) as sp:
            sp.set(done=True)
        spans = obs.tracer().spans()
        assert [s.name for s in spans] == ["phase"]
        assert spans[0].attrs == {"items": 3, "done": True}
        assert spans[0].t1 >= spans[0].t0

    def test_nesting_parent_ids(self):
        obs.configure(enabled=True)
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0

    def test_exception_records_error_attr_and_unwinds(self):
        obs.configure(enabled=True)
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("no")
        (span,) = obs.tracer().spans()
        assert span.attrs["error"] == "RuntimeError"
        # The stack unwound: a new span is a root again.
        with obs.span("after") as after:
            pass
        assert after.parent_id == 0

    def test_threads_get_independent_stacks(self):
        obs.configure(enabled=True)
        seen = {}

        def work():
            with obs.span("thread-root") as sp:
                seen["parent"] = sp.parent_id

        with obs.span("main-root"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert seen["parent"] == 0  # not parented under main-root

    def test_reset_clears_spans(self):
        obs.configure(enabled=True)
        with obs.span("x"):
            pass
        obs.reset()
        assert len(obs.tracer()) == 0


class TestChromeTrace:
    def _traced(self):
        tracer = Tracer()
        with Span(tracer, "pass", {"k": 1}):
            with Span(tracer, "wave", {}):
                pass
            with Span(tracer, "wave", {}):
                pass
        return tracer

    def test_schema_and_validation(self):
        tracer = self._traced()
        obj = obs.chrome_trace(tracer)
        assert obs.validate_chrome_trace(obj) == []
        events = obj["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            assert event["dur"] >= 0
            assert {"name", "cat", "ts", "pid", "tid", "args"} <= set(event)
        names = sorted(e["name"] for e in complete)
        assert names == ["pass", "wave", "wave"]

    def test_validator_flags_negative_dur(self):
        bad = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -5}
            ]
        }
        assert any("dur" in e for e in obs.validate_chrome_trace(bad))

    def test_validator_flags_missing_fields(self):
        bad = {"traceEvents": [{"ph": "X", "dur": 1}]}
        errors = obs.validate_chrome_trace(bad)
        assert any("name" in e for e in errors)

    def test_validator_flags_partial_overlap(self):
        bad = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 10},
                {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 5, "dur": 10},
            ]
        }
        assert obs.validate_chrome_trace(bad)

    def test_export_file_is_valid_json(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        obs.export_chrome_trace(str(path), tracer)
        obj = json.loads(path.read_text())
        assert obs.validate_chrome_trace(obj) == []


class TestPrometheus:
    def test_text_round_trips_through_parser(self):
        reg = MetricsRegistry()
        reg.counter("c_total", op="rf").add(7)
        reg.gauge("g", shard="0").set(2.5)
        reg.histogram("h_seconds").observe(0.03)
        text = obs.prometheus_text(reg)
        samples = obs.parse_prometheus(text)
        assert samples["c_total"] == [({"op": "rf"}, 7.0)]
        assert samples["g"] == [({"shard": "0"}, 2.5)]
        # Histogram: +Inf bucket carries the total count; sum matches.
        buckets = samples["h_seconds_bucket"]
        assert ({"le": "+Inf"} in [lab for lab, _ in buckets])
        assert samples["h_seconds_count"] == [({}, 1.0)]
        assert samples["h_seconds_sum"][0][1] == pytest.approx(0.03)

    def test_type_lines_present(self):
        reg = MetricsRegistry()
        reg.counter("c_total").add(1)
        reg.histogram("h").observe(1)
        text = obs.prometheus_text(reg)
        assert "# TYPE c_total counter" in text
        assert "# TYPE h histogram" in text

    @pytest.mark.parametrize(
        "line",
        [
            "no_value_here",
            "metric{unterminated 3",
            "metric{k=noquotes} 3",
            "1starts_with_digit 3",
            "metric not_a_number",
        ],
    )
    def test_parser_rejects_malformed_lines(self, line):
        with pytest.raises(ValueError):
            obs.parse_prometheus(line)

    def test_empty_registry_empty_text(self):
        assert obs.prometheus_text(MetricsRegistry()) == ""


class TestJsonl:
    def test_round_trip(self, tmp_path):
        obs.configure(enabled=True)
        with obs.span("alpha", n=1):
            pass
        obs.counter("c_total", op="x").add(3)
        obs.histogram("h_seconds").observe(0.5)
        path = tmp_path / "out.jsonl"
        obs.export_trace(str(path))  # .jsonl suffix dispatches to JSONL
        records = obs.read_jsonl(str(path))
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        (span_rec,) = by_type["span"]
        assert span_rec["name"] == "alpha"
        assert span_rec["attrs"] == {"n": 1}
        assert span_rec["dur"] >= 0
        (counter_rec,) = by_type["counter"]
        assert counter_rec["series"] == "c_total{op=x}"
        assert counter_rec["value"] == 3
        (hist_rec,) = by_type["histogram"]
        assert hist_rec["count"] == 1
        assert hist_rec["sum"] == pytest.approx(0.5)

    def test_jsonl_metrics_rebuild_a_registry(self, tmp_path):
        obs.counter("c_total").add(2)
        path = tmp_path / "m.jsonl"
        obs.export_trace(str(path))
        rebuilt = MetricsRegistry()
        snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
        for record in obs.read_jsonl(str(path)):
            if record["type"] == "counter":
                snapshot["counters"][record["series"]] = record["value"]
        rebuilt.merge(snapshot)
        assert rebuilt.value("c_total") == 2


def _resynth_tasks():
    """Distinct, pool-worthy resynthesis tasks (>= 4 per worker at w=2)."""
    return [(tt, 3) for tt in range(17, 57)]


@pytest.fixture
def two_cores(monkeypatch):
    """Force ``will_pool`` past the single-core guard of this container."""
    import repro.engine.parallel as parallel

    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)


class TestWorkerDeltaMerge:
    def test_merged_counters_match_sequential_ground_truth(self, two_cores):
        from repro.engine.parallel import _chunked

        obs.configure(enabled=True)
        tasks = _resynth_tasks()
        params = RefactorParams()
        sequential = resynthesize_batch(tasks, params)
        with ResynthExecutor(2, params) as executor:
            assert executor.will_pool(len(tasks))
            pooled = executor.run(tasks)
        assert pooled == sequential  # bit-identical worker body
        reg = obs.metrics()
        assert reg.value("engine_worker_tasks_total") == len(tasks)
        assert reg.value("engine_worker_chunks_total") == len(_chunked(tasks, 8))
        assert reg.value("engine_worker_evaluate_seconds_total") > 0.0
        assert reg.value("engine_worker_chunks_failed_total") == 0

    def test_errored_chunk_loses_only_its_own_delta(self, two_cores, monkeypatch):
        import repro.engine.parallel as parallel
        from repro.engine.parallel import _chunked

        obs.configure(enabled=True)
        tasks = _resynth_tasks()
        params = RefactorParams()
        sequential = resynthesize_batch(tasks, params)
        chunks = _chunked(tasks, 8)
        sentinel = chunks[0][0]
        parent_pid = os.getpid()
        real = parallel.resynthesize_batch

        def flaky(batch, batch_params):
            # Dies only inside a worker process, only for the chunk
            # carrying the sentinel; the parent's recompute succeeds.
            if os.getpid() != parent_pid and sentinel in batch:
                raise RuntimeError("injected worker failure")
            return real(batch, batch_params)

        # Patch before the pool forks so workers inherit the flaky body.
        monkeypatch.setattr(parallel, "resynthesize_batch", flaky)
        with ResynthExecutor(2, params) as executor:
            pooled = executor.run(tasks)
        assert pooled == sequential  # chunk recomputed in-process
        reg = obs.metrics()
        assert reg.value("engine_worker_chunks_failed_total") == 1
        # Only the failed chunk's delta is missing.
        assert reg.value("engine_worker_tasks_total") == len(tasks) - len(chunks[0])
        assert reg.value("engine_worker_chunks_total") == len(chunks) - 1

    def test_disabled_obs_ships_no_snapshots(self, two_cores):
        tasks = _resynth_tasks()
        params = RefactorParams()
        with ResynthExecutor(2, params) as executor:
            executor.run(tasks)
        assert obs.metrics().total("engine_worker_tasks_total") == 0


class TestRegistryBackedStats:
    def test_session_stats_read_through(self):
        g = layered_random_aig(10, 120, seed=4)
        from repro.opt.session import OptSession

        with OptSession() as session:
            session.run(g.clone(), "b; rf")
            session.run(g.clone(), "b")
            stats = session.stats
        assert stats.runs == 2
        assert stats.commands == 3
        assert stats.cache_created  # rf demanded the resynthesis cache
        reg = obs.metrics()
        assert reg.value("session_runs_total", session=stats.label) == 2
        assert reg.value("session_commands_total", session=stats.label) == 3

    def test_fusion_stats_read_through(self):
        from repro.serve.pool import FusionStats

        stats = FusionStats()
        stats.record_round(3, 120)
        stats.record_round(2, 40)
        assert stats.rounds == [(3, 120), (2, 40)]
        assert stats.n_calls == 2
        assert stats.n_subbatches == 5
        assert stats.n_rows == 160
        assert stats.mean_occupancy == pytest.approx(2.5)
        assert stats.amortization == pytest.approx(1 - 2 / 5)
        reg = obs.metrics()
        assert reg.value("serve_fusion_rounds_total", shard=stats.label) == 2
        assert reg.value("serve_fusion_rows_total", shard=stats.label) == 160

    def test_flow_commands_hit_registry(self):
        g = layered_random_aig(10, 150, seed=2)
        run_flow(g, "b; rf; b")
        reg = obs.metrics()
        assert reg.value("flow_commands_total", command="b") == 2
        assert reg.value("flow_commands_total", command="rf") == 1
        hist = reg.histogram("flow_command_seconds", command="rf")
        assert hist.count == 1
        assert hist.sum > 0


class TestFlowTraceIntegration:
    def _traced_parallel_flow(self):
        obs.configure(enabled=True)
        g = layered_random_aig(12, 500, seed=1)
        out, report = run_flow(g, "pf -w 2")
        return out, report

    def test_span_hierarchy_and_census(self, two_cores):
        _, report = self._traced_parallel_flow()
        stats = report.steps[0].detail
        spans = obs.tracer().spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        (flow_run,) = by_name["flow.run"]
        (flow_cmd,) = by_name["flow.command"]
        (engine_pass,) = by_name["engine.pass"]
        assert flow_cmd.parent_id == flow_run.span_id
        assert engine_pass.parent_id == flow_cmd.span_id
        assert len(by_name["engine.wave"]) == stats.n_waves
        for wave in by_name["engine.wave"]:
            assert wave.parent_id == engine_pass.span_id
        assert len(by_name["engine.snapshot"]) == 1
        assert len(by_name["engine.conflict"]) == 1
        # evaluate/commit are children of their wave.
        wave_ids = {w.span_id for w in by_name["engine.wave"]}
        for name in ("engine.evaluate", "engine.commit"):
            for span in by_name[name]:
                assert span.parent_id in wave_ids

    def test_phase_durations_cover_the_pass(self, two_cores):
        self._traced_parallel_flow()
        spans = obs.tracer().spans()
        (engine_pass,) = [s for s in spans if s.name == "engine.pass"]
        children = [s for s in spans if s.parent_id == engine_pass.span_id]
        covered = sum(s.duration for s in children)
        assert covered <= engine_pass.duration * 1.01
        assert covered >= engine_pass.duration * 0.6

    def test_counters_match_engine_stats_exactly(self, two_cores):
        _, report = self._traced_parallel_flow()
        stats = report.steps[0].detail
        reg = obs.metrics()
        op = {"operator": stats.operator}
        assert reg.value("engine_passes_total", **op) == 1
        assert reg.value("engine_waves_total", **op) == stats.n_waves
        assert reg.value("engine_commits_total", **op) == stats.commits
        assert reg.value("engine_tasks_total", **op) == stats.n_tasks
        assert reg.value("engine_unique_tasks_total", **op) == stats.n_unique_tasks
        # Pooled worker deltas can never exceed the scheduler's dispatch
        # accounting, and every pooled task is a unique task.
        assert (
            obs.metrics().total("engine_worker_tasks_total") <= stats.n_unique_tasks
        )
        assert reg.value("flow_commands_total", command="pf") == 1

    def test_stats_timing_fields_are_span_durations(self, two_cores):
        _, report = self._traced_parallel_flow()
        stats = report.steps[0].detail
        spans = obs.tracer().spans()
        (engine_pass,) = [s for s in spans if s.name == "engine.pass"]
        assert stats.time_total == pytest.approx(engine_pass.duration)
        (snap,) = [s for s in spans if s.name == "engine.snapshot"]
        assert stats.time_snapshot == pytest.approx(snap.duration)
        commit_total = sum(s.duration for s in spans if s.name == "engine.commit")
        assert stats.time_replay == pytest.approx(commit_total)

    def test_chrome_export_of_flow_is_valid(self, two_cores, tmp_path):
        self._traced_parallel_flow()
        path = tmp_path / "flow.json"
        obs.export_trace(str(path))
        obj = json.loads(path.read_text())
        assert obs.validate_chrome_trace(obj) == []
        names = {e["name"] for e in obj["traceEvents"] if e.get("ph") == "X"}
        assert {"flow.run", "flow.command", "engine.pass", "engine.wave"} <= names

    def test_disabled_tracing_keeps_flow_output_identical(self):
        g = layered_random_aig(12, 400, seed=6)
        from repro.aig.io_bench import to_text

        baseline, _ = run_flow(g.clone(), "b; rf; b")
        obs.configure(enabled=True)
        traced, _ = run_flow(g.clone(), "b; rf; b")
        assert to_text(baseline) == to_text(traced)


class TestCli:
    def test_trace_and_metrics_flags(self, tmp_path):
        from repro.__main__ import main
        from repro.aig.io_bench import write

        g = layered_random_aig(10, 200, seed=8)
        in_path = tmp_path / "in.bench"
        out_path = tmp_path / "out.bench"
        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        write(g, str(in_path))
        code = main(
            [
                "b; rf",
                str(in_path),
                "-o",
                str(out_path),
                "-q",
                "--trace",
                str(trace_path),
                "--metrics",
                str(prom_path),
            ]
        )
        assert code == 0
        obj = json.loads(trace_path.read_text())
        assert obs.validate_chrome_trace(obj) == []
        names = {e["name"] for e in obj["traceEvents"] if e.get("ph") == "X"}
        assert "flow.run" in names and "flow.command" in names
        samples = obs.parse_prometheus(prom_path.read_text())
        assert samples["flow_commands_total"]
        assert out_path.is_file()
