"""Tests for balance, rewrite, resub, the NPN library and flows."""

import pytest

from repro.aig import AIG, check, lit_node, lit_not
from repro.circuits.arith import adder, multiplier
from repro.errors import ReproError
from repro.factor import FactorTree
from repro.opt import (
    NpnLibrary,
    RESYN2,
    ResubParams,
    RewriteParams,
    balance,
    default_library,
    refactor,
    resub,
    rewrite,
    run_flow,
)
from repro.tt import apply_transform
from repro.verify import equivalent

from .util import random_aig


class TestBalance:
    def test_chain_becomes_tree(self):
        g = AIG()
        lits = [g.add_pi() for _ in range(8)]
        acc = lits[0]
        for lit in lits[1:]:
            acc = g.add_and(acc, lit)  # depth-7 chain
        g.add_po(acc)
        assert g.max_level() == 7
        h = balance(g)
        check(h)
        assert equivalent(g, h)
        assert h.max_level() == 3  # log2(8)

    def test_preserves_function_random(self):
        for seed in range(6):
            g = random_aig(7, 120, 5, seed=seed)
            h = balance(g)
            check(h)
            assert equivalent(g, h)
            assert h.max_level() <= g.max_level()

    def test_respects_complemented_boundaries(self):
        g = AIG()
        a, b, c, d = (g.add_pi() for _ in range(4))
        x = g.add_and(a, b)
        y = g.add_and(lit_not(x), c)  # complement edge blocks merging
        z = g.add_and(y, d)
        g.add_po(z)
        h = balance(g)
        assert equivalent(g, h)

    def test_shared_nodes_not_duplicated(self):
        g = AIG()
        a, b, c = (g.add_pi() for _ in range(3))
        x = g.add_and(a, b)
        g.add_po(g.add_and(x, c))
        g.add_po(x)  # shared
        h = balance(g)
        assert equivalent(g, h)
        assert h.n_ands <= g.n_ands

    def test_arithmetic(self):
        g = adder(6)
        h = balance(g)
        check(h)
        assert equivalent(g, h)
        assert h.max_level() <= g.max_level()


class TestNpnLibrary:
    def test_lazy_growth(self):
        lib = NpnLibrary()
        assert len(lib) == 0
        lib.lookup(0x8888)
        assert len(lib) == 1
        lib.lookup(0x8888)
        assert len(lib) == 1  # cached

    @pytest.mark.parametrize("tt", [0x0000, 0xFFFF, 0x8888, 0x6666, 0xBEEF, 0x1234])
    def test_instantiation_is_correct(self, tt):
        """entry.tree evaluated through the transform reproduces tt."""
        lib = default_library()
        entry, transform = lib.lookup(tt)
        # Verify algebraically: tree tt over canonical vars == canonical fn.
        tree_tt = entry.tree.eval_tt(4)
        if entry.inverted:
            tree_tt ^= 0xFFFF
        assert tree_tt == entry.canonical
        assert apply_transform(entry.canonical, transform) == tt

    def test_entry_literal_counts_reasonable(self):
        lib = default_library()
        entry, _ = lib.lookup(0x6666)  # xor of two vars
        assert entry.n_literals() <= 4


class TestRewrite:
    def test_preserves_function_random(self):
        for seed in range(6):
            g = random_aig(7, 120, 5, seed=seed)
            reference = g.clone()
            before = g.n_ands
            stats = rewrite(g)
            check(g)
            assert equivalent(reference, g)
            assert g.n_ands <= before
            assert stats.nodes_visited > 0

    def test_reduces_redundant_logic(self):
        # mux(s, a, a) should collapse toward a.
        g = AIG()
        s, a, b = (g.add_pi() for _ in range(3))
        m = g.add_mux(s, a, a)
        g.add_po(g.add_and(m, b))
        before = g.n_ands
        rewrite(g)
        assert g.n_ands < before

    def test_zero_cost_mode(self):
        g = random_aig(7, 100, 4, seed=9)
        reference = g.clone()
        rewrite(g, RewriteParams(zero_cost=True))
        check(g)
        assert equivalent(reference, g)

    def test_preserve_levels(self):
        g = random_aig(7, 100, 4, seed=10)
        depth = g.max_level()
        rewrite(g, RewriteParams(preserve_levels=True))
        assert g.max_level() <= depth

    def test_arithmetic(self):
        g = multiplier(4)
        reference = g.clone()
        rewrite(g)
        check(g)
        assert equivalent(reference, g)


class TestResub:
    def test_finds_zero_resub(self):
        # Two structurally different builds of the same function: the
        # second collapses onto the first.
        g = AIG()
        a, b, c = (g.add_pi() for _ in range(3))
        first = g.add_and(g.add_and(a, b), c)
        second = g.add_and(a, g.add_and(b, c))
        g.add_po(first)
        g.add_po(second)
        stats = resub(g)
        check(g)
        assert stats.commits >= 1
        assert g.pos[0] == g.pos[1]

    def test_preserves_function_random(self):
        for seed in range(6):
            g = random_aig(7, 120, 5, seed=seed)
            reference = g.clone()
            before = g.n_ands
            resub(g)
            check(g)
            assert equivalent(reference, g)
            assert g.n_ands <= before

    def test_arithmetic(self):
        g = adder(5)
        reference = g.clone()
        resub(g, ResubParams(max_leaves=8))
        check(g)
        assert equivalent(reference, g)

    def test_divisor_cap_respected(self):
        g = random_aig(8, 200, 5, seed=3)
        reference = g.clone()
        resub(g, ResubParams(max_divisors=10))
        assert equivalent(reference, g)


class TestFlow:
    def test_resyn2_runs_and_preserves(self):
        g = random_aig(7, 150, 5, seed=21)
        reference = g.clone()
        out, report = run_flow(g, RESYN2)
        check(out)
        assert equivalent(reference, out)
        assert out.n_ands <= reference.n_ands
        assert len(report.steps) == 10
        assert report.total_runtime > 0

    def test_refactor_fraction_measurable(self):
        g = multiplier(5)
        _out, report = run_flow(g, RESYN2)
        assert 0.0 < report.fraction_of("rf") < 1.0
        assert report.runtime_of("b") > 0

    def test_unknown_command(self):
        g = random_aig(4, 10, 2, seed=0)
        with pytest.raises(ReproError):
            run_flow(g, "frobnicate")

    def test_alias_steps_count_toward_refactor(self):
        g = random_aig(7, 150, 5, seed=11)
        _out, report = run_flow(g, "f; fz; b")
        # Raw spellings survive; accounting runs on the normalized form.
        assert [s.command for s in report.steps] == ["f", "fz", "b"]
        assert [s.normalized for s in report.steps] == ["rf", "rfz", "b"]
        expected = report.steps[0].runtime + report.steps[1].runtime
        assert report.runtime_of("rf") == pytest.approx(expected)
        assert report.fraction_of("rf") == pytest.approx(
            expected / report.total_runtime
        )

    def test_canonical_command_resolves_aliases_keeps_flags(self):
        from repro.opt import canonical_command

        assert canonical_command("f") == "rf"
        assert canonical_command("fz -l") == "rfz -l"
        assert canonical_command("rw -l") == "rw -l"
        assert canonical_command("pf -w 2") == "pf -w 2"

    def test_rsz_command_parity(self):
        from repro.aig.io_bench import to_text

        g = random_aig(7, 150, 5, seed=13)
        via_flow, report = run_flow(g.clone(), "rsz")
        manual = g.clone()
        manual_stats = resub(manual, ResubParams(zero_cost=True))
        assert to_text(via_flow) == to_text(manual)
        assert report.steps[0].detail.commits == manual_stats.commits
        # Plain ``rs`` stays the zero_cost=False spelling.
        plain, _ = run_flow(g.clone(), "rs")
        manual_plain = g.clone()
        resub(manual_plain, ResubParams(zero_cost=False))
        assert to_text(plain) == to_text(manual_plain)

    def test_elf_step_requires_classifier(self):
        g = random_aig(4, 10, 2, seed=0)
        with pytest.raises(ReproError):
            run_flow(g, "elf")

    def test_flow_with_elf_step(self):
        from repro.elf import collect_dataset, train_leave_one_out
        from repro.ml import TrainConfig

        graphs = [random_aig(7, 120, 4, seed=s, name=f"f{s}") for s in (1, 2)]
        datasets = {g.name: collect_dataset(g) for g in graphs}
        clf = train_leave_one_out(datasets, "f1", TrainConfig(epochs=3))
        g = random_aig(7, 120, 4, seed=5)
        reference = g.clone()
        out, report = run_flow(g, "b; elf; b", classifier=clf)
        assert equivalent(reference, out)
        assert len(report.steps) == 3
