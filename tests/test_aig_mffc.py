"""Tests for MFFC (maximum fanout-free cone) computation."""

from repro.aig import AIG, check, lit_node, mffc_deref, mffc_nodes, mffc_ref, mffc_size

from .util import random_aig


def build_chain():
    """a&b -> &c -> &d chain driving one PO; whole chain is the MFFC."""
    g = AIG()
    a, b, c, d = (g.add_pi() for _ in range(4))
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    z = g.add_and(y, d)
    g.add_po(z)
    return g, [lit_node(x), lit_node(y), lit_node(z)]


def test_mffc_of_chain_is_whole_chain():
    g, (nx, ny, nz) = build_chain()
    assert mffc_size(g, nz) == 3
    assert sorted(mffc_nodes(g, nz)) == sorted([nx, ny, nz])


def test_mffc_stops_at_shared_node():
    g, (nx, ny, nz) = build_chain()
    # Give x an extra fanout: it leaves the MFFC of z.
    e = g.add_pi()
    import repro.aig.graph as graph_mod

    w = g.add_and(graph_mod.make_lit(nx), e)
    g.add_po(w)
    assert mffc_size(g, nz) == 2
    assert nx not in mffc_nodes(g, nz)


def test_mffc_boundary_cut_leaves():
    g, (nx, ny, nz) = build_chain()
    # Bound the sweep at y: only z counts.
    assert mffc_size(g, nz, boundary={ny}) == 1
    assert mffc_nodes(g, nz, boundary={ny}) == [nz]


def test_deref_ref_restores_counts():
    g = random_aig(6, 40, 5, seed=11)
    refs_before = list(g._refs)
    for node in g.and_ids():
        freed = mffc_deref(g, node)
        restored = mffc_ref(g, node)
        assert restored == len(freed)
        assert g._refs == refs_before
    check(g)


def test_mffc_size_matches_actual_deletion():
    # Replacing a PO driver with a PI deletes exactly its (PI-bounded) MFFC.
    g = random_aig(6, 40, 1, seed=5)
    root = lit_node(g.pos[0])
    if not g.is_and(root):
        return
    predicted = mffc_size(g, root)
    before = g.n_ands
    g.replace(root, g.pis[0] * 2)
    assert before - g.n_ands == predicted
    check(g)


def test_mffc_root_only():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    g.add_po(x)
    assert mffc_size(g, lit_node(x)) == 1
