"""Tests for GFACTOR (quick and good variants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FactoringError
from repro.factor import FactorTree, factor, good_factor, verify_factoring
from repro.tt import cube_from_lits, isop_exact, lit_index, sop_literal_count, sop_tt


def cube(*pairs):
    return cube_from_lits([lit_index(v, neg) for v, neg in pairs])


def test_constants():
    assert factor([]).kind == "const0"
    assert factor([0]).kind == "const1"


def test_single_cube():
    t = factor([cube((0, False), (1, True))])
    assert t.n_literals() == 2
    assert verify_factoring([cube((0, False), (1, True))], t, 2)


def test_classic_common_literal():
    # ab + ac + ad -> a(b + c + d): 6 literals down to 4.
    F = [
        cube((0, False), (1, False)),
        cube((0, False), (2, False)),
        cube((0, False), (3, False)),
    ]
    t = factor(F)
    assert verify_factoring(F, t, 4)
    assert t.n_literals() == 4


def test_textbook_double_factor():
    # ac + ad + bc + bd -> (a + b)(c + d): 8 literals down to 4.
    F = [
        cube((0, False), (2, False)),
        cube((0, False), (3, False)),
        cube((1, False), (2, False)),
        cube((1, False), (3, False)),
    ]
    t = factor(F)
    assert verify_factoring(F, t, 4)
    assert t.n_literals() == 4


def test_factoring_with_remainder():
    # ac + ad + e -> a(c + d) + e
    F = [
        cube((0, False), (2, False)),
        cube((0, False), (3, False)),
        cube((4, False)),
    ]
    t = factor(F)
    assert verify_factoring(F, t, 5)
    assert t.n_literals() == 4


def test_mixed_phases():
    # a!b + ac -> a(!b + c)
    F = [cube((0, False), (1, True)), cube((0, False), (2, False))]
    t = factor(F)
    assert verify_factoring(F, t, 3)
    assert t.n_literals() == 3


def test_good_factor_never_worse():
    F = [
        cube((0, False), (2, False), (4, False)),
        cube((1, False), (2, False), (4, False)),
        cube((3, False), (4, False)),
        cube((5, False)),
    ]
    quick_tree = factor(F)
    good_tree = good_factor(F)
    assert verify_factoring(F, good_tree, 6)
    assert good_tree.n_literals() <= quick_tree.n_literals()


def test_validation():
    with pytest.raises(FactoringError):
        factor([cube((9, False))], n_vars=3)
    with pytest.raises(FactoringError):
        factor(F_OK, method="bogus")


F_OK = [cube((0, False))]


@settings(max_examples=250, deadline=None)
@given(st.integers(0, 2**16 - 1))
def test_factor_preserves_function_4vars(tt):
    cubes = isop_exact(tt, 4)
    tree = factor(cubes, n_vars=4)
    assert tree.eval_tt(4) == tt


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_factor_preserves_function_5vars(tt):
    cubes = isop_exact(tt, 5)
    tree = factor(cubes, n_vars=5)
    assert tree.eval_tt(5) == tt


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**16 - 1))
def test_factor_never_more_literals_than_flat(tt):
    cubes = isop_exact(tt, 4)
    tree = factor(cubes)
    assert tree.n_literals() <= sop_literal_count(cubes)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**16 - 1))
def test_good_factor_preserves_function(tt):
    cubes = isop_exact(tt, 4)
    tree = good_factor(cubes, n_vars=4)
    assert tree.eval_tt(4) == sop_tt(cubes, 4)
