"""Tests for the core AIG data structure."""

import pytest

from repro.aig import AIG, CONST0, CONST1, check, lit_node, lit_not
from repro.errors import AigError

from .util import po_truth_tables, random_aig


def test_empty_graph():
    g = AIG("empty")
    assert g.n_pis == 0
    assert g.n_pos == 0
    assert g.n_ands == 0
    assert g.max_level() == 0
    check(g)


def test_add_pi_and_po():
    g = AIG()
    a = g.add_pi("x")
    assert lit_node(a) == 1
    assert g.is_pi(lit_node(a))
    index = g.add_po(a, "y")
    assert g.pos[index] == a
    assert g.po_name(index) == "y"
    assert g.n_refs(lit_node(a)) == 1
    check(g)


def test_and_simplifications():
    g = AIG()
    a = g.add_pi()
    b = g.add_pi()
    assert g.add_and(a, a) == a
    assert g.add_and(a, lit_not(a)) == CONST0
    assert g.add_and(a, CONST0) == CONST0
    assert g.add_and(CONST0, b) == CONST0
    assert g.add_and(a, CONST1) == a
    assert g.add_and(CONST1, b) == b
    assert g.n_ands == 0


def test_structural_hashing():
    g = AIG()
    a = g.add_pi()
    b = g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(b, a)  # commuted
    assert x == y
    assert g.n_ands == 1
    z = g.add_and(a, lit_not(b))
    assert z != x
    assert g.n_ands == 2
    check(g)


def test_levels_on_creation():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    assert g.level(lit_node(x)) == 1
    assert g.level(lit_node(y)) == 2
    g.add_po(y)
    assert g.max_level() == 2


def test_or_xor_mux_semantics():
    g = AIG()
    a, b, s = g.add_pi(), g.add_pi(), g.add_pi()
    g.add_po(g.add_or(a, b))
    g.add_po(g.add_xor(a, b))
    g.add_po(g.add_mux(s, a, b))
    tts = po_truth_tables(g)
    # variable order: a=var0, b=var1, s=var2 over 3 vars (8 bits)
    va, vb, vs = 0xAA, 0xCC, 0xF0
    assert tts[0] == (va | vb)
    assert tts[1] == (va ^ vb)
    assert tts[2] == ((vs & va) | (~vs & vb) & 0xFF)


def test_lookup_and_probe():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    assert g.lookup_and(a, b) is None
    x = g.add_and(a, b)
    assert g.lookup_and(a, b) == x
    assert g.lookup_and(b, a) == x
    assert g.lookup_and(a, a) == a
    assert g.lookup_and(a, CONST0) == CONST0


def test_fanout_tracking():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    z = g.add_and(x, lit_not(c))
    g.add_po(y)
    g.add_po(z)
    nx = lit_node(x)
    assert g.n_fanouts(nx) == 2
    assert sorted(g.fanouts(nx)) == sorted([lit_node(y), lit_node(z)])
    assert g.n_fanouts(lit_node(y)) == 1  # one PO use
    assert g.po_uses(lit_node(y)) == [0]
    check(g)


def test_set_po():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    idx = g.add_po(x)
    g.set_po(idx, lit_not(a))
    assert g.pos[idx] == lit_not(a)
    assert g.n_refs(lit_node(x)) == 0
    assert g.po_uses(lit_node(a)) == [idx]
    check(g)


def test_fanin_accessors_reject_non_and():
    g = AIG()
    a = g.add_pi()
    with pytest.raises(AigError):
        g.fanin0(lit_node(a))
    with pytest.raises(AigError):
        g.fanin_lits(0)


def test_dead_literal_rejected():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    g.add_po(x)
    g.replace(lit_node(x), a)  # x dies
    with pytest.raises(AigError):
        g.add_and(x, b)


def test_clone_preserves_function_and_compacts():
    g = random_aig(5, 30, 4, seed=7)
    before = po_truth_tables(g)
    h = g.clone("copy")
    assert po_truth_tables(h) == before
    assert h.n_ands <= g.n_ands
    assert h.n_pis == g.n_pis
    assert h.n_pos == g.n_pos
    check(h)


def test_and_ids_topological_when_freshly_built():
    g = random_aig(4, 25, 3, seed=3)
    seen = set(g.pis) | {0}
    for node in g.and_ids():
        f0, f1 = g.fanin_lits(node)
        assert lit_node(f0) in seen
        assert lit_node(f1) in seen
        seen.add(node)


class TestReplace:
    def test_replace_by_pi(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(x, c)
        g.add_po(y)
        g.replace(lit_node(x), a)  # x := a, so y becomes AND(a, c)
        assert g.n_ands == 1
        tts = po_truth_tables(g)
        assert tts[0] == (0xAA & 0xF0)  # a & c over (a,b,c)
        check(g)

    def test_replace_with_complement(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(lit_not(x), c)
        g.add_po(y)
        g.replace(lit_node(x), lit_not(a))  # x := ~a, so y = AND(a, c)
        assert po_truth_tables(g)[0] == (0xAA & 0xF0)
        check(g)

    def test_replace_patches_pos(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(x, "f")
        g.add_po(lit_not(x), "g")
        g.replace(lit_node(x), lit_not(b))
        assert g.pos[0] == lit_not(b)
        assert g.pos[1] == b
        assert g.n_ands == 0
        check(g)

    def test_replace_triggers_merge_cascade(self):
        g = AIG()
        a, b, c, d, e = (g.add_pi() for _ in range(5))
        u = g.add_and(a, b)
        v = g.add_and(c, d)
        w1 = g.add_and(u, e)
        w2 = g.add_and(v, e)
        g.add_po(w1)
        g.add_po(w2)
        # Make v structurally equal to u in two steps.
        g.replace(lit_node(c), a)
        g.replace(lit_node(d), b)
        # v merged into u, then w2 merged into w1.
        assert g.n_ands == 2
        assert g.pos[0] == g.pos[1]
        check(g)

    def test_replace_creating_constant(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        v = g.add_and(c, b)
        top = g.add_and(v, a)
        g.add_po(top)
        # c := ~b makes v = AND(~b, b) = 0, which kills top too.
        g.replace(lit_node(c), lit_not(b))
        assert g.pos[0] == CONST0
        assert g.n_ands == 0
        check(g)

    def test_replace_garbage_collects_cone(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(x, c)
        g.add_po(y)
        assert g.n_ands == 2
        g.replace(lit_node(y), a)
        assert g.n_ands == 0  # both x and y die
        check(g)

    def test_replace_keeps_shared_nodes(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(x, c)
        g.add_po(y)
        g.add_po(x)  # x is shared: must survive y's death
        g.replace(lit_node(y), lit_not(c))
        assert g.n_ands == 1
        assert g.pos[1] == x
        check(g)

    def test_replace_functionally_equivalent_rebuild(self):
        # Replace a node by a freshly built equivalent cone and verify the
        # network function is unchanged.
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(g.add_and(a, b), c)  # a & b & c
        g.add_po(x)
        before = po_truth_tables(g)
        rebuilt = g.add_and(a, g.add_and(b, c))  # same function, new shape
        g.replace(lit_node(x), rebuilt)
        assert po_truth_tables(g) == before
        check(g)

    def test_replace_self_is_noop(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(x)
        g.replace(lit_node(x), x)
        assert g.pos[0] == x
        assert g.n_ands == 1
        check(g)


class TestDirtyJournal:
    """The per-epoch structural-damage journal behind the engine's
    incremental cross-wave re-snapshot."""

    def test_fresh_graph_journal_is_empty_after_drain(self):
        g = random_aig(6, 40, 3, seed=1)
        journal = g.drain_dirty()
        # Construction dirt (allocations are not damage) may or may not be
        # journaled, but a second drain must be empty: epochs are disjoint.
        assert g.drain_dirty().empty
        assert isinstance(journal.killed, frozenset)

    def test_replace_records_killed_and_rewired(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(x, c)
        g.add_po(y)
        g.drain_dirty()
        g.replace(lit_node(x), a)  # y survives, rewired to AND(a, c)
        journal = g.drain_dirty()
        assert lit_node(x) in journal.killed
        assert lit_node(y) in journal.rewired
        assert lit_node(y) not in journal.killed
        check(g)

    def test_cascading_gc_is_journaled(self):
        g = AIG()
        a, b, c, d = (g.add_pi() for _ in range(4))
        n1 = g.add_and(a, b)
        n2 = g.add_and(n1, c)
        n3 = g.add_and(n2, d)
        g.add_po(n3)
        g.drain_dirty()
        g.replace(lit_node(n3), a)  # frees the whole chain below
        journal = g.drain_dirty()
        assert {lit_node(n1), lit_node(n2), lit_node(n3)} <= journal.killed
        assert g.n_ands == 0
        check(g)

    def test_po_rewire_journals_the_replaced_driver(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(x, "out")
        g.drain_dirty()
        g.replace(lit_node(x), lit_not(b))
        journal = g.drain_dirty()
        assert lit_node(x) in journal.killed
        assert g.pos[0] == lit_not(b)  # PO rewired, phase preserved
        check(g)

    def test_strash_merge_victims_are_killed(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        merged = g.add_and(x, c)  # AND(x, c): the merge target
        y = g.add_and(a, lit_not(b))
        victim = g.add_and(y, c)  # after y -> x, collides with ``merged``
        g.add_po(merged)
        g.add_po(victim)
        g.drain_dirty()
        g.replace(lit_node(y), x)
        journal = g.drain_dirty()
        assert lit_node(victim) in journal.killed
        assert g.pos[1] == merged
        check(g)

    def test_new_nodes_are_not_damage(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        g.drain_dirty()
        g.add_and(a, b)
        journal = g.drain_dirty()
        assert journal.empty

    def test_replaced_pi_is_journaled_killed(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(x)
        g.drain_dirty()
        g.replace(lit_node(a), b)  # PI slot survives but is disconnected
        journal = g.drain_dirty()
        assert lit_node(a) in journal.killed


def test_iter_fanouts_zero_copy_view():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    z = g.add_and(x, lit_not(c))
    g.add_po(y)
    g.add_po(z)
    assert sorted(g.iter_fanouts(lit_node(x))) == sorted(g.fanouts(lit_node(x)))
    assert list(g.iter_fanouts(lit_node(y))) == []
