"""Randomized parity battery: every vectorized kernel vs its scalar oracle.

PR 7 rewrote the truth-table hot loops (ISOP core, NPN canonizer,
cofactor sweeps, ``expand_tt``, the batched cone-truth kernel) and added
the packed word-array representation the shared-memory wave transport
ships.  Each rewrite claims bit-identity with the straightforward
formulation it replaced; this module pins every claim against an
embedded or retained scalar reference over hundreds of random tables and
cut shapes, plus the degenerate corners (constants, single-leaf cuts,
duplicate leaves) where index arithmetic likes to go wrong.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.aig import AIG, cone_truth, full_mask, var_mask
from repro.aig.simulate import batch_cone_truths
from repro.cuts.reconv import reconv_cut
from repro.errors import ReproError, TruthTableError
from repro.engine.pack import PackedTasks, WaveSegment, leaked_segments
from repro.tt import isop, isop_exact, npn_canonize, sop_tt
from repro.tt.isop import clear_isop_memo
from repro.tt.npn import _FULL, apply_transform, npn_canonize_scalar
from repro.tt.truth import (
    bits_to_tt,
    cofactor0,
    cofactor0_many,
    cofactor1,
    cofactor1_many,
    expand_tt,
    expand_tt_scalar,
    pack_tts,
    tt_to_bits,
    tt_to_words,
    unpack_tts,
    words_per_table,
    words_to_tt,
)

from .util import random_aig


def _random_tables(rng: random.Random, n_vars: int, count: int) -> list[int]:
    ones = full_mask(n_vars)
    tables = [0, ones]  # always hit the constants
    if n_vars:
        tables.append(var_mask(0, n_vars))
    tables += [rng.getrandbits(1 << n_vars) & ones for _ in range(count)]
    return tables


# ----------------------------------------------------------------------
# Minato-Morreale ISOP: inlined big-int core vs truth-helper composition
# ----------------------------------------------------------------------


def _isop_reference(lower: int, upper: int, n_vars: int) -> tuple[list[int], int]:
    """The pre-optimization formulation: cofactors via the
    :mod:`repro.tt.truth` helpers, base cases checked on entry, no memo.

    The production ``_isop`` must return the *same cube list in the same
    order* — the factored forms (and therefore committed graphs) depend
    on it.
    """
    ones = full_mask(n_vars)
    if lower == 0:
        return [], 0
    if upper == ones:
        return [0], ones
    var = n_vars - 1
    while var >= 0:
        if cofactor0(lower, var, n_vars) != cofactor1(lower, var, n_vars) or (
            cofactor0(upper, var, n_vars) != cofactor1(upper, var, n_vars)
        ):
            break
        var -= 1
    assert var >= 0
    l0 = cofactor0(lower, var, n_vars)
    l1 = cofactor1(lower, var, n_vars)
    u0 = cofactor0(upper, var, n_vars)
    u1 = cofactor1(upper, var, n_vars)
    cubes0, cover0 = _isop_reference(l0 & ~u1, u0, n_vars)
    cubes1, cover1 = _isop_reference(l1 & ~u0, u1, n_vars)
    remainder = (l0 & ~cover0) | (l1 & ~cover1)
    cubes_star, cover_star = _isop_reference(remainder, u0 & u1, n_vars)
    mask = var_mask(var, n_vars)
    cubes = (
        [c | 1 << (2 * var + 1) for c in cubes0]
        + [c | 1 << (2 * var) for c in cubes1]
        + cubes_star
    )
    cover = (cover0 & ~mask & ones) | (cover1 & mask) | cover_star
    return cubes, cover


class TestIsopParity:
    def test_exact_covers_match_reference_cube_lists(self):
        rng = random.Random(71)
        clear_isop_memo()
        for n_vars in (1, 2, 3, 4, 6, 8):
            for tt in _random_tables(rng, n_vars, 60):
                expected, cover = _isop_reference(tt, tt, n_vars)
                assert cover == tt
                assert isop_exact(tt, n_vars) == expected

    def test_interval_covers_match_reference_cube_lists(self):
        rng = random.Random(72)
        for n_vars in (2, 3, 4, 6):
            ones = full_mask(n_vars)
            for _ in range(80):
                lower = rng.getrandbits(1 << n_vars) & ones
                upper = lower | (rng.getrandbits(1 << n_vars) & ones)
                assert isop(lower, upper, n_vars) == (
                    _isop_reference(lower, upper, n_vars)[0]
                )

    def test_memo_state_never_changes_results(self):
        # The same table asked cold and warm must produce the same list.
        rng = random.Random(73)
        tables = _random_tables(rng, 6, 40)
        clear_isop_memo()
        cold = [isop_exact(tt, 6) for tt in tables]
        warm = [isop_exact(tt, 6) for tt in tables]
        assert cold == warm
        for tt, cubes in zip(tables, cold):
            assert sop_tt(cubes, 6) == tt


# ----------------------------------------------------------------------
# NPN canonizer: argmin gather vs the scalar first-strict-minimum scan
# ----------------------------------------------------------------------


class TestNpnParity:
    def test_random_tables_pick_identical_transforms(self):
        rng = random.Random(74)
        tables = [0, _FULL, 0xAAAA, 0x8000, 0x0001]
        tables += [rng.getrandbits(16) for _ in range(400)]
        for tt in tables:
            canonical, transform = npn_canonize(tt)
            ref_canonical, ref_transform = npn_canonize_scalar(tt)
            assert canonical == ref_canonical
            # Not just the same class: the same representative transform
            # (the rewrite cache keys instantiation off it).
            assert transform == ref_transform
            assert apply_transform(canonical, transform) == tt

    def test_rejects_wide_tables(self):
        with pytest.raises(TruthTableError):
            npn_canonize(1 << 16)


# ----------------------------------------------------------------------
# Packed word-array kernels
# ----------------------------------------------------------------------


class TestPackedCofactors:
    @pytest.mark.parametrize("n_vars", [1, 2, 5, 6, 7, 8, 10])
    def test_both_cofactors_all_vars(self, n_vars):
        rng = random.Random(75 + n_vars)
        tables = _random_tables(rng, n_vars, 40)
        words = pack_tts(tables, n_vars)
        for var in range(n_vars):
            lo = cofactor0_many(words, var, n_vars)
            hi = cofactor1_many(words, var, n_vars)
            for row in range(len(tables)):
                assert words_to_tt(lo[row]) == cofactor0(tables[row], var, n_vars)
                assert words_to_tt(hi[row]) == cofactor1(tables[row], var, n_vars)

    def test_shape_and_range_checks(self):
        words = pack_tts([0b1010], 2)
        with pytest.raises(TruthTableError):
            cofactor0_many(words, 2, 2)  # var out of range
        with pytest.raises(TruthTableError):
            cofactor1_many(words, 0, 7)  # wrong word width for 7 vars


class TestPackRoundTrips:
    @pytest.mark.parametrize("n_vars", [0, 1, 3, 6, 7, 9])
    def test_single_and_batch_word_round_trips(self, n_vars):
        rng = random.Random(76 + n_vars)
        tables = _random_tables(rng, n_vars, 50)
        for tt in tables:
            assert words_to_tt(tt_to_words(tt, n_vars)) == tt
        packed = pack_tts(tables, n_vars)
        assert packed.shape == (len(tables), words_per_table(n_vars))
        assert unpack_tts(packed) == tables

    @pytest.mark.parametrize("n_vars", [0, 2, 6, 8])
    def test_bit_expansion_round_trips(self, n_vars):
        rng = random.Random(77 + n_vars)
        for tt in _random_tables(rng, n_vars, 30):
            bits = tt_to_bits(tt, n_vars)
            assert bits.shape == (1 << n_vars,)
            assert bits_to_tt(bits) == tt


class TestExpandParity:
    def test_random_var_maps_match_scalar(self):
        rng = random.Random(78)
        for _ in range(150):
            n_from = rng.randint(1, 6)
            # Cover both dispatch arms (scalar below 7 target vars).
            n_to = rng.randint(n_from, 9)
            var_map = [rng.randrange(n_to) for _ in range(n_from)]
            tt = rng.getrandbits(1 << n_from)
            assert expand_tt(tt, var_map, n_from, n_to) == expand_tt_scalar(
                tt, var_map, n_from, n_to
            )

    def test_duplicate_targets_and_constants(self):
        # Two source inputs on one target variable: f(a, a) semantics.
        assert expand_tt(0b1000, [3, 3], 2, 7) == expand_tt_scalar(
            0b1000, [3, 3], 2, 7
        )
        ones = full_mask(3)
        assert expand_tt(ones, [0, 1, 2], 3, 8) == full_mask(8)
        assert expand_tt(0, [0, 1, 2], 3, 8) == 0

    def test_length_mismatch_rejected_on_both_arms(self):
        with pytest.raises(TruthTableError):
            expand_tt(0b10, [0, 1], 1, 8)
        with pytest.raises(TruthTableError):
            expand_tt(0b10, [0, 1], 1, 3)


# ----------------------------------------------------------------------
# Batched cone truths: packed gather program vs scalar loop vs cone_truth
# ----------------------------------------------------------------------


def _graph_cones(g: AIG, max_leaves: int = 10):
    cones = []
    for node in g.and_ids():
        cut = reconv_cut(g, node, max_leaves, collect_features=False)
        if cut.n_leaves < 1:
            continue
        cones.append((node, tuple(cut.leaves), frozenset(cut.interior)))
    return cones


class TestBatchConeParity:
    def test_both_routes_match_cone_truth_on_random_graphs(self):
        for seed in (3, 9, 21):
            g = random_aig(10, 250, 6, seed=seed)
            cones = _graph_cones(g)
            assert len(cones) > 15
            expected = [cone_truth(g, root, list(leaves)) for root, leaves, _ in cones]
            assert batch_cone_truths(g, cones, packed=False) == expected
            assert batch_cone_truths(g, cones, packed=True) == expected

    def test_degenerate_cones(self):
        g = AIG("deg")
        a = g.add_pi()
        b = g.add_pi()
        ab = g.add_and(a, b)
        g.add_po(ab)
        node = ab >> 1
        cones = [
            # Single-leaf cut: the root *is* the only leaf.
            (node, (node,), frozenset()),
            # Duplicate leaves: the later index names the variable.
            (node, (a >> 1, b >> 1, a >> 1), frozenset({node})),
            # Constant-zero root over an empty cut.
            (0, (), frozenset()),
            # Leaf list containing the constant node.
            (node, (0, a >> 1, b >> 1), frozenset({node})),
        ]
        expected = [cone_truth(g, root, list(leaves)) for root, leaves, _ in cones]
        for packed in (False, True):
            assert batch_cone_truths(g, cones, packed=packed) == expected

    def test_uncovered_cone_raises_on_both_routes(self):
        g = random_aig(6, 40, 2, seed=5)
        node = next(iter(g.and_ids()))
        bad = [(node, (node + 1000,), frozenset({node}))]
        for packed in (False, True):
            with pytest.raises(TruthTableError):
                batch_cone_truths(g, bad, packed=packed)


# ----------------------------------------------------------------------
# Wave payloads: pack -> shared-memory segment -> rebuild, bit-exact
# ----------------------------------------------------------------------


class TestWavePayloads:
    def test_packed_tasks_round_trip_mixed_widths(self):
        rng = random.Random(79)
        tasks = [(0, 1), (full_mask(4), 4)]  # constants ride along
        tasks += [
            (rng.getrandbits(1 << n) & full_mask(n), n)
            for n in (rng.randint(1, 10) for _ in range(300))
        ]
        packed = PackedTasks.pack(tasks)
        assert packed.n_tasks == len(tasks)
        assert packed.tasks() == tasks
        # Range slicing rebuilds exactly the requested window.
        assert packed.tasks(5, 12) == tasks[5:12]

    def test_empty_wave(self):
        packed = PackedTasks.pack([])
        assert packed.n_tasks == 0
        assert packed.tasks() == []

    def test_segment_round_trip_and_lifecycle(self):
        before = leaked_segments()
        rng = random.Random(80)
        tasks = [
            (rng.getrandbits(1 << n) & full_mask(n), n)
            for n in (rng.randint(1, 8) for _ in range(120))
        ]
        segment = WaveSegment.create(PackedTasks.pack(tasks))
        try:
            attached = WaveSegment.attach(segment.descriptor())
            try:
                assert attached.packed().tasks() == tasks
                with pytest.raises(ReproError):
                    attached.unlink()  # only the creator may unlink
            finally:
                attached.close()
        finally:
            segment.close()
            segment.unlink()
        assert leaked_segments() == before

    def test_single_task_segment(self):
        before = leaked_segments()
        segment = WaveSegment.create(PackedTasks.pack([(1, 1)]))
        try:
            assert segment.packed().tasks() == [(1, 1)]
        finally:
            segment.close()
            segment.unlink()
        assert leaked_segments() == before
