"""Tests for the SAT solver, CNF encoding and CEC."""

import pytest

from repro.aig import AIG, lit_not
from repro.errors import SatError
from repro.verify import Solver, counterexample, encode, equivalent
from repro.verify.cnf import CnfMapping

from .util import random_aig


class TestSolver:
    def test_trivial_sat(self):
        s = Solver()
        s.add_clause([1])
        assert s.solve()
        assert s.model()[1] is True

    def test_trivial_unsat(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve()

    def test_empty_clause_unsat(self):
        s = Solver()
        s.add_clause([])
        assert not s.solve()

    def test_tautology_ignored(self):
        s = Solver()
        s.add_clause([1, -1])
        s.add_clause([2])
        assert s.solve()

    def test_unit_propagation_chain(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        s.add_clause([-3, -1, 4])
        assert s.solve()
        m = s.model()
        assert m[1] and m[2] and m[3] and m[4]

    def test_requires_search(self):
        # XOR chain: x1 ^ x2 ^ x3 = 1 (encoded clausally).
        s = Solver()
        s.add_clause([1, 2, 3])
        s.add_clause([1, -2, -3])
        s.add_clause([-1, 2, -3])
        s.add_clause([-1, -2, 3])
        assert s.solve()
        m = s.model()
        assert (m[1] ^ m[2] ^ m[3]) is True or (int(m[1]) + int(m[2]) + int(m[3])) % 2 == 1

    def test_pigeonhole_2_in_1_unsat(self):
        # Two pigeons, one hole.
        s = Solver()
        s.add_clause([1])  # pigeon 1 in hole
        s.add_clause([2])  # pigeon 2 in hole
        s.add_clause([-1, -2])  # not both
        assert not s.solve()

    def test_php_3_pigeons_2_holes(self):
        # var p_ij = pigeon i in hole j; i in 0..2, j in 0..1.
        def v(i, j):
            return 1 + i * 2 + j

        s = Solver()
        for i in range(3):
            s.add_clause([v(i, 0), v(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-v(i1, j), -v(i2, j)])
        assert not s.solve()

    def test_assumptions(self):
        s = Solver()
        s.add_clause([-1, 2])
        assert s.solve(assumptions=[1])
        assert s.model()[2]
        s2 = Solver()
        s2.add_clause([-1, 2])
        s2.add_clause([-2])
        assert not s2.solve(assumptions=[1])

    def test_model_before_solve_raises(self):
        s = Solver()
        s.add_clause([1, 2])
        with pytest.raises(SatError):
            s.model()

    def test_zero_literal_rejected(self):
        s = Solver()
        with pytest.raises(SatError):
            s.add_clause([0])

    def test_random_instances_against_bruteforce(self):
        import itertools
        import random

        rng = random.Random(0)
        for _trial in range(25):
            n_vars = rng.randint(2, 6)
            clauses = []
            for _ in range(rng.randint(1, 12)):
                size = rng.randint(1, 3)
                clause = [
                    rng.choice([-1, 1]) * rng.randint(1, n_vars)
                    for _ in range(size)
                ]
                clauses.append(clause)
            brute_sat = any(
                all(
                    any(
                        (lit > 0) == bool(bits >> (abs(lit) - 1) & 1)
                        for lit in clause
                    )
                    for clause in clauses
                )
                for bits in range(1 << n_vars)
            )
            s = Solver()
            for clause in clauses:
                s.add_clause(clause)
            assert s.solve() == brute_sat, clauses


class TestCnfAndCec:
    def test_encode_and_gate(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(x)
        s = Solver()
        m = encode(g, s)
        # Force output true: inputs must both be true.
        s.add_clause([m.dimacs(x)])
        assert s.solve()
        model = s.model()
        assert model[m.dimacs(a)] and model[m.dimacs(b)]

    def test_equivalent_identical(self):
        g = random_aig(6, 40, 4, seed=1)
        assert equivalent(g, g.clone())

    def test_equivalent_detects_difference(self):
        g = random_aig(6, 40, 4, seed=2)
        h = g.clone()
        h.set_po(0, lit_not(h.pos[0]))
        assert not equivalent(g, h)

    def test_equivalent_structurally_different(self):
        # (a & b) & c  vs  a & (b & c)
        g1 = AIG()
        a, b, c = g1.add_pi(), g1.add_pi(), g1.add_pi()
        g1.add_po(g1.add_and(g1.add_and(a, b), c))
        g2 = AIG()
        a, b, c = g2.add_pi(), g2.add_pi(), g2.add_pi()
        g2.add_po(g2.add_and(a, g2.add_and(b, c)))
        assert equivalent(g1, g2)
        assert equivalent(g1, g2, method="sat")

    def test_sat_method_on_larger(self):
        g = random_aig(14, 120, 5, seed=3)  # too many PIs for exhaustive
        assert equivalent(g, g.clone(), method="sat")
        h = g.clone()
        h.set_po(2, lit_not(h.pos[2]))
        assert not equivalent(g, h, method="sat")

    def test_counterexample(self):
        g1 = AIG()
        a, b = g1.add_pi(), g1.add_pi()
        g1.add_po(g1.add_and(a, b))
        g2 = AIG()
        a, b = g2.add_pi(), g2.add_pi()
        g2.add_po(g2.add_or(a, b))
        cex = counterexample(g1, g2)
        assert cex is not None
        # AND != OR exactly when inputs differ.
        assert cex[0] != cex[1]

    def test_counterexample_none_for_equivalent(self):
        g = random_aig(5, 25, 3, seed=4)
        assert counterexample(g, g.clone()) is None

    def test_mismatched_interfaces(self):
        g1 = random_aig(4, 10, 2, seed=0)
        g2 = random_aig(5, 10, 2, seed=0)
        assert not equivalent(g1, g2)
